//! First-order thermal-RC transient model of die + package.
//!
//! The die/spreader lumped node has heat capacity `C_th` and sheds heat to
//! ambient through `θja`; between samples the exact exponential solution
//! of `C·dT/dt = P − (T − Ta)/θ` is applied, so the integration is
//! unconditionally stable for any sample period.

use crate::error::ThermalError;
use crate::package::Package;
use np_units::convergence::{Breakdown, ResidualTrace};
use np_units::{guard, Celsius, Seconds, Watts};

/// Representative die + spreader heat capacity, J/°C. With θja ≈ 0.7 °C/W
/// this gives the tens-of-milliseconds thermal time constant that on-die
/// thermal monitors are designed around.
pub const DEFAULT_HEAT_CAPACITY_J_PER_C: f64 = 0.08;

/// A lumped thermal node over a package.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalRc {
    /// The package shedding the heat.
    pub package: Package,
    /// Heat capacity of the die + spreader, J/°C.
    pub heat_capacity: f64,
    /// Current junction temperature.
    pub temperature: Celsius,
}

impl ThermalRc {
    /// A node starting at ambient.
    ///
    /// # Panics
    ///
    /// Panics if the heat capacity is not positive.
    pub fn new(package: Package, heat_capacity: f64) -> Self {
        assert!(heat_capacity > 0.0, "heat capacity must be positive");
        Self {
            package,
            heat_capacity,
            temperature: package.t_ambient,
        }
    }

    /// A node starting at ambient, with the capacity validated instead of
    /// asserted — the panic-free form of [`ThermalRc::new`].
    ///
    /// # Errors
    ///
    /// [`ThermalError::NonFinite`] when the heat capacity, θja, or the
    /// ambient temperature is NaN, infinite, or non-positive.
    pub fn try_new(package: Package, heat_capacity: f64) -> Result<Self, ThermalError> {
        let ctx = "ThermalRc::try_new";
        guard::finite_positive(heat_capacity, "heat capacity", ctx)?;
        guard::finite_positive(package.theta_ja.0, "theta_ja", ctx)?;
        guard::finite(package.t_ambient.0, "ambient temperature", ctx)?;
        Ok(Self {
            package,
            heat_capacity,
            temperature: package.t_ambient,
        })
    }

    /// The thermal time constant `τ = θja · C_th`.
    pub fn time_constant(&self) -> Seconds {
        Seconds(self.package.theta_ja.0 * self.heat_capacity)
    }

    /// Steps the node at constant dissipation until the temperature
    /// update falls below `tol_c` degrees, returning the settled
    /// temperature — the iterative counterpart of
    /// [`ThermalRc::steady_state`], with a watchdog: if `max_steps`
    /// elapse first, the error's [`Convergence`] diagnostic carries the
    /// step count and the tail of the update history.
    ///
    /// # Errors
    ///
    /// [`ThermalError::NonFinite`] for a NaN/infinite power or
    /// non-positive `dt`/`tol_c`; [`ThermalError::NoConvergence`] when
    /// the node has not settled within `max_steps`.
    ///
    /// [`Convergence`]: np_units::convergence::Convergence
    pub fn settle(
        &mut self,
        power: Watts,
        dt: Seconds,
        tol_c: f64,
        max_steps: usize,
    ) -> Result<Celsius, ThermalError> {
        let ctx = "ThermalRc::settle";
        guard::finite_non_negative(power.0, "power", ctx)?;
        guard::finite_positive(dt.0, "dt", ctx)?;
        guard::finite_positive(tol_c, "tolerance", ctx)?;
        let _span = np_telemetry::span("thermal.rc.settle");
        let mut trace = ResidualTrace::new();
        // The labeled block funnels every exit through one point so the
        // step count is recorded exactly once, settled or not.
        let result = 'solve: {
            for _ in 0..max_steps {
                let before = self.temperature;
                let after = self.step(power, dt);
                let delta = (after - before).abs().0;
                if !delta.is_finite() {
                    break 'solve Err(ThermalError::NoConvergence {
                        diag: trace.diagnostic(Breakdown::NonFinite {
                            at_iteration: trace.iterations(),
                        }),
                    });
                }
                trace.record(delta);
                if delta <= tol_c {
                    break 'solve Ok(after);
                }
            }
            Err(ThermalError::NoConvergence {
                diag: trace.diagnostic(Breakdown::IterationBudget),
            })
        };
        np_telemetry::counter("thermal.rc.settle_steps", trace.iterations() as u64);
        result
    }

    /// Advances the node by `dt` at constant dissipation `power`, using
    /// the exact exponential step, and returns the new temperature.
    pub fn step(&mut self, power: Watts, dt: Seconds) -> Celsius {
        let t_inf = self.package.junction_temperature(power);
        let alpha = (-dt.0 / self.time_constant().0).exp();
        self.temperature = t_inf + (self.temperature - t_inf) * alpha;
        self.temperature
    }

    /// The steady-state temperature at constant dissipation.
    pub fn steady_state(&self, power: Watts) -> Celsius {
        self.package.junction_temperature(power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_units::ThermalResistance;

    fn node() -> ThermalRc {
        ThermalRc::new(
            Package::new(ThermalResistance(0.8), Celsius(45.0)),
            DEFAULT_HEAT_CAPACITY_J_PER_C,
        )
    }

    #[test]
    fn starts_at_ambient() {
        assert_eq!(node().temperature, Celsius(45.0));
    }

    #[test]
    fn converges_to_steady_state() {
        let mut n = node();
        let p = Watts(60.0);
        for _ in 0..10_000 {
            n.step(p, Seconds(1e-3));
        }
        let expect = n.steady_state(p);
        assert!((n.temperature - expect).abs().0 < 0.01);
    }

    #[test]
    fn exact_step_is_stable_for_huge_dt() {
        let mut n = node();
        let t = n.step(Watts(60.0), Seconds(1e6));
        assert!((t - n.steady_state(Watts(60.0))).abs().0 < 1e-6);
    }

    #[test]
    fn heating_is_monotone_towards_target() {
        let mut n = node();
        let mut prev = n.temperature;
        for _ in 0..100 {
            let t = n.step(Watts(80.0), Seconds(1e-3));
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn cooling_works_too() {
        let mut n = node();
        n.temperature = Celsius(110.0);
        let t = n.step(Watts(0.0), Seconds(0.5));
        assert!(t < Celsius(110.0));
        assert!(t > Celsius(45.0));
    }

    #[test]
    fn time_constant_is_theta_times_c() {
        let n = node();
        assert!((n.time_constant().0 - 0.8 * DEFAULT_HEAT_CAPACITY_J_PER_C).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "heat capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ThermalRc::new(Package::new(ThermalResistance(0.8), Celsius(45.0)), 0.0);
    }

    #[test]
    fn try_new_rejects_bad_capacity_without_panicking() {
        use crate::error::ThermalError;
        let pkg = Package::new(ThermalResistance(0.8), Celsius(45.0));
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                ThermalRc::try_new(pkg, bad),
                Err(ThermalError::NonFinite(_))
            ));
        }
        assert!(ThermalRc::try_new(pkg, 0.08).is_ok());
    }

    #[test]
    fn settle_matches_steady_state() {
        let mut n = node();
        let p = Watts(60.0);
        let settled = n.settle(p, Seconds(1e-3), 1e-9, 2_000_000).unwrap();
        assert!((settled - n.steady_state(p)).abs().0 < 1e-3);
    }

    #[test]
    fn settle_watchdog_reports_budget_with_diagnostic() {
        use crate::error::ThermalError;
        use np_units::convergence::Breakdown;
        let mut n = node();
        // Far too few steps to settle from ambient to ~93 °C.
        match n.settle(Watts(60.0), Seconds(1e-6), 1e-9, 5) {
            Err(ThermalError::NoConvergence { diag }) => {
                assert_eq!(diag.iterations, 5);
                assert_eq!(diag.reason, Breakdown::IterationBudget);
                assert!(!diag.residual_tail.is_empty());
                assert!(diag.final_residual.is_finite());
            }
            other => panic!("expected watchdog error, got {other:?}"),
        }
    }

    #[test]
    fn settle_rejects_non_finite_power() {
        use crate::error::ThermalError;
        let mut n = node();
        assert!(matches!(
            n.settle(Watts(f64::NAN), Seconds(1e-3), 1e-6, 10),
            Err(ThermalError::NonFinite(_))
        ));
        assert!(matches!(
            n.settle(Watts(60.0), Seconds(0.0), 1e-6, 10),
            Err(ThermalError::NonFinite(_))
        ));
    }
}
