//! First-order thermal-RC transient model of die + package.
//!
//! The die/spreader lumped node has heat capacity `C_th` and sheds heat to
//! ambient through `θja`; between samples the exact exponential solution
//! of `C·dT/dt = P − (T − Ta)/θ` is applied, so the integration is
//! unconditionally stable for any sample period.

use crate::package::Package;
use np_units::{Celsius, Seconds, Watts};

/// Representative die + spreader heat capacity, J/°C. With θja ≈ 0.7 °C/W
/// this gives the tens-of-milliseconds thermal time constant that on-die
/// thermal monitors are designed around.
pub const DEFAULT_HEAT_CAPACITY_J_PER_C: f64 = 0.08;

/// A lumped thermal node over a package.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalRc {
    /// The package shedding the heat.
    pub package: Package,
    /// Heat capacity of the die + spreader, J/°C.
    pub heat_capacity: f64,
    /// Current junction temperature.
    pub temperature: Celsius,
}

impl ThermalRc {
    /// A node starting at ambient.
    ///
    /// # Panics
    ///
    /// Panics if the heat capacity is not positive.
    pub fn new(package: Package, heat_capacity: f64) -> Self {
        assert!(heat_capacity > 0.0, "heat capacity must be positive");
        Self {
            package,
            heat_capacity,
            temperature: package.t_ambient,
        }
    }

    /// The thermal time constant `τ = θja · C_th`.
    pub fn time_constant(&self) -> Seconds {
        Seconds(self.package.theta_ja.0 * self.heat_capacity)
    }

    /// Advances the node by `dt` at constant dissipation `power`, using
    /// the exact exponential step, and returns the new temperature.
    pub fn step(&mut self, power: Watts, dt: Seconds) -> Celsius {
        let t_inf = self.package.junction_temperature(power);
        let alpha = (-dt.0 / self.time_constant().0).exp();
        self.temperature = t_inf + (self.temperature - t_inf) * alpha;
        self.temperature
    }

    /// The steady-state temperature at constant dissipation.
    pub fn steady_state(&self, power: Watts) -> Celsius {
        self.package.junction_temperature(power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_units::ThermalResistance;

    fn node() -> ThermalRc {
        ThermalRc::new(
            Package::new(ThermalResistance(0.8), Celsius(45.0)),
            DEFAULT_HEAT_CAPACITY_J_PER_C,
        )
    }

    #[test]
    fn starts_at_ambient() {
        assert_eq!(node().temperature, Celsius(45.0));
    }

    #[test]
    fn converges_to_steady_state() {
        let mut n = node();
        let p = Watts(60.0);
        for _ in 0..10_000 {
            n.step(p, Seconds(1e-3));
        }
        let expect = n.steady_state(p);
        assert!((n.temperature - expect).abs().0 < 0.01);
    }

    #[test]
    fn exact_step_is_stable_for_huge_dt() {
        let mut n = node();
        let t = n.step(Watts(60.0), Seconds(1e6));
        assert!((t - n.steady_state(Watts(60.0))).abs().0 < 1e-6);
    }

    #[test]
    fn heating_is_monotone_towards_target() {
        let mut n = node();
        let mut prev = n.temperature;
        for _ in 0..100 {
            let t = n.step(Watts(80.0), Seconds(1e-3));
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn cooling_works_too() {
        let mut n = node();
        n.temperature = Celsius(110.0);
        let t = n.step(Watts(0.0), Seconds(0.5));
        assert!(t < Celsius(110.0));
        assert!(t > Celsius(45.0));
    }

    #[test]
    fn time_constant_is_theta_times_c() {
        let n = node();
        assert!((n.time_constant().0 - 0.8 * DEFAULT_HEAT_CAPACITY_J_PER_C).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "heat capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ThermalRc::new(Package::new(ThermalResistance(0.8), Celsius(45.0)), 0.0);
    }
}
