//! # np-thermal
//!
//! Packaging-thermal models and dynamic thermal management (DTM) for
//! Section 2.1 of *Future Performance Challenges in Nanometer Design*
//! (Sylvester & Kaul, DAC 2001):
//!
//! * [`package`] — the junction-to-ambient model of Eq. 1
//!   (`θja = (Tchip − Tambient)/Pchip`) and the leakage–temperature
//!   electro-thermal fixed point;
//! * [`workload`] — synthetic MPU power traces whose *effective*
//!   worst-case is a tunable fraction (default the paper's 75 %) of the
//!   theoretical worst case;
//! * [`rc`] — a thermal-RC transient simulator for the die/heatsink;
//! * [`dtm`] — the Pentium-4-style thermal monitor: on-die sensor,
//!   comparator, and clock throttling, which lets the package be sized for
//!   the effective rather than theoretical worst case;
//! * [`cost`] — the cooling-cost model behind "a rise in power consumption
//!   from 65 to 75 W would triple cooling costs".
//!
//! # Examples
//!
//! ```
//! use np_thermal::package::Package;
//! use np_units::{Celsius, ThermalResistance, Watts};
//!
//! let pkg = Package::new(ThermalResistance(0.8), Celsius(45.0));
//! let tj = pkg.junction_temperature(Watts(68.75));
//! assert!((tj.0 - 100.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cost;
pub mod dtm;
mod error;
pub mod network;
pub mod package;
pub mod rc;
pub mod subambient;
pub mod workload;

pub use error::ThermalError;
pub use package::Package;
