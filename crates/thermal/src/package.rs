//! The Eq. 1 package model and the leakage–temperature fixed point.
//!
//! `θja = (Tchip − Tambient) / Pchip` (paper Eq. 1) in all three
//! rearrangements, plus the electro-thermal closure: leakage power grows
//! with junction temperature, which grows with power — a fixed point that
//! exists only when the package is strong enough.

use crate::error::ThermalError;
use np_device::Mosfet;
use np_roadmap::TechNode;
use np_units::convergence::{Breakdown, ResidualTrace};
use np_units::{guard, Celsius, Microns, ThermalResistance, Volts, Watts};

/// A packaging/cooling solution characterized by its junction-to-ambient
/// thermal resistance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Package {
    /// Junction-to-ambient thermal resistance.
    pub theta_ja: ThermalResistance,
    /// Ambient temperature (the paper uses ≈45 °C).
    pub t_ambient: Celsius,
}

impl Package {
    /// A package with the given θja at the given ambient.
    pub fn new(theta_ja: ThermalResistance, t_ambient: Celsius) -> Self {
        Self {
            theta_ja,
            t_ambient,
        }
    }

    /// The package required for `node` under ITRS junction limits.
    pub fn itrs_required(node: TechNode) -> Self {
        let pkg = np_roadmap::PackagingRoadmap::for_node(node);
        Self::new(pkg.required_theta_ja(), pkg.t_ambient)
    }

    /// Eq. 1 solved for `Tchip`: the junction temperature at dissipation
    /// `power`.
    pub fn junction_temperature(&self, power: Watts) -> Celsius {
        self.t_ambient + self.theta_ja * power
    }

    /// Eq. 1 solved for `Pchip`: the dissipation that drives the junction
    /// to `t_max`.
    ///
    /// # Panics
    ///
    /// Panics if θja is not positive.
    pub fn max_power(&self, t_max: Celsius) -> Watts {
        assert!(self.theta_ja.0 > 0.0, "θja must be positive");
        Watts((t_max - self.t_ambient).0 / self.theta_ja.0)
    }

    /// Eq. 1 solved for θja: the thermal resistance needed to keep
    /// `power` below `t_max` at this ambient.
    pub fn required_theta_ja(
        power: Watts,
        t_max: Celsius,
        t_ambient: Celsius,
    ) -> ThermalResistance {
        ThermalResistance((t_max - t_ambient).0 / power.0)
    }

    /// The paper's DTM headroom argument: if the *effective* worst case is
    /// `effective_fraction` (≈0.75) of the theoretical worst case, the
    /// allowable θja is `1/effective_fraction` (≈1.33×) higher — "the
    /// allowable θja is 33 % higher".
    pub fn theta_headroom(effective_fraction: f64) -> f64 {
        1.0 / effective_fraction
    }

    /// Solves the electro-thermal fixed point: junction temperature where
    /// `Tj = Ta + θja · (P_dyn + P_leak(Tj))`, with leakage from the
    /// device model evaluated at `Tj`.
    ///
    /// `leak_width` is the total leaking transistor width on the die and
    /// `vdd` the rail it leaks from.
    ///
    /// The junction-temperature ceiling above which the fixed point is
    /// reported as runaway rather than a solution.
    pub const RUNAWAY_CEILING_C: f64 = 250.0;

    /// # Errors
    ///
    /// [`ThermalError::ThermalRunaway`] when no stable temperature below
    /// [`Package::RUNAWAY_CEILING_C`] exists — the attached
    /// [`Convergence`] diagnostic records the iteration count, the final
    /// temperature update, and a tail of the update history so a diverging
    /// loop is distinguishable from a slow one;
    /// [`ThermalError::NonFinite`] when `dynamic`, `vdd`, θja, or the
    /// ambient is NaN/infinite (or `dynamic` negative);
    /// [`ThermalError::BadParameter`] for a non-positive width.
    ///
    /// [`Convergence`]: np_units::convergence::Convergence
    pub fn electro_thermal_temperature(
        &self,
        dynamic: Watts,
        dev: &Mosfet,
        leak_width: Microns,
        vdd: Volts,
    ) -> Result<Celsius, ThermalError> {
        let ctx = "Package::electro_thermal_temperature";
        guard::finite_non_negative(dynamic.0, "dynamic power", ctx)?;
        guard::finite(vdd.0, "Vdd", ctx)?;
        guard::finite_positive(self.theta_ja.0, "theta_ja", ctx)?;
        guard::finite(self.t_ambient.0, "ambient temperature", ctx)?;
        if !(leak_width.0 > 0.0) {
            return Err(ThermalError::BadParameter("leak width must be positive"));
        }
        guard::finite(leak_width.0, "leak width", ctx)?;
        let map = |t: f64| -> f64 {
            let hot = dev.with_temperature(Celsius(t));
            let p_leak = hot.ioff().total(leak_width) * vdd;
            self.junction_temperature(dynamic + p_leak).0
        };
        // Fixed-point iteration with a residual trace: the |ΔT| per step
        // is the residual, so the diagnostic's tail shows whether the
        // loop was contracting, stalled, or blowing up.
        const TOL: f64 = 1e-6;
        const MAX_ITERS: usize = 500;
        let _span = np_telemetry::span("thermal.fixed_point");
        let mut trace = ResidualTrace::new();
        let mut t = self.t_ambient.0;
        // The labeled block funnels every exit through one point so the
        // iteration count is recorded exactly once, converged or not.
        let result = 'solve: {
            for _ in 0..MAX_ITERS {
                let next = map(t);
                if !next.is_finite() {
                    // Leakage blowing up to a non-finite value *is* runaway.
                    break 'solve Err(ThermalError::ThermalRunaway {
                        last_temp: t,
                        diag: trace.diagnostic(Breakdown::NonFinite {
                            at_iteration: trace.iterations(),
                        }),
                    });
                }
                trace.record((next - t).abs());
                if next >= Self::RUNAWAY_CEILING_C {
                    break 'solve Err(ThermalError::ThermalRunaway {
                        last_temp: next,
                        diag: trace.diagnostic(Breakdown::DomainEscape {
                            value: next,
                            bound: Self::RUNAWAY_CEILING_C,
                        }),
                    });
                }
                if (next - t).abs() <= TOL {
                    break 'solve Ok(Celsius(next));
                }
                t = next;
            }
            Err(ThermalError::ThermalRunaway {
                last_temp: t,
                diag: trace.diagnostic(Breakdown::IterationBudget),
            })
        };
        np_telemetry::counter("thermal.fixed_point.iterations", trace.iterations() as u64);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkg() -> Package {
        Package::new(ThermalResistance(0.8), Celsius(45.0))
    }

    #[test]
    fn eq1_three_ways() {
        let p = pkg();
        let tj = p.junction_temperature(Watts(68.75));
        assert!((tj.0 - 100.0).abs() < 1e-9);
        let pmax = p.max_power(Celsius(100.0));
        assert!((pmax.0 - 68.75).abs() < 1e-9);
        let theta = Package::required_theta_ja(Watts(68.75), Celsius(100.0), Celsius(45.0));
        assert!((theta.0 - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dtm_headroom_is_33_percent() {
        // Section 2.1: "With an effective 25% reduction in Pchip, the
        // allowable θja is 33% higher".
        let h = Package::theta_headroom(0.75);
        assert!((h - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn itrs_package_tightens_with_node() {
        let p180 = Package::itrs_required(TechNode::N180);
        let p35 = Package::itrs_required(TechNode::N35);
        assert!(p35.theta_ja < p180.theta_ja);
        assert_eq!(p35.t_ambient, Celsius(45.0));
    }

    #[test]
    fn electro_thermal_fixed_point_converges() {
        let dev = Mosfet::for_node(TechNode::N70).unwrap();
        // A 70 nm MPU: ~100 W dynamic, ~10 m of leaking width.
        let t = pkg()
            .electro_thermal_temperature(Watts(60.0), &dev, Microns(2.0e6), Volts(0.9))
            .unwrap();
        // Above the leakage-free temperature, below runaway.
        let t_no_leak = pkg().junction_temperature(Watts(60.0));
        assert!(t > t_no_leak);
        assert!(t.0 < 150.0, "got {t}");
    }

    #[test]
    fn excessive_leakage_is_runaway() {
        let dev = Mosfet::for_node(TechNode::N50).unwrap(); // Vth 0.02: very leaky
        let err = pkg()
            .electro_thermal_temperature(Watts(150.0), &dev, Microns(5.0e7), Volts(0.6))
            .unwrap_err();
        assert!(matches!(err, ThermalError::ThermalRunaway { .. }));
    }

    #[test]
    fn bad_width_rejected() {
        let dev = Mosfet::for_node(TechNode::N70).unwrap();
        assert!(pkg()
            .electro_thermal_temperature(Watts(10.0), &dev, Microns(0.0), Volts(0.9))
            .is_err());
    }

    #[test]
    #[should_panic(expected = "θja must be positive")]
    fn zero_theta_panics() {
        let p = Package::new(ThermalResistance(0.0), Celsius(45.0));
        let _ = p.max_power(Celsius(100.0));
    }
}
