//! Synthetic MPU power traces.
//!
//! Section 2.1: "The effective worst-case power consumption, as found by
//! running power-hungry applications, is about 75 % of the theoretical
//! worst-case, which is determined using synthetic input code sequences
//! that are not realized in practice." The generators here produce both: a
//! *power-virus* trace pinned at the theoretical maximum, and bursty
//! application traces whose sustained ceiling is a tunable fraction of it.

use np_units::{Seconds, Watts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sampled die-power trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    samples: Vec<Watts>,
    dt: Seconds,
}

impl WorkloadTrace {
    /// Wraps raw samples at fixed step `dt`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or the step is not positive.
    pub fn new(samples: Vec<Watts>, dt: Seconds) -> Self {
        assert!(!samples.is_empty(), "trace must have samples");
        assert!(dt.0 > 0.0, "sample period must be positive");
        Self { samples, dt }
    }

    /// The sample period.
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// The samples.
    pub fn samples(&self) -> &[Watts] {
        &self.samples
    }

    /// Trace duration.
    pub fn duration(&self) -> Seconds {
        self.dt * self.samples.len() as f64
    }

    /// The instantaneous peak.
    pub fn peak(&self) -> Watts {
        self.samples.iter().copied().fold(Watts(0.0), Watts::max)
    }

    /// Mean power.
    pub fn mean(&self) -> Watts {
        self.samples.iter().copied().sum::<Watts>() / self.samples.len() as f64
    }

    /// The *effective worst case*: the largest moving average over a
    /// thermal time-constant window — what actually heats the die.
    ///
    /// # Panics
    ///
    /// Panics if the window is not positive.
    pub fn effective_worst_case(&self, window: Seconds) -> Watts {
        assert!(window.0 > 0.0, "window must be positive");
        let w = ((window.0 / self.dt.0).round() as usize).clamp(1, self.samples.len());
        let mut sum: f64 = self.samples[..w].iter().map(|p| p.0).sum();
        let mut best = sum;
        for i in w..self.samples.len() {
            sum += self.samples[i].0 - self.samples[i - w].0;
            best = best.max(sum);
        }
        Watts(best / w as f64)
    }

    /// The theoretical worst case: a power virus pinned at `p_max`.
    pub fn power_virus(p_max: Watts, samples: usize, dt: Seconds) -> Self {
        Self::new(vec![p_max; samples.max(1)], dt)
    }

    /// A bursty application trace: alternating compute phases whose
    /// sustained ceiling approximates `effective_fraction × p_max`
    /// (default 0.75 per the paper), with idle valleys and occasional
    /// short spikes to `p_max` that a thermal window absorbs.
    pub fn application(
        p_max: Watts,
        effective_fraction: f64,
        samples: usize,
        dt: Seconds,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(samples.max(1));
        let mut phase_left = 0usize;
        let mut level = Watts(0.0);
        for _ in 0..samples.max(1) {
            if phase_left == 0 {
                phase_left = rng.random_range(20..200);
                let u: f64 = rng.random();
                level = if u < 0.45 {
                    // Hot compute phase near the effective ceiling.
                    p_max * (effective_fraction * rng.random_range(0.9..1.0))
                } else if u < 0.85 {
                    // Moderate phase.
                    p_max * rng.random_range(0.35..0.6)
                } else {
                    // Idle / memory-bound.
                    p_max * rng.random_range(0.15..0.3)
                };
            }
            phase_left -= 1;
            // Rare single-sample spikes to the theoretical maximum.
            let p = if rng.random::<f64>() < 0.002 {
                p_max
            } else {
                level * rng.random_range(0.97..1.03)
            };
            out.push(p.min(p_max));
        }
        Self::new(out, dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: Seconds = Seconds(1e-3);

    #[test]
    fn virus_is_flat_at_max() {
        let t = WorkloadTrace::power_virus(Watts(100.0), 1000, DT);
        assert_eq!(t.peak(), Watts(100.0));
        assert_eq!(t.mean(), Watts(100.0));
        assert_eq!(t.effective_worst_case(Seconds(0.05)), Watts(100.0));
    }

    #[test]
    fn application_effective_worst_case_is_about_75_percent() {
        let t = WorkloadTrace::application(Watts(100.0), 0.75, 20_000, DT, 3);
        let eff = t.effective_worst_case(Seconds(0.05));
        assert!(
            (68.0..=80.0).contains(&eff.0),
            "effective worst case {eff} not near 75 W"
        );
        // Instantaneous spikes still reach (close to) the theoretical max.
        assert!(t.peak().0 > 95.0);
    }

    #[test]
    fn effective_worst_case_is_below_peak_for_bursty() {
        let t = WorkloadTrace::application(Watts(100.0), 0.75, 20_000, DT, 4);
        assert!(t.effective_worst_case(Seconds(0.05)) < t.peak());
        assert!(t.mean() < t.effective_worst_case(Seconds(0.05)));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadTrace::application(Watts(90.0), 0.75, 500, DT, 7);
        let b = WorkloadTrace::application(Watts(90.0), 0.75, 500, DT, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn duration_is_samples_times_dt() {
        let t = WorkloadTrace::power_virus(Watts(1.0), 250, DT);
        assert!((t.duration().0 - 0.25).abs() < 1e-12);
        assert_eq!(t.samples().len(), 250);
        assert_eq!(t.dt(), DT);
    }

    #[test]
    #[should_panic(expected = "trace must have samples")]
    fn empty_trace_panics() {
        let _ = WorkloadTrace::new(vec![], DT);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn bad_window_panics() {
        let t = WorkloadTrace::power_virus(Watts(1.0), 10, DT);
        let _ = t.effective_worst_case(Seconds(0.0));
    }
}
