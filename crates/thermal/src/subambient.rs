//! Sub-ambient (refrigerated) operation (Section 2.1, ref. \[5\]).
//!
//! "The advantages of cooling the ambient and junction temperatures are
//! well documented: improved voltage scalability due to reduced leakage
//! currents, higher carrier mobilities, lower interconnect resistances,
//! and improved reliability. However … current vapor compression based
//! refrigeration techniques are expensive, on the order of $1 per watt
//! cooled."
//!
//! The model quantifies all three electrical benefits with the same
//! device model the rest of the workspace uses, plus the copper
//! temperature coefficient for wires, and prices the cooler.

use crate::error::ThermalError;
use np_device::Mosfet;
use np_units::{Celsius, Watts};
use std::fmt;

/// Copper resistivity temperature coefficient, 1/K.
pub const CU_TEMP_COEFF: f64 = 0.0039;

/// Reference temperature for the wire-resistance comparison.
pub const WIRE_T_REF: Celsius = Celsius(85.0);

/// The electrical benefits of running a die at `t_cold` instead of the
/// hot-junction baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct SubAmbientReport {
    /// The cold junction temperature evaluated.
    pub t_cold: Celsius,
    /// The hot baseline.
    pub t_hot: Celsius,
    /// Drive-current (≈ speed) improvement factor.
    pub drive_gain: f64,
    /// Leakage reduction factor (hot/cold).
    pub leakage_reduction: f64,
    /// Wire-resistance reduction factor (hot/cold).
    pub wire_resistance_gain: f64,
    /// Refrigeration cost at $1/W for the given dissipation.
    pub cooling_cost_dollars: f64,
}

impl SubAmbientReport {
    /// Evaluates sub-ambient operation of `dev` (assumed characterized at
    /// the hot baseline) at `t_cold`, for a chip dissipating `power`.
    ///
    /// # Errors
    ///
    /// Rejects a "cold" point at or above the baseline and propagates
    /// device errors.
    pub fn evaluate(
        dev: &Mosfet,
        t_hot: Celsius,
        t_cold: Celsius,
        power: Watts,
    ) -> Result<Self, ThermalError> {
        if t_cold >= t_hot {
            return Err(ThermalError::BadParameter(
                "cold point must be below baseline",
            ));
        }
        if power.0 < 0.0 {
            return Err(ThermalError::BadParameter("power must be non-negative"));
        }
        let hot = dev.with_temperature(t_hot);
        let cold = dev.with_temperature(t_cold);
        let vdd = dev.nominal_vdd();
        let drive_gain = match (cold.ion(vdd), hot.ion(vdd)) {
            (Ok(c), Ok(h)) => c / h,
            (Err(_), _) | (_, Err(_)) => {
                return Err(ThermalError::BadParameter(
                    "device cannot be evaluated at these temperatures",
                ))
            }
        };
        let leakage_reduction = hot.ioff() / cold.ioff();
        let wire_resistance_gain = (1.0 + CU_TEMP_COEFF * (WIRE_T_REF.0 - 20.0))
            / (1.0 + CU_TEMP_COEFF * (t_cold.0 - 20.0));
        Ok(Self {
            t_cold,
            t_hot,
            drive_gain,
            leakage_reduction,
            wire_resistance_gain,
            cooling_cost_dollars: power.0 * crate::cost::REFRIGERATION_DOLLARS_PER_WATT,
        })
    }
}

impl fmt::Display for SubAmbientReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} -> {:.0}: drive x{:.2}, leakage /{:.0}, wire R /{:.2}, cooler ${:.0}",
            self.t_hot,
            self.t_cold,
            self.drive_gain,
            self.leakage_reduction,
            self.wire_resistance_gain,
            self.cooling_cost_dollars,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_roadmap::TechNode;

    fn report(t_cold: f64) -> SubAmbientReport {
        let dev = Mosfet::for_node(TechNode::N70).expect("calibration");
        SubAmbientReport::evaluate(&dev, Celsius(85.0), Celsius(t_cold), Watts(150.0))
            .expect("evaluation")
    }

    #[test]
    fn cold_operation_is_faster() {
        let r = report(-40.0);
        assert!(
            (1.1..=1.8).contains(&r.drive_gain),
            "drive gain {:.2}",
            r.drive_gain
        );
    }

    #[test]
    fn cold_operation_slashes_leakage() {
        let r = report(-40.0);
        assert!(
            r.leakage_reduction > 50.0,
            "got /{:.0}",
            r.leakage_reduction
        );
    }

    #[test]
    fn wires_improve_too() {
        let r = report(-40.0);
        assert!(
            (1.2..=1.8).contains(&r.wire_resistance_gain),
            "got {:.2}",
            r.wire_resistance_gain
        );
    }

    #[test]
    fn benefits_grow_monotonically_with_cooling() {
        let mild = report(0.0);
        let deep = report(-40.0);
        assert!(deep.drive_gain > mild.drive_gain);
        assert!(deep.leakage_reduction > mild.leakage_reduction);
        assert!(deep.wire_resistance_gain > mild.wire_resistance_gain);
    }

    #[test]
    fn refrigeration_is_a_dollar_per_watt() {
        let r = report(-40.0);
        assert!((r.cooling_cost_dollars - 150.0).abs() < 1e-9);
    }

    #[test]
    fn cold_above_baseline_is_rejected() {
        let dev = Mosfet::for_node(TechNode::N70).unwrap();
        assert!(
            SubAmbientReport::evaluate(&dev, Celsius(85.0), Celsius(90.0), Watts(1.0)).is_err()
        );
    }

    #[test]
    fn display_summarizes() {
        let s = format!("{}", report(-40.0));
        assert!(s.contains("drive"));
        assert!(s.contains("cooler"));
    }
}
