//! Dynamic thermal management (Section 2.1).
//!
//! Models the Pentium 4 thermal monitor \[7\]: an on-die temperature sensor
//! (a biased diode with a comparator — here an ideal reading plus a fixed
//! offset) trips when the junction crosses a trigger temperature, and the
//! clock is throttled until the die cools through a hysteresis band.
//! "The importance of dynamic thermal management techniques lies in their
//! ability to reduce Pchip … to the effective worst-case power dissipation
//! rather than the theoretical worst-case."

use crate::error::ThermalError;
use crate::rc::ThermalRc;
use crate::workload::WorkloadTrace;
use np_units::{Celsius, Watts};
use std::fmt;

/// How the controller sheds power when throttled (Section 2.1 lists both:
/// the Pentium 4 duty-cycles its clock; "Transmeta's approach dynamically
/// varies the supply voltage").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThrottleMode {
    /// Clock gating / duty-cycling: power and performance both scale with
    /// the throttle factor.
    #[default]
    ClockGating,
    /// Dynamic voltage-and-frequency scaling: the supply tracks the
    /// frequency, so power scales with the *cube* of the throttle factor
    /// while performance scales linearly — the Transmeta advantage.
    Dvfs,
}

impl ThrottleMode {
    /// Dynamic-power multiplier at a given throttle factor.
    pub fn power_factor(self, throttle: f64) -> f64 {
        match self {
            ThrottleMode::ClockGating => throttle,
            ThrottleMode::Dvfs => throttle.powi(3),
        }
    }
}

/// DTM controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtmPolicy {
    /// Junction temperature at which throttling engages.
    pub trigger: Celsius,
    /// Temperature must fall this far below the trigger to release.
    pub hysteresis: Celsius,
    /// Clock (and hence dynamic-power) multiplier while throttled — the
    /// Pentium 4 duty-cycles its clock to roughly half rate.
    pub throttle_factor: f64,
    /// Sensor offset: the diode reads this much below the true hot-spot
    /// temperature, so real controllers trigger early by this margin.
    pub sensor_offset: Celsius,
    /// How power is shed while throttled.
    pub mode: ThrottleMode,
}

impl DtmPolicy {
    /// A Pentium-4-like policy triggering at `trigger`.
    pub fn at_trigger(trigger: Celsius) -> Self {
        Self {
            trigger,
            hysteresis: Celsius(2.0),
            throttle_factor: 0.5,
            sensor_offset: Celsius(2.0),
            mode: ThrottleMode::ClockGating,
        }
    }

    /// The same trigger with Transmeta-style DVFS throttling: a gentler
    /// 0.7x frequency step whose voltage tracking sheds more power than a
    /// 0.5x clock gate.
    pub fn dvfs_at_trigger(trigger: Celsius) -> Self {
        Self {
            trigger,
            hysteresis: Celsius(2.0),
            throttle_factor: 0.7,
            sensor_offset: Celsius(2.0),
            mode: ThrottleMode::Dvfs,
        }
    }
}

/// Outcome of a DTM simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct DtmResult {
    /// Peak junction temperature observed.
    pub max_temperature: Celsius,
    /// Fraction of time spent throttled.
    pub throttled_fraction: f64,
    /// Average delivered performance (1.0 = never throttled).
    pub performance: f64,
    /// Mean dissipated power after throttling.
    pub mean_power: Watts,
}

impl fmt::Display for DtmResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tmax {:.1}, throttled {:.1}% of time, performance {:.1}%, mean power {:.1}",
            self.max_temperature,
            self.throttled_fraction * 100.0,
            self.performance * 100.0,
            self.mean_power,
        )
    }
}

/// Simulates the trace through the thermal node under a DTM policy.
///
/// Returns the run summary; the node is taken by value and starts at
/// ambient.
///
/// # Errors
///
/// Returns [`ThermalError::BadParameter`] for a throttle factor outside
/// `(0, 1]` or non-positive hysteresis.
pub fn simulate(
    mut node: ThermalRc,
    trace: &WorkloadTrace,
    policy: &DtmPolicy,
) -> Result<DtmResult, ThermalError> {
    if !(policy.throttle_factor > 0.0 && policy.throttle_factor <= 1.0) {
        return Err(ThermalError::BadParameter(
            "throttle factor must be in (0, 1]",
        ));
    }
    if !(policy.hysteresis.0 > 0.0) {
        return Err(ThermalError::BadParameter("hysteresis must be positive"));
    }
    let dt = trace.dt();
    let mut throttled = false;
    let mut max_t = node.temperature;
    let mut throttled_samples = 0usize;
    let mut perf_sum = 0.0;
    let mut power_sum = 0.0;
    for &p in trace.samples() {
        // The diode sits away from the hot spot and reads low by the
        // offset; the comparator threshold is guard-banded by the same
        // offset again, so the controller trips before the true hot spot
        // reaches the trigger.
        let sensed = node.temperature - policy.sensor_offset;
        let trip_at = policy.trigger - policy.sensor_offset * 2.0;
        if throttled {
            if sensed < trip_at - policy.hysteresis {
                throttled = false;
            }
        } else if sensed >= trip_at {
            throttled = true;
        }
        let (factor, power_mult) = if throttled {
            (
                policy.throttle_factor,
                policy.mode.power_factor(policy.throttle_factor),
            )
        } else {
            (1.0, 1.0)
        };
        let p_eff = p * power_mult;
        let t = node.step(p_eff, dt);
        max_t = max_t.max(t);
        if throttled {
            throttled_samples += 1;
        }
        perf_sum += factor;
        power_sum += p_eff.0;
    }
    let n = trace.samples().len() as f64;
    Ok(DtmResult {
        max_temperature: max_t,
        throttled_fraction: throttled_samples as f64 / n,
        performance: perf_sum / n,
        mean_power: Watts(power_sum / n),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::Package;
    use crate::rc::DEFAULT_HEAT_CAPACITY_J_PER_C;
    use np_units::{Seconds, ThermalResistance};

    fn node(theta: f64) -> ThermalRc {
        ThermalRc::new(
            Package::new(ThermalResistance(theta), Celsius(45.0)),
            DEFAULT_HEAT_CAPACITY_J_PER_C,
        )
    }

    fn virus() -> WorkloadTrace {
        WorkloadTrace::power_virus(Watts(100.0), 50_000, Seconds(1e-4))
    }

    #[test]
    fn dtm_caps_temperature_under_power_virus() {
        // An undersized package (θja for 75 W, virus at 100 W): without
        // DTM the junction would reach 45 + 0.73*100 = 118 °C; DTM must
        // hold it near the 100 °C trigger.
        let policy = DtmPolicy::at_trigger(Celsius(100.0));
        let r = simulate(node(0.733), &virus(), &policy).unwrap();
        assert!(
            r.max_temperature <= Celsius(101.5),
            "got {}",
            r.max_temperature
        );
        assert!(r.throttled_fraction > 0.1);
        assert!(r.performance < 1.0);
    }

    #[test]
    fn dtm_is_idle_for_realistic_workloads() {
        // The same undersized package runs a 75%-effective application
        // trace without (significant) throttling — the paper's argument
        // for sizing packages to the effective worst case.
        let trace = WorkloadTrace::application(Watts(100.0), 0.75, 50_000, Seconds(1e-4), 5);
        let policy = DtmPolicy::at_trigger(Celsius(100.0));
        let r = simulate(node(0.733), &trace, &policy).unwrap();
        assert!(
            r.throttled_fraction < 0.05,
            "throttled {:.1}%",
            r.throttled_fraction * 100.0
        );
        assert!(r.performance > 0.97, "performance {}", r.performance);
        assert!(r.max_temperature <= Celsius(102.0));
    }

    #[test]
    fn oversized_package_never_throttles_virus() {
        // θja sized for the full 100 W keeps even the virus below trigger.
        let policy = DtmPolicy::at_trigger(Celsius(100.0));
        let r = simulate(node(0.5), &virus(), &policy).unwrap();
        assert_eq!(r.throttled_fraction, 0.0);
        assert_eq!(r.performance, 1.0);
    }

    #[test]
    fn hysteresis_prevents_chatter() {
        // With hysteresis the controller toggles in bands, not per sample:
        // count transitions by re-simulating manually.
        let policy = DtmPolicy::at_trigger(Celsius(100.0));
        let r = simulate(node(0.733), &virus(), &policy).unwrap();
        // throttled fraction strictly between 0 and 1 shows band cycling.
        assert!(r.throttled_fraction > 0.0 && r.throttled_fraction < 1.0);
    }

    #[test]
    fn bad_policy_rejected() {
        let mut p = DtmPolicy::at_trigger(Celsius(100.0));
        p.throttle_factor = 0.0;
        assert!(simulate(node(0.7), &virus(), &p).is_err());
        let mut p = DtmPolicy::at_trigger(Celsius(100.0));
        p.hysteresis = Celsius(0.0);
        assert!(simulate(node(0.7), &virus(), &p).is_err());
    }

    #[test]
    fn result_display() {
        let policy = DtmPolicy::at_trigger(Celsius(100.0));
        let r = simulate(node(0.733), &virus(), &policy).unwrap();
        let s = format!("{r}");
        assert!(s.contains("Tmax"));
        assert!(s.contains("throttled"));
    }
}

#[cfg(test)]
mod dvfs_tests {
    use super::*;
    use crate::package::Package;
    use crate::rc::{ThermalRc, DEFAULT_HEAT_CAPACITY_J_PER_C};
    use crate::workload::WorkloadTrace;
    use np_units::{Seconds, ThermalResistance, Watts};

    fn node(theta: f64) -> ThermalRc {
        ThermalRc::new(
            Package::new(ThermalResistance(theta), Celsius(45.0)),
            DEFAULT_HEAT_CAPACITY_J_PER_C,
        )
    }

    fn virus() -> WorkloadTrace {
        WorkloadTrace::power_virus(Watts(100.0), 50_000, Seconds(1e-4))
    }

    #[test]
    fn dvfs_mode_sheds_power_cubically() {
        assert!((ThrottleMode::Dvfs.power_factor(0.7) - 0.343).abs() < 1e-12);
        assert!((ThrottleMode::ClockGating.power_factor(0.7) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn dvfs_caps_the_virus_with_less_performance_loss() {
        // Same undersized package, same trigger: the DVFS policy throttles
        // to 0.7x speed instead of 0.5x, yet its cubic power shed still
        // holds the cap — Transmeta's pitch in the paper's Section 2.1.
        let gating = simulate(
            node(0.733),
            &virus(),
            &DtmPolicy::at_trigger(Celsius(100.0)),
        )
        .unwrap();
        let dvfs = simulate(
            node(0.733),
            &virus(),
            &DtmPolicy::dvfs_at_trigger(Celsius(100.0)),
        )
        .unwrap();
        assert!(
            dvfs.max_temperature <= Celsius(101.5),
            "{}",
            dvfs.max_temperature
        );
        assert!(gating.max_temperature <= Celsius(101.5));
        assert!(
            dvfs.performance > gating.performance,
            "DVFS {:.3} vs gating {:.3}",
            dvfs.performance,
            gating.performance
        );
    }

    #[test]
    fn dvfs_mean_power_is_lower_while_throttled() {
        let dvfs = simulate(
            node(0.733),
            &virus(),
            &DtmPolicy::dvfs_at_trigger(Celsius(100.0)),
        )
        .unwrap();
        assert!(dvfs.mean_power < Watts(100.0));
    }
}
