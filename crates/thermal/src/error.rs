//! Error type for thermal modeling.

use np_units::convergence::Convergence;
use np_units::guard::NonFinite;
use np_units::math::SolveError;
use std::fmt;

/// Error returned by thermal models and simulations.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// A parameter is unphysical (documented in the message).
    BadParameter(&'static str),
    /// A numeric input was NaN, infinite, or outside its physical domain.
    NonFinite(NonFinite),
    /// The electro-thermal fixed point diverged — thermal runaway: leakage
    /// heating raises leakage faster than the package can shed it.
    ThermalRunaway {
        /// Temperature (°C) at which the iteration was abandoned.
        last_temp: f64,
        /// What the fixed-point iteration did before it was abandoned.
        diag: Convergence,
    },
    /// An iterative thermal solve exhausted its budget without settling.
    NoConvergence {
        /// What the iteration did before giving up.
        diag: Convergence,
    },
    /// A numerical solve failed.
    Solve(SolveError),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::BadParameter(m) => write!(f, "bad parameter: {m}"),
            ThermalError::NonFinite(e) => write!(f, "bad input: {e}"),
            ThermalError::ThermalRunaway { last_temp, diag } => {
                write!(
                    f,
                    "thermal runaway: no stable junction temperature (reached {last_temp:.0} °C; {diag})"
                )
            }
            ThermalError::NoConvergence { diag } => {
                write!(f, "thermal solve stalled: {diag}")
            }
            ThermalError::Solve(e) => write!(f, "thermal solve failed: {e}"),
        }
    }
}

impl std::error::Error for ThermalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ThermalError::Solve(e) => Some(e),
            ThermalError::NonFinite(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for ThermalError {
    fn from(e: SolveError) -> Self {
        ThermalError::Solve(e)
    }
}

impl From<NonFinite> for ThermalError {
    fn from(e: NonFinite) -> Self {
        ThermalError::NonFinite(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_units::convergence::{Breakdown, ResidualTrace};

    #[test]
    fn display_variants() {
        assert!(format!("{}", ThermalError::BadParameter("x")).contains("bad parameter"));
        let mut trace = ResidualTrace::new();
        trace.record(4.0);
        let runaway = ThermalError::ThermalRunaway {
            last_temp: 160.0,
            diag: trace.diagnostic(Breakdown::DomainEscape {
                value: 260.0,
                bound: 250.0,
            }),
        };
        let s = format!("{runaway}");
        assert!(s.contains("runaway"), "{s}");
        assert!(s.contains("escaped"), "{s}");
        let stalled = ThermalError::NoConvergence {
            diag: trace.diagnostic(Breakdown::IterationBudget),
        };
        assert!(format!("{stalled}").contains("stalled"));
        let bad: ThermalError = np_units::guard::finite(f64::NAN, "P", "t")
            .unwrap_err()
            .into();
        assert!(format!("{bad}").contains("bad input"));
    }
}
