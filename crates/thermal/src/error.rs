//! Error type for thermal modeling.

use np_units::math::SolveError;
use std::fmt;

/// Error returned by thermal models and simulations.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// A parameter is unphysical (documented in the message).
    BadParameter(&'static str),
    /// The electro-thermal fixed point diverged — thermal runaway: leakage
    /// heating raises leakage faster than the package can shed it.
    ThermalRunaway {
        /// Temperature (°C) at which the iteration was abandoned.
        last_temp: f64,
    },
    /// A numerical solve failed.
    Solve(SolveError),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::BadParameter(m) => write!(f, "bad parameter: {m}"),
            ThermalError::ThermalRunaway { last_temp } => {
                write!(
                    f,
                    "thermal runaway: no stable junction temperature (reached {last_temp:.0} °C)"
                )
            }
            ThermalError::Solve(e) => write!(f, "thermal solve failed: {e}"),
        }
    }
}

impl std::error::Error for ThermalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ThermalError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for ThermalError {
    fn from(e: SolveError) -> Self {
        ThermalError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(format!("{}", ThermalError::BadParameter("x")).contains("bad parameter"));
        assert!(
            format!("{}", ThermalError::ThermalRunaway { last_temp: 160.0 }).contains("runaway")
        );
    }
}
