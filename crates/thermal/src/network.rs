//! Two-pole thermal network: die + heatsink.
//!
//! The single-node model in [`crate::rc`] lumps everything behind one
//! θja; real packages have a fast pole (the die/spreader, milliseconds)
//! in front of a slow pole (the heatsink mass, tens of seconds). The
//! split is what makes dynamic thermal management interesting: the die
//! can overshoot toward its *local* steady state long before the sink
//! warms, so the sensor must react on the fast time constant — exactly
//! the Pentium 4 arrangement the paper describes.

use crate::error::ThermalError;
use np_units::{Celsius, Seconds, ThermalResistance, Watts};

/// Die/spreader heat capacity, J/°C (as in [`crate::rc`]).
pub const DIE_HEAT_CAPACITY: f64 = 0.08;

/// Heatsink heat capacity, J/°C — a few hundred grams of aluminium.
pub const SINK_HEAT_CAPACITY: f64 = 250.0;

/// A die node coupled to a heatsink node coupled to ambient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoNodeThermal {
    /// Junction-to-sink resistance (θjc + interface).
    pub r_die_sink: ThermalResistance,
    /// Sink-to-ambient resistance.
    pub r_sink_ambient: ThermalResistance,
    /// Ambient temperature.
    pub t_ambient: Celsius,
    /// Current die temperature.
    pub t_die: Celsius,
    /// Current heatsink temperature.
    pub t_sink: Celsius,
    /// Die heat capacity, J/°C.
    pub c_die: f64,
    /// Sink heat capacity, J/°C.
    pub c_sink: f64,
}

impl TwoNodeThermal {
    /// Splits a total θja into the standard ~30/70 junction-to-sink /
    /// sink-to-ambient partition, starting at ambient.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive θja.
    pub fn from_theta_ja(
        theta_ja: ThermalResistance,
        t_ambient: Celsius,
    ) -> Result<Self, ThermalError> {
        if !(theta_ja.0 > 0.0) {
            return Err(ThermalError::BadParameter("θja must be positive"));
        }
        Ok(Self {
            r_die_sink: theta_ja * 0.3,
            r_sink_ambient: theta_ja * 0.7,
            t_ambient,
            t_die: t_ambient,
            t_sink: t_ambient,
            c_die: DIE_HEAT_CAPACITY,
            c_sink: SINK_HEAT_CAPACITY,
        })
    }

    /// The total junction-to-ambient resistance.
    pub fn theta_ja(&self) -> ThermalResistance {
        self.r_die_sink + self.r_sink_ambient
    }

    /// The fast (die) time constant.
    pub fn die_time_constant(&self) -> Seconds {
        Seconds(self.r_die_sink.0 * self.c_die)
    }

    /// The slow (sink) time constant.
    pub fn sink_time_constant(&self) -> Seconds {
        Seconds(self.r_sink_ambient.0 * self.c_sink)
    }

    /// Steady-state die temperature at constant dissipation.
    pub fn steady_state(&self, power: Watts) -> Celsius {
        self.t_ambient + self.theta_ja() * power
    }

    /// Advances both nodes by `dt` at constant dissipation `power`,
    /// sub-stepping for stability, and returns the new die temperature.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive step.
    pub fn step(&mut self, power: Watts, dt: Seconds) -> Celsius {
        assert!(dt.0 > 0.0, "step must be positive");
        // Explicit Euler is stable below the fastest time constant; cap
        // the internal step at a tenth of it.
        let h_max = self.die_time_constant().0 / 10.0;
        let steps = (dt.0 / h_max).ceil().max(1.0) as usize;
        let h = dt.0 / steps as f64;
        for _ in 0..steps {
            let q_die_sink = (self.t_die - self.t_sink).0 / self.r_die_sink.0;
            let q_sink_amb = (self.t_sink - self.t_ambient).0 / self.r_sink_ambient.0;
            self.t_die += Celsius((power.0 - q_die_sink) * h / self.c_die);
            self.t_sink += Celsius((q_die_sink - q_sink_amb) * h / self.c_sink);
        }
        self.t_die
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> TwoNodeThermal {
        TwoNodeThermal::from_theta_ja(ThermalResistance(0.8), Celsius(45.0)).unwrap()
    }

    #[test]
    fn split_preserves_theta_ja() {
        let n = net();
        assert!((n.theta_ja().0 - 0.8).abs() < 1e-12);
    }

    #[test]
    fn poles_are_separated_by_orders_of_magnitude() {
        let n = net();
        assert!(n.sink_time_constant().0 > 1000.0 * n.die_time_constant().0);
    }

    #[test]
    fn die_rides_the_fast_pole() {
        // After a few die time-constants the die is hot relative to its
        // (still cold) sink, far below the final steady state.
        let mut n = net();
        let p = Watts(100.0);
        let tau_die = n.die_time_constant();
        for _ in 0..50 {
            n.step(p, Seconds(tau_die.0 / 5.0));
        }
        let local_target = n.t_sink + n.r_die_sink * p;
        assert!(
            (n.t_die - local_target).abs().0 < 1.0,
            "die near its local target"
        );
        assert!(
            n.t_die < n.steady_state(p) - Celsius(10.0),
            "sink still cold"
        );
    }

    #[test]
    fn long_run_reaches_global_steady_state() {
        let mut n = net();
        let p = Watts(80.0);
        // Integrate several sink time constants.
        let tau = n.sink_time_constant();
        for _ in 0..50 {
            n.step(p, Seconds(tau.0 / 5.0));
        }
        let expect = n.steady_state(p);
        assert!(
            (n.t_die - expect).abs().0 < 0.5,
            "die {} vs steady {}",
            n.t_die,
            expect
        );
        // And it matches the single-node model's endpoint.
        assert!((expect.0 - (45.0 + 0.8 * 80.0)).abs() < 1e-9);
    }

    #[test]
    fn cooling_relaxes_back_to_ambient() {
        let mut n = net();
        n.t_die = Celsius(100.0);
        n.t_sink = Celsius(80.0);
        let tau = n.sink_time_constant();
        for _ in 0..60 {
            n.step(Watts(0.0), Seconds(tau.0 / 5.0));
        }
        assert!((n.t_die.0 - 45.0).abs() < 0.5);
        assert!((n.t_sink.0 - 45.0).abs() < 0.5);
    }

    #[test]
    fn bad_theta_rejected() {
        assert!(TwoNodeThermal::from_theta_ja(ThermalResistance(0.0), Celsius(45.0)).is_err());
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        let mut n = net();
        let _ = n.step(Watts(1.0), Seconds(0.0));
    }
}
