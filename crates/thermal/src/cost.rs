//! Cooling-cost model (Section 2.1).
//!
//! The paper's anchors: "current vapor compression based refrigeration
//! techniques are expensive, on the order of $1 per watt cooled", and
//! "Intel engineers found that a rise in power consumption from 65 to 75 W
//! would triple cooling costs due to the need for additional heat pipe
//! technology". The model is a piecewise-linear cost curve with a step
//! region between the passive-heatsink and heat-pipe regimes, continuing
//! into refrigeration.

use np_units::Watts;

/// Upper end of the plain heatsink-and-fan regime (the paper's 65 W).
pub const HEATSINK_LIMIT: Watts = Watts(65.0);

/// Upper end of the heat-pipe step region (the paper's 75 W).
pub const HEATPIPE_KNEE: Watts = Watts(75.0);

/// Power beyond which active refrigeration is required.
pub const REFRIGERATION_LIMIT: Watts = Watts(140.0);

/// $/W of the baseline heatsink + fan solution.
pub const HEATSINK_DOLLARS_PER_WATT: f64 = 0.46;

/// $/W of vapor-compression refrigeration (the paper's "$1 per watt
/// cooled"), charged on the full dissipation.
pub const REFRIGERATION_DOLLARS_PER_WATT: f64 = 1.0;

/// The cooling regime a power level lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoolingRegime {
    /// Heatsink and fan.
    Heatsink,
    /// Heat pipes on top of the heatsink (the 65→75 W step).
    HeatPipe,
    /// Vapor-compression refrigeration.
    Refrigeration,
}

/// The regime for a given sustained dissipation.
pub fn regime(power: Watts) -> CoolingRegime {
    if power <= HEATSINK_LIMIT {
        CoolingRegime::Heatsink
    } else if power <= REFRIGERATION_LIMIT {
        CoolingRegime::HeatPipe
    } else {
        CoolingRegime::Refrigeration
    }
}

/// Cooling cost in dollars for a sustained dissipation.
///
/// Piecewise: linear to 65 W; tripling between 65 and 75 W (the heat-pipe
/// step); continued heat-pipe slope to 140 W; refrigeration at $1/W of
/// *total* power beyond, plus the hardware base.
///
/// # Panics
///
/// Panics on negative power.
pub fn cooling_cost_dollars(power: Watts) -> f64 {
    assert!(power.0 >= 0.0, "power must be non-negative");
    let base_at_limit = HEATSINK_DOLLARS_PER_WATT * HEATSINK_LIMIT.0; // ~$30
    match regime(power) {
        CoolingRegime::Heatsink => HEATSINK_DOLLARS_PER_WATT * power.0,
        CoolingRegime::HeatPipe => {
            if power <= HEATPIPE_KNEE {
                // Cost triples across the 65 -> 75 W band.
                let frac = (power - HEATSINK_LIMIT) / (HEATPIPE_KNEE - HEATSINK_LIMIT);
                base_at_limit * (1.0 + 2.0 * frac)
            } else {
                // Beyond the knee: heat-pipe escalation at ~$2/W.
                3.0 * base_at_limit + 2.0 * (power - HEATPIPE_KNEE).0
            }
        }
        CoolingRegime::Refrigeration => {
            let heatpipe_at_limit =
                3.0 * base_at_limit + 2.0 * (REFRIGERATION_LIMIT - HEATPIPE_KNEE).0;
            heatpipe_at_limit + REFRIGERATION_DOLLARS_PER_WATT * power.0
        }
    }
}

/// The paper's DTM saving: cooling-cost difference between packaging for
/// the theoretical worst case and for the effective worst case
/// (`fraction ×` theoretical).
pub fn dtm_cooling_saving_dollars(theoretical: Watts, effective_fraction: f64) -> f64 {
    cooling_cost_dollars(theoretical) - cooling_cost_dollars(theoretical * effective_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_triples_from_65_to_75w() {
        let c65 = cooling_cost_dollars(Watts(65.0));
        let c75 = cooling_cost_dollars(Watts(75.0));
        assert!((c75 / c65 - 3.0).abs() < 1e-9, "{c65} -> {c75}");
    }

    #[test]
    fn cost_is_monotone() {
        let mut prev = -1.0;
        for p in 0..200 {
            let c = cooling_cost_dollars(Watts(p as f64));
            assert!(c >= prev, "cost must not decrease ({p} W)");
            prev = c;
        }
    }

    #[test]
    fn regimes_partition_the_axis() {
        assert_eq!(regime(Watts(40.0)), CoolingRegime::Heatsink);
        assert_eq!(regime(Watts(70.0)), CoolingRegime::HeatPipe);
        assert_eq!(regime(Watts(100.0)), CoolingRegime::HeatPipe);
        assert_eq!(regime(Watts(170.0)), CoolingRegime::Refrigeration);
    }

    #[test]
    fn refrigeration_is_at_least_a_dollar_per_watt() {
        let c = cooling_cost_dollars(Watts(180.0));
        assert!(c >= 180.0);
    }

    #[test]
    fn dtm_saving_is_large_when_straddling_the_step() {
        // 100 W theoretical, 75% effective: 75 W (triple cost) vs ... the
        // saving is the height of the escalation between 75 and 100 W.
        let s = dtm_cooling_saving_dollars(Watts(100.0), 0.75);
        assert!(s > 20.0, "saving {s}");
        // No saving when both land in the flat heatsink regime.
        let s_flat = dtm_cooling_saving_dollars(Watts(40.0), 0.75);
        assert!(s_flat < 10.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_panics() {
        let _ = cooling_cost_dollars(Watts(-1.0));
    }
}
