//! Property-based tests on the thermal models.

use np_thermal::cost::cooling_cost_dollars;
use np_thermal::dtm::{simulate, DtmPolicy};
use np_thermal::package::Package;
use np_thermal::rc::{ThermalRc, DEFAULT_HEAT_CAPACITY_J_PER_C};
use np_thermal::workload::WorkloadTrace;
use np_units::{Celsius, Seconds, ThermalResistance, Watts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn eq1_round_trips(theta in 0.1..2.0f64, p in 1.0..300.0f64) {
        let pkg = Package::new(ThermalResistance(theta), Celsius(45.0));
        let tj = pkg.junction_temperature(Watts(p));
        let back = pkg.max_power(tj);
        prop_assert!((back.0 / p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cooling_cost_is_monotone(p1 in 0.0..250.0f64, dp in 0.0..50.0f64) {
        prop_assert!(cooling_cost_dollars(Watts(p1 + dp)) >= cooling_cost_dollars(Watts(p1)));
    }

    #[test]
    fn rc_step_never_overshoots_steady_state(
        theta in 0.2..2.0f64,
        p in 1.0..200.0f64,
        dt in 1e-5..1.0f64,
        steps in 1usize..200,
    ) {
        let pkg = Package::new(ThermalResistance(theta), Celsius(45.0));
        let mut node = ThermalRc::new(pkg, DEFAULT_HEAT_CAPACITY_J_PER_C);
        let t_inf = node.steady_state(Watts(p));
        for _ in 0..steps {
            let t = node.step(Watts(p), Seconds(dt));
            prop_assert!(t.0 <= t_inf.0 + 1e-9, "overshoot: {t} vs {t_inf}");
            prop_assert!(t.0 >= 45.0 - 1e-9);
        }
    }

    #[test]
    fn dtm_always_caps_near_trigger(
        theta in 0.4..1.2f64,
        p_max in 60.0..160.0f64,
        seed in 0u64..100,
    ) {
        let pkg = Package::new(ThermalResistance(theta), Celsius(45.0));
        let node = ThermalRc::new(pkg, DEFAULT_HEAT_CAPACITY_J_PER_C);
        let trace = WorkloadTrace::application(Watts(p_max), 0.75, 5_000, Seconds(1e-4), seed);
        let policy = DtmPolicy::at_trigger(Celsius(100.0));
        let throttled_ss = pkg.junction_temperature(Watts(p_max * policy.throttle_factor));
        let r = simulate(node, &trace, &policy).unwrap();
        if throttled_ss.0 <= 100.0 {
            // A 2x throttle is physically sufficient: DTM must cap.
            prop_assert!(
                r.max_temperature.0 <= 100.0 + 2.0,
                "DTM let the die reach {}",
                r.max_temperature
            );
        } else if r.max_temperature.0 > 100.0 {
            // Package too weak even throttled: DTM must at least be
            // throttling hard whenever the die is over trigger.
            prop_assert!(r.throttled_fraction > 0.1, "hot but barely throttled");
        }
        prop_assert!(r.performance > 0.0 && r.performance <= 1.0);
        prop_assert!((0.0..=1.0).contains(&r.throttled_fraction));
    }

    #[test]
    fn effective_worst_case_is_between_mean_and_peak(
        p_max in 50.0..150.0f64,
        seed in 0u64..100,
        window_ms in 1.0..200.0f64,
    ) {
        let trace = WorkloadTrace::application(Watts(p_max), 0.75, 5_000, Seconds(1e-4), seed);
        let eff = trace.effective_worst_case(Seconds(window_ms * 1e-3));
        prop_assert!(eff >= trace.mean() - Watts(1e-9));
        prop_assert!(eff <= trace.peak() + Watts(1e-9));
    }

    #[test]
    fn effective_worst_case_window_limits(seed in 0u64..100) {
        // At a one-sample window the effective worst case is the peak; at
        // the full trace duration it is the mean.
        let trace = WorkloadTrace::application(Watts(100.0), 0.75, 5_000, Seconds(1e-4), seed);
        let tiny = trace.effective_worst_case(Seconds(1e-4));
        prop_assert!((tiny.0 / trace.peak().0 - 1.0).abs() < 1e-9);
        let full = trace.effective_worst_case(trace.duration());
        prop_assert!((full.0 / trace.mean().0 - 1.0).abs() < 1e-9);
    }
}
