//! Property-based tests on the interconnect models.

use np_device::Mosfet;
use np_interconnect::elmore::RcLine;
use np_interconnect::inductance::{
    coupled_noise, mutual_inductance_per_um, self_inductance_per_um,
};
use np_interconnect::lowswing::LowSwingLink;
use np_interconnect::repeater::{insert_repeaters, DriverTech};
use np_interconnect::wire::WireGeometry;
use np_roadmap::TechNode;
use np_units::{Microns, Seconds, Volts};
use proptest::prelude::*;

fn any_node() -> impl Strategy<Value = TechNode> {
    prop::sample::select(TechNode::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wire_rc_scales_linearly_with_length(node in any_node(), len in 100.0..50_000.0f64, k in 1.1..5.0f64) {
        let g = WireGeometry::top_level(node);
        let a = RcLine::new(g, Microns(len)).unwrap();
        let b = RcLine::new(g, Microns(len * k)).unwrap();
        prop_assert!((b.resistance().0 / a.resistance().0 / k - 1.0).abs() < 1e-9);
        prop_assert!((b.capacitance().0 / a.capacitance().0 / k - 1.0).abs() < 1e-9);
    }

    #[test]
    fn widening_helps_resistance_and_costs_area(node in any_node(), f in 1.1..30.0f64) {
        let g = WireGeometry::top_level(node);
        let wide = g.widened(f).unwrap();
        prop_assert!(wide.resistance_per_micron().0 < g.resistance_per_micron().0);
        prop_assert!(wide.pitch().0 > g.pitch().0);
    }

    #[test]
    fn repeated_delay_beats_unbuffered_beyond_critical_length(
        node in any_node(),
        len in 2_000.0..40_000.0f64,
    ) {
        let dev = Mosfet::for_node(node).unwrap();
        let tech = DriverTech::from_device(&dev, node.params().vdd).unwrap();
        let line = RcLine::new(WireGeometry::top_level(node), Microns(len)).unwrap();
        let d = insert_repeaters(&line, &tech).unwrap();
        // Near the first-insertion boundary the win is marginal; deep in
        // the repeated regime it must be decisive.
        if d.count > 4 {
            prop_assert!(d.total_delay < line.intrinsic_delay());
        }
        prop_assert!(d.spacing.0 * d.count as f64 >= line.length.0 * 0.999);
    }

    #[test]
    fn lowswing_energy_scales_with_swing(
        node in prop::sample::select(vec![TechNode::N180, TechNode::N130, TechNode::N100, TechNode::N70]),
        frac in 0.06..0.5f64,
    ) {
        let p = node.params();
        let line = RcLine::new(WireGeometry::top_level(node), Microns(5_000.0)).unwrap();
        if let Ok(link) = LowSwingLink::with_swing(line, p.vdd, p.vdd * frac) {
            let line2 = RcLine::new(WireGeometry::top_level(node), Microns(5_000.0)).unwrap();
            let half = LowSwingLink::with_swing(line2, p.vdd, p.vdd * frac * 0.5);
            if let Ok(half) = half {
                let ratio = link.energy_per_transition() / half.energy_per_transition();
                prop_assert!((ratio - 2.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn inductances_are_positive_and_mutual_below_self(
        node in any_node(),
        sep_tracks in 1.0..20.0f64,
    ) {
        let g = WireGeometry::top_level(node);
        let l = self_inductance_per_um(&g);
        let m = mutual_inductance_per_um(&g, Microns(sep_tracks * g.pitch().0));
        prop_assert!(l > 0.0 && m > 0.0);
        prop_assert!(m < l, "mutual must stay below self inductance");
    }

    #[test]
    fn coupled_noise_is_linear_in_aggressor(
        node in any_node(),
        i in 0.001..0.1f64,
        k in 1.1..5.0f64,
    ) {
        let g = WireGeometry::top_level(node);
        let t = Seconds::from_pico(50.0);
        let a = coupled_noise(&g, Microns(2.0), Microns(1_000.0), i, t).unwrap();
        let b = coupled_noise(&g, Microns(2.0), Microns(1_000.0), i * k, t).unwrap();
        prop_assert!((b.0 / a.0 / k - 1.0).abs() < 1e-9);
    }

    #[test]
    fn swing_below_receiver_floor_always_rejected(v in 0.1..0.39f64) {
        // 10% of any supply below 0.4 V is under the 40 mV sensitivity.
        let line =
            RcLine::new(WireGeometry::top_level(TechNode::N35), Microns(1_000.0)).unwrap();
        prop_assert!(LowSwingLink::new(line, Volts(v)).is_err());
    }
}
