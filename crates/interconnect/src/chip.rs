//! Node-by-node comparison of global signaling strategies (experiment E2).
//!
//! Combines the repeater census with the low-swing alternative: what would
//! the chip's global communication cost if the switched top-level wiring
//! moved to differential low-swing links?

use crate::elmore::RcLine;
use crate::error::InterconnectError;
use crate::lowswing::{LowSwingLink, DIFFERENTIAL_AREA_FACTOR};
use crate::repeater::{repeater_census, DriverTech, GLOBAL_ACTIVITY};
use crate::wire::WireGeometry;
use np_device::Mosfet;
use np_roadmap::TechNode;
use np_units::{Microns, Watts};
use std::fmt;

/// Comparative report for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalSignalingReport {
    /// The node surveyed.
    pub node: TechNode,
    /// Total switched global wire length.
    pub wire_length: Microns,
    /// Repeaters needed under the full-swing CMOS paradigm.
    pub repeater_count: usize,
    /// Full-swing repeated-signaling power.
    pub repeated_power: Watts,
    /// Power if the same wiring moves to differential low-swing links.
    pub lowswing_power: Watts,
    /// Routing-area multiplier paid for the differential pairs.
    pub area_factor: f64,
}

impl GlobalSignalingReport {
    /// The power saving factor of the low-swing alternative.
    pub fn power_saving(&self) -> f64 {
        self.repeated_power / self.lowswing_power
    }
}

impl fmt::Display for GlobalSignalingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.1} m global wire, {} repeaters, {:.1} full-swing vs {:.1} low-swing ({:.1}x saving, {:.1}x area)",
            self.node,
            self.wire_length.0 / 1e6,
            self.repeater_count,
            self.repeated_power,
            self.lowswing_power,
            self.power_saving(),
            self.area_factor,
        )
    }
}

/// Builds the comparison for one node.
///
/// # Errors
///
/// Propagates device and link-model errors (e.g. 10 % swing dropping below
/// receiver sensitivity at very low supplies).
pub fn global_signaling_report(node: TechNode) -> Result<GlobalSignalingReport, InterconnectError> {
    let census = repeater_census(node)?;
    let p = node.params();
    let dev = Mosfet::for_node(node)?;
    let _tech = DriverTech::from_device(&dev, p.vdd)?;
    // Low-swing energy per micron from a representative 1 cm link.
    let probe = RcLine::new(WireGeometry::top_level(node), Microns(10_000.0))?;
    let link = LowSwingLink::new(probe, p.vdd)?;
    let energy_per_um = link.energy_per_transition() / 10_000.0;
    let lowswing_power =
        Watts(GLOBAL_ACTIVITY * p.global_clock.0 * energy_per_um * census.wire_length.0);
    Ok(GlobalSignalingReport {
        node,
        wire_length: census.wire_length,
        repeater_count: census.repeater_count,
        repeated_power: census.power,
        lowswing_power,
        area_factor: DIFFERENTIAL_AREA_FACTOR,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_swing_saves_an_order_of_magnitude() {
        // 10x from the swing, ~1.5x shield credit, ~1.5x repeater-cap
        // overhead avoided: an order of magnitude, node for node.
        for node in [TechNode::N70, TechNode::N50, TechNode::N35] {
            let r = global_signaling_report(node).unwrap();
            let s = r.power_saving();
            assert!((5.0..=30.0).contains(&s), "{node}: saving {s}");
        }
    }

    #[test]
    fn repeated_power_grows_along_roadmap() {
        let p180 = global_signaling_report(TechNode::N180)
            .unwrap()
            .repeated_power;
        let p50 = global_signaling_report(TechNode::N50)
            .unwrap()
            .repeated_power;
        assert!(p50 > p180 * 2.0);
    }

    #[test]
    fn display_is_informative() {
        let r = global_signaling_report(TechNode::N50).unwrap();
        let s = format!("{r}");
        assert!(s.contains("50 nm"));
        assert!(s.contains("repeaters"));
    }
}
