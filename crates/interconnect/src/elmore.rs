//! Distributed-RC line delay (Elmore metric).
//!
//! For a line of total resistance `R` and capacitance `C` driven by a
//! source of resistance `Rd` into a load `Cl`:
//!
//! ```text
//! t_50% = 0.69·Rd·(C + Cl) + 0.38·R·C + 0.69·R·Cl
//! ```
//!
//! — the standard buffered-interconnect budget the paper's repeater
//! discussion builds on.

use crate::error::InterconnectError;
use crate::wire::WireGeometry;
use np_units::{guard, Farads, Microns, Ohms, Seconds};

/// A concrete wire segment: geometry × length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcLine {
    /// Cross-sectional geometry.
    pub geometry: WireGeometry,
    /// Segment length.
    pub length: Microns,
}

impl RcLine {
    /// A line of `length` in `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::BadParameter`] for non-positive
    /// length, [`InterconnectError::NonFinite`] for a NaN/infinite length
    /// or a geometry with a NaN/infinite cross-section.
    pub fn new(geometry: WireGeometry, length: Microns) -> Result<Self, InterconnectError> {
        let ctx = "RcLine::new";
        guard::finite(length.0, "line length", ctx)?;
        guard::all_finite(
            &[
                geometry.width.0,
                geometry.spacing.0,
                geometry.thickness.0,
                geometry.height.0,
                geometry.k_dielectric,
                geometry.resistivity,
            ],
            "wire geometry",
            ctx,
        )?;
        if !(length.0 > 0.0) {
            return Err(InterconnectError::BadParameter(
                "line length must be positive",
            ));
        }
        Ok(Self { geometry, length })
    }

    /// Total series resistance.
    pub fn resistance(&self) -> Ohms {
        Ohms(self.geometry.resistance_per_micron().0 * self.length.0)
    }

    /// Total capacitance to ground and neighbours.
    pub fn capacitance(&self) -> Farads {
        self.geometry.capacitance_per_micron() * self.length
    }

    /// 50 %-point delay with the given driver resistance and far-end load.
    pub fn elmore_delay(&self, driver: Ohms, load: Farads) -> Seconds {
        let r = self.resistance().0;
        let c = self.capacitance().0;
        Seconds(0.69 * driver.0 * (c + load.0) + 0.38 * r * c + 0.69 * r * load.0)
    }

    /// The unbuffered wire-only delay `0.38·R·C` — quadratic in length,
    /// the reason repeaters exist.
    pub fn intrinsic_delay(&self) -> Seconds {
        Seconds(0.38 * self.resistance().0 * self.capacitance().0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_roadmap::TechNode;

    fn line(len_um: f64) -> RcLine {
        RcLine::new(WireGeometry::top_level(TechNode::N50), Microns(len_um)).expect("valid")
    }

    #[test]
    fn intrinsic_delay_is_quadratic_in_length() {
        let d1 = line(1_000.0).intrinsic_delay();
        let d2 = line(2_000.0).intrinsic_delay();
        assert!((d2.0 / d1.0 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn cross_chip_wire_is_multi_nanosecond_unbuffered() {
        // A 2 cm unbuffered minimum-pitch global wire at 50 nm is far too
        // slow for a 3 GHz global clock — the Section 2.2 problem.
        let d = line(20_000.0).intrinsic_delay();
        assert!(d.as_nano() > 1.0, "got {} ns", d.as_nano());
    }

    #[test]
    fn elmore_includes_driver_and_load_terms() {
        let l = line(1_000.0);
        let bare = l.elmore_delay(Ohms(0.0), Farads(0.0));
        assert!((bare.0 - l.intrinsic_delay().0).abs() < 1e-18);
        let driven = l.elmore_delay(Ohms(1_000.0), Farads::from_femto(50.0));
        assert!(driven > bare);
    }

    #[test]
    fn zero_length_rejected() {
        assert!(RcLine::new(WireGeometry::top_level(TechNode::N50), Microns(0.0)).is_err());
    }

    #[test]
    fn unscaled_wiring_is_faster() {
        let scaled = RcLine::new(WireGeometry::top_level(TechNode::N35), Microns(10_000.0))
            .unwrap()
            .intrinsic_delay();
        let unscaled = RcLine::new(
            WireGeometry::top_level_unscaled(TechNode::N35),
            Microns(10_000.0),
        )
        .unwrap()
        .intrinsic_delay();
        assert!(unscaled.0 < scaled.0 / 3.0);
    }
}
