//! Optimal CMOS repeater insertion and the chip-level repeater census.
//!
//! Section 2.2: "the current signaling paradigm of inserting large CMOS
//! buffers along an RC line … requires over 50 W of power in the nanometer
//! regime", with "nearly 10⁶ \[repeaters\] required at 50-nm compared to
//! about 10⁴ in a large 180 nm microprocessor".
//!
//! Classic Bakoglu sizing: for a line with per-length `r_w`, `c_w` and a
//! driver technology with unit resistance `r_d` (Ω·µm) and gate cap `c_0`
//! (F/µm),
//!
//! ```text
//! segment length  l_opt = sqrt(2·0.69·r_d·c_0 / (0.38·r_w·c_w))
//! repeater width  W_opt = sqrt(r_d·c_w / (r_w·c_0))   [µm]
//! ```

use crate::elmore::RcLine;
use crate::error::InterconnectError;
use crate::wire::WireGeometry;
use np_device::Mosfet;
use np_roadmap::TechNode;
use np_units::{guard, Farads, Microns, Ohms, Seconds, Volts, Watts};

/// Repeater drain (self-load) capacitance relative to its gate cap.
pub const DRAIN_CAP_FRACTION: f64 = 1.0;

/// Fraction of top-level routing tracks carrying switching global signals.
pub const GLOBAL_UTILIZATION: f64 = 0.3;

/// Default switching activity of global wires.
pub const GLOBAL_ACTIVITY: f64 = 0.15;

/// The driver strength of a technology, per micron of repeater width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverTech {
    /// Effective switching resistance × width, Ω·µm.
    pub rd_ohm_um: f64,
    /// Gate capacitance per micron of width.
    pub c0_per_um: f64,
    /// Supply the repeaters switch at.
    pub vdd: Volts,
}

impl DriverTech {
    /// Extracts the driver figure of merit from a calibrated device at
    /// supply `vdd`: `r_d = 0.69⁻¹·k_d·Vdd / Ion`.
    ///
    /// # Errors
    ///
    /// Propagates drive-model errors.
    pub fn from_device(dev: &Mosfet, vdd: Volts) -> Result<Self, InterconnectError> {
        guard::finite(vdd.0, "Vdd", "DriverTech::from_device")?;
        let ion = dev.ion(vdd)?; // µA/µm
        Ok(DriverTech {
            rd_ohm_um: vdd.0 / (ion.0 * 1e-6),
            c0_per_um: dev.gate_cap_per_um().0,
            vdd,
        })
    }
}

/// An optimally repeated long wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RepeaterDesign {
    /// Number of repeaters along the line.
    pub count: usize,
    /// Repeater width in microns.
    pub width: Microns,
    /// Segment length between repeaters.
    pub spacing: Microns,
    /// End-to-end 50 % delay of the repeated line.
    pub total_delay: Seconds,
    /// Energy drawn from the supply per full transition of the line.
    pub energy_per_transition: f64,
}

impl RepeaterDesign {
    /// Average signal velocity on the repeated line, in µm/ps — repeaters
    /// linearize the otherwise quadratic wire delay.
    pub fn velocity_um_per_ps(&self, line_length: Microns) -> f64 {
        line_length.0 / self.total_delay.as_pico()
    }
}

/// Optimally inserts repeaters in `line` using drivers from `tech`.
///
/// # Errors
///
/// Returns [`InterconnectError::BadParameter`] for unphysical driver
/// parameters.
pub fn insert_repeaters(
    line: &RcLine,
    tech: &DriverTech,
) -> Result<RepeaterDesign, InterconnectError> {
    let ctx = "insert_repeaters";
    guard::finite(tech.rd_ohm_um, "driver resistance", ctx)?;
    guard::finite(tech.c0_per_um, "driver gate cap", ctx)?;
    guard::finite(tech.vdd.0, "Vdd", ctx)?;
    if !(tech.rd_ohm_um > 0.0 && tech.c0_per_um > 0.0) {
        return Err(InterconnectError::BadParameter(
            "driver parameters must be positive",
        ));
    }
    let rw = line.geometry.resistance_per_micron().0; // Ω/µm
    let cw = line.geometry.capacitance_per_micron().0; // F/µm
    let c_gate = tech.c0_per_um * (1.0 + DRAIN_CAP_FRACTION);
    let l_opt = (2.0 * 0.69 * tech.rd_ohm_um * c_gate / (0.38 * rw * cw)).sqrt();
    let w_opt = (tech.rd_ohm_um * cw / (rw * tech.c0_per_um)).sqrt();
    let count = (line.length.0 / l_opt).ceil().max(1.0) as usize;
    let seg_len = line.length.0 / count as f64;
    let seg = RcLine::new(line.geometry, Microns(seg_len))?;
    let driver_r = Ohms(tech.rd_ohm_um / w_opt);
    let load = Farads(w_opt * tech.c0_per_um);
    let seg_delay = seg.elmore_delay(driver_r, load);
    let wire_energy = cw * line.length.0 * tech.vdd.0 * tech.vdd.0;
    let repeater_energy = count as f64 * w_opt * c_gate * tech.vdd.0 * tech.vdd.0;
    Ok(RepeaterDesign {
        count,
        width: Microns(w_opt),
        spacing: Microns(seg_len),
        total_delay: seg_delay * count as f64,
        energy_per_transition: wire_energy + repeater_energy,
    })
}

/// The chip-level repeater census of one node: total global wire length,
/// repeater count, and the power burned pacing it at the global clock.
#[derive(Debug, Clone, PartialEq)]
pub struct RepeaterCensus {
    /// The node surveyed.
    pub node: TechNode,
    /// Total switched top-level wire length.
    pub wire_length: Microns,
    /// Repeaters on that wiring.
    pub repeater_count: usize,
    /// Optimal repeater spacing.
    pub spacing: Microns,
    /// Total dissipation at the node's global clock and
    /// [`GLOBAL_ACTIVITY`].
    pub power: Watts,
}

/// Power density of repeater cluster blocks (Section 2.2, footnote 2:
/// "Repeater clusters constrain repeater placement to ease floorplanning
/// … Resulting power densities can exceed 100 W/cm²").
///
/// Repeaters are gathered into cluster blocks that together occupy
/// `block_fraction` of the die; the repeater switching power concentrates
/// there (independent of the cluster pitch, since blocks scale with their
/// catchments).
///
/// # Errors
///
/// Propagates census errors; rejects a block fraction outside `(0, 1]`.
pub fn cluster_power_density(
    node: TechNode,
    block_fraction: f64,
) -> Result<np_units::WattsPerCm2, InterconnectError> {
    if !(block_fraction > 0.0 && block_fraction <= 1.0) {
        return Err(InterconnectError::BadParameter(
            "block fraction must be in (0, 1]",
        ));
    }
    let census = repeater_census(node)?;
    // Repeater (gate + drain cap) share of the census power, spread over
    // the die, then concentrated into the cluster blocks.
    let p = node.params();
    let dev = Mosfet::for_node(node)?;
    let tech = DriverTech::from_device(&dev, p.vdd)?;
    let probe = RcLine::new(WireGeometry::top_level(node), Microns(10_000.0))?;
    let design = insert_repeaters(&probe, &tech)?;
    let rep_cap = design.width.0 * tech.c0_per_um * (1.0 + DRAIN_CAP_FRACTION);
    let rep_energy = rep_cap * p.vdd.0 * p.vdd.0;
    let rep_power = GLOBAL_ACTIVITY * p.global_clock.0 * rep_energy * census.repeater_count as f64;
    let die_cm2 = p.die_area.as_cm2();
    let uniform_density = rep_power / die_cm2;
    Ok(np_units::WattsPerCm2(uniform_density / block_fraction))
}

/// Total switched global wire length of a node: utilization × global
/// layers × die area / routing pitch.
pub fn global_wire_length(node: TechNode, geometry: &WireGeometry) -> Microns {
    let p = node.params();
    let layers = (p.wiring_levels as f64 - 5.0).max(1.0);
    let area_um2 = p.die_area.0 * 1e6;
    Microns(GLOBAL_UTILIZATION * layers * area_um2 / geometry.pitch().0)
}

/// Runs the census for `node` with its scaled minimum-pitch top wiring.
///
/// # Errors
///
/// Propagates device-calibration errors.
pub fn repeater_census(node: TechNode) -> Result<RepeaterCensus, InterconnectError> {
    repeater_census_with(node, WireGeometry::top_level(node))
}

/// Runs the census with an explicit wire geometry (e.g. the unscaled
/// wiring of ref. \[9\]).
///
/// # Errors
///
/// Propagates device-calibration errors.
pub fn repeater_census_with(
    node: TechNode,
    geometry: WireGeometry,
) -> Result<RepeaterCensus, InterconnectError> {
    let p = node.params();
    let dev = Mosfet::for_node(node)?;
    let tech = DriverTech::from_device(&dev, p.vdd)?;
    let total = global_wire_length(node, &geometry);
    // Census on a representative 1 cm wire, scaled to the total length.
    let probe = RcLine::new(geometry, Microns(10_000.0))?;
    let design = insert_repeaters(&probe, &tech)?;
    let count = (total.0 / design.spacing.0).round() as usize;
    let energy_per_um = design.energy_per_transition / probe.length.0;
    let f = p.global_clock.0;
    let power = Watts(GLOBAL_ACTIVITY * f * energy_per_um * total.0);
    Ok(RepeaterCensus {
        node,
        wire_length: total,
        repeater_count: count,
        spacing: design.spacing,
        power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech(node: TechNode) -> DriverTech {
        let dev = Mosfet::for_node(node).unwrap();
        DriverTech::from_device(&dev, node.params().vdd).unwrap()
    }

    fn cm_line(node: TechNode) -> RcLine {
        RcLine::new(WireGeometry::top_level(node), Microns(10_000.0)).unwrap()
    }

    #[test]
    fn repeated_line_beats_unbuffered() {
        let node = TechNode::N50;
        let line = cm_line(node);
        let design = insert_repeaters(&line, &tech(node)).unwrap();
        assert!(design.total_delay < line.intrinsic_delay());
        assert!(design.count > 1);
    }

    #[test]
    fn repeated_delay_is_linear_in_length() {
        let node = TechNode::N50;
        let t = tech(node);
        let d1 = insert_repeaters(&cm_line(node), &t).unwrap();
        let line2 = RcLine::new(WireGeometry::top_level(node), Microns(20_000.0)).unwrap();
        let d2 = insert_repeaters(&line2, &t).unwrap();
        let ratio = d2.total_delay.0 / d1.total_delay.0;
        assert!((ratio - 2.0).abs() < 0.1, "got {ratio}");
    }

    #[test]
    fn spacing_shrinks_with_scaling() {
        let s180 = insert_repeaters(&cm_line(TechNode::N180), &tech(TechNode::N180))
            .unwrap()
            .spacing;
        let s50 = insert_repeaters(&cm_line(TechNode::N50), &tech(TechNode::N50))
            .unwrap()
            .spacing;
        assert!(s50.0 < s180.0 / 2.0, "{s180} -> {s50}");
    }

    #[test]
    fn census_matches_paper_orders_of_magnitude() {
        // Section 2.2: ~10^4 repeaters at 180 nm, nearly 10^6 at 50 nm.
        let c180 = repeater_census(TechNode::N180).unwrap();
        let c50 = repeater_census(TechNode::N50).unwrap();
        assert!(
            (5_000..=100_000).contains(&c180.repeater_count),
            "180 nm count {}",
            c180.repeater_count
        );
        assert!(
            (300_000..=4_000_000).contains(&c50.repeater_count),
            "50 nm count {}",
            c50.repeater_count
        );
        assert!(
            c50.repeater_count > 20 * c180.repeater_count,
            "proliferation"
        );
    }

    #[test]
    fn nanometer_global_power_exceeds_50w() {
        // Section 2.2: "this requires over 50 W of power in the nanometer
        // regime" (full-swing repeated signaling, unscaled wiring enables
        // the clocks but the power is of this order either way).
        let c50 = repeater_census(TechNode::N50).unwrap();
        let c35 = repeater_census(TechNode::N35).unwrap();
        assert!(
            c50.power.0 > 30.0 && c50.power.0 < 200.0,
            "50 nm power {}",
            c50.power
        );
        assert!(c35.power > c50.power * 0.8, "35 nm remains costly");
        assert!(c50.power.0.max(c35.power.0) > 50.0);
    }

    #[test]
    fn unscaled_wiring_needs_fewer_repeaters() {
        let scaled = repeater_census(TechNode::N35).unwrap();
        let unscaled = repeater_census_with(
            TechNode::N35,
            WireGeometry::top_level_unscaled(TechNode::N35),
        )
        .unwrap();
        assert!(unscaled.repeater_count < scaled.repeater_count);
    }

    #[test]
    fn velocity_is_sane() {
        let node = TechNode::N70;
        let line = cm_line(node);
        let d = insert_repeaters(&line, &tech(node)).unwrap();
        let v = d.velocity_um_per_ps(line.length);
        // Repeated on-chip wires run at 50-1000 µm/ps equivalent.
        assert!((10.0..=1_000.0).contains(&v), "got {v}");
    }

    #[test]
    fn bad_driver_rejected() {
        let line = cm_line(TechNode::N70);
        let bad = DriverTech {
            rd_ohm_um: 0.0,
            c0_per_um: 1e-15,
            vdd: Volts(0.9),
        };
        assert!(insert_repeaters(&line, &bad).is_err());
    }
}

#[cfg(test)]
mod cluster_tests {
    use super::*;

    #[test]
    fn cluster_density_exceeds_100w_per_cm2_in_nanometer_regime() {
        // Footnote 2: "Resulting power densities can exceed 100 W/cm²"
        // when repeaters concentrate in cluster blocks (a few percent of
        // the area).
        let d = cluster_power_density(TechNode::N50, 0.04).unwrap();
        assert!(d.0 > 100.0, "got {d}");
        // Spread uniformly the repeaters alone are far below that.
        let uniform = cluster_power_density(TechNode::N50, 1.0).unwrap();
        assert!(uniform.0 < 100.0, "got {uniform}");
    }

    #[test]
    fn cluster_density_grows_along_roadmap() {
        // Not monotone (supply drops fight repeater proliferation), but
        // the nanometer regime sits well above "today".
        let early = cluster_power_density(TechNode::N180, 0.04).unwrap();
        let late = cluster_power_density(TechNode::N35, 0.04).unwrap();
        assert!(late.0 > 2.0 * early.0, "{} -> {}", early.0, late.0);
    }

    #[test]
    fn cluster_bad_inputs_rejected() {
        assert!(cluster_power_density(TechNode::N50, 0.0).is_err());
        assert!(cluster_power_density(TechNode::N50, 1.5).is_err());
    }
}
