//! Wire geometry and per-length R/C.
//!
//! Capacitance uses Sakurai's closed-form fit (ground plus two-neighbour
//! coupling); resistance is `ρ / (w · t)`. The paper's ref. \[9\] shows that
//! ITRS global clock targets are reachable only with *unscaled* top-level
//! wiring — [`WireGeometry::top_level_unscaled`] freezes the 180 nm global
//! geometry at every node to model that proposal.

use crate::error::InterconnectError;
use np_roadmap::TechNode;
use np_units::{guard, FaradsPerMicron, Microns, Ohms};

/// Vacuum permittivity in F/µm.
const EPS0_F_PER_UM: f64 = 8.854e-18;

/// Copper resistivity in Ω·µm (2.2 µΩ·cm).
pub const RHO_CU_OHM_UM: f64 = 2.2e-2 * 1e-6 * 1e6; // 2.2e-2 Ω·µm²/µm = Ω·µm

/// A parallel-wire geometry on one metal layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireGeometry {
    /// Trace width.
    pub width: Microns,
    /// Spacing to each neighbour.
    pub spacing: Microns,
    /// Metal thickness.
    pub thickness: Microns,
    /// Dielectric height to the plane below.
    pub height: Microns,
    /// Relative dielectric constant of the ILD stack.
    pub k_dielectric: f64,
    /// Conductor resistivity in Ω·µm.
    pub resistivity: f64,
}

impl WireGeometry {
    /// Minimum-pitch top-level (global) wiring of `node`: width = minimum
    /// top-metal width, spacing = width, thickness = aspect × width,
    /// dielectric height = width with the node's low-k stack.
    pub fn top_level(node: TechNode) -> Self {
        let p = node.params();
        let w = p.top_metal_min_width;
        // Low-k dielectrics phase in along the roadmap (4.0 -> 2.7).
        let k = match node {
            TechNode::N180 => 4.0,
            TechNode::N130 => 3.6,
            TechNode::N100 => 3.3,
            TechNode::N70 => 3.0,
            TechNode::N50 => 2.8,
            TechNode::N35 => 2.7,
        };
        WireGeometry {
            width: w,
            spacing: w,
            thickness: Microns(p.top_metal_aspect * w.0),
            height: w,
            k_dielectric: k,
            resistivity: RHO_CU_OHM_UM,
        }
    }

    /// The ref. \[9\] proposal: keep the fat 180 nm global geometry at every
    /// node (only the dielectric improves), trading routing density for
    /// global delay.
    pub fn top_level_unscaled(node: TechNode) -> Self {
        let mut g = Self::top_level(TechNode::N180);
        g.k_dielectric = Self::top_level(node).k_dielectric;
        g
    }

    /// A scaled wider trace: the same geometry with width (and thickness)
    /// multiplied by `factor` — how the power grid sizes its rails.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::BadParameter`] for a non-positive
    /// factor, [`InterconnectError::NonFinite`] for a NaN/infinite one.
    pub fn widened(&self, factor: f64) -> Result<Self, InterconnectError> {
        guard::finite(factor, "width factor", "WireGeometry::widened")?;
        if !(factor > 0.0) {
            return Err(InterconnectError::BadParameter(
                "width factor must be positive",
            ));
        }
        Ok(WireGeometry {
            width: self.width * factor,
            ..*self
        })
    }

    /// Routing pitch (width + spacing).
    pub fn pitch(&self) -> Microns {
        self.width + self.spacing
    }

    /// Series resistance per micron of length.
    ///
    /// # Panics
    ///
    /// Panics if the cross-section is not positive (malformed geometry).
    pub fn resistance_per_micron(&self) -> Ohms {
        assert!(
            self.width.0 > 0.0 && self.thickness.0 > 0.0,
            "wire cross-section must be positive"
        );
        Ohms(self.resistivity / (self.width.0 * self.thickness.0))
    }

    /// Total capacitance per micron (ground + both neighbours), Sakurai's
    /// fit.
    pub fn capacitance_per_micron(&self) -> FaradsPerMicron {
        let eps = self.k_dielectric * EPS0_F_PER_UM;
        let w = self.width.0;
        let t = self.thickness.0;
        let h = self.height.0;
        let s = self.spacing.0;
        let ground = eps * (1.15 * (w / h) + 2.80 * (t / h).powf(0.222));
        let coupling = eps
            * (0.03 * (w / h) + 0.83 * (t / h) - 0.07 * (t / h).powf(0.222))
            * (h / s).powf(1.34);
        FaradsPerMicron(ground + 2.0 * coupling)
    }

    /// Ground-plus-one-neighbour capacitance — what a shielded
    /// differential pair sees per wire.
    pub fn capacitance_shielded_per_micron(&self) -> FaradsPerMicron {
        let full = self.capacitance_per_micron().0;
        let eps = self.k_dielectric * EPS0_F_PER_UM;
        let coupling_one = (full
            - eps
                * (1.15 * (self.width.0 / self.height.0)
                    + 2.80 * (self.thickness.0 / self.height.0).powf(0.222)))
            / 2.0;
        FaradsPerMicron(full - coupling_one)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitance_is_fractions_of_ff_per_micron() {
        for node in TechNode::ALL {
            let c = WireGeometry::top_level(node).capacitance_per_micron();
            let ff = c.0 * 1e15;
            assert!((0.1..=0.6).contains(&ff), "{node}: {ff} fF/µm");
        }
    }

    #[test]
    fn resistance_grows_with_scaling() {
        let mut prev = 0.0;
        for node in TechNode::ALL {
            let r = WireGeometry::top_level(node).resistance_per_micron().0;
            assert!(r > prev, "{node}: R/µm must grow as wires shrink");
            prev = r;
        }
        // 180 nm minimum global wire: 2.2e-2/(0.8*1.6) ≈ 0.017 Ω/µm.
        let r180 = WireGeometry::top_level(TechNode::N180)
            .resistance_per_micron()
            .0;
        assert!((r180 - 0.0172).abs() < 0.002, "got {r180}");
    }

    #[test]
    fn unscaled_geometry_keeps_180nm_resistance() {
        let r_scaled = WireGeometry::top_level(TechNode::N50).resistance_per_micron();
        let r_unscaled = WireGeometry::top_level_unscaled(TechNode::N50).resistance_per_micron();
        assert!(r_unscaled.0 < r_scaled.0 / 5.0);
    }

    #[test]
    fn widening_reduces_resistance_linearly() {
        let g = WireGeometry::top_level(TechNode::N35);
        let wide = g.widened(16.0).unwrap();
        let ratio = g.resistance_per_micron().0 / wide.resistance_per_micron().0;
        assert!((ratio - 16.0).abs() < 1e-9);
    }

    #[test]
    fn widened_rejects_bad_factor() {
        let g = WireGeometry::top_level(TechNode::N35);
        assert!(g.widened(0.0).is_err());
        assert!(g.widened(-2.0).is_err());
    }

    #[test]
    fn shielding_reduces_capacitance() {
        let g = WireGeometry::top_level(TechNode::N50);
        assert!(g.capacitance_shielded_per_micron().0 < g.capacitance_per_micron().0);
        assert!(g.capacitance_shielded_per_micron().0 > 0.0);
    }

    #[test]
    fn low_k_helps() {
        let mut g = WireGeometry::top_level(TechNode::N50);
        let c_lowk = g.capacitance_per_micron().0;
        g.k_dielectric = 4.0;
        let c_sio2 = g.capacitance_per_micron().0;
        assert!(c_lowk < c_sio2);
    }

    #[test]
    fn pitch_is_width_plus_space() {
        let g = WireGeometry::top_level(TechNode::N100);
        assert!((g.pitch().0 - 1.0).abs() < 1e-12); // 0.5 + 0.5 µm
    }
}
