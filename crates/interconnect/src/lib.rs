//! # np-interconnect
//!
//! Global-signaling models for Section 2.2 of *Future Performance
//! Challenges in Nanometer Design* (Sylvester & Kaul, DAC 2001):
//!
//! * [`wire`] — per-layer wire geometry with Sakurai resistance /
//!   capacitance models, including the "unscaled top level wiring" option
//!   of ref. \[9\];
//! * [`elmore`] — distributed-RC line delay;
//! * [`repeater`] — optimal CMOS repeater insertion (size and spacing) and
//!   the chip-level repeater census behind the paper's "nearly 10⁶
//!   repeaters at 50 nm … over 50 W" claims;
//! * [`lowswing`] — differential / low-swing alternative drivers (the
//!   Alpha 21264-style buses with swing limited to 10 % of `Vdd`);
//! * [`chip`] — node-by-node comparison of the two signaling paradigms.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), np_interconnect::InterconnectError> {
//! use np_interconnect::chip::global_signaling_report;
//! use np_roadmap::TechNode;
//!
//! let rep = global_signaling_report(TechNode::N50)?;
//! assert!(rep.repeater_count > 100_000, "repeater proliferation");
//! assert!(rep.lowswing_power < rep.repeated_power, "low swing saves power");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chip;
pub mod crosstalk;
pub mod elmore;
mod error;
pub mod inductance;
pub mod lowswing;
pub mod repeater;
pub mod wire;

pub use error::InterconnectError;
pub use wire::WireGeometry;
