//! Low-swing and differential global signaling (Section 2.2).
//!
//! "The Alpha 21264 uses differential low-swing buses … worst-case power
//! for these buses was reduced significantly by limiting the voltage swing
//! to 10 % of Vdd." Energy per transition of a reduced-swing driver fed
//! from the full rail is `C·Vswing·Vdd` (one `Vswing` charge transferred
//! across the full supply), a ~10× saving at 10 % swing. Differential
//! routing "increases routing area, but the increase may be less than the
//! expected factor of 2" because long full-swing lines would need shield
//! wires anyway.

use crate::elmore::RcLine;
use crate::error::InterconnectError;
use crate::repeater::DriverTech;
use np_units::{guard, Farads, Microns, Ohms, Seconds, Volts, Watts};

/// Default swing as a fraction of `Vdd` (the Alpha 21264 figure).
pub const DEFAULT_SWING_FRACTION: f64 = 0.1;

/// Smallest swing a practical sense-amplifier receiver resolves reliably.
pub const MIN_RESOLVABLE_SWING: Volts = Volts(0.04);

/// Receiver (sense-amp) delay in picoseconds — a fixed overhead per link.
pub const RECEIVER_DELAY_PS: f64 = 60.0;

/// Routing-area factor of a differential pair relative to a single-ended
/// full-swing wire *with its shield* ("less than the expected factor
/// of 2").
pub const DIFFERENTIAL_AREA_FACTOR: f64 = 1.6;

/// A differential low-swing point-to-point link.
#[derive(Debug, Clone, PartialEq)]
pub struct LowSwingLink {
    /// The (per-wire) line.
    pub line: RcLine,
    /// Voltage swing on the wires.
    pub swing: Volts,
    /// Full supply that sources the swing current.
    pub vdd: Volts,
}

impl LowSwingLink {
    /// A link over `line` at the default 10 % swing of `vdd`.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::Infeasible`] when 10 % of `vdd` is
    /// below the receiver sensitivity ([`MIN_RESOLVABLE_SWING`]).
    pub fn new(line: RcLine, vdd: Volts) -> Result<Self, InterconnectError> {
        Self::with_swing(line, vdd, vdd * DEFAULT_SWING_FRACTION)
    }

    /// A link with an explicit swing.
    ///
    /// # Errors
    ///
    /// [`InterconnectError::BadParameter`] when the swing is not in
    /// `(0, vdd]`; [`InterconnectError::Infeasible`] when it is below
    /// [`MIN_RESOLVABLE_SWING`] — the paper's open question of "tolerable
    /// voltage swings".
    pub fn with_swing(line: RcLine, vdd: Volts, swing: Volts) -> Result<Self, InterconnectError> {
        let ctx = "LowSwingLink::with_swing";
        guard::finite(vdd.0, "Vdd", ctx)?;
        guard::finite(swing.0, "swing", ctx)?;
        if !(swing.0 > 0.0) || swing > vdd {
            return Err(InterconnectError::BadParameter("swing must be in (0, vdd]"));
        }
        if swing < MIN_RESOLVABLE_SWING {
            return Err(InterconnectError::Infeasible(
                "swing below sense-amplifier sensitivity",
            ));
        }
        Ok(Self { line, swing, vdd })
    }

    /// Energy drawn from the supply per transition: `C_shielded·Vs·Vdd`
    /// per switching wire of the pair (one wire of a differential pair
    /// transitions each way).
    pub fn energy_per_transition(&self) -> f64 {
        let c = self.line.geometry.capacitance_shielded_per_micron().0 * self.line.length.0;
        c * self.swing.0 * self.vdd.0
    }

    /// Power at toggle rate `activity` and clock `freq_hz`.
    pub fn power(&self, activity: f64, freq_hz: f64) -> Watts {
        Watts(activity * freq_hz * self.energy_per_transition())
    }

    /// Link delay: wire settling to the swing point plus the sense-amp
    /// resolution time. Settling to a small fraction of the final value is
    /// *faster* than a full-swing 50 % crossing on the same wire.
    pub fn delay(&self, driver: &DriverTech, driver_width: Microns) -> Seconds {
        let r_drv = Ohms(driver.rd_ohm_um / driver_width.0);
        // Time to slew the line to `swing` with the driver's current:
        // approximately the Elmore delay scaled by the swing fraction,
        // floored at 10% for slew limits.
        let frac = (self.swing.0 / self.vdd.0).max(0.1);
        let wire = self.line.elmore_delay(r_drv, Farads(0.0));
        Seconds(wire.0 * frac + RECEIVER_DELAY_PS * 1e-12)
    }

    /// Worst-case differential noise relative to the swing: coupling noise
    /// appears common-mode on a twisted/shielded pair, so only the
    /// residual mismatch (taken as 10 % of single-ended coupling) counts.
    pub fn noise_margin_fraction(&self) -> f64 {
        let g = &self.line.geometry;
        let c_total = g.capacitance_per_micron().0;
        let c_shield = g.capacitance_shielded_per_micron().0;
        let coupling_fraction = (c_total - c_shield) / c_total;
        let differential_residual = 0.1 * coupling_fraction * self.vdd.0;
        1.0 - differential_residual / self.swing.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireGeometry;
    use np_device::Mosfet;
    use np_roadmap::TechNode;

    fn link(node: TechNode) -> LowSwingLink {
        let line = RcLine::new(WireGeometry::top_level(node), Microns(10_000.0)).unwrap();
        LowSwingLink::new(line, node.params().vdd).unwrap()
    }

    fn full_swing_energy(node: TechNode) -> f64 {
        let line = RcLine::new(WireGeometry::top_level(node), Microns(10_000.0)).unwrap();
        let v = node.params().vdd.0;
        line.capacitance().0 * v * v
    }

    #[test]
    fn tenx_energy_saving_at_10pct_swing() {
        // E = C·(0.1·Vdd)·Vdd vs C·Vdd²: 10x per wire, slightly less after
        // the shielded-capacitance credit.
        let node = TechNode::N70;
        let ratio = full_swing_energy(node) / link(node).energy_per_transition();
        assert!((8.0..=16.0).contains(&ratio), "got {ratio}x");
    }

    #[test]
    fn power_scales_with_activity() {
        let l = link(TechNode::N50);
        let p1 = l.power(0.1, 3e9);
        let p2 = l.power(0.2, 3e9);
        assert!((p2.0 / p1.0 - 2.0).abs() < 1e-9);
        assert!(p1.0 > 0.0);
    }

    #[test]
    fn swing_below_sensitivity_is_infeasible() {
        let line = RcLine::new(WireGeometry::top_level(TechNode::N35), Microns(5_000.0)).unwrap();
        // 10% of 0.35 V = 35 mV < 40 mV sensitivity.
        let err = LowSwingLink::with_swing(line, Volts(0.35), Volts(0.035)).unwrap_err();
        assert!(matches!(err, InterconnectError::Infeasible(_)));
    }

    #[test]
    fn bad_swing_rejected() {
        let line = RcLine::new(WireGeometry::top_level(TechNode::N70), Microns(5_000.0)).unwrap();
        assert!(LowSwingLink::with_swing(line, Volts(0.9), Volts(0.0)).is_err());
        assert!(LowSwingLink::with_swing(line, Volts(0.9), Volts(1.0)).is_err());
    }

    #[test]
    fn delay_includes_receiver_overhead() {
        let node = TechNode::N70;
        let l = link(node);
        let dev = Mosfet::for_node(node).unwrap();
        let tech = DriverTech::from_device(&dev, node.params().vdd).unwrap();
        let d = l.delay(&tech, Microns(20.0));
        assert!(d.as_pico() > RECEIVER_DELAY_PS);
    }

    #[test]
    fn differential_noise_margin_is_healthy_at_10pct() {
        // Section 2.2: low-swing differential "is more noise immune than
        // single-ended full-swing CMOS".
        let m = link(TechNode::N50).noise_margin_fraction();
        assert!(m > 0.5, "got {m}");
    }

    #[test]
    fn area_factor_is_below_2() {
        const { assert!(DIFFERENTIAL_AREA_FACTOR < 2.0) };
        const { assert!(DIFFERENTIAL_AREA_FACTOR > 1.0) };
    }
}
