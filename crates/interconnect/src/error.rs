//! Error type for interconnect modeling.

use np_device::DeviceError;
use np_units::guard::NonFinite;
use std::fmt;

/// Error returned by wire, repeater, and signaling models.
#[derive(Debug, Clone, PartialEq)]
pub enum InterconnectError {
    /// A geometry or electrical parameter is unphysical.
    BadParameter(&'static str),
    /// A numeric input was NaN, infinite, or outside its physical domain.
    NonFinite(NonFinite),
    /// The underlying device model failed.
    Device(DeviceError),
    /// A requested link cannot meet its constraint (documented in the
    /// message), e.g. a swing below the receiver's sensitivity.
    Infeasible(&'static str),
}

impl fmt::Display for InterconnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterconnectError::BadParameter(m) => write!(f, "bad parameter: {m}"),
            InterconnectError::NonFinite(e) => write!(f, "bad input: {e}"),
            InterconnectError::Device(e) => write!(f, "device model error: {e}"),
            InterconnectError::Infeasible(m) => write!(f, "infeasible link: {m}"),
        }
    }
}

impl std::error::Error for InterconnectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InterconnectError::Device(e) => Some(e),
            InterconnectError::NonFinite(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for InterconnectError {
    fn from(e: DeviceError) -> Self {
        InterconnectError::Device(e)
    }
}

impl From<NonFinite> for InterconnectError {
    fn from(e: NonFinite) -> Self {
        InterconnectError::NonFinite(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(format!("{}", InterconnectError::BadParameter("w")).contains("bad parameter"));
        assert!(format!("{}", InterconnectError::Infeasible("s")).contains("infeasible"));
        let e: InterconnectError = DeviceError::BadParameter("x").into();
        assert!(format!("{e}").contains("device"));
    }
}
