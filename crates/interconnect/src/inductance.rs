//! On-chip inductance and inductive coupling (Section 2.2).
//!
//! "Furthermore, shielding may be insufficient to limit inductively
//! coupled noise, whereas low-swing differential signaling creates less
//! noise and is more noise immune than single-ended full-swing CMOS."
//!
//! Capacitive crosstalk stops at the shield wire; magnetic flux does not.
//! The model uses microstrip-style partial inductances: a victim a few
//! tracks away from an aggressor still links substantial flux, so a
//! shielded single-ended bus keeps an inductive noise floor, while a
//! differential pair sees only the *difference* of the couplings to its
//! two legs — a small residue that shrinks with pair tightness.

use crate::error::InterconnectError;
use crate::wire::WireGeometry;
use np_units::{Microns, Seconds, Volts};

/// Vacuum permeability in H/µm (4π×10⁻⁷ H/m × 10⁻⁶ m/µm).
pub const MU0_H_PER_UM: f64 = 1.2566e-12;

/// Self (partial, loop-to-plane) inductance per micron of a trace, H/µm:
/// `L = µ₀/(2π) · ln(8h/w + w/(4h))` (microstrip approximation; the
/// current-return plane sits `h` below).
///
/// # Panics
///
/// Panics for non-positive geometry.
pub fn self_inductance_per_um(geometry: &WireGeometry) -> f64 {
    let w = geometry.width.0;
    let h = 4.0 * geometry.height.0; // the return plane is a few levels down
    assert!(w > 0.0 && h > 0.0, "geometry must be positive");
    MU0_H_PER_UM / (2.0 * std::f64::consts::PI) * (8.0 * h / w + w / (4.0 * h)).ln()
}

/// Mutual inductance per micron between two parallel traces separated by
/// `separation` (centre to centre) over the same return plane:
/// `M = µ₀/(4π) · ln(1 + (2h/d)²)`.
///
/// # Panics
///
/// Panics for non-positive separation.
pub fn mutual_inductance_per_um(geometry: &WireGeometry, separation: Microns) -> f64 {
    assert!(separation.0 > 0.0, "separation must be positive");
    let h = 4.0 * geometry.height.0;
    MU0_H_PER_UM / (4.0 * std::f64::consts::PI) * (1.0 + (2.0 * h / separation.0).powi(2)).ln()
}

/// True when inductance matters for a driven line: the classic criterion
/// `R_total/2 < Z₀ = sqrt(L/C)` (the line rings rather than diffusing).
pub fn is_inductance_significant(geometry: &WireGeometry, length: Microns) -> bool {
    let r = geometry.resistance_per_micron().0 * length.0;
    let l = self_inductance_per_um(geometry);
    let c = geometry.capacitance_per_micron().0;
    let z0 = (l / c).sqrt();
    r / 2.0 < z0
}

/// Inductive noise coupled onto a victim by an aggressor switching
/// `i_peak` amps in `t_rise`, over `coupled_length`, at trace separation
/// `separation`.
///
/// # Errors
///
/// Returns [`InterconnectError::BadParameter`] for non-positive rise time
/// or length.
pub fn coupled_noise(
    geometry: &WireGeometry,
    separation: Microns,
    coupled_length: Microns,
    i_peak: f64,
    t_rise: Seconds,
) -> Result<Volts, InterconnectError> {
    if !(t_rise.0 > 0.0) {
        return Err(InterconnectError::BadParameter(
            "rise time must be positive",
        ));
    }
    if !(coupled_length.0 > 0.0) {
        return Err(InterconnectError::BadParameter("length must be positive"));
    }
    let m = mutual_inductance_per_um(geometry, separation) * coupled_length.0;
    Ok(Volts(m * i_peak / t_rise.0))
}

/// The same aggressor's *differential* residue on a pair whose legs sit at
/// `separation` and `separation + pair pitch`: the difference of the two
/// couplings, which is what a differential receiver sees.
///
/// # Errors
///
/// Same conditions as [`coupled_noise`].
pub fn differential_residue(
    geometry: &WireGeometry,
    separation: Microns,
    coupled_length: Microns,
    i_peak: f64,
    t_rise: Seconds,
) -> Result<Volts, InterconnectError> {
    let near = coupled_noise(geometry, separation, coupled_length, i_peak, t_rise)?;
    let far = coupled_noise(
        geometry,
        separation + geometry.pitch(),
        coupled_length,
        i_peak,
        t_rise,
    )?;
    Ok(Volts(near.0 - far.0))
}

/// Residual coupling mismatch that survives each twist of a twisted
/// differential pair (layout asymmetry, via stubs).
pub const TWIST_MISMATCH: f64 = 0.05;

/// Differential residue of a *twisted* pair: each twist swaps which leg is
/// nearer the aggressor, cancelling the coupled flux segment-by-segment;
/// what survives is the per-segment residue divided by the twist count,
/// floored at the layout-mismatch level.
///
/// # Errors
///
/// Same conditions as [`differential_residue`]; rejects zero twists.
pub fn twisted_differential_residue(
    geometry: &WireGeometry,
    separation: Microns,
    coupled_length: Microns,
    i_peak: f64,
    t_rise: Seconds,
    twists: usize,
) -> Result<Volts, InterconnectError> {
    if twists == 0 {
        return Err(InterconnectError::BadParameter("need at least one twist"));
    }
    let untwisted = differential_residue(geometry, separation, coupled_length, i_peak, t_rise)?;
    let cancelled = untwisted.0 / (2.0 * twists as f64);
    let floor = untwisted.0 * TWIST_MISMATCH;
    Ok(Volts(cancelled.max(floor)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_roadmap::TechNode;

    fn top(node: TechNode) -> WireGeometry {
        WireGeometry::top_level(node)
    }

    #[test]
    fn self_inductance_is_fractions_of_ph_per_um() {
        for node in TechNode::ALL {
            let l = self_inductance_per_um(&top(node)) * 1e12; // pH/µm
            assert!((0.1..=2.0).contains(&l), "{node}: {l} pH/µm");
        }
    }

    #[test]
    fn mutual_falls_with_separation_but_slowly() {
        // The slow logarithmic falloff is exactly why one shield track is
        // not enough: flux skips over it.
        let g = top(TechNode::N50);
        let m1 = mutual_inductance_per_um(&g, Microns(g.pitch().0));
        let m2 = mutual_inductance_per_um(&g, Microns(2.0 * g.pitch().0));
        let m8 = mutual_inductance_per_um(&g, Microns(8.0 * g.pitch().0));
        assert!(m2 < m1);
        assert!(m8 < m2);
        // One extra track of spacing (a shield) removes well under half
        // the magnetic coupling.
        assert!(
            m2 > 0.5 * m1,
            "shield removes only {:.0}%",
            (1.0 - m2 / m1) * 100.0
        );
    }

    #[test]
    fn long_fat_top_wires_are_inductance_significant() {
        // The unscaled 180 nm-geometry global wires of ref. [9] ring;
        // minimum-pitch scaled wires at the end of the roadmap are
        // resistive.
        let fat = WireGeometry::top_level_unscaled(TechNode::N35);
        assert!(is_inductance_significant(&fat, Microns(2_000.0)));
        let thin = top(TechNode::N35);
        assert!(!is_inductance_significant(&thin, Microns(20_000.0)));
    }

    #[test]
    fn differential_rejects_most_inductive_noise() {
        // Section 2.2: shielding is insufficient; differential is immune.
        let g = top(TechNode::N50);
        let shielded_sep = Microns(2.0 * g.pitch().0); // one shield between
        let single = coupled_noise(
            &g,
            shielded_sep,
            Microns(5_000.0),
            0.02,
            Seconds::from_pico(50.0),
        )
        .unwrap();
        let diff = differential_residue(
            &g,
            shielded_sep,
            Microns(5_000.0),
            0.02,
            Seconds::from_pico(50.0),
        )
        .unwrap();
        assert!(
            diff.0 < single.0 * 0.5,
            "differential residue {diff} vs single-ended {single}"
        );
        // And the single-ended noise is non-negligible against a low-swing
        // signal (tens of mV scale).
        assert!(single.as_milli() > 1.0);
    }

    #[test]
    fn faster_edges_are_noisier() {
        let g = top(TechNode::N50);
        let slow = coupled_noise(
            &g,
            Microns(1.0),
            Microns(1_000.0),
            0.01,
            Seconds::from_pico(100.0),
        )
        .unwrap();
        let fast = coupled_noise(
            &g,
            Microns(1.0),
            Microns(1_000.0),
            0.01,
            Seconds::from_pico(10.0),
        )
        .unwrap();
        assert!((fast.0 / slow.0 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn twisting_buys_further_rejection() {
        let g = top(TechNode::N50);
        let sep = Microns(2.0 * g.pitch().0);
        let args = (sep, Microns(5_000.0), 0.01, Seconds::from_pico(50.0));
        let untwisted = differential_residue(&g, args.0, args.1, args.2, args.3).unwrap();
        let one = twisted_differential_residue(&g, args.0, args.1, args.2, args.3, 1).unwrap();
        let four = twisted_differential_residue(&g, args.0, args.1, args.2, args.3, 4).unwrap();
        assert!(one.0 < untwisted.0);
        assert!(four.0 < one.0);
        // The mismatch floor binds eventually.
        let many = twisted_differential_residue(&g, args.0, args.1, args.2, args.3, 1000).unwrap();
        assert!((many.0 / (untwisted.0 * TWIST_MISMATCH) - 1.0).abs() < 1e-9);
        assert!(twisted_differential_residue(&g, args.0, args.1, args.2, args.3, 0).is_err());
    }

    #[test]
    fn bad_inputs_rejected() {
        let g = top(TechNode::N50);
        assert!(coupled_noise(&g, Microns(1.0), Microns(1.0), 0.01, Seconds(0.0)).is_err());
        assert!(coupled_noise(&g, Microns(1.0), Microns(0.0), 0.01, Seconds(1e-12)).is_err());
    }
}
