//! Capacitive crosstalk and Miller-factor delay uncertainty (Section 2.2).
//!
//! "the increase may be less than the expected factor of 2 due to the use
//! of shield wires in global signaling to limit coupling from neighboring
//! signals on long lines" — shields exist because a neighbour switching
//! the opposite way doubles the effective coupling capacitance (Miller
//! factor 2), while one switching the same way removes it (factor 0).
//! The victim's delay therefore varies across a window; shielding
//! collapses the window by replacing live neighbours with quiet rails.

use crate::elmore::RcLine;
use crate::error::InterconnectError;
use np_units::{Farads, Ohms, Seconds};

/// Miller factor of an aggressor switching opposite to the victim.
pub const MILLER_WORST: f64 = 2.0;

/// Miller factor of an aggressor switching with the victim.
pub const MILLER_BEST: f64 = 0.0;

/// How a wire's neighbours behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeighbourState {
    /// Both neighbours are live signals (the dense-bus worst case).
    BothLive,
    /// One neighbour replaced by a grounded shield.
    OneShielded,
    /// Both neighbours are shields (fully isolated victim).
    FullyShielded,
}

impl NeighbourState {
    /// Number of live (switching-capable) neighbours.
    pub fn live_neighbours(self) -> f64 {
        match self {
            NeighbourState::BothLive => 2.0,
            NeighbourState::OneShielded => 1.0,
            NeighbourState::FullyShielded => 0.0,
        }
    }

    /// Extra routing tracks consumed per signal by the shields.
    pub fn track_overhead(self) -> f64 {
        match self {
            NeighbourState::BothLive => 0.0,
            NeighbourState::OneShielded => 0.5, // shields shared pairwise
            NeighbourState::FullyShielded => 1.0,
        }
    }
}

/// The victim's delay window under crosstalk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrosstalkWindow {
    /// Delay with all live neighbours switching favourably.
    pub best: Seconds,
    /// Quiet-neighbour (nominal) delay.
    pub nominal: Seconds,
    /// Delay with all live neighbours switching adversely.
    pub worst: Seconds,
}

impl CrosstalkWindow {
    /// Relative delay uncertainty, `(worst − best) / nominal` — what a
    /// timing signoff must margin for.
    pub fn uncertainty(&self) -> f64 {
        (self.worst.0 - self.best.0) / self.nominal.0
    }
}

/// Computes the victim's crosstalk delay window for a driven line.
///
/// The line's total capacitance splits into ground and per-neighbour
/// coupling parts (from the Sakurai model); each live neighbour's coupling
/// is scaled by the Miller factor of its switching direction.
///
/// # Errors
///
/// Returns [`InterconnectError::BadParameter`] for a non-positive driver
/// resistance.
pub fn delay_window(
    line: &RcLine,
    driver: Ohms,
    load: Farads,
    neighbours: NeighbourState,
) -> Result<CrosstalkWindow, InterconnectError> {
    if !(driver.0 > 0.0) {
        return Err(InterconnectError::BadParameter(
            "driver resistance must be positive",
        ));
    }
    let g = &line.geometry;
    let c_total = g.capacitance_per_micron().0;
    let c_shielded = g.capacitance_shielded_per_micron().0;
    // One neighbour's coupling share (the Sakurai model counts two).
    let c_couple_one = c_total - c_shielded;
    let c_ground = c_total - 2.0 * c_couple_one;
    let live = neighbours.live_neighbours();
    let quiet = 2.0 - live;
    let r = line.resistance().0;
    let eval = |miller: f64| -> Seconds {
        // Quiet/shielded neighbours hold factor 1 (plain capacitance);
        // Elmore with the effective capacitance replacing the nominal one.
        let c_eff = c_ground + c_couple_one * (quiet + live * miller);
        let c = c_eff * line.length.0;
        Seconds(0.69 * driver.0 * (c + load.0) + 0.38 * r * c + 0.69 * r * load.0)
    };
    Ok(CrosstalkWindow {
        best: eval(MILLER_BEST),
        nominal: eval(1.0),
        worst: eval(MILLER_WORST),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireGeometry;
    use np_roadmap::TechNode;
    use np_units::Microns;

    fn line() -> RcLine {
        RcLine::new(WireGeometry::top_level(TechNode::N50), Microns(5_000.0)).unwrap()
    }

    fn window(state: NeighbourState) -> CrosstalkWindow {
        delay_window(&line(), Ohms(500.0), Farads::from_femto(20.0), state).unwrap()
    }

    #[test]
    fn worst_case_is_slower_than_best() {
        let w = window(NeighbourState::BothLive);
        assert!(w.best < w.nominal);
        assert!(w.nominal < w.worst);
    }

    #[test]
    fn dense_bus_uncertainty_is_large() {
        // On minimum-pitch global wiring the coupling dominates: the
        // Miller window is a large fraction of the nominal delay.
        let u = window(NeighbourState::BothLive).uncertainty();
        assert!(u > 0.4, "uncertainty {u:.2}");
    }

    #[test]
    fn shielding_collapses_the_window() {
        let both = window(NeighbourState::BothLive).uncertainty();
        let one = window(NeighbourState::OneShielded).uncertainty();
        let full = window(NeighbourState::FullyShielded).uncertainty();
        assert!(one < both);
        assert!(full < 1e-12, "fully shielded victim has no window");
        // One shield halves the live coupling.
        assert!((one / both - 0.5).abs() < 0.05, "one/both = {}", one / both);
    }

    #[test]
    fn shield_track_overhead_is_sub_2x() {
        // Section 2.2: the differential "factor of 2" is discounted
        // because full-swing buses would pay for shields anyway.
        assert_eq!(NeighbourState::FullyShielded.track_overhead(), 1.0);
        assert_eq!(NeighbourState::OneShielded.track_overhead(), 0.5);
        assert_eq!(NeighbourState::BothLive.track_overhead(), 0.0);
    }

    #[test]
    fn nominal_matches_plain_elmore() {
        let l = line();
        let w = window(NeighbourState::BothLive);
        let plain = l.elmore_delay(Ohms(500.0), Farads::from_femto(20.0));
        assert!((w.nominal.0 / plain.0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bad_driver_rejected() {
        assert!(delay_window(
            &line(),
            Ohms(0.0),
            Farads::from_femto(1.0),
            NeighbourState::BothLive
        )
        .is_err());
    }
}
