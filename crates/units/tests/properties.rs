//! Property-based tests for the quantity algebra and numerics.

use np_units::interp::Table1d;
use np_units::math::{bisect, linspace, logspace};
use np_units::stats::{quantile, Summary};
use np_units::{Amps, Ohms, Volts, Watts};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

fn positive() -> impl Strategy<Value = f64> {
    1e-6..1e6f64
}

proptest! {
    #[test]
    fn addition_commutes(a in finite(), b in finite()) {
        prop_assert_eq!((Volts(a) + Volts(b)).0, (Volts(b) + Volts(a)).0);
    }

    #[test]
    fn same_type_division_is_ratio(a in finite(), b in positive()) {
        prop_assert!(((Volts(a) / Volts(b)) - a / b).abs() < 1e-12);
    }

    #[test]
    fn ohms_law_round_trips(v in positive(), r in positive()) {
        let i = Volts(v) / Ohms(r);
        let back = i * Ohms(r);
        prop_assert!((back.0 / v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_identities(v in positive(), i in positive()) {
        let p: Watts = Volts(v) * Amps(i);
        let i_back = p / Volts(v);
        prop_assert!((i_back.0 / i - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_distributes(a in finite(), b in finite(), k in -1e3..1e3f64) {
        let lhs = (Volts(a) + Volts(b)) * k;
        let rhs = Volts(a) * k + Volts(b) * k;
        prop_assert!((lhs.0 - rhs.0).abs() < 1e-6_f64.max(lhs.0.abs() * 1e-12));
    }

    #[test]
    fn bisect_finds_root_of_monotone_cubic(c in 0.1..100.0f64) {
        // x^3 + x - c is strictly increasing with a root in [0, c+1].
        let root = bisect(|x| x * x * x + x - c, 0.0, c + 1.0, 1e-12).unwrap();
        let residual = root * root * root + root - c;
        prop_assert!(residual.abs() < 1e-6, "residual {residual}");
    }

    #[test]
    fn linspace_is_sorted_and_bounded(lo in -1e3..1e3f64, span in 0.1..1e3f64, n in 2usize..50) {
        let xs = linspace(lo, lo + span, n);
        prop_assert_eq!(xs.len(), n);
        prop_assert_eq!(xs[0], lo);
        prop_assert_eq!(xs[n - 1], lo + span);
        prop_assert!(xs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn logspace_is_geometric(lo in 1e-3..1.0f64, factor in 1.5..100.0f64, n in 3usize..20) {
        let xs = logspace(lo, lo * factor, n);
        let r0 = xs[1] / xs[0];
        for w in xs.windows(2) {
            prop_assert!((w[1] / w[0] / r0 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn table_interpolation_is_bounded_by_knots(
        ys in proptest::collection::vec(-100.0..100.0f64, 2..10),
        q in 0.0..1.0f64,
    ) {
        let n = ys.len();
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let t = Table1d::new(xs, ys.clone()).unwrap();
        let x = q * (n - 1) as f64;
        let y = t.eval(x).unwrap();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
    }

    #[test]
    fn quantile_is_monotone_in_q(
        xs in proptest::collection::vec(-100.0..100.0f64, 1..40),
        q1 in 0.0..1.0f64,
        q2 in 0.0..1.0f64,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo).unwrap();
        let b = quantile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn summary_mean_is_within_min_max(
        xs in proptest::collection::vec(-100.0..100.0f64, 1..40),
    ) {
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.mean + 1e-12 && s.mean <= s.max + 1e-12);
        prop_assert!(s.std_dev >= 0.0);
    }
}
