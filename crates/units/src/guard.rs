//! Finite/domain guards for public model entry points.
//!
//! The workspace chains analytical models (device I–V → circuit power →
//! thermal fixed point → IR-drop solve); one NaN or Inf entering the
//! chain silently corrupts every downstream table. The guards here turn
//! non-finite or out-of-range inputs into a typed [`NonFinite`] error at
//! the API boundary, before the value can propagate. Every model crate
//! wraps [`NonFinite`] in its own error enum, so callers keep one match
//! arm per failure class.
//!
//! # Examples
//!
//! ```
//! use np_units::guard;
//!
//! assert!(guard::finite(1.5, "Vdd", "Mosfet::ion").is_ok());
//! let err = guard::finite(f64::NAN, "Vdd", "Mosfet::ion").unwrap_err();
//! assert_eq!(err.quantity, "Vdd");
//! assert!(format!("{err}").contains("Mosfet::ion"));
//! ```

use std::fmt;

/// A quantity reaching a public model API was NaN, infinite, or outside
/// its physical domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFinite {
    /// Name of the offending quantity (e.g. `"Vdd"`).
    pub quantity: &'static str,
    /// The value as received (NaN, ±Inf, or the out-of-range number).
    pub value: f64,
    /// The entry point that rejected it (e.g. `"Mosfet::ion"`).
    pub context: &'static str,
}

impl fmt::Display for NonFinite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} is not a usable number (got {})",
            self.context, self.quantity, self.value
        )
    }
}

impl std::error::Error for NonFinite {}

/// Accepts any finite value.
///
/// # Errors
///
/// [`NonFinite`] when `value` is NaN or infinite.
pub fn finite(value: f64, quantity: &'static str, context: &'static str) -> Result<f64, NonFinite> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(NonFinite {
            quantity,
            value,
            context,
        })
    }
}

/// Accepts finite, strictly positive values.
///
/// # Errors
///
/// [`NonFinite`] when `value` is NaN, infinite, zero, or negative.
pub fn finite_positive(
    value: f64,
    quantity: &'static str,
    context: &'static str,
) -> Result<f64, NonFinite> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(NonFinite {
            quantity,
            value,
            context,
        })
    }
}

/// Accepts finite, non-negative values (zero allowed).
///
/// # Errors
///
/// [`NonFinite`] when `value` is NaN, infinite, or negative.
pub fn finite_non_negative(
    value: f64,
    quantity: &'static str,
    context: &'static str,
) -> Result<f64, NonFinite> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(NonFinite {
            quantity,
            value,
            context,
        })
    }
}

/// Accepts finite values inside the inclusive range `[lo, hi]`.
///
/// # Errors
///
/// [`NonFinite`] when `value` is NaN, infinite, or outside the range.
pub fn in_range(
    value: f64,
    lo: f64,
    hi: f64,
    quantity: &'static str,
    context: &'static str,
) -> Result<f64, NonFinite> {
    if value.is_finite() && (lo..=hi).contains(&value) {
        Ok(value)
    } else {
        Err(NonFinite {
            quantity,
            value,
            context,
        })
    }
}

/// Accepts a slice in which every element is finite; returns the index
/// and value of the first offender otherwise.
///
/// # Errors
///
/// [`NonFinite`] (carrying the offending element's value) when any
/// element is NaN or infinite.
pub fn all_finite(
    values: &[f64],
    quantity: &'static str,
    context: &'static str,
) -> Result<(), NonFinite> {
    match values.iter().find(|v| !v.is_finite()) {
        None => Ok(()),
        Some(&value) => Err(NonFinite {
            quantity,
            value,
            context,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_accepts_and_rejects() {
        assert_eq!(finite(0.0, "x", "t"), Ok(0.0));
        assert_eq!(finite(-1e300, "x", "t"), Ok(-1e300));
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = finite(bad, "x", "t").unwrap_err();
            assert_eq!(err.quantity, "x");
            assert_eq!(err.context, "t");
        }
    }

    #[test]
    fn positive_rejects_zero_and_negative() {
        assert!(finite_positive(1e-300, "x", "t").is_ok());
        assert!(finite_positive(0.0, "x", "t").is_err());
        assert!(finite_positive(-1.0, "x", "t").is_err());
        assert!(finite_positive(f64::INFINITY, "x", "t").is_err());
    }

    #[test]
    fn non_negative_admits_zero() {
        assert!(finite_non_negative(0.0, "x", "t").is_ok());
        assert!(finite_non_negative(-0.1, "x", "t").is_err());
        assert!(finite_non_negative(f64::NAN, "x", "t").is_err());
    }

    #[test]
    fn range_is_inclusive() {
        assert!(in_range(0.0, 0.0, 1.0, "x", "t").is_ok());
        assert!(in_range(1.0, 0.0, 1.0, "x", "t").is_ok());
        assert!(in_range(1.0001, 0.0, 1.0, "x", "t").is_err());
        assert!(in_range(f64::NAN, 0.0, 1.0, "x", "t").is_err());
    }

    #[test]
    fn all_finite_reports_first_offender() {
        assert!(all_finite(&[1.0, 2.0], "inj", "t").is_ok());
        assert!(all_finite(&[], "inj", "t").is_ok());
        let err = all_finite(&[1.0, f64::NAN, f64::INFINITY], "inj", "t").unwrap_err();
        assert!(err.value.is_nan());
    }

    #[test]
    fn display_names_quantity_and_context() {
        let e = NonFinite {
            quantity: "Vdd",
            value: f64::NAN,
            context: "Mosfet::ion",
        };
        let s = format!("{e}");
        assert!(s.contains("Vdd") && s.contains("Mosfet::ion"));
    }
}
