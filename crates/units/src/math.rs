//! Root finding, grids, and scalar minimization.
//!
//! The compact device models in [`np-device`] are smooth, monotone functions
//! of their arguments, so robust bracketing methods (bisection, golden
//! section) are sufficient and deterministic.
//!
//! [`np-device`]: https://docs.rs/np-device

use std::fmt;

/// Error returned by the numerical routines in this module.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The supplied interval does not bracket a root (`f(lo)` and `f(hi)`
    /// have the same sign).
    NoBracket {
        /// Lower bound of the supplied interval.
        lo: f64,
        /// Upper bound of the supplied interval.
        hi: f64,
        /// `f(lo)`.
        f_lo: f64,
        /// `f(hi)`.
        f_hi: f64,
    },
    /// The iteration budget was exhausted before meeting the tolerance.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
        /// Best estimate at exhaustion.
        best: f64,
    },
    /// The function returned a non-finite value during the solve.
    NonFinite {
        /// The argument at which the evaluation failed.
        at: f64,
    },
    /// The arguments are malformed (e.g. `lo >= hi`, non-positive
    /// tolerance).
    BadArguments(&'static str),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NoBracket { lo, hi, f_lo, f_hi } => write!(
                f,
                "interval [{lo}, {hi}] does not bracket a root (f(lo)={f_lo}, f(hi)={f_hi})"
            ),
            SolveError::NoConvergence { iterations, best } => {
                write!(
                    f,
                    "no convergence after {iterations} iterations (best {best})"
                )
            }
            SolveError::NonFinite { at } => {
                write!(f, "function evaluated to a non-finite value at {at}")
            }
            SolveError::BadArguments(msg) => write!(f, "bad arguments: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Finds `x` in `[lo, hi]` with `f(x) = 0` by bisection.
///
/// The function must be continuous and the interval must bracket a sign
/// change. Converges to `|hi - lo| <= tol`.
///
/// # Errors
///
/// Returns [`SolveError::NoBracket`] when `f(lo)` and `f(hi)` share a sign,
/// [`SolveError::BadArguments`] for a malformed interval or tolerance, and
/// [`SolveError::NonFinite`] when the function misbehaves.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), np_units::math::SolveError> {
/// let root = np_units::math::bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12)?;
/// assert!((root - 2f64.sqrt()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
) -> Result<f64, SolveError> {
    if !(lo < hi) {
        return Err(SolveError::BadArguments("require lo < hi"));
    }
    if !(tol > 0.0) {
        return Err(SolveError::BadArguments("require tol > 0"));
    }
    let (mut lo, mut hi) = (lo, hi);
    let mut f_lo = f(lo);
    let f_hi = f(hi);
    if !f_lo.is_finite() {
        return Err(SolveError::NonFinite { at: lo });
    }
    if !f_hi.is_finite() {
        return Err(SolveError::NonFinite { at: hi });
    }
    if f_lo == 0.0 {
        return Ok(lo);
    }
    if f_hi == 0.0 {
        return Ok(hi);
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(SolveError::NoBracket { lo, hi, f_lo, f_hi });
    }
    const MAX_ITERS: usize = 200;
    for _ in 0..MAX_ITERS {
        let mid = 0.5 * (lo + hi);
        let f_mid = f(mid);
        if !f_mid.is_finite() {
            return Err(SolveError::NonFinite { at: mid });
        }
        if f_mid == 0.0 || (hi - lo) <= tol {
            return Ok(mid);
        }
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Err(SolveError::NoConvergence {
        iterations: MAX_ITERS,
        best: 0.5 * (lo + hi),
    })
}

/// Finds the minimizer of a unimodal function on `[lo, hi]` by golden-section
/// search, to an argument tolerance `tol`.
///
/// # Errors
///
/// Returns [`SolveError::BadArguments`] for a malformed interval or
/// tolerance, and [`SolveError::NonFinite`] when the function misbehaves.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), np_units::math::SolveError> {
/// let x = np_units::math::golden_min(|x| (x - 3.0) * (x - 3.0), 0.0, 10.0, 1e-9)?;
/// assert!((x - 3.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn golden_min<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
) -> Result<f64, SolveError> {
    if !(lo < hi) {
        return Err(SolveError::BadArguments("require lo < hi"));
    }
    if !(tol > 0.0) {
        return Err(SolveError::BadArguments("require tol > 0"));
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    if !fc.is_finite() {
        return Err(SolveError::NonFinite { at: c });
    }
    if !fd.is_finite() {
        return Err(SolveError::NonFinite { at: d });
    }
    const MAX_ITERS: usize = 300;
    for _ in 0..MAX_ITERS {
        if (b - a) <= tol {
            return Ok(0.5 * (a + b));
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
            if !fc.is_finite() {
                return Err(SolveError::NonFinite { at: c });
            }
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
            if !fd.is_finite() {
                return Err(SolveError::NonFinite { at: d });
            }
        }
    }
    Err(SolveError::NoConvergence {
        iterations: MAX_ITERS,
        best: 0.5 * (a + b),
    })
}

/// Returns `n` evenly spaced points covering `[lo, hi]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// let xs = np_units::math::linspace(0.0, 1.0, 5);
/// assert_eq!(xs, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace requires at least two points");
    let step = (hi - lo) / (n - 1) as f64;
    (0..n)
        .map(|i| if i == n - 1 { hi } else { lo + step * i as f64 })
        .collect()
}

/// Returns `n` logarithmically spaced points covering `[lo, hi]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2` or either bound is non-positive.
///
/// # Examples
///
/// ```
/// let xs = np_units::math::logspace(0.01, 100.0, 5);
/// assert!((xs[2] - 1.0).abs() < 1e-12);
/// ```
pub fn logspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > 0.0, "logspace requires positive bounds");
    linspace(lo.ln(), hi.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

/// Fixed-point iteration `x_{k+1} = f(x_k)` until `|Δx| <= tol`.
///
/// Used for the leakage–temperature closure in `np-thermal`, where the map
/// is a contraction for every physical package.
///
/// # Errors
///
/// Returns [`SolveError::NoConvergence`] when `max_iters` is exhausted and
/// [`SolveError::NonFinite`] when the map diverges to a non-finite value.
pub fn fixed_point<F: FnMut(f64) -> f64>(
    mut f: F,
    x0: f64,
    tol: f64,
    max_iters: usize,
) -> Result<f64, SolveError> {
    if !(tol > 0.0) {
        return Err(SolveError::BadArguments("require tol > 0"));
    }
    let mut x = x0;
    for _ in 0..max_iters {
        let next = f(x);
        if !next.is_finite() {
            return Err(SolveError::NonFinite { at: x });
        }
        if (next - x).abs() <= tol {
            return Ok(next);
        }
        x = next;
    }
    Err(SolveError::NoConvergence {
        iterations: max_iters,
        best: x,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).expect("solve");
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_handles_decreasing_function() {
        let root = bisect(|x| 1.0 - x, 0.0, 5.0, 1e-12).expect("solve");
        assert!((root - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bisect_exact_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12), Ok(0.0));
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12), Ok(1.0));
    }

    #[test]
    fn bisect_rejects_non_bracket() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9).unwrap_err();
        assert!(matches!(err, SolveError::NoBracket { .. }));
    }

    #[test]
    fn bisect_rejects_bad_args() {
        assert!(matches!(
            bisect(|x| x, 1.0, 0.0, 1e-9),
            Err(SolveError::BadArguments(_))
        ));
        assert!(matches!(
            bisect(|x| x, 0.0, 1.0, 0.0),
            Err(SolveError::BadArguments(_))
        ));
    }

    #[test]
    fn bisect_detects_non_finite() {
        let err = bisect(|x| if x > 0.5 { f64::NAN } else { -1.0 }, 0.0, 1.0, 1e-9).unwrap_err();
        assert!(matches!(err, SolveError::NonFinite { .. }));
    }

    #[test]
    fn golden_finds_quadratic_min() {
        let x = golden_min(|x| (x - 3.0).powi(2) + 1.0, -10.0, 10.0, 1e-10).expect("solve");
        assert!((x - 3.0).abs() < 1e-6);
    }

    #[test]
    fn golden_rejects_bad_interval() {
        assert!(matches!(
            golden_min(|x| x, 2.0, 1.0, 1e-9),
            Err(SolveError::BadArguments(_))
        ));
    }

    #[test]
    fn linspace_endpoints_exact() {
        let xs = linspace(0.1, 0.7, 7);
        assert_eq!(xs.len(), 7);
        assert_eq!(xs[0], 0.1);
        assert_eq!(xs[6], 0.7);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn linspace_rejects_single_point() {
        let _ = linspace(0.0, 1.0, 1);
    }

    #[test]
    fn logspace_is_geometric() {
        let xs = logspace(1.0, 1000.0, 4);
        for w in xs.windows(2) {
            assert!((w[1] / w[0] - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fixed_point_converges_for_contraction() {
        // x = cos(x) has the Dottie number as its fixed point.
        let x = fixed_point(f64::cos, 1.0, 1e-12, 500).expect("converges");
        assert!((x - 0.739_085_133_215).abs() < 1e-9);
    }

    #[test]
    fn fixed_point_reports_exhaustion() {
        let err = fixed_point(|x| x + 1.0, 0.0, 1e-9, 10).unwrap_err();
        assert!(matches!(
            err,
            SolveError::NoConvergence { iterations: 10, .. }
        ));
    }

    #[test]
    fn errors_display() {
        let s = format!(
            "{}",
            SolveError::NoBracket {
                lo: 0.0,
                hi: 1.0,
                f_lo: 1.0,
                f_hi: 2.0
            }
        );
        assert!(s.contains("does not bracket"));
        assert!(format!("{}", SolveError::BadArguments("x")).contains("bad arguments"));
    }
}
