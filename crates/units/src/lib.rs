//! # np-units
//!
//! Typed physical quantities and small numerical routines shared by every
//! crate in the `nanopower` workspace.
//!
//! The toolkit models nanometer-scale CMOS, where an errant factor of 10³
//! between, say, nA/µm and µA/µm silently invalidates a projection. Every
//! externally visible physical value is therefore carried in a dedicated
//! newtype ([C-NEWTYPE]): [`Volts`], [`Amps`], [`Watts`], [`Celsius`],
//! [`MicroampsPerMicron`], and friends. The newtypes are thin `f64` wrappers
//! with the arithmetic that is physically meaningful — and only that
//! arithmetic — implemented ([C-OVERLOAD]).
//!
//! The [`math`], [`interp`] and [`stats`] modules provide the root finding,
//! table interpolation, and descriptive statistics that the analytical models
//! in the rest of the workspace need. They are implemented in-repo because
//! the models require only small, well-understood numerics.
//!
//! # Examples
//!
//! ```
//! use np_units::{Volts, Amps, Ohms, Watts};
//!
//! let vdd = Volts(1.2);
//! let ion = Amps::from_milli(750.0); // 750 mA for a 1 mm-wide device
//! let power: Watts = vdd * ion;
//! assert!((power.0 - 0.9).abs() < 1e-12);
//!
//! let drop: Volts = Amps(2.0) * Ohms(0.05);
//! assert_eq!(drop, Volts(0.1));
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html
//! [C-OVERLOAD]: https://rust-lang.github.io/api-guidelines/predictability.html

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod convergence;
pub mod guard;
pub mod interp;
pub mod math;
pub mod quantity;
pub mod stats;

pub use quantity::{
    Amps, Celsius, CoulombsPerCm2, Farads, FaradsPerCm2, FaradsPerMicron, Hertz, Kelvin,
    MicroampsPerMicron, Microns, Nanometers, Ohms, OhmsPerSquare, Picohenries, Seconds,
    SquareMillimeters, ThermalResistance, Volts, VoltsPerMicron, Watts, WattsPerCm2,
};
