//! Descriptive statistics for slack distributions and workload traces.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of a sample.
    ///
    /// Returns `None` for an empty sample.
    ///
    /// # Examples
    ///
    /// ```
    /// use np_units::stats::Summary;
    /// let s = Summary::of(&[1.0, 2.0, 3.0]).expect("non-empty");
    /// assert!((s.mean - 2.0).abs() < 1e-12);
    /// ```
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }
}

/// The `q`-quantile (`0 <= q <= 1`) of a sample using linear interpolation
/// between order statistics.
///
/// Returns `None` for an empty sample or `q` outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// let median = np_units::stats::quantile(&[3.0, 1.0, 2.0], 0.5).expect("non-empty");
/// assert_eq!(median, 2.0);
/// ```
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Fraction of samples satisfying a predicate.
///
/// Returns 0 for an empty sample (the conservative answer for "what share
/// of paths have slack", which is how the workspace uses it).
///
/// # Examples
///
/// ```
/// let f = np_units::stats::fraction_where(&[1.0, 2.0, 3.0, 4.0], |x| x > 2.0);
/// assert_eq!(f, 0.5);
/// ```
pub fn fraction_where<F: Fn(f64) -> bool>(samples: &[f64], pred: F) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&x| pred(x)).count() as f64 / samples.len() as f64
}

/// Builds a histogram of `samples` over `bins` equal-width bins spanning
/// `[lo, hi]`; out-of-range samples are clamped into the end bins.
///
/// # Panics
///
/// Panics if `bins == 0` or `lo >= hi`.
pub fn histogram(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(lo < hi, "histogram needs lo < hi");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &s in samples {
        let idx = (((s - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.count, 8);
    }

    #[test]
    fn summary_empty_is_none() {
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn quantile_median_and_ends() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert_eq!(quantile(&[1.0], -0.1), None);
        assert_eq!(quantile(&[1.0], 1.1), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn fraction_counts() {
        assert_eq!(fraction_where(&[], |_| true), 0.0);
        assert_eq!(fraction_where(&[1.0, 2.0], |x| x > 0.0), 1.0);
        assert_eq!(fraction_where(&[1.0, 2.0], |x| x > 1.5), 0.5);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let h = histogram(&[-1.0, 0.1, 0.5, 0.9, 2.0], 0.0, 1.0, 2);
        // -1.0 clamps into bin 0; 0.5 lands on the boundary and goes up;
        // 2.0 clamps into bin 1.
        assert_eq!(h, vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = histogram(&[1.0], 0.0, 1.0, 0);
    }
}
