//! The shared solver-convergence diagnostic.
//!
//! Every iterative solver in the workspace (SOR and CG on the power
//! grid, the thermal-RC settle loop, the electro-thermal fixed point)
//! fails the same way: the residual stops shrinking. A bare "did not
//! converge" hides *how* it stopped — budget exhausted, operator lost
//! positive-definiteness, residual went NaN, or the iterate escaped its
//! physical domain — and that distinction decides whether the caller
//! retries, re-conditions, or reports runaway. [`Convergence`] carries
//! the iterations used, the final residual, a short tail of the residual
//! history, and a typed [`Breakdown`] reason; solvers build it through a
//! [`ResidualTrace`] they update as they iterate.

use std::fmt;

/// How many trailing residuals a [`ResidualTrace`] keeps by default.
pub const DEFAULT_RESIDUAL_TAIL: usize = 8;

/// Why an iteration stopped short of its tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Breakdown {
    /// The iteration budget was exhausted before the tolerance was met.
    IterationBudget,
    /// The operator lost positive-definiteness (CG's `pᵀAp ≤ 0`): the
    /// problem is singular or indefinite, and more iterations cannot help.
    IndefiniteOperator {
        /// The offending curvature `pᵀAp`.
        curvature: f64,
    },
    /// A residual or iterate became NaN or infinite.
    NonFinite {
        /// Iteration at which finiteness was lost.
        at_iteration: usize,
    },
    /// The iterate left its physical domain (e.g. a junction temperature
    /// above the runaway ceiling).
    DomainEscape {
        /// The escaping value.
        value: f64,
        /// The domain bound it crossed.
        bound: f64,
    },
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Breakdown::IterationBudget => write!(f, "iteration budget exhausted"),
            Breakdown::IndefiniteOperator { curvature } => {
                write!(f, "operator not positive-definite (pᵀAp = {curvature:.3e})")
            }
            Breakdown::NonFinite { at_iteration } => {
                write!(f, "residual became non-finite at iteration {at_iteration}")
            }
            Breakdown::DomainEscape { value, bound } => {
                write!(
                    f,
                    "iterate escaped its domain ({value:.3e} past {bound:.3e})"
                )
            }
        }
    }
}

/// The diagnostic attached to no-convergence errors: what the iteration
/// did before it gave up.
#[derive(Debug, Clone, PartialEq)]
pub struct Convergence {
    /// Iterations performed.
    pub iterations: usize,
    /// Residual at the moment the solver stopped (NaN when the solver
    /// never computed one).
    pub final_residual: f64,
    /// The last few residuals, oldest first — enough to see whether the
    /// iteration was stalled, diverging, or oscillating.
    pub residual_tail: Vec<f64>,
    /// Why the iteration stopped.
    pub reason: Breakdown,
}

impl fmt::Display for Convergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} iterations (residual {:.3e}; tail ",
            self.reason, self.iterations, self.final_residual
        )?;
        for (i, r) in self.residual_tail.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{r:.2e}")?;
        }
        write!(f, ")")
    }
}

/// A rolling residual recorder solvers update each sweep; at failure it
/// freezes into a [`Convergence`].
#[derive(Debug, Clone)]
pub struct ResidualTrace {
    iterations: usize,
    tail: Vec<f64>,
    cap: usize,
}

impl ResidualTrace {
    /// A trace keeping the last [`DEFAULT_RESIDUAL_TAIL`] residuals.
    pub fn new() -> Self {
        Self::with_tail(DEFAULT_RESIDUAL_TAIL)
    }

    /// A trace keeping the last `cap` residuals (`cap ≥ 1`).
    pub fn with_tail(cap: usize) -> Self {
        Self {
            iterations: 0,
            tail: Vec::with_capacity(cap.max(1)),
            cap: cap.max(1),
        }
    }

    /// Records the residual of one completed iteration.
    pub fn record(&mut self, residual: f64) {
        self.iterations += 1;
        if self.tail.len() == self.cap {
            self.tail.remove(0);
        }
        self.tail.push(residual);
    }

    /// Iterations recorded so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The most recent residual, or NaN before the first [`record`].
    ///
    /// [`record`]: ResidualTrace::record
    pub fn last_residual(&self) -> f64 {
        self.tail.last().copied().unwrap_or(f64::NAN)
    }

    /// Freezes the trace into the diagnostic attached to an error.
    pub fn diagnostic(&self, reason: Breakdown) -> Convergence {
        Convergence {
            iterations: self.iterations,
            final_residual: self.last_residual(),
            residual_tail: self.tail.clone(),
            reason,
        }
    }
}

impl Default for ResidualTrace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_keeps_only_the_tail() {
        let mut t = ResidualTrace::with_tail(3);
        for r in [5.0, 4.0, 3.0, 2.0, 1.0] {
            t.record(r);
        }
        assert_eq!(t.iterations(), 5);
        assert_eq!(t.last_residual(), 1.0);
        let d = t.diagnostic(Breakdown::IterationBudget);
        assert_eq!(d.residual_tail, vec![3.0, 2.0, 1.0]);
        assert_eq!(d.iterations, 5);
        assert_eq!(d.final_residual, 1.0);
    }

    #[test]
    fn empty_trace_has_nan_residual() {
        let d = ResidualTrace::new().diagnostic(Breakdown::IterationBudget);
        assert!(d.final_residual.is_nan());
        assert!(d.residual_tail.is_empty());
        assert_eq!(d.iterations, 0);
    }

    #[test]
    fn display_names_the_reason_and_tail() {
        let mut t = ResidualTrace::new();
        t.record(1e-3);
        t.record(2e-3);
        let s = format!("{}", t.diagnostic(Breakdown::IterationBudget));
        assert!(s.contains("iteration budget"), "{s}");
        assert!(s.contains("2.000e-3"), "{s}");
        assert!(s.contains("1.00e-3 → 2.00e-3"), "{s}");
    }

    #[test]
    fn breakdown_reasons_display_distinctly() {
        let texts = [
            format!("{}", Breakdown::IterationBudget),
            format!("{}", Breakdown::IndefiniteOperator { curvature: -1.0 }),
            format!("{}", Breakdown::NonFinite { at_iteration: 7 }),
            format!(
                "{}",
                Breakdown::DomainEscape {
                    value: 300.0,
                    bound: 250.0
                }
            ),
        ];
        assert!(texts[0].contains("budget"));
        assert!(texts[1].contains("positive-definite"));
        assert!(texts[2].contains("iteration 7"));
        assert!(texts[3].contains("escaped"));
        for (i, a) in texts.iter().enumerate() {
            for b in texts.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
