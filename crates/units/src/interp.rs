//! One-dimensional table interpolation.
//!
//! Roadmap quantities (θja trends, bump pitches, wiring parameters) are
//! specified at the six ITRS nodes; analyses between nodes interpolate with
//! [`Table1d`].

use std::fmt;

/// Error constructing or evaluating a [`Table1d`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Fewer than two points were supplied.
    TooFewPoints,
    /// The abscissae are not strictly increasing.
    NotIncreasing,
    /// The query lies outside the table and extrapolation is disabled.
    OutOfRange,
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::TooFewPoints => write!(f, "table needs at least two points"),
            TableError::NotIncreasing => write!(f, "table abscissae must be strictly increasing"),
            TableError::OutOfRange => write!(f, "query outside table range"),
        }
    }
}

impl std::error::Error for TableError {}

/// How queries beyond the table ends are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Extrapolate {
    /// Clamp to the end values (default — safest for physical tables).
    #[default]
    Clamp,
    /// Extend the end segments linearly.
    Linear,
    /// Refuse with [`TableError::OutOfRange`].
    Error,
}

/// A piecewise-linear lookup table `y(x)` with strictly increasing `x`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), np_units::interp::TableError> {
/// use np_units::interp::Table1d;
///
/// // θja trend versus year, clamped outside the given range.
/// let theta = Table1d::new(vec![1999.0, 2002.0, 2005.0], vec![1.0, 0.5, 0.25])?;
/// assert!((theta.eval(2000.5)? - 0.75).abs() < 1e-12);
/// assert_eq!(theta.eval(1990.0)?, 1.0); // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table1d {
    xs: Vec<f64>,
    ys: Vec<f64>,
    extrapolate: Extrapolate,
}

impl Table1d {
    /// Builds a table from matching `x`/`y` vectors with clamped ends.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::TooFewPoints`] for fewer than two points and
    /// [`TableError::NotIncreasing`] when `xs` is not strictly increasing
    /// (or the vectors differ in length).
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, TableError> {
        Self::with_extrapolation(xs, ys, Extrapolate::Clamp)
    }

    /// Builds a table with an explicit extrapolation policy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Table1d::new`].
    pub fn with_extrapolation(
        xs: Vec<f64>,
        ys: Vec<f64>,
        extrapolate: Extrapolate,
    ) -> Result<Self, TableError> {
        if xs.len() < 2 || xs.len() != ys.len() {
            return Err(TableError::TooFewPoints);
        }
        if xs.windows(2).any(|w| !(w[0] < w[1])) {
            return Err(TableError::NotIncreasing);
        }
        Ok(Self {
            xs,
            ys,
            extrapolate,
        })
    }

    /// Evaluates the table at `x`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::OutOfRange`] when `x` lies outside the table
    /// and the policy is [`Extrapolate::Error`].
    pub fn eval(&self, x: f64) -> Result<f64, TableError> {
        let n = self.xs.len();
        if x < self.xs[0] {
            return match self.extrapolate {
                Extrapolate::Clamp => Ok(self.ys[0]),
                Extrapolate::Linear => Ok(self.segment(0, x)),
                Extrapolate::Error => Err(TableError::OutOfRange),
            };
        }
        if x > self.xs[n - 1] {
            return match self.extrapolate {
                Extrapolate::Clamp => Ok(self.ys[n - 1]),
                Extrapolate::Linear => Ok(self.segment(n - 2, x)),
                Extrapolate::Error => Err(TableError::OutOfRange),
            };
        }
        // partition_point returns the first index with xs[i] > x.
        let hi = self.xs.partition_point(|&v| v <= x).min(n - 1);
        let i = hi.saturating_sub(1);
        if self.xs[i] == x {
            return Ok(self.ys[i]);
        }
        Ok(self.segment(i, x))
    }

    /// The inclusive domain `[x_min, x_max]` of the table.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], self.xs[self.xs.len() - 1])
    }

    /// The number of knots in the table.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Always false: construction requires at least two knots.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn segment(&self, i: usize, x: f64) -> f64 {
        let (x0, x1) = (self.xs[i], self.xs[i + 1]);
        let (y0, y1) = (self.ys[i], self.ys[i + 1]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table1d {
        Table1d::new(vec![0.0, 1.0, 3.0], vec![0.0, 10.0, 30.0]).expect("valid")
    }

    #[test]
    fn interpolates_interior() {
        let t = table();
        assert!((t.eval(0.5).unwrap() - 5.0).abs() < 1e-12);
        assert!((t.eval(2.0).unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn hits_knots_exactly() {
        let t = table();
        assert_eq!(t.eval(0.0).unwrap(), 0.0);
        assert_eq!(t.eval(1.0).unwrap(), 10.0);
        assert_eq!(t.eval(3.0).unwrap(), 30.0);
    }

    #[test]
    fn clamps_by_default() {
        let t = table();
        assert_eq!(t.eval(-5.0).unwrap(), 0.0);
        assert_eq!(t.eval(99.0).unwrap(), 30.0);
    }

    #[test]
    fn linear_extrapolation() {
        let t = Table1d::with_extrapolation(vec![0.0, 1.0], vec![0.0, 2.0], Extrapolate::Linear)
            .unwrap();
        assert!((t.eval(2.0).unwrap() - 4.0).abs() < 1e-12);
        assert!((t.eval(-1.0).unwrap() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn error_extrapolation() {
        let t = Table1d::with_extrapolation(vec![0.0, 1.0], vec![0.0, 2.0], Extrapolate::Error)
            .unwrap();
        assert_eq!(t.eval(2.0), Err(TableError::OutOfRange));
        assert!(t.eval(0.5).is_ok());
    }

    #[test]
    fn rejects_malformed_tables() {
        assert_eq!(
            Table1d::new(vec![0.0], vec![1.0]).unwrap_err(),
            TableError::TooFewPoints
        );
        assert_eq!(
            Table1d::new(vec![0.0, 0.0], vec![1.0, 2.0]).unwrap_err(),
            TableError::NotIncreasing
        );
        assert_eq!(
            Table1d::new(vec![1.0, 0.0], vec![1.0, 2.0]).unwrap_err(),
            TableError::NotIncreasing
        );
        assert_eq!(
            Table1d::new(vec![0.0, 1.0, 2.0], vec![1.0, 2.0]).unwrap_err(),
            TableError::TooFewPoints
        );
    }

    #[test]
    fn domain_and_len() {
        let t = table();
        assert_eq!(t.domain(), (0.0, 3.0));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", TableError::OutOfRange).contains("outside"));
    }
}
