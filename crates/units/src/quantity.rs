//! Newtype physical quantities.
//!
//! Each quantity wraps an `f64` in its canonical unit (documented on the
//! type). Same-type addition/subtraction, scaling by `f64`, and same-type
//! division (yielding a dimensionless `f64` ratio) are provided for every
//! quantity. A small set of cross-type operators implements the physics the
//! workspace actually uses (Ohm's law, `P = V·I`, `θja` relations, …).
//!
//! # Examples
//!
//! ```
//! use np_units::{Volts, Ohms, Amps, Watts, ThermalResistance, Celsius};
//!
//! // Ohm's law and power.
//! let i: Amps = Volts(1.0) / Ohms(4.0);
//! let p: Watts = Volts(1.0) * i;
//! assert_eq!(p, Watts(0.25));
//!
//! // Junction temperature from package thermal resistance (paper Eq. 1).
//! let tj: Celsius = Celsius(45.0) + ThermalResistance(0.8) * Watts(60.0);
//! assert_eq!(tj, Celsius(93.0));
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Implements the standard algebra shared by all scalar quantities.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new value; identical to the tuple constructor but
            /// reads better in builder chains.
            #[inline]
            pub fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the canonical unit.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the element-wise maximum of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the element-wise minimum of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// True when the underlying value is finite (not NaN/±∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        /// Same-type division yields a dimensionless ratio.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(q: $name) -> f64 {
                q.0
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Amps,
    "A"
);
quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);
quantity!(
    /// Capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Temperature in degrees Celsius.
    Celsius,
    "°C"
);
quantity!(
    /// Absolute temperature in kelvin.
    Kelvin,
    "K"
);
quantity!(
    /// Length in micrometers — the natural unit of on-chip geometry.
    Microns,
    "µm"
);
quantity!(
    /// Length in nanometers — the natural unit of device dimensions.
    Nanometers,
    "nm"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Areal power density in watts per square centimeter.
    WattsPerCm2,
    "W/cm²"
);
quantity!(
    /// Junction-to-ambient thermal resistance `θja` in °C per watt
    /// (paper Eq. 1).
    ThermalResistance,
    "°C/W"
);
quantity!(
    /// Width-normalized transistor current in microamperes per micron of
    /// gate width — the unit the paper quotes `Ion` in.
    MicroampsPerMicron,
    "µA/µm"
);
quantity!(
    /// Sheet resistance in ohms per square.
    OhmsPerSquare,
    "Ω/sq"
);
quantity!(
    /// Inductance in picohenries — the natural unit of package parasitics.
    Picohenries,
    "pH"
);
quantity!(
    /// Areal capacitance in farads per square centimeter (gate-oxide `Cox`).
    FaradsPerCm2,
    "F/cm²"
);
quantity!(
    /// Linear capacitance in farads per micron of wire length.
    FaradsPerMicron,
    "F/µm"
);
quantity!(
    /// Electric field in volts per micron (velocity-saturation `Esat`).
    VoltsPerMicron,
    "V/µm"
);
quantity!(
    /// Areal charge in coulombs per square centimeter.
    CoulombsPerCm2,
    "C/cm²"
);
quantity!(
    /// Area in square millimeters — the natural unit of die area.
    SquareMillimeters,
    "mm²"
);

// ---------------------------------------------------------------------------
// Unit-scaled constructors and accessors.
// ---------------------------------------------------------------------------

impl Volts {
    /// Creates a value from millivolts.
    #[inline]
    pub fn from_milli(mv: f64) -> Self {
        Self(mv * 1e-3)
    }

    /// Returns the value in millivolts.
    #[inline]
    pub fn as_milli(self) -> f64 {
        self.0 * 1e3
    }
}

impl Amps {
    /// Creates a value from milliamperes.
    #[inline]
    pub fn from_milli(ma: f64) -> Self {
        Self(ma * 1e-3)
    }

    /// Creates a value from microamperes.
    #[inline]
    pub fn from_micro(ua: f64) -> Self {
        Self(ua * 1e-6)
    }

    /// Creates a value from nanoamperes.
    #[inline]
    pub fn from_nano(na: f64) -> Self {
        Self(na * 1e-9)
    }

    /// Returns the value in microamperes.
    #[inline]
    pub fn as_micro(self) -> f64 {
        self.0 * 1e6
    }
}

impl Watts {
    /// Creates a value from milliwatts.
    #[inline]
    pub fn from_milli(mw: f64) -> Self {
        Self(mw * 1e-3)
    }

    /// Creates a value from microwatts.
    #[inline]
    pub fn from_micro(uw: f64) -> Self {
        Self(uw * 1e-6)
    }

    /// Creates a value from nanowatts.
    #[inline]
    pub fn from_nano(nw: f64) -> Self {
        Self(nw * 1e-9)
    }

    /// Returns the value in milliwatts.
    #[inline]
    pub fn as_milli(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in microwatts.
    #[inline]
    pub fn as_micro(self) -> f64 {
        self.0 * 1e6
    }
}

impl Farads {
    /// Creates a value from femtofarads — the natural unit of gate loads.
    #[inline]
    pub fn from_femto(ff: f64) -> Self {
        Self(ff * 1e-15)
    }

    /// Creates a value from picofarads.
    #[inline]
    pub fn from_pico(pf: f64) -> Self {
        Self(pf * 1e-12)
    }

    /// Returns the value in femtofarads.
    #[inline]
    pub fn as_femto(self) -> f64 {
        self.0 * 1e15
    }

    /// Returns the value in picofarads.
    #[inline]
    pub fn as_pico(self) -> f64 {
        self.0 * 1e12
    }
}

impl Seconds {
    /// Creates a value from picoseconds — the natural unit of gate delay.
    #[inline]
    pub fn from_pico(ps: f64) -> Self {
        Self(ps * 1e-12)
    }

    /// Creates a value from nanoseconds.
    #[inline]
    pub fn from_nano(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// Returns the value in picoseconds.
    #[inline]
    pub fn as_pico(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the value in nanoseconds.
    #[inline]
    pub fn as_nano(self) -> f64 {
        self.0 * 1e9
    }
}

impl Hertz {
    /// Creates a value from gigahertz.
    #[inline]
    pub fn from_giga(ghz: f64) -> Self {
        Self(ghz * 1e9)
    }

    /// Creates a value from megahertz.
    #[inline]
    pub fn from_mega(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// Returns the value in gigahertz.
    #[inline]
    pub fn as_giga(self) -> f64 {
        self.0 * 1e-9
    }

    /// The period `1/f`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[inline]
    pub fn period(self) -> Seconds {
        assert!(self.0 != 0.0, "period of zero frequency");
        Seconds(1.0 / self.0)
    }
}

impl Celsius {
    /// Converts to absolute temperature.
    #[inline]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin(self.0 + 273.15)
    }
}

impl Kelvin {
    /// Converts to the Celsius scale.
    #[inline]
    pub fn to_celsius(self) -> Celsius {
        Celsius(self.0 - 273.15)
    }
}

impl Microns {
    /// Converts to nanometers.
    #[inline]
    pub fn to_nanometers(self) -> Nanometers {
        Nanometers(self.0 * 1e3)
    }

    /// Returns the value in centimeters (for areal-density math).
    #[inline]
    pub fn as_cm(self) -> f64 {
        self.0 * 1e-4
    }

    /// Returns the value in meters.
    #[inline]
    pub fn as_meters(self) -> f64 {
        self.0 * 1e-6
    }
}

impl Nanometers {
    /// Converts to micrometers.
    #[inline]
    pub fn to_microns(self) -> Microns {
        Microns(self.0 * 1e-3)
    }

    /// Returns the value in centimeters (for gate-capacitance math).
    #[inline]
    pub fn as_cm(self) -> f64 {
        self.0 * 1e-7
    }
}

impl MicroampsPerMicron {
    /// Creates a value from nanoamperes per micron — the unit the paper
    /// quotes `Ioff` in.
    #[inline]
    pub fn from_nano_per_micron(na_per_um: f64) -> Self {
        Self(na_per_um * 1e-3)
    }

    /// Returns the value in nanoamperes per micron.
    #[inline]
    pub fn as_nano_per_micron(self) -> f64 {
        self.0 * 1e3
    }

    /// The absolute current carried by a device of the given gate width.
    #[inline]
    pub fn total(self, width: Microns) -> Amps {
        Amps(self.0 * 1e-6 * width.0)
    }
}

impl SquareMillimeters {
    /// Returns the area in square centimeters.
    #[inline]
    pub fn as_cm2(self) -> f64 {
        self.0 * 1e-2
    }

    /// The side length of a square die of this area.
    #[inline]
    pub fn side(self) -> Microns {
        Microns((self.0.max(0.0)).sqrt() * 1e3)
    }
}

// ---------------------------------------------------------------------------
// Cross-type physics.
// ---------------------------------------------------------------------------

/// Ohm's law: `I = V / R`.
impl Div<Ohms> for Volts {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Ohms) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

/// Ohm's law: `V = I · R`.
impl Mul<Ohms> for Amps {
    type Output = Volts;
    #[inline]
    fn mul(self, rhs: Ohms) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

/// Ohm's law: `V = R · I`.
impl Mul<Amps> for Ohms {
    type Output = Volts;
    #[inline]
    fn mul(self, rhs: Amps) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

/// Ohm's law: `R = V / I`.
impl Div<Amps> for Volts {
    type Output = Ohms;
    #[inline]
    fn div(self, rhs: Amps) -> Ohms {
        Ohms(self.0 / rhs.0)
    }
}

/// Electrical power: `P = V · I`.
impl Mul<Amps> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// Electrical power: `P = I · V`.
impl Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// Current draw: `I = P / V`.
impl Div<Volts> for Watts {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Volts) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

/// Temperature rise across a package: `ΔT = θja · P` (paper Eq. 1).
impl Mul<Watts> for ThermalResistance {
    type Output = Celsius;
    #[inline]
    fn mul(self, rhs: Watts) -> Celsius {
        Celsius(self.0 * rhs.0)
    }
}

/// Charge on a capacitor: `Q = C · V`, returned as coulombs in `f64`.
impl Mul<Volts> for Farads {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Volts) -> f64 {
        self.0 * rhs.0
    }
}

/// Total wire capacitance: `C = c · L`.
impl Mul<Microns> for FaradsPerMicron {
    type Output = Farads;
    #[inline]
    fn mul(self, rhs: Microns) -> Farads {
        Farads(self.0 * rhs.0)
    }
}

/// RC time constant: `τ = R · C`.
impl Mul<Farads> for Ohms {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: Farads) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volts_algebra() {
        let a = Volts(1.0) + Volts(0.5) - Volts(0.2);
        assert!((a.0 - 1.3).abs() < 1e-12);
        assert_eq!(a * 2.0, Volts(2.6));
        assert_eq!(2.0 * a, Volts(2.6));
        assert!(((a / 2.0).0 - 0.65).abs() < 1e-12);
        assert!((a / Volts(0.65) - 2.0).abs() < 1e-12);
        assert_eq!(-Volts(1.0), Volts(-1.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Volts(1.0);
        v += Volts(0.5);
        v -= Volts(0.25);
        v *= 4.0;
        v /= 2.0;
        assert!((v.0 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ohms_law_round_trip() {
        let v = Volts(1.2);
        let r = Ohms(300.0);
        let i = v / r;
        assert!((i.0 - 0.004).abs() < 1e-15);
        assert!(((i * r).0 - v.0).abs() < 1e-12);
        assert!(((r * i).0 - v.0).abs() < 1e-12);
        assert!(((v / i).0 - r.0).abs() < 1e-9);
    }

    #[test]
    fn power_relations() {
        let p = Volts(0.9) * Amps(30.0);
        assert!((p.0 - 27.0).abs() < 1e-12);
        let i = p / Volts(0.9);
        assert!((i.0 - 30.0).abs() < 1e-12);
        assert_eq!(Amps(30.0) * Volts(0.9), p);
    }

    #[test]
    fn thermal_eq1() {
        // Paper Eq. 1 worked forward: Tj = Ta + θja * P.
        let tj = Celsius(45.0) + ThermalResistance(0.8) * Watts(68.75);
        assert!((tj.0 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn unit_scaled_ctors() {
        assert!((Volts::from_milli(850.0).0 - 0.85).abs() < 1e-12);
        assert!((Amps::from_micro(750.0).as_micro() - 750.0).abs() < 1e-9);
        assert!((Farads::from_femto(1.5).as_femto() - 1.5).abs() < 1e-9);
        assert!((Seconds::from_pico(12.0).as_pico() - 12.0).abs() < 1e-9);
        assert!((Hertz::from_giga(2.0).as_giga() - 2.0).abs() < 1e-12);
        assert!((Watts::from_milli(60.0).0 - 0.06).abs() < 1e-15);
    }

    #[test]
    fn temperature_scales() {
        assert!((Celsius(85.0).to_kelvin().0 - 358.15).abs() < 1e-9);
        assert!((Kelvin(300.0).to_celsius().0 - 26.85).abs() < 1e-9);
    }

    #[test]
    fn length_conversions() {
        assert!((Microns(1.0).to_nanometers().0 - 1000.0).abs() < 1e-9);
        assert!((Nanometers(22.0).to_microns().0 - 0.022).abs() < 1e-12);
        assert!((Microns(10_000.0).as_cm() - 1.0).abs() < 1e-12);
        assert!((Nanometers(10.0).as_cm() - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn linear_current() {
        let ion = MicroampsPerMicron(750.0);
        let i = ion.total(Microns(2.0));
        assert!((i.0 - 1.5e-3).abs() < 1e-12);
        let ioff = MicroampsPerMicron::from_nano_per_micron(40.0);
        assert!((ioff.as_nano_per_micron() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn period_of_clock() {
        let f = Hertz::from_giga(2.0);
        assert!((f.period().as_pico() - 500.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "period of zero frequency")]
    fn period_of_zero_frequency_panics() {
        let _ = Hertz(0.0).period();
    }

    #[test]
    fn display_with_units() {
        assert_eq!(format!("{:.2}", Volts(1.234)), "1.23 V");
        assert_eq!(format!("{}", Ohms(5.0)), "5 Ω");
        assert_eq!(format!("{:.1}", Celsius(85.04)), "85.0 °C");
    }

    #[test]
    fn sum_iterates() {
        let total: Watts = [Watts(1.0), Watts(2.5), Watts(0.5)].into_iter().sum();
        assert!((total.0 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(Volts(-2.0).abs(), Volts(2.0));
        assert_eq!(Volts(1.0).max(Volts(2.0)), Volts(2.0));
        assert_eq!(Volts(1.0).min(Volts(2.0)), Volts(1.0));
        assert!(Volts(1.0).is_finite());
        assert!(!Volts(f64::NAN).is_finite());
    }

    #[test]
    fn area_side() {
        let a = SquareMillimeters(400.0);
        assert!((a.side().0 - 20_000.0).abs() < 1e-6);
        assert!((a.as_cm2() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rc_time_constant() {
        let tau = Ohms(1000.0) * Farads::from_femto(100.0);
        assert!((tau.as_pico() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn wire_capacitance() {
        let c = FaradsPerMicron(0.2e-15) * Microns(1000.0);
        assert!((c.as_femto() - 200.0).abs() < 1e-9);
    }
}
