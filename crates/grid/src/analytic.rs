//! Closed-form bump-cell IR-drop model (BACPAC-style, ref. \[41\]).
//!
//! Geometry: flip-chip bumps on a square array of pitch `P`; the top-level
//! grid runs one rail per net per bump row/column (the paper's "80 µm bump
//! *and power-grid* pitch"). A rail of width `w` and sheet resistance
//! `ρ_s` collects the hot-spot current of a `P`-wide strip; current
//! accumulates toward the bump, so the worst-case (cell-centre) drop is
//!
//! ```text
//! ΔV = k_geo · J_hot · P³ · ρ_s / (8 · w)
//! ```
//!
//! `k_geo` absorbs the 2-D current convergence near the bump; it is
//! validated against the independent mesh solver in [`crate::mesh`].
//!
//! Budgeting: the "<10 % IR drop" budget is split between the Vdd and GND
//! networks and between the top-level grid and the lower-level
//! distribution under the designer's control (Section 4 treats only the
//! technology-limited top level).

use crate::error::GridError;
use crate::hotspot::HOTSPOT_FACTOR;
use np_roadmap::TechNode;
use np_units::{Microns, Volts};

/// Geometric convergence factor of the bump-cell drop formula, calibrated
/// once against the independent mesh solver of [`crate::mesh`] (the 2-D
/// current convergence near a point-like bump roughly doubles the 1-D
/// rail-accumulation estimate, and the centre of the cell sits a full
/// half-pitch from the pin in both axes).
pub const K_GEO: f64 = 5.6;

/// How the IR-drop budget is allocated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrBudget {
    /// Total supply-noise budget as a fraction of Vdd (the paper's 10 %).
    pub total_fraction: f64,
    /// Share of the budget allocated to the technology-limited top level
    /// (the rest belongs to the on-chip distribution below it).
    pub top_level_share: f64,
}

impl Default for IrBudget {
    fn default() -> Self {
        Self {
            total_fraction: 0.10,
            top_level_share: 0.5,
        }
    }
}

impl IrBudget {
    /// The drop each net (Vdd or GND) may take on the top level.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::BadParameter`] for fractions outside `(0, 1]`.
    pub fn per_net(&self, vdd: Volts) -> Result<Volts, GridError> {
        if !(self.total_fraction > 0.0 && self.total_fraction <= 1.0) {
            return Err(GridError::BadParameter("total fraction must be in (0, 1]"));
        }
        if !(self.top_level_share > 0.0 && self.top_level_share <= 1.0) {
            return Err(GridError::BadParameter("top-level share must be in (0, 1]"));
        }
        Ok(vdd * (self.total_fraction * self.top_level_share * 0.5))
    }
}

/// Hot-spot current density of a node in A/µm² at its nominal supply.
pub fn hotspot_current_density(node: TechNode) -> f64 {
    let p = node.params();
    let density_w_per_cm2 = p.average_power_density().0 * HOTSPOT_FACTOR;
    density_w_per_cm2 / p.vdd.0 / 1e8 // W/cm² / V -> A/cm² -> A/µm²
}

/// Worst-case top-level drop per net for a given rail width and bump
/// pitch.
///
/// # Errors
///
/// Returns [`GridError::BadParameter`] for non-positive geometry.
pub fn worst_case_drop(
    node: TechNode,
    bump_pitch: Microns,
    rail_width: Microns,
) -> Result<Volts, GridError> {
    if !(bump_pitch.0 > 0.0 && rail_width.0 > 0.0) {
        return Err(GridError::BadParameter("pitch and width must be positive"));
    }
    let j = hotspot_current_density(node);
    let rho_s = node.params().top_metal_sheet_resistance().0;
    Ok(Volts(
        K_GEO * j * bump_pitch.0.powi(3) * rho_s / (8.0 * rail_width.0),
    ))
}

/// The rail width meeting the budget at the given bump pitch (the Fig. 5
/// y-axis before normalization).
///
/// # Errors
///
/// Propagates budget errors; returns [`GridError::Infeasible`] when the
/// required rail is wider than the bump pitch itself (no room to route
/// it).
pub fn required_rail_width(
    node: TechNode,
    bump_pitch: Microns,
    budget: &IrBudget,
) -> Result<Microns, GridError> {
    if !(bump_pitch.0 > 0.0) {
        return Err(GridError::BadParameter("pitch must be positive"));
    }
    let allowed = budget.per_net(node.params().vdd)?;
    let j = hotspot_current_density(node);
    let rho_s = node.params().top_metal_sheet_resistance().0;
    let w = K_GEO * j * bump_pitch.0.powi(3) * rho_s / (8.0 * allowed.0);
    let w = Microns(w.max(node.params().top_metal_min_width.0));
    // A Vdd and a GND rail must both fit under each bump pitch; beyond
    // half the pitch each, nothing is left for signal routing.
    if w.0 > bump_pitch.0 / 2.0 {
        return Err(GridError::Infeasible { width_um: w.0 });
    }
    Ok(w)
}

/// Fraction of top-level routing consumed by the power rails: one Vdd and
/// one GND rail per bump-pair pitch (`2P`, since power bumps alternate
/// nets).
pub fn rail_routing_fraction(rail_width: Microns, bump_pitch: Microns) -> f64 {
    2.0 * rail_width.0 / (2.0 * bump_pitch.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_scales_inversely_with_width() {
        let node = TechNode::N35;
        let p = Microns(80.0);
        let d1 = worst_case_drop(node, p, Microns(1.0)).unwrap();
        let d4 = worst_case_drop(node, p, Microns(4.0)).unwrap();
        assert!((d1.0 / d4.0 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn drop_scales_cubically_with_pitch() {
        let node = TechNode::N35;
        let w = Microns(2.0);
        let d1 = worst_case_drop(node, Microns(80.0), w).unwrap();
        let d2 = worst_case_drop(node, Microns(160.0), w).unwrap();
        assert!((d2.0 / d1.0 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn budget_per_net_is_2_5_percent_of_vdd() {
        let b = IrBudget::default();
        let v = b.per_net(Volts(0.6)).unwrap();
        assert!((v.0 - 0.015).abs() < 1e-12);
    }

    #[test]
    fn required_width_at_35nm_min_pitch_matches_fig5() {
        // Fig. 5: rails ~16x minimum width at the 80 µm minimum pitch.
        let w = required_rail_width(TechNode::N35, Microns(80.0), &IrBudget::default()).unwrap();
        let ratio = w.0 / TechNode::N35.params().top_metal_min_width.0;
        assert!((8.0..=30.0).contains(&ratio), "got {ratio:.1}x min width");
    }

    #[test]
    fn solved_width_meets_the_budget() {
        let node = TechNode::N50;
        let pitch = Microns(90.0);
        let budget = IrBudget::default();
        let w = required_rail_width(node, pitch, &budget).unwrap();
        let drop = worst_case_drop(node, pitch, w).unwrap();
        let allowed = budget.per_net(node.params().vdd).unwrap();
        assert!(drop <= allowed * 1.0001);
    }

    #[test]
    fn itrs_pitch_is_infeasible_or_enormous() {
        // At the ~356 µm ITRS effective pitch the requirement explodes
        // (the paper's "over 2000X the minimum"); with rails capped at the
        // pitch it is simply infeasible.
        let r = required_rail_width(TechNode::N35, Microns(356.0), &IrBudget::default());
        match r {
            Err(GridError::Infeasible { width_um }) => {
                assert!(width_um / 0.25 > 500.0, "width {width_um}")
            }
            Ok(w) => panic!("expected blow-up, got {w}"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn routing_fraction_is_a_few_percent_at_min_pitch() {
        // Fig. 5 text: power rails "will consume less than 4% of top-level
        // routing resources".
        let node = TechNode::N35;
        let w = required_rail_width(node, Microns(80.0), &IrBudget::default()).unwrap();
        let f = rail_routing_fraction(w, Microns(80.0));
        assert!(f < 0.08, "got {:.1}%", f * 100.0);
    }

    #[test]
    fn tiny_requirements_clamp_to_min_width() {
        // A coarse node at a tiny pitch needs less than minimum width;
        // the answer clamps to the manufacturable minimum.
        let node = TechNode::N180;
        let w = required_rail_width(node, Microns(20.0), &IrBudget::default()).unwrap();
        assert_eq!(w.0, node.params().top_metal_min_width.0);
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(worst_case_drop(TechNode::N35, Microns(0.0), Microns(1.0)).is_err());
        assert!(worst_case_drop(TechNode::N35, Microns(80.0), Microns(0.0)).is_err());
        let bad = IrBudget {
            total_fraction: 0.0,
            top_level_share: 0.5,
        };
        assert!(bad.per_net(Volts(1.0)).is_err());
    }
}
