//! Successive over-relaxation solver for resistive meshes.
//!
//! Solves `G·V = I` on a regular 2-D grid of nodes connected by uniform
//! edge conductances, with a set of Dirichlet (voltage-pinned) nodes —
//! the discrete form of a power-grid sheet fed by bumps.

use crate::error::GridError;
use np_units::convergence::{Breakdown, ResidualTrace};
use np_units::guard;

/// A rectangular resistive mesh problem.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshProblem {
    /// Nodes per row.
    pub nx: usize,
    /// Nodes per column.
    pub ny: usize,
    /// Conductance of every horizontal/vertical edge (siemens).
    pub edge_conductance: f64,
    /// Current injected (drawn) at each node, amperes; positive values are
    /// load current pulled *out* of the grid.
    pub injection: Vec<f64>,
    /// Nodes pinned to 0 V (the bumps).
    pub pinned: Vec<bool>,
}

impl MeshProblem {
    /// An `nx × ny` mesh with zero injections and no pins.
    ///
    /// # Panics
    ///
    /// Panics for an empty mesh or non-positive conductance.
    pub fn new(nx: usize, ny: usize, edge_conductance: f64) -> Self {
        assert!(nx >= 2 && ny >= 2, "mesh needs at least 2x2 nodes");
        assert!(edge_conductance > 0.0, "conductance must be positive");
        Self {
            nx,
            ny,
            edge_conductance,
            injection: vec![0.0; nx * ny],
            pinned: vec![false; nx * ny],
        }
    }

    /// Linear index of node `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn index(&self, x: usize, y: usize) -> usize {
        assert!(x < self.nx && y < self.ny, "node out of range");
        y * self.nx + x
    }

    /// Validates the problem before a solve: a pinned node must exist,
    /// the conductance must be finite and positive, the injection vector
    /// must be finite and sized to the mesh, and the pin mask must match.
    ///
    /// # Errors
    ///
    /// [`GridError::BadParameter`] or [`GridError::NonFinite`] naming the
    /// offending field.
    pub fn validate(&self) -> Result<(), GridError> {
        if self.nx < 2 || self.ny < 2 {
            return Err(GridError::BadParameter("mesh needs at least 2x2 nodes"));
        }
        guard::finite_positive(
            self.edge_conductance,
            "edge conductance",
            "MeshProblem::solve",
        )?;
        if self.injection.len() != self.nx * self.ny {
            return Err(GridError::BadParameter(
                "injection vector must have nx*ny entries",
            ));
        }
        if self.pinned.len() != self.nx * self.ny {
            return Err(GridError::BadParameter("pin mask must have nx*ny entries"));
        }
        guard::all_finite(&self.injection, "injection", "MeshProblem::solve")?;
        if !self.pinned.iter().any(|&p| p) {
            return Err(GridError::BadParameter("at least one node must be pinned"));
        }
        Ok(())
    }

    /// Solves for node voltages by red-black SOR.
    ///
    /// Voltages are drops below the (0 V) bump potential: load current
    /// pulls nodes negative, so callers typically report `-V.min()` as the
    /// worst-case drop.
    ///
    /// # Errors
    ///
    /// [`GridError::BadParameter`]/[`GridError::NonFinite`] when
    /// [`MeshProblem::validate`] rejects the problem;
    /// [`GridError::NoConvergence`] (with a [`Convergence`] diagnostic)
    /// when the iteration stalls.
    ///
    /// [`Convergence`]: np_units::convergence::Convergence
    pub fn solve(&self) -> Result<Vec<f64>, GridError> {
        self.validate()?;
        let _span = np_telemetry::span("grid.sor.solve");
        let (nx, ny) = (self.nx, self.ny);
        let g = self.edge_conductance;
        let mut v = vec![0.0f64; nx * ny];
        let omega = 1.9;
        let max_iters = 50_000;
        let tol = 1e-12;
        let mut trace = ResidualTrace::new();
        // The labeled block funnels every exit through one point so the
        // sweep count is recorded exactly once, success or failure.
        let result = 'solve: {
            for _ in 0..max_iters {
                let mut max_delta = 0.0f64;
                for color in 0..2 {
                    for y in 0..ny {
                        for x in 0..nx {
                            if (x + y) % 2 != color {
                                continue;
                            }
                            let i = y * nx + x;
                            if self.pinned[i] {
                                continue;
                            }
                            let mut sum = 0.0;
                            let mut deg = 0.0;
                            if x > 0 {
                                sum += v[i - 1];
                                deg += 1.0;
                            }
                            if x + 1 < nx {
                                sum += v[i + 1];
                                deg += 1.0;
                            }
                            if y > 0 {
                                sum += v[i - nx];
                                deg += 1.0;
                            }
                            if y + 1 < ny {
                                sum += v[i + nx];
                                deg += 1.0;
                            }
                            // KCL: deg*g*v_i = g*sum - I_i  (I positive = draw).
                            let target = (g * sum - self.injection[i]) / (deg * g);
                            let next = v[i] + omega * (target - v[i]);
                            max_delta = max_delta.max((next - v[i]).abs());
                            v[i] = next;
                        }
                    }
                }
                trace.record(max_delta);
                if !max_delta.is_finite() {
                    break 'solve Err(GridError::NoConvergence {
                        diag: trace.diagnostic(Breakdown::NonFinite {
                            at_iteration: trace.iterations(),
                        }),
                    });
                }
                if max_delta < tol {
                    break 'solve Ok(v);
                }
            }
            Err(GridError::NoConvergence {
                diag: trace.diagnostic(Breakdown::IterationBudget),
            })
        };
        np_telemetry::counter("grid.sor.iterations", trace.iterations() as u64);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_pinned_mesh_is_flat() {
        let mut m = MeshProblem::new(8, 8, 1.0);
        let c = m.index(0, 0);
        m.pinned[c] = true;
        let v = m.solve().unwrap();
        assert!(v.iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    fn single_load_single_pin_matches_series_resistance() {
        // A 1-D chain (2 x n degenerate mesh is awkward; use a 2-node-wide
        // strip and compare against hand math on a 2x2).
        let mut m = MeshProblem::new(2, 2, 1.0);
        let pin = m.index(0, 0);
        m.pinned[pin] = true;
        let load = m.index(1, 1);
        m.injection[load] = 1.0; // 1 A drawn
        let v = m.solve().unwrap();
        // Two parallel 2-edge paths from pin to load: R = (1+1)||(1+1) = 1 Ω.
        assert!((v[load] + 1.0).abs() < 1e-6, "got {}", v[load]);
    }

    #[test]
    fn drop_grows_with_distance_from_pin() {
        let mut m = MeshProblem::new(16, 16, 1.0);
        let pin = m.index(0, 0);
        m.pinned[pin] = true;
        for i in 0..m.injection.len() {
            m.injection[i] = 1e-3;
        }
        let v = m.solve().unwrap();
        let near = -v[m.index(1, 1)];
        let far = -v[m.index(15, 15)];
        assert!(far > near, "far {far} vs near {near}");
    }

    #[test]
    fn more_pins_reduce_drop() {
        let build = |pins: &[(usize, usize)]| {
            let mut m = MeshProblem::new(17, 17, 1.0);
            for &(x, y) in pins {
                let idx = m.index(x, y);
                m.pinned[idx] = true;
            }
            for i in 0..m.injection.len() {
                m.injection[i] = 1e-3;
            }
            let v = m.solve().unwrap();
            -v.iter().copied().fold(f64::INFINITY, f64::min)
        };
        let one = build(&[(8, 8)]);
        let five = build(&[(8, 8), (0, 0), (16, 0), (0, 16), (16, 16)]);
        assert!(five < one);
    }

    #[test]
    fn unpinned_mesh_is_rejected() {
        let m = MeshProblem::new(4, 4, 1.0);
        assert!(matches!(m.solve(), Err(GridError::BadParameter(_))));
    }

    #[test]
    fn drop_scales_inversely_with_conductance() {
        let run = |g: f64| {
            let mut m = MeshProblem::new(9, 9, g);
            let pin = m.index(4, 4);
            m.pinned[pin] = true;
            for i in 0..m.injection.len() {
                m.injection[i] = 1e-3;
            }
            let v = m.solve().unwrap();
            -v.iter().copied().fold(f64::INFINITY, f64::min)
        };
        let d1 = run(1.0);
        let d2 = run(2.0);
        assert!((d1 / d2 - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn tiny_mesh_panics() {
        let _ = MeshProblem::new(1, 4, 1.0);
    }
}
