//! Successive over-relaxation solver for resistive meshes.
//!
//! Solves `G·V = I` on a regular 2-D grid of nodes connected by uniform
//! edge conductances, with a set of Dirichlet (voltage-pinned) nodes —
//! the discrete form of a power-grid sheet fed by bumps.

use crate::error::GridError;
use crate::shard::{self, AtomicF64Vec};
use np_units::convergence::{Breakdown, ResidualTrace};
use np_units::guard;
use std::ops::Range;
use std::sync::{Barrier, Mutex, PoisonError};

/// A rectangular resistive mesh problem.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshProblem {
    /// Nodes per row.
    pub nx: usize,
    /// Nodes per column.
    pub ny: usize,
    /// Conductance of every horizontal/vertical edge (siemens).
    pub edge_conductance: f64,
    /// Current injected (drawn) at each node, amperes; positive values are
    /// load current pulled *out* of the grid.
    pub injection: Vec<f64>,
    /// Nodes pinned to 0 V (the bumps).
    pub pinned: Vec<bool>,
}

impl MeshProblem {
    /// An `nx × ny` mesh with zero injections and no pins.
    ///
    /// # Panics
    ///
    /// Panics for an empty mesh or non-positive conductance.
    pub fn new(nx: usize, ny: usize, edge_conductance: f64) -> Self {
        assert!(nx >= 2 && ny >= 2, "mesh needs at least 2x2 nodes");
        assert!(edge_conductance > 0.0, "conductance must be positive");
        Self {
            nx,
            ny,
            edge_conductance,
            injection: vec![0.0; nx * ny],
            pinned: vec![false; nx * ny],
        }
    }

    /// Linear index of node `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn index(&self, x: usize, y: usize) -> usize {
        assert!(x < self.nx && y < self.ny, "node out of range");
        y * self.nx + x
    }

    /// Validates the problem before a solve: a pinned node must exist,
    /// the conductance must be finite and positive, the injection vector
    /// must be finite and sized to the mesh, and the pin mask must match.
    ///
    /// # Errors
    ///
    /// [`GridError::BadParameter`] or [`GridError::NonFinite`] naming the
    /// offending field.
    pub fn validate(&self) -> Result<(), GridError> {
        if self.nx < 2 || self.ny < 2 {
            return Err(GridError::BadParameter("mesh needs at least 2x2 nodes"));
        }
        guard::finite_positive(
            self.edge_conductance,
            "edge conductance",
            "MeshProblem::solve",
        )?;
        if self.injection.len() != self.nx * self.ny {
            return Err(GridError::BadParameter(
                "injection vector must have nx*ny entries",
            ));
        }
        if self.pinned.len() != self.nx * self.ny {
            return Err(GridError::BadParameter("pin mask must have nx*ny entries"));
        }
        guard::all_finite(&self.injection, "injection", "MeshProblem::solve")?;
        if !self.pinned.iter().any(|&p| p) {
            return Err(GridError::BadParameter("at least one node must be pinned"));
        }
        Ok(())
    }

    /// Solves for node voltages by red-black SOR.
    ///
    /// Voltages are drops below the (0 V) bump potential: load current
    /// pulls nodes negative, so callers typically report `-V.min()` as the
    /// worst-case drop.
    ///
    /// # Errors
    ///
    /// [`GridError::BadParameter`]/[`GridError::NonFinite`] when
    /// [`MeshProblem::validate`] rejects the problem;
    /// [`GridError::NoConvergence`] (with a [`Convergence`] diagnostic)
    /// when the iteration stalls.
    ///
    /// [`Convergence`]: np_units::convergence::Convergence
    pub fn solve(&self) -> Result<Vec<f64>, GridError> {
        self.validate()?;
        let _span = np_telemetry::span("grid.sor.solve");
        let (nx, ny) = (self.nx, self.ny);
        let g = self.edge_conductance;
        let mut v = vec![0.0f64; nx * ny];
        let omega = 1.9;
        let max_iters = 50_000;
        let tol = 1e-12;
        let mut trace = ResidualTrace::new();
        // The labeled block funnels every exit through one point so the
        // sweep count is recorded exactly once, success or failure.
        let result = 'solve: {
            for _ in 0..max_iters {
                let mut max_delta = 0.0f64;
                for color in 0..2 {
                    for y in 0..ny {
                        for x in 0..nx {
                            if (x + y) % 2 != color {
                                continue;
                            }
                            let i = y * nx + x;
                            if self.pinned[i] {
                                continue;
                            }
                            let mut sum = 0.0;
                            let mut deg = 0.0;
                            if x > 0 {
                                sum += v[i - 1];
                                deg += 1.0;
                            }
                            if x + 1 < nx {
                                sum += v[i + 1];
                                deg += 1.0;
                            }
                            if y > 0 {
                                sum += v[i - nx];
                                deg += 1.0;
                            }
                            if y + 1 < ny {
                                sum += v[i + nx];
                                deg += 1.0;
                            }
                            // KCL: deg*g*v_i = g*sum - I_i  (I positive = draw).
                            let target = (g * sum - self.injection[i]) / (deg * g);
                            let next = v[i] + omega * (target - v[i]);
                            max_delta = max_delta.max((next - v[i]).abs());
                            v[i] = next;
                        }
                    }
                }
                trace.record(max_delta);
                if !max_delta.is_finite() {
                    break 'solve Err(GridError::NoConvergence {
                        diag: trace.diagnostic(Breakdown::NonFinite {
                            at_iteration: trace.iterations(),
                        }),
                    });
                }
                if max_delta < tol {
                    break 'solve Ok(v);
                }
            }
            Err(GridError::NoConvergence {
                diag: trace.diagnostic(Breakdown::IterationBudget),
            })
        };
        np_telemetry::counter("grid.sor.iterations", trace.iterations() as u64);
        result
    }

    /// Solves for node voltages by red-black SOR across `shards` parallel
    /// row bands.
    ///
    /// Red-black ordering makes every node of one color independent of
    /// all others of the same color, so each half-sweep parallelizes
    /// across row bands with a barrier between colors. The schedule
    /// performs *exactly* the arithmetic of [`MeshProblem::solve`] —
    /// same sweeps, same per-node updates, and a max-reduction (which is
    /// associative and commutative) for the convergence test — so the
    /// returned voltages are bitwise identical to the sequential solver
    /// for every shard count.
    ///
    /// `shards` is clamped to `1..=ny`; one shard falls back to the
    /// sequential path. Callers that want the machine-appropriate count
    /// should use [`crate::plan::SolvePlan`] instead of picking one here.
    ///
    /// # Errors
    ///
    /// Exactly those of [`MeshProblem::solve`].
    pub fn solve_parallel(&self, shards: usize) -> Result<Vec<f64>, GridError> {
        self.validate()?;
        let shards = shard::clamp_shards(shards, self.ny);
        if shards == 1 {
            return self.solve();
        }
        let _span = np_telemetry::span("grid.sor.solve_parallel");
        let omega = 1.9;
        let max_iters = 50_000;
        let tol = 1e-12;
        let v = AtomicF64Vec::zeros(self.nx * self.ny);
        let deltas = AtomicF64Vec::zeros(shards);
        let barrier = Barrier::new(shards);
        let bands = shard::row_bands(self.ny, shards);
        // Shard 0 owns the residual trace; it parks the final verdict
        // (and the sweep count for the telemetry counter) here.
        let outcome: Mutex<Option<(Result<(), GridError>, usize)>> = Mutex::new(None);
        let collector = np_telemetry::current();
        std::thread::scope(|scope| {
            for (shard_idx, band) in bands.iter().cloned().enumerate() {
                let (v, deltas, barrier, outcome, collector) =
                    (&v, &deltas, &barrier, &outcome, &collector);
                scope.spawn(move || {
                    let _telemetry = collector.as_ref().map(np_telemetry::install);
                    let _shard_span = np_telemetry::shard_span("grid.sor.shard", shard_idx);
                    let mut trace = ResidualTrace::new();
                    let mut status = SweepStatus::Budget;
                    for _ in 0..max_iters {
                        let mut local_delta = sor_color_pass(self, v, band.clone(), 0, omega);
                        // B1: all color-0 values visible before color 1
                        // reads them across band boundaries.
                        barrier.wait();
                        local_delta =
                            local_delta.max(sor_color_pass(self, v, band.clone(), 1, omega));
                        deltas.set(shard_idx, local_delta);
                        // B2: color-1 values and per-shard deltas visible.
                        // (B1 of the next sweep doubles as the guard that
                        // keeps fast shards from overwriting `deltas`
                        // before everyone has reduced this sweep's.)
                        barrier.wait();
                        let max_delta = (0..shards).map(|s| deltas.get(s)).fold(0.0f64, f64::max);
                        trace.record(max_delta);
                        if !max_delta.is_finite() {
                            status = SweepStatus::NonFinite;
                            break;
                        }
                        if max_delta < tol {
                            status = SweepStatus::Converged;
                            break;
                        }
                    }
                    if shard_idx == 0 {
                        let result = match status {
                            SweepStatus::Converged => Ok(()),
                            SweepStatus::NonFinite => Err(GridError::NoConvergence {
                                diag: trace.diagnostic(Breakdown::NonFinite {
                                    at_iteration: trace.iterations(),
                                }),
                            }),
                            SweepStatus::Budget => Err(GridError::NoConvergence {
                                diag: trace.diagnostic(Breakdown::IterationBudget),
                            }),
                        };
                        let iters = trace.iterations();
                        *outcome.lock().unwrap_or_else(PoisonError::into_inner) =
                            Some((result, iters));
                    }
                });
            }
        });
        // The fallback is unreachable (shard 0 always records before its
        // scope ends) but kept as a typed error rather than a panic.
        let (result, iters) = outcome
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .unwrap_or((
                Err(GridError::BadParameter(
                    "parallel SOR worker exited without recording an outcome",
                )),
                0,
            ));
        np_telemetry::counter("grid.sor.iterations", iters as u64);
        result.map(|()| v.to_vec())
    }
}

/// How a parallel SOR worker's sweep loop ended.
enum SweepStatus {
    Converged,
    NonFinite,
    Budget,
}

/// One half-sweep of red-black SOR over the rows in `band`, updating only
/// nodes of `color`; returns the band's max update magnitude.
///
/// Same-color nodes never neighbor each other, so every update in this
/// pass reads only opposite-color values — concurrent band updates of the
/// same color are independent, and the arithmetic matches the sequential
/// sweep exactly. With `omega = 1.0` this is one Gauss-Seidel half-sweep,
/// which is how [`crate::multigrid`] reuses it as the V-cycle smoother.
pub(crate) fn sor_color_pass(
    m: &MeshProblem,
    v: &AtomicF64Vec,
    band: Range<usize>,
    color: usize,
    omega: f64,
) -> f64 {
    let (nx, ny, g) = (m.nx, m.ny, m.edge_conductance);
    let mut max_delta = 0.0f64;
    for y in band {
        for x in 0..nx {
            if (x + y) % 2 != color {
                continue;
            }
            let i = y * nx + x;
            if m.pinned[i] {
                continue;
            }
            let mut sum = 0.0;
            let mut deg = 0.0;
            if x > 0 {
                sum += v.get(i - 1);
                deg += 1.0;
            }
            if x + 1 < nx {
                sum += v.get(i + 1);
                deg += 1.0;
            }
            if y > 0 {
                sum += v.get(i - nx);
                deg += 1.0;
            }
            if y + 1 < ny {
                sum += v.get(i + nx);
                deg += 1.0;
            }
            // KCL: deg*g*v_i = g*sum - I_i  (I positive = draw).
            let target = (g * sum - m.injection[i]) / (deg * g);
            let cur = v.get(i);
            let next = cur + omega * (target - cur);
            max_delta = max_delta.max((next - cur).abs());
            v.set(i, next);
        }
    }
    max_delta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_pinned_mesh_is_flat() {
        let mut m = MeshProblem::new(8, 8, 1.0);
        let c = m.index(0, 0);
        m.pinned[c] = true;
        let v = m.solve().unwrap();
        assert!(v.iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    fn single_load_single_pin_matches_series_resistance() {
        // A 1-D chain (2 x n degenerate mesh is awkward; use a 2-node-wide
        // strip and compare against hand math on a 2x2).
        let mut m = MeshProblem::new(2, 2, 1.0);
        let pin = m.index(0, 0);
        m.pinned[pin] = true;
        let load = m.index(1, 1);
        m.injection[load] = 1.0; // 1 A drawn
        let v = m.solve().unwrap();
        // Two parallel 2-edge paths from pin to load: R = (1+1)||(1+1) = 1 Ω.
        assert!((v[load] + 1.0).abs() < 1e-6, "got {}", v[load]);
    }

    #[test]
    fn drop_grows_with_distance_from_pin() {
        let mut m = MeshProblem::new(16, 16, 1.0);
        let pin = m.index(0, 0);
        m.pinned[pin] = true;
        for i in 0..m.injection.len() {
            m.injection[i] = 1e-3;
        }
        let v = m.solve().unwrap();
        let near = -v[m.index(1, 1)];
        let far = -v[m.index(15, 15)];
        assert!(far > near, "far {far} vs near {near}");
    }

    #[test]
    fn more_pins_reduce_drop() {
        let build = |pins: &[(usize, usize)]| {
            let mut m = MeshProblem::new(17, 17, 1.0);
            for &(x, y) in pins {
                let idx = m.index(x, y);
                m.pinned[idx] = true;
            }
            for i in 0..m.injection.len() {
                m.injection[i] = 1e-3;
            }
            let v = m.solve().unwrap();
            -v.iter().copied().fold(f64::INFINITY, f64::min)
        };
        let one = build(&[(8, 8)]);
        let five = build(&[(8, 8), (0, 0), (16, 0), (0, 16), (16, 16)]);
        assert!(five < one);
    }

    #[test]
    fn unpinned_mesh_is_rejected() {
        let m = MeshProblem::new(4, 4, 1.0);
        assert!(matches!(m.solve(), Err(GridError::BadParameter(_))));
    }

    #[test]
    fn drop_scales_inversely_with_conductance() {
        let run = |g: f64| {
            let mut m = MeshProblem::new(9, 9, g);
            let pin = m.index(4, 4);
            m.pinned[pin] = true;
            for i in 0..m.injection.len() {
                m.injection[i] = 1e-3;
            }
            let v = m.solve().unwrap();
            -v.iter().copied().fold(f64::INFINITY, f64::min)
        };
        let d1 = run(1.0);
        let d2 = run(2.0);
        assert!((d1 / d2 - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn tiny_mesh_panics() {
        let _ = MeshProblem::new(1, 4, 1.0);
    }

    fn loaded(n: usize) -> MeshProblem {
        let mut m = MeshProblem::new(n, n, 1.3);
        let pin = m.index(n / 2, n / 2);
        m.pinned[pin] = true;
        for i in 0..m.injection.len() {
            m.injection[i] = 1e-3;
        }
        m
    }

    #[test]
    fn parallel_sor_is_bitwise_identical_to_sequential() {
        for n in [6usize, 9, 17] {
            let m = loaded(n);
            let seq = m.solve().unwrap();
            for shards in [2usize, 3, 7] {
                let par = m.solve_parallel(shards).unwrap();
                assert_eq!(seq, par, "n={n} shards={shards}");
            }
        }
    }

    #[test]
    fn parallel_sor_single_shard_falls_back() {
        let m = loaded(8);
        assert_eq!(m.solve().unwrap(), m.solve_parallel(1).unwrap());
    }

    #[test]
    fn parallel_sor_validates_first() {
        let m = MeshProblem::new(4, 4, 1.0); // no pins
        assert!(matches!(
            m.solve_parallel(4),
            Err(GridError::BadParameter(_))
        ));
    }

    #[test]
    fn parallel_sor_clamps_excess_shards() {
        let m = loaded(5);
        // 64 shards on a 5-row mesh: trailing bands are empty but the
        // solve still agrees with the sequential reference.
        assert_eq!(m.solve().unwrap(), m.solve_parallel(64).unwrap());
    }
}
