//! Error type for power-distribution modeling.

use std::fmt;

/// Error returned by power-grid models and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// A parameter is out of range (documented in the message).
    BadParameter(&'static str),
    /// The drop budget cannot be met even with the widest permissible
    /// rail.
    Infeasible {
        /// Rail width (µm) at which the search gave up.
        width_um: f64,
    },
    /// The iterative mesh solver did not converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual norm at exhaustion.
        residual: f64,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::BadParameter(m) => write!(f, "bad parameter: {m}"),
            GridError::Infeasible { width_um } => {
                write!(f, "drop budget unreachable even at {width_um:.0} µm rails")
            }
            GridError::NoConvergence {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "mesh solver stalled after {iterations} iterations (residual {residual:.2e})"
                )
            }
        }
    }
}

impl std::error::Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(format!("{}", GridError::BadParameter("x")).contains("bad parameter"));
        assert!(format!("{}", GridError::Infeasible { width_um: 10.0 }).contains("10"));
        assert!(format!(
            "{}",
            GridError::NoConvergence {
                iterations: 5,
                residual: 1e-3
            }
        )
        .contains("stalled"));
    }
}
