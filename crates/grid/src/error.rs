//! Error type for power-distribution modeling.

use np_units::convergence::Convergence;
use np_units::guard::NonFinite;
use std::fmt;

/// Error returned by power-grid models and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// A parameter is out of range (documented in the message).
    BadParameter(&'static str),
    /// A numeric input was NaN, infinite, or outside its physical domain.
    NonFinite(NonFinite),
    /// The drop budget cannot be met even with the widest permissible
    /// rail.
    Infeasible {
        /// Rail width (µm) at which the search gave up.
        width_um: f64,
    },
    /// The iterative mesh solver did not converge; the diagnostic says
    /// how it stopped (budget, breakdown, non-finite residual).
    NoConvergence {
        /// What the iteration did before giving up.
        diag: Convergence,
    },
}

impl GridError {
    /// Iterations the failed solve performed, for `NoConvergence`.
    pub fn iterations(&self) -> Option<usize> {
        match self {
            GridError::NoConvergence { diag } => Some(diag.iterations),
            _ => None,
        }
    }
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::BadParameter(m) => write!(f, "bad parameter: {m}"),
            GridError::NonFinite(e) => write!(f, "bad input: {e}"),
            GridError::Infeasible { width_um } => {
                write!(f, "drop budget unreachable even at {width_um:.0} µm rails")
            }
            GridError::NoConvergence { diag } => {
                write!(f, "mesh solver stalled: {diag}")
            }
        }
    }
}

impl std::error::Error for GridError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GridError::NonFinite(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NonFinite> for GridError {
    fn from(e: NonFinite) -> Self {
        GridError::NonFinite(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_units::convergence::{Breakdown, ResidualTrace};

    #[test]
    fn display_variants() {
        assert!(format!("{}", GridError::BadParameter("x")).contains("bad parameter"));
        assert!(format!("{}", GridError::Infeasible { width_um: 10.0 }).contains("10"));
        let mut trace = ResidualTrace::new();
        trace.record(1e-3);
        let err = GridError::NoConvergence {
            diag: trace.diagnostic(Breakdown::IterationBudget),
        };
        let s = format!("{err}");
        assert!(s.contains("stalled"), "{s}");
        assert!(s.contains("iteration budget"), "{s}");
        assert_eq!(err.iterations(), Some(1));
        let e: GridError = np_units::guard::finite(f64::NAN, "g", "t")
            .unwrap_err()
            .into();
        assert!(format!("{e}").contains("bad input"));
        assert!(e.iterations().is_none());
    }
}
