//! Row-band sharding primitives for the parallel mesh solvers.
//!
//! The workspace is offline and dependency-free, so the parallel SOR and
//! CG paths are built from `std` alone: scoped worker threads
//! ([`std::thread::scope`]), [`std::sync::Barrier`] phase separation, and
//! the [`AtomicF64Vec`] shared vector defined here. Shards own disjoint
//! *row bands* of the mesh ([`row_bands`]), so every write targets the
//! owning shard's band; reads may cross band boundaries (mesh stencils
//! reach one row up/down), which is safe because each solver phase either
//! reads or writes a given vector, never both, and phases are separated
//! by barriers. The barrier's acquire/release synchronization makes the
//! relaxed atomic accesses race-free *and* deterministic: the numeric
//! result is a pure function of the problem and the shard count.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-length `f64` vector shareable across scoped worker threads.
///
/// Values are stored as [`AtomicU64`] bit patterns so shards can read and
/// write entries through a shared reference without locks or `unsafe`.
/// All accesses are `Relaxed`: the solvers order cross-shard visibility
/// with [`std::sync::Barrier`], which establishes the happens-before
/// edges, so the relaxed loads observe exactly the values written before
/// the last barrier.
#[derive(Debug)]
pub struct AtomicF64Vec {
    bits: Vec<AtomicU64>,
}

impl AtomicF64Vec {
    /// A vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Self {
            bits: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// A vector holding a copy of `values`.
    pub fn from_slice(values: &[f64]) -> Self {
        Self {
            bits: values.iter().map(|v| AtomicU64::new(v.to_bits())).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Reads entry `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.bits[i].load(Ordering::Relaxed))
    }

    /// Writes entry `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[inline]
    pub fn set(&self, i: usize, value: f64) {
        self.bits[i].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Copies the vector out as a plain `Vec<f64>`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.bits
            .iter()
            .map(|b| f64::from_bits(b.load(Ordering::Relaxed)))
            .collect()
    }
}

/// Splits `ny` mesh rows into `shards` contiguous bands whose sizes
/// differ by at most one row (earlier bands get the remainder).
///
/// With `shards > ny` the trailing bands are empty — their workers still
/// participate in every barrier, they just have no rows to update.
///
/// # Examples
///
/// ```
/// let bands = np_grid::shard::row_bands(10, 3);
/// assert_eq!(bands, vec![0..4, 4..7, 7..10]);
/// ```
pub fn row_bands(ny: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1);
    let base = ny / shards;
    let extra = ny % shards;
    let mut bands = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        bands.push(start..start + len);
        start += len;
    }
    bands
}

/// The shard count actually usable for an `ny`-row mesh: at least one,
/// at most one shard per row.
pub fn clamp_shards(requested: usize, ny: usize) -> usize {
    requested.clamp(1, ny.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_vec_round_trips() {
        let v = AtomicF64Vec::from_slice(&[1.5, -2.25, 0.0]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.get(1), -2.25);
        v.set(1, 7.0);
        assert_eq!(v.to_vec(), vec![1.5, 7.0, 0.0]);
        assert!(AtomicF64Vec::zeros(0).is_empty());
    }

    #[test]
    fn atomic_vec_preserves_non_finite_bits() {
        let v = AtomicF64Vec::zeros(2);
        v.set(0, f64::INFINITY);
        v.set(1, f64::NAN);
        assert!(v.get(0).is_infinite());
        assert!(v.get(1).is_nan());
    }

    #[test]
    fn bands_cover_all_rows_without_overlap() {
        for ny in [1usize, 2, 5, 10, 33, 64] {
            for shards in [1usize, 2, 3, 7, 16] {
                let bands = row_bands(ny, shards);
                assert_eq!(bands.len(), shards);
                let mut next = 0;
                for b in &bands {
                    assert_eq!(b.start, next);
                    next = b.end;
                }
                assert_eq!(next, ny);
                let (min, max) = bands
                    .iter()
                    .map(|b| b.len())
                    .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
                assert!(max - min <= 1, "bands should be balanced");
            }
        }
    }

    #[test]
    fn shard_clamp() {
        assert_eq!(clamp_shards(0, 8), 1);
        assert_eq!(clamp_shards(4, 8), 4);
        assert_eq!(clamp_shards(16, 8), 8);
        assert_eq!(clamp_shards(3, 0), 1);
    }
}
