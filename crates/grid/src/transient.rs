//! Sleep-mode wake-up transients (Section 4, last paragraphs).
//!
//! "Awakening from standby results in large current transients, placing an
//! extreme burden on the power distribution network to limit inductive
//! noise. Using the minimum bump pitch will help here as well, providing a
//! low inductance path to each gate on the chip."
//!
//! Model: the chip current ramps from the standby level to the active
//! level over `t_ramp`; the package inductance seen by the die is the
//! per-bump loop inductance divided by the number of parallel power
//! bumps; the noise is `L_eff · dI/dt`.

use crate::error::GridError;
use np_roadmap::{PackagingRoadmap, TechNode};
use np_units::{Amps, Picohenries, Seconds, Volts};

/// Loop inductance of the on-package path through a single flip-chip bump
/// (bump + package via + escape routing). Board and plane inductance are
/// deliberately excluded: the bump path is the term that minimum-pitch
/// provisioning improves.
pub const BUMP_LOOP_INDUCTANCE: Picohenries = Picohenries(500.0);

/// A wake-up event on one node's power grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WakeUpEvent {
    /// Current before wake-up (standby).
    pub i_standby: Amps,
    /// Current after wake-up (active).
    pub i_active: Amps,
    /// Ramp duration of the transition.
    pub t_ramp: Seconds,
}

impl WakeUpEvent {
    /// The node's nominal wake-up: standby at the ITRS 10 % static
    /// allowance, active at worst case, ramping in `t_ramp`.
    pub fn for_node(node: TechNode, t_ramp: Seconds) -> Self {
        let p = node.params();
        Self {
            i_standby: p.standby_current_allowance(),
            i_active: p.worst_case_current(),
            t_ramp,
        }
    }

    /// The current slew `dI/dt` in A/s.
    ///
    /// # Panics
    ///
    /// Panics on non-positive ramp time.
    pub fn slew(&self) -> f64 {
        assert!(self.t_ramp.0 > 0.0, "ramp time must be positive");
        (self.i_active - self.i_standby).0 / self.t_ramp.0
    }

    /// Inductive supply noise through `vdd_bumps` parallel bumps.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::BadParameter`] for zero bumps.
    pub fn inductive_noise(&self, vdd_bumps: u32) -> Result<Volts, GridError> {
        if vdd_bumps == 0 {
            return Err(GridError::BadParameter("need at least one Vdd bump"));
        }
        let l_eff_h = BUMP_LOOP_INDUCTANCE.0 * 1e-12 / vdd_bumps as f64;
        Ok(Volts(l_eff_h * self.slew()))
    }

    /// Noise under the ITRS pad counts vs the minimum-pitch provisioning
    /// for `node` — the paper's argument that minimum pitch "will help
    /// here as well".
    ///
    /// # Errors
    ///
    /// Propagates [`GridError::BadParameter`] from the per-assumption
    /// evaluation.
    pub fn noise_comparison(&self, node: TechNode) -> Result<(Volts, Volts), GridError> {
        let pkg = PackagingRoadmap::for_node(node);
        let itrs = self.inductive_noise(pkg.itrs_vdd_bumps())?;
        let min_pitch = self.inductive_noise(pkg.min_pitch_vdd_bumps())?;
        Ok((itrs, min_pitch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_at_35nm_is_a_hundreds_of_amp_swing() {
        let e = WakeUpEvent::for_node(TechNode::N35, Seconds::from_nano(100.0));
        assert!((e.i_active - e.i_standby).0 > 250.0);
    }

    #[test]
    fn min_pitch_cuts_inductive_noise() {
        let e = WakeUpEvent::for_node(TechNode::N35, Seconds::from_nano(100.0));
        let (itrs, min_pitch) = e.noise_comparison(TechNode::N35).unwrap();
        assert!(min_pitch.0 < itrs.0 / 5.0, "{itrs} vs {min_pitch}");
    }

    #[test]
    fn faster_ramp_is_noisier() {
        let slow = WakeUpEvent::for_node(TechNode::N35, Seconds::from_nano(1000.0));
        let fast = WakeUpEvent::for_node(TechNode::N35, Seconds::from_nano(10.0));
        let n_slow = slow.inductive_noise(1500).unwrap();
        let n_fast = fast.inductive_noise(1500).unwrap();
        assert!((n_fast.0 / n_slow.0 - 100.0).abs() < 1.0);
    }

    #[test]
    fn aggressive_wake_violates_budget_with_itrs_bumps() {
        // A 2 ns wake-up at 35 nm with only ~1500 Vdd bumps: the L·di/dt
        // noise alone eats a large share of the 10% budget.
        let e = WakeUpEvent::for_node(TechNode::N35, Seconds::from_nano(2.0));
        let (itrs, _) = e.noise_comparison(TechNode::N35).unwrap();
        let budget = TechNode::N35.params().vdd * 0.10;
        assert!(
            itrs.0 > budget.0 / 2.0,
            "noise {itrs} should strain the {budget} budget"
        );
    }

    #[test]
    fn zero_bumps_rejected() {
        let e = WakeUpEvent::for_node(TechNode::N35, Seconds::from_nano(100.0));
        assert!(e.inductive_noise(0).is_err());
    }

    #[test]
    #[should_panic(expected = "ramp time must be positive")]
    fn zero_ramp_panics() {
        let e = WakeUpEvent {
            i_standby: Amps(1.0),
            i_active: Amps(2.0),
            t_ramp: Seconds(0.0),
        };
        let _ = e.slew();
    }
}
