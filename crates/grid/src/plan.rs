//! The Fig. 5 study: per-node grid plans under minimum bump pitch versus
//! ITRS pad counts.

use crate::analytic::{rail_routing_fraction, required_rail_width, IrBudget};
use crate::error::GridError;
use np_roadmap::{PackagingRoadmap, TechNode};
use np_units::Microns;
use std::fmt;

/// Which bump-provisioning assumption a plan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BumpAssumption {
    /// The minimum attainable flip-chip pitch (Fig. 5 open symbols).
    MinPitch,
    /// The ITRS pad-count projection (Fig. 5 solid symbols).
    ItrsPads,
}

/// A sized top-level power grid for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPlan {
    /// The node planned.
    pub node: TechNode,
    /// Provisioning assumption.
    pub assumption: BumpAssumption,
    /// Bump (and power-grid) pitch used.
    pub bump_pitch: Microns,
    /// Required rail width per net; `None` when the budget is unreachable
    /// (rail wider than the pitch).
    pub rail_width: Option<Microns>,
    /// The rail width the drop budget demands, even if unroutable — the
    /// quantity Fig. 5 plots.
    pub demanded_width: Microns,
}

impl GridPlan {
    /// Plans the grid at the node's minimum attainable bump pitch.
    ///
    /// # Errors
    ///
    /// Propagates model errors other than routability (an unroutable
    /// demand is reported in the plan itself).
    pub fn min_pitch(node: TechNode) -> Result<Self, GridError> {
        let pitch = PackagingRoadmap::for_node(node).min_bump_pitch;
        Self::at_pitch(node, pitch, BumpAssumption::MinPitch)
    }

    /// Plans the grid at the ITRS effective pad pitch.
    ///
    /// # Errors
    ///
    /// Same as [`GridPlan::min_pitch`].
    pub fn itrs_pads(node: TechNode) -> Result<Self, GridError> {
        let pitch = PackagingRoadmap::for_node(node).effective_itrs_bump_pitch();
        Self::at_pitch(node, pitch, BumpAssumption::ItrsPads)
    }

    fn at_pitch(
        node: TechNode,
        pitch: Microns,
        assumption: BumpAssumption,
    ) -> Result<Self, GridError> {
        let budget = IrBudget::default();
        match required_rail_width(node, pitch, &budget) {
            Ok(w) => Ok(Self {
                node,
                assumption,
                bump_pitch: pitch,
                rail_width: Some(w),
                demanded_width: w,
            }),
            Err(GridError::Infeasible { width_um }) => Ok(Self {
                node,
                assumption,
                bump_pitch: pitch,
                rail_width: None,
                demanded_width: Microns(width_um),
            }),
            Err(e) => Err(e),
        }
    }

    /// The Fig. 5 y-axis: demanded rail width over the minimum top-metal
    /// width.
    pub fn width_over_min(&self) -> f64 {
        self.demanded_width.0 / self.node.params().top_metal_min_width.0
    }

    /// Fraction of top-level routing consumed by the power rails alone.
    pub fn rail_fraction(&self) -> f64 {
        rail_routing_fraction(self.demanded_width, self.bump_pitch)
    }

    /// Total routing-resource fraction including the constant 16 %
    /// landing-pad overhead (the paper's "around 17-20%").
    pub fn total_routing_fraction(&self) -> f64 {
        self.rail_fraction() + PackagingRoadmap::for_node(self.node).landing_pad_overhead
    }

    /// True when the demanded rail physically fits under the bump pitch.
    pub fn is_routable(&self) -> bool {
        self.rail_width.is_some()
    }
}

impl fmt::Display for GridPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:?}): pitch {:.0}, demanded width {:.2} ({:.0}x min, {}), rails {:.1}% + pads 16%",
            self.node,
            self.assumption,
            self.bump_pitch,
            self.demanded_width,
            self.width_over_min(),
            if self.is_routable() { "routable" } else { "UNROUTABLE" },
            self.rail_fraction() * 100.0,
        )
    }
}

/// Both Fig. 5 series for every node.
///
/// # Errors
///
/// Propagates model errors.
pub fn fig5_series() -> Result<Vec<(GridPlan, GridPlan)>, GridError> {
    TechNode::ALL
        .iter()
        .map(|&n| Ok((GridPlan::min_pitch(n)?, GridPlan::itrs_pads(n)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_pitch_plans_are_routable_everywhere() {
        for node in TechNode::ALL {
            let p = GridPlan::min_pitch(node).unwrap();
            assert!(p.is_routable(), "{node} should be routable at min pitch");
            assert!(
                p.width_over_min() < 40.0,
                "{node}: {:.0}x min width is not 'manageable'",
                p.width_over_min()
            );
        }
    }

    #[test]
    fn itrs_pads_blow_up_at_the_end_of_the_roadmap() {
        // Fig. 5 solid symbols: "over 2000X the minimum allowable" at
        // 35 nm; we require at least a three-order-of-magnitude demand.
        let p = GridPlan::itrs_pads(TechNode::N35).unwrap();
        assert!(!p.is_routable());
        assert!(p.width_over_min() > 500.0, "got {:.0}x", p.width_over_min());
    }

    #[test]
    fn min_pitch_routing_fraction_is_small() {
        let p = GridPlan::min_pitch(TechNode::N35).unwrap();
        assert!(
            p.rail_fraction() < 0.08,
            "{:.1}%",
            p.rail_fraction() * 100.0
        );
        let total = p.total_routing_fraction();
        assert!(
            (0.16..=0.24).contains(&total),
            "total {:.1}% should be ~17-20%",
            total * 100.0
        );
    }

    #[test]
    fn series_covers_all_nodes() {
        let s = fig5_series().unwrap();
        assert_eq!(s.len(), 6);
        for (a, b) in &s {
            assert_eq!(a.assumption, BumpAssumption::MinPitch);
            assert_eq!(b.assumption, BumpAssumption::ItrsPads);
            assert!(b.width_over_min() >= a.width_over_min());
        }
    }

    #[test]
    fn display_mentions_routability() {
        let p = GridPlan::itrs_pads(TechNode::N35).unwrap();
        assert!(format!("{p}").contains("UNROUTABLE"));
        let p = GridPlan::min_pitch(TechNode::N35).unwrap();
        assert!(format!("{p}").contains("routable"));
    }
}
