//! The Fig. 5 study — per-node grid plans under minimum bump pitch
//! versus ITRS pad counts — plus the [`SolvePlan`] strategy layer that
//! routes a mesh problem to the right solver under the process-wide
//! [`thread_budget`].

use crate::analytic::{rail_routing_fraction, required_rail_width, IrBudget};
use crate::cg::{solve_cg, solve_pcg, solve_pcg_parallel};
use crate::error::GridError;
use crate::multigrid::{solve_mgcg_sharded, solve_multigrid_sharded, MgHierarchy};
use crate::solver::MeshProblem;
use np_roadmap::{PackagingRoadmap, TechNode};
use np_units::Microns;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which bump-provisioning assumption a plan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BumpAssumption {
    /// The minimum attainable flip-chip pitch (Fig. 5 open symbols).
    MinPitch,
    /// The ITRS pad-count projection (Fig. 5 solid symbols).
    ItrsPads,
}

/// A sized top-level power grid for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPlan {
    /// The node planned.
    pub node: TechNode,
    /// Provisioning assumption.
    pub assumption: BumpAssumption,
    /// Bump (and power-grid) pitch used.
    pub bump_pitch: Microns,
    /// Required rail width per net; `None` when the budget is unreachable
    /// (rail wider than the pitch).
    pub rail_width: Option<Microns>,
    /// The rail width the drop budget demands, even if unroutable — the
    /// quantity Fig. 5 plots.
    pub demanded_width: Microns,
}

impl GridPlan {
    /// Plans the grid at the node's minimum attainable bump pitch.
    ///
    /// # Errors
    ///
    /// Propagates model errors other than routability (an unroutable
    /// demand is reported in the plan itself).
    pub fn min_pitch(node: TechNode) -> Result<Self, GridError> {
        let pitch = PackagingRoadmap::for_node(node).min_bump_pitch;
        Self::at_pitch(node, pitch, BumpAssumption::MinPitch)
    }

    /// Plans the grid at the ITRS effective pad pitch.
    ///
    /// # Errors
    ///
    /// Same as [`GridPlan::min_pitch`].
    pub fn itrs_pads(node: TechNode) -> Result<Self, GridError> {
        let pitch = PackagingRoadmap::for_node(node).effective_itrs_bump_pitch();
        Self::at_pitch(node, pitch, BumpAssumption::ItrsPads)
    }

    fn at_pitch(
        node: TechNode,
        pitch: Microns,
        assumption: BumpAssumption,
    ) -> Result<Self, GridError> {
        let budget = IrBudget::default();
        match required_rail_width(node, pitch, &budget) {
            Ok(w) => Ok(Self {
                node,
                assumption,
                bump_pitch: pitch,
                rail_width: Some(w),
                demanded_width: w,
            }),
            Err(GridError::Infeasible { width_um }) => Ok(Self {
                node,
                assumption,
                bump_pitch: pitch,
                rail_width: None,
                demanded_width: Microns(width_um),
            }),
            Err(e) => Err(e),
        }
    }

    /// The Fig. 5 y-axis: demanded rail width over the minimum top-metal
    /// width.
    pub fn width_over_min(&self) -> f64 {
        self.demanded_width.0 / self.node.params().top_metal_min_width.0
    }

    /// Fraction of top-level routing consumed by the power rails alone.
    pub fn rail_fraction(&self) -> f64 {
        rail_routing_fraction(self.demanded_width, self.bump_pitch)
    }

    /// Total routing-resource fraction including the constant 16 %
    /// landing-pad overhead (the paper's "around 17-20%").
    pub fn total_routing_fraction(&self) -> f64 {
        self.rail_fraction() + PackagingRoadmap::for_node(self.node).landing_pad_overhead
    }

    /// True when the demanded rail physically fits under the bump pitch.
    pub fn is_routable(&self) -> bool {
        self.rail_width.is_some()
    }
}

impl fmt::Display for GridPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:?}): pitch {:.0}, demanded width {:.2} ({:.0}x min, {}), rails {:.1}% + pads 16%",
            self.node,
            self.assumption,
            self.bump_pitch,
            self.demanded_width,
            self.width_over_min(),
            if self.is_routable() { "routable" } else { "UNROUTABLE" },
            self.rail_fraction() * 100.0,
        )
    }
}

/// Both Fig. 5 series for every node.
///
/// # Errors
///
/// Propagates model errors.
pub fn fig5_series() -> Result<Vec<(GridPlan, GridPlan)>, GridError> {
    TechNode::ALL
        .iter()
        .map(|&n| Ok((GridPlan::min_pitch(n)?, GridPlan::itrs_pads(n)?)))
        .collect()
}

/// Meshes below this node count solve faster sequentially than the
/// barrier overhead of sharded workers can recoup (a 128×128 mesh sits
/// right at the boundary on commodity cores).
pub const AUTO_PARALLEL_THRESHOLD: usize = 16_384;

/// Meshes with at least this many nodes (257×257) — when their
/// dimensions fit the 2^k+1 multigrid ladder — auto-route to MGCG: the
/// O(N) cycle overtakes Jacobi-PCG's O(N^1.5) iteration growth around
/// here, and the margin widens by ~2× per further mesh doubling.
pub const AUTO_MULTIGRID_THRESHOLD: usize = 66_049;

/// The process-wide solver thread budget; `0` means "unset", which
/// resolves to the machine's available parallelism.
static THREAD_BUDGET: AtomicUsize = AtomicUsize::new(0);

/// The number of threads a parallel solve may use right now.
///
/// Defaults to [`std::thread::available_parallelism`]; the engine caps
/// it while worker threads are running (via [`scoped_thread_budget`]) so
/// engine workers and solver shards don't oversubscribe the machine.
pub fn thread_budget() -> usize {
    match THREAD_BUDGET.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
}

/// Caps [`thread_budget`] at `budget` (at least 1) until the returned
/// guard is dropped, which restores the previous setting.
///
/// The budget is process-global: the engine installs one guard around a
/// whole run, dividing the machine between its own workers and each
/// worker's solver shards. Nested guards restore in LIFO drop order.
pub fn scoped_thread_budget(budget: usize) -> ThreadBudgetGuard {
    let previous = THREAD_BUDGET.swap(budget.max(1), Ordering::Relaxed);
    ThreadBudgetGuard { previous }
}

/// Restores the prior [`thread_budget`] on drop; created by
/// [`scoped_thread_budget`].
#[derive(Debug)]
pub struct ThreadBudgetGuard {
    previous: usize,
}

impl Drop for ThreadBudgetGuard {
    fn drop(&mut self) {
        THREAD_BUDGET.store(self.previous, Ordering::Relaxed);
    }
}

/// Which algorithm a [`SolvePlan`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolveStrategy {
    /// Pick per mesh: sequential PCG below [`AUTO_PARALLEL_THRESHOLD`]
    /// nodes or when the [`thread_budget`] is 1, parallel PCG otherwise
    /// — upgraded to [`SolveStrategy::MultigridCg`] at
    /// [`AUTO_MULTIGRID_THRESHOLD`] nodes and above when the mesh
    /// dimensions fit the 2^k+1 coarsening ladder (see
    /// [`SolvePlan::resolve_for`]).
    #[default]
    Auto,
    /// The red-black SOR sweep of [`MeshProblem::solve`].
    SequentialSor,
    /// Row-band-sharded SOR ([`MeshProblem::solve_parallel`]); bitwise
    /// identical to [`SolveStrategy::SequentialSor`].
    ParallelSor,
    /// Plain conjugate gradients ([`solve_cg`]).
    SequentialCg,
    /// Jacobi-preconditioned CG, sharded ([`solve_pcg_parallel`]).
    ParallelCg,
    /// The standalone geometric multigrid V-cycle
    /// ([`crate::multigrid::solve_multigrid_sharded`]); needs 2^k+1
    /// mesh dimensions.
    Multigrid,
    /// Multigrid-preconditioned CG
    /// ([`crate::multigrid::solve_mgcg_sharded`]); needs 2^k+1 mesh
    /// dimensions. What [`SolveStrategy::Auto`] picks on large
    /// compatible meshes.
    MultigridCg,
}

/// A solver selection: strategy plus an optional explicit shard count.
///
/// ```
/// use np_grid::solver::MeshProblem;
/// use np_grid::SolvePlan;
///
/// let mut m = MeshProblem::new(9, 9, 1.0);
/// m.injection = vec![1e-4; 81];
/// let centre = m.index(4, 4);
/// m.pinned[centre] = true;
/// let v = SolvePlan::auto().solve(&m)?;
/// assert_eq!(v.len(), 81);
/// # Ok::<(), np_grid::GridError>(())
/// ```
///
/// Strategies can be forced; on a 2^k+1 mesh the multigrid family is
/// available explicitly (Auto upgrades to it only from
/// [`AUTO_MULTIGRID_THRESHOLD`] nodes up):
///
/// ```
/// use np_grid::solver::MeshProblem;
/// use np_grid::{SolvePlan, SolveStrategy};
///
/// let mut m = MeshProblem::new(17, 17, 1.0);
/// m.injection = vec![1e-4; 17 * 17];
/// let centre = m.index(8, 8);
/// m.pinned[centre] = true;
/// let auto = SolvePlan::auto().solve(&m)?;
/// let mgcg = SolvePlan::with_strategy(SolveStrategy::MultigridCg).solve(&m)?;
/// for (a, b) in auto.iter().zip(&mgcg) {
///     assert!((a - b).abs() < 1e-6);
/// }
/// # Ok::<(), np_grid::GridError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SolvePlan {
    /// The algorithm to run (or [`SolveStrategy::Auto`]).
    pub strategy: SolveStrategy,
    /// Shard count for the parallel strategies; `None` uses the
    /// [`thread_budget`].
    pub shards: Option<usize>,
}

impl SolvePlan {
    /// The default plan: [`SolveStrategy::Auto`] with budget-derived
    /// shards.
    pub fn auto() -> Self {
        Self::default()
    }

    /// A plan running `strategy` with budget-derived shards.
    pub fn with_strategy(strategy: SolveStrategy) -> Self {
        Self {
            strategy,
            shards: None,
        }
    }

    /// Overrides the shard count for parallel strategies.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// The concrete (strategy, shards) pair this plan uses for a mesh of
    /// `nodes` total nodes.
    ///
    /// Auto falls back to the sequential solver whenever the mesh is
    /// small, the resolved shard count is 1, *or* the effective
    /// [`thread_budget`] is 1 — on a single-CPU host the parallel path
    /// is pure sharding overhead even when the caller explicitly asked
    /// for multiple shards (measured: `pcg.par`/`sor.par` slower than
    /// seq in `BENCH_grid.json` at ncpu=1).
    pub fn resolve(&self, nodes: usize) -> (SolveStrategy, usize) {
        let shards = self.shards.unwrap_or_else(thread_budget).max(1);
        let strategy = match self.strategy {
            SolveStrategy::Auto => {
                if nodes < AUTO_PARALLEL_THRESHOLD || shards == 1 || thread_budget() == 1 {
                    SolveStrategy::SequentialCg
                } else {
                    SolveStrategy::ParallelCg
                }
            }
            other => other,
        };
        (strategy, shards)
    }

    /// [`SolvePlan::resolve`] with the mesh in hand: Auto additionally
    /// upgrades to [`SolveStrategy::MultigridCg`] when the mesh has at
    /// least [`AUTO_MULTIGRID_THRESHOLD`] nodes *and* its dimensions fit
    /// the 2^k+1 coarsening ladder.
    ///
    /// Multigrid smoothing shards drop to 1 under a [`thread_budget`]
    /// of 1 (same single-CPU reasoning as the CG fallback), but the
    /// strategy upgrade still happens — MGCG wins on algorithmic work,
    /// not parallelism.
    pub fn resolve_for(&self, m: &MeshProblem) -> (SolveStrategy, usize) {
        let nodes = m.nx * m.ny;
        let (strategy, shards) = self.resolve(nodes);
        if self.strategy == SolveStrategy::Auto
            && nodes >= AUTO_MULTIGRID_THRESHOLD
            && MgHierarchy::compatible(m.nx, m.ny)
        {
            let mg_shards = if thread_budget() == 1 { 1 } else { shards };
            return (SolveStrategy::MultigridCg, mg_shards);
        }
        (strategy, shards)
    }

    /// Solves `m` with the resolved strategy.
    ///
    /// # Errors
    ///
    /// Those of the underlying solver ([`MeshProblem::solve`] /
    /// [`solve_cg`] / [`solve_pcg`] /
    /// [`crate::multigrid::solve_multigrid`]).
    pub fn solve(&self, m: &MeshProblem) -> Result<Vec<f64>, GridError> {
        match self.resolve_for(m) {
            (SolveStrategy::SequentialSor, _) => m.solve(),
            (SolveStrategy::ParallelSor, shards) => m.solve_parallel(shards),
            (SolveStrategy::SequentialCg, _) => {
                if self.strategy == SolveStrategy::Auto {
                    solve_pcg(m) // Auto prefers the preconditioned path
                } else {
                    solve_cg(m)
                }
            }
            (SolveStrategy::ParallelCg, shards) => solve_pcg_parallel(m, shards),
            (SolveStrategy::Multigrid, shards) => solve_multigrid_sharded(m, shards),
            (SolveStrategy::MultigridCg, shards) => solve_mgcg_sharded(m, shards),
            (SolveStrategy::Auto, _) => unreachable!("resolve never returns Auto"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_pitch_plans_are_routable_everywhere() {
        for node in TechNode::ALL {
            let p = GridPlan::min_pitch(node).unwrap();
            assert!(p.is_routable(), "{node} should be routable at min pitch");
            assert!(
                p.width_over_min() < 40.0,
                "{node}: {:.0}x min width is not 'manageable'",
                p.width_over_min()
            );
        }
    }

    #[test]
    fn itrs_pads_blow_up_at_the_end_of_the_roadmap() {
        // Fig. 5 solid symbols: "over 2000X the minimum allowable" at
        // 35 nm; we require at least a three-order-of-magnitude demand.
        let p = GridPlan::itrs_pads(TechNode::N35).unwrap();
        assert!(!p.is_routable());
        assert!(p.width_over_min() > 500.0, "got {:.0}x", p.width_over_min());
    }

    #[test]
    fn min_pitch_routing_fraction_is_small() {
        let p = GridPlan::min_pitch(TechNode::N35).unwrap();
        assert!(
            p.rail_fraction() < 0.08,
            "{:.1}%",
            p.rail_fraction() * 100.0
        );
        let total = p.total_routing_fraction();
        assert!(
            (0.16..=0.24).contains(&total),
            "total {:.1}% should be ~17-20%",
            total * 100.0
        );
    }

    #[test]
    fn series_covers_all_nodes() {
        let s = fig5_series().unwrap();
        assert_eq!(s.len(), 6);
        for (a, b) in &s {
            assert_eq!(a.assumption, BumpAssumption::MinPitch);
            assert_eq!(b.assumption, BumpAssumption::ItrsPads);
            assert!(b.width_over_min() >= a.width_over_min());
        }
    }

    #[test]
    fn display_mentions_routability() {
        let p = GridPlan::itrs_pads(TechNode::N35).unwrap();
        assert!(format!("{p}").contains("UNROUTABLE"));
        let p = GridPlan::min_pitch(TechNode::N35).unwrap();
        assert!(format!("{p}").contains("routable"));
    }

    fn loaded_mesh(n: usize) -> MeshProblem {
        let mut m = MeshProblem::new(n, n, 1.0);
        m.injection = vec![1e-4; n * n];
        let centre = m.index(n / 2, n / 2);
        m.pinned[centre] = true;
        m
    }

    // One test owns every THREAD_BUDGET mutation: the budget is
    // process-global, and the test runner is multi-threaded.
    #[test]
    fn auto_resolves_by_size_and_budget_and_guard_restores() {
        let outer = thread_budget();
        {
            let _guard = scoped_thread_budget(8);
            assert_eq!(thread_budget(), 8);
            let plan = SolvePlan::auto();
            assert_eq!(plan.resolve(100), (SolveStrategy::SequentialCg, 8));
            assert_eq!(
                plan.resolve(AUTO_PARALLEL_THRESHOLD),
                (SolveStrategy::ParallelCg, 8)
            );
            {
                let _inner = scoped_thread_budget(1);
                assert_eq!(
                    plan.resolve(AUTO_PARALLEL_THRESHOLD),
                    (SolveStrategy::SequentialCg, 1)
                );
                // Even explicit multi-shard plans go sequential under a
                // budget of 1: the parallel path is pure overhead on a
                // single-CPU host. Explicit non-auto strategies are
                // still honored verbatim.
                let sharded = SolvePlan::auto().with_shards(4);
                assert_eq!(
                    sharded.resolve(AUTO_PARALLEL_THRESHOLD),
                    (SolveStrategy::SequentialCg, 4)
                );
                let forced = SolvePlan::with_strategy(SolveStrategy::ParallelCg).with_shards(4);
                assert_eq!(
                    forced.resolve(AUTO_PARALLEL_THRESHOLD),
                    (SolveStrategy::ParallelCg, 4)
                );
            }
            assert_eq!(thread_budget(), 8);
        }
        assert_eq!(thread_budget(), outer);
    }

    #[test]
    fn explicit_shards_override_the_budget() {
        let plan = SolvePlan::with_strategy(SolveStrategy::ParallelSor).with_shards(3);
        assert_eq!(plan.resolve(10_000), (SolveStrategy::ParallelSor, 3));
    }

    #[test]
    fn auto_upgrades_large_compatible_meshes_to_mgcg() {
        let plan = SolvePlan::auto();
        // 257x257 fits the ladder and crosses the threshold.
        let big = loaded_mesh(257);
        assert_eq!(big.nx * big.ny, AUTO_MULTIGRID_THRESHOLD);
        let (strategy, _) = plan.resolve_for(&big);
        assert_eq!(strategy, SolveStrategy::MultigridCg);
        // A mesh of the same size that misses the 2^k+1 ladder keeps
        // the CG-family pick.
        let incompatible = loaded_mesh(260);
        let (strategy, _) = plan.resolve_for(&incompatible);
        assert_ne!(strategy, SolveStrategy::MultigridCg);
        // Small meshes never upgrade.
        let small = loaded_mesh(33);
        let (strategy, _) = plan.resolve_for(&small);
        assert_eq!(strategy, SolveStrategy::SequentialCg);
        // Explicit strategies are never upgraded.
        let forced = SolvePlan::with_strategy(SolveStrategy::SequentialCg);
        let (strategy, _) = forced.resolve_for(&big);
        assert_eq!(strategy, SolveStrategy::SequentialCg);
    }

    #[test]
    fn all_strategies_agree_on_a_loaded_mesh() {
        // 9x9: small enough for SOR, and 2^3+1 so the multigrid
        // strategies are eligible too.
        let m = loaded_mesh(9);
        let reference = m.solve().unwrap();
        for strategy in [
            SolveStrategy::Auto,
            SolveStrategy::SequentialSor,
            SolveStrategy::ParallelSor,
            SolveStrategy::SequentialCg,
            SolveStrategy::ParallelCg,
            SolveStrategy::Multigrid,
            SolveStrategy::MultigridCg,
        ] {
            let v = SolvePlan::with_strategy(strategy)
                .with_shards(3)
                .solve(&m)
                .unwrap();
            for (a, b) in v.iter().zip(&reference) {
                assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                    "{strategy:?} disagrees with SOR: {a} vs {b}"
                );
            }
        }
    }
}
