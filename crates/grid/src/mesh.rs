//! Bump-cell mesh analysis: the numeric counterpart of
//! [`crate::analytic`].
//!
//! One bump cell (pitch × pitch) is discretized as a resistive sheet whose
//! effective sheet conductivity comes from rails of width `w` at the grid
//! pitch, the hot-spot current is spread uniformly over the cell, and the
//! bump pins the centre node. The worst mesh drop validates the analytic
//! `k_geo` factor.

use crate::analytic::hotspot_current_density;
use crate::cg::{solve_pcg_parallel_warm, solve_pcg_warm, PreparedMesh};
use crate::error::GridError;
use crate::multigrid::{solve_mgcg_warm, solve_multigrid_warm, MgHierarchy};
use crate::plan::{SolvePlan, SolveStrategy};
use crate::solver::MeshProblem;
use np_roadmap::TechNode;
use np_units::{Microns, Volts};
use std::collections::HashMap;

/// Default mesh resolution per bump cell (nodes per side).
pub const DEFAULT_RESOLUTION: usize = 33;

/// Numeric worst-case IR drop in a bump cell of `pitch` with rails of
/// `rail_width` at the same pitch (one rail per cell per direction).
///
/// # Errors
///
/// Propagates solver errors; rejects non-positive geometry.
pub fn mesh_worst_drop(
    node: TechNode,
    pitch: Microns,
    rail_width: Microns,
) -> Result<Volts, GridError> {
    mesh_worst_drop_with_resolution(node, pitch, rail_width, DEFAULT_RESOLUTION)
}

/// [`mesh_worst_drop`] at an explicit resolution (for convergence
/// studies).
///
/// # Errors
///
/// Same as [`mesh_worst_drop`]; additionally rejects resolutions < 5.
pub fn mesh_worst_drop_with_resolution(
    node: TechNode,
    pitch: Microns,
    rail_width: Microns,
    resolution: usize,
) -> Result<Volts, GridError> {
    if process_cache_enabled() {
        return process_cache()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .worst_drop_with_resolution(node, pitch, rail_width, resolution);
    }
    let (m, _i_per_node) = assemble_bump_cell(node, pitch, rail_width, resolution)?;
    let v = m.solve()?;
    Ok(worst_drop_of(&v))
}

/// Builds the bump-cell [`MeshProblem`] — effective sheet conductance
/// from rail geometry, uniform hot-spot injection, centre node pinned —
/// returning it together with the per-node injection current.
///
/// # Errors
///
/// Rejects non-positive geometry and resolutions < 5.
fn assemble_bump_cell(
    node: TechNode,
    pitch: Microns,
    rail_width: Microns,
    resolution: usize,
) -> Result<(MeshProblem, f64), GridError> {
    if !(pitch.0 > 0.0 && rail_width.0 > 0.0) {
        return Err(GridError::BadParameter("pitch and width must be positive"));
    }
    if resolution < 5 {
        return Err(GridError::BadParameter("resolution must be at least 5"));
    }
    let n = if resolution.is_multiple_of(2) {
        resolution + 1
    } else {
        resolution
    };
    let rho_s = node.params().top_metal_sheet_resistance().0; // Ω/sq
                                                              // Rails of width w at pitch P give the sheet an effective sheet
                                                              // conductivity of (w/P)/ρ_s per routing direction; a square mesh edge
                                                              // then has that conductance.
    let sheet_conductance = (rail_width.0 / pitch.0) / rho_s;
    let mut m = MeshProblem::new(n, n, sheet_conductance);
    let j = hotspot_current_density(node); // A/µm²
    let h = pitch.0 / (n as f64 - 1.0); // µm per mesh step
    let i_per_node = j * h * h;
    for v in m.injection.iter_mut() {
        *v = i_per_node;
    }
    let centre = m.index(n / 2, n / 2);
    m.pinned[centre] = true;
    Ok((m, i_per_node))
}

/// The worst (most negative) node voltage, reported as a positive drop.
fn worst_drop_of(v: &[f64]) -> Volts {
    Volts(-v.iter().copied().fold(f64::INFINITY, f64::min))
}

/// Cache key: everything `assemble_bump_cell` depends on. Geometry is
/// keyed by exact bit pattern — the electro-thermal fixed point re-solves
/// the *same* geometry, which is the case the cache exists for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    node: TechNode,
    pitch_bits: u64,
    width_bits: u64,
    resolution: usize,
}

/// One memoized mesh: the assembled problem, its Jacobi preconditioner,
/// the multigrid level hierarchy (built lazily, on the first solve that
/// needs it), and per-strategy-family warm-start solutions.
///
/// Warm starts are kept per family — CG-family and multigrid-family
/// solves each warm-start from their own last solution — so alternating
/// strategies on the same mesh (a plan switch, or Auto straddling the
/// multigrid threshold across resolutions) don't evict each other's
/// state.
#[derive(Debug, Clone)]
struct CacheEntry {
    problem: MeshProblem,
    prepared: PreparedMesh,
    hierarchy: Option<MgHierarchy>,
    warm_cg: Option<Vec<f64>>,
    warm_mg: Option<Vec<f64>>,
    i_per_node: f64,
}

/// Memoizes bump-cell mesh setup across repeated solves.
///
/// The electro-thermal fixed point (and any sweep that revisits a
/// geometry) re-assembles and re-solves the same mesh every iteration.
/// The cache keeps the assembled [`MeshProblem`] and its
/// [`PreparedMesh`] per distinct `(node, pitch, width, resolution)` key
/// and warm-starts each solve from the previous solution, so repeat
/// solves converge in a handful of PCG iterations instead of `O(nx)`.
///
/// ```
/// use np_grid::mesh::MeshCache;
/// use np_roadmap::TechNode;
/// use np_units::Microns;
///
/// let mut cache = MeshCache::new();
/// let cold = cache.worst_drop(TechNode::N50, Microns(90.0), Microns(3.0))?;
/// let warm = cache.worst_drop(TechNode::N50, Microns(90.0), Microns(3.0))?;
/// assert!((cold.0 - warm.0).abs() <= 1e-9 * cold.0.abs());
/// assert_eq!((cache.misses(), cache.hits()), (1, 1));
/// # Ok::<(), np_grid::GridError>(())
/// ```
#[derive(Debug, Default)]
pub struct MeshCache {
    entries: HashMap<CacheKey, CacheEntry>,
    plan: SolvePlan,
    hits: u64,
    misses: u64,
}

impl MeshCache {
    /// An empty cache solving with [`SolvePlan::auto`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache solving with an explicit [`SolvePlan`].
    pub fn with_plan(plan: SolvePlan) -> Self {
        Self {
            plan,
            ..Self::default()
        }
    }

    /// Switches the plan for subsequent solves; memoized meshes (and
    /// each strategy family's warm starts) are kept — switching between
    /// CG and multigrid on the same mesh never discards the other
    /// family's state.
    pub fn set_plan(&mut self, plan: SolvePlan) {
        self.plan = plan;
    }

    /// Cached counterpart of [`mesh_worst_drop`].
    ///
    /// # Errors
    ///
    /// Same as [`mesh_worst_drop`].
    pub fn worst_drop(
        &mut self,
        node: TechNode,
        pitch: Microns,
        rail_width: Microns,
    ) -> Result<Volts, GridError> {
        self.worst_drop_with_resolution(node, pitch, rail_width, DEFAULT_RESOLUTION)
    }

    /// Cached counterpart of [`mesh_worst_drop_with_resolution`].
    ///
    /// # Errors
    ///
    /// Same as [`mesh_worst_drop_with_resolution`].
    pub fn worst_drop_with_resolution(
        &mut self,
        node: TechNode,
        pitch: Microns,
        rail_width: Microns,
        resolution: usize,
    ) -> Result<Volts, GridError> {
        self.worst_drop_scaled(node, pitch, rail_width, resolution, 1.0)
    }

    /// [`MeshCache::worst_drop_with_resolution`] with the hot-spot
    /// injection scaled by `scale` — the electro-thermal loop's knob,
    /// where leakage growth multiplies the load current while the mesh
    /// geometry stays fixed.
    ///
    /// # Errors
    ///
    /// Same as [`mesh_worst_drop_with_resolution`]; additionally rejects
    /// a non-finite or negative `scale`.
    pub fn worst_drop_scaled(
        &mut self,
        node: TechNode,
        pitch: Microns,
        rail_width: Microns,
        resolution: usize,
        scale: f64,
    ) -> Result<Volts, GridError> {
        if !scale.is_finite() || scale < 0.0 {
            return Err(GridError::BadParameter(
                "injection scale must be finite and non-negative",
            ));
        }
        let key = CacheKey {
            node,
            pitch_bits: pitch.0.to_bits(),
            width_bits: rail_width.0.to_bits(),
            resolution,
        };
        if let std::collections::hash_map::Entry::Vacant(slot) = self.entries.entry(key) {
            let (problem, i_per_node) = assemble_bump_cell(node, pitch, rail_width, resolution)?;
            let prepared = PreparedMesh::new(&problem);
            slot.insert(CacheEntry {
                problem,
                prepared,
                hierarchy: None,
                warm_cg: None,
                warm_mg: None,
                i_per_node,
            });
            self.misses += 1;
            np_telemetry::counter("grid.mesh_cache.miss", 1);
        } else {
            self.hits += 1;
            np_telemetry::counter("grid.mesh_cache.hit", 1);
        }
        // Entry exists by construction; avoid unwrap to satisfy the
        // crate-wide unwrap ban.
        let Some(entry) = self.entries.get_mut(&key) else {
            return Err(GridError::BadParameter("mesh cache entry vanished"));
        };
        let n_nodes = entry.problem.nx * entry.problem.ny;
        let m = MeshProblem {
            injection: vec![entry.i_per_node * scale; n_nodes],
            ..entry.problem.clone()
        };
        let (strategy, shards) = self.plan.resolve_for(&m);
        let v = match strategy {
            SolveStrategy::ParallelSor => m.solve_parallel(shards)?,
            SolveStrategy::SequentialSor => m.solve()?,
            SolveStrategy::ParallelCg => {
                let x0 = entry.warm_cg.as_deref();
                let v = solve_pcg_parallel_warm(&m, &entry.prepared, shards, x0)?;
                entry.warm_cg = Some(v.clone());
                v
            }
            // Auto never survives `resolve_for`; SequentialCg takes the
            // warm-started preconditioned path.
            SolveStrategy::SequentialCg | SolveStrategy::Auto => {
                let x0 = entry.warm_cg.as_deref();
                let v = solve_pcg_warm(&m, &entry.prepared, x0)?;
                entry.warm_cg = Some(v.clone());
                v
            }
            SolveStrategy::Multigrid | SolveStrategy::MultigridCg => {
                // The hierarchy depends only on the mesh shape and pins
                // (not the injection), so one build serves every scale.
                if entry.hierarchy.is_none() {
                    entry.hierarchy = Some(MgHierarchy::new(&m)?);
                }
                let Some(hier) = entry.hierarchy.as_ref() else {
                    return Err(GridError::BadParameter("mesh cache hierarchy vanished"));
                };
                let x0 = entry.warm_mg.as_deref();
                let v = if strategy == SolveStrategy::Multigrid {
                    solve_multigrid_warm(&m, hier, shards, x0)?
                } else {
                    solve_mgcg_warm(&m, hier, shards, x0)?
                };
                entry.warm_mg = Some(v.clone());
                v
            }
        };
        Ok(worst_drop_of(&v))
    }

    /// Solves served from a memoized mesh.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Solves that had to assemble the mesh first.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct meshes currently memoized.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no meshes yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The process-wide shared [`MeshCache`] behind
/// [`scoped_process_cache`] — one cache for every thread of a
/// long-running service, so repeated grid solves across requests share
/// assembled meshes and warm starts.
static PROCESS_CACHE: std::sync::OnceLock<std::sync::Mutex<MeshCache>> = std::sync::OnceLock::new();
static PROCESS_CACHE_ENABLED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

fn process_cache() -> &'static std::sync::Mutex<MeshCache> {
    PROCESS_CACHE.get_or_init(|| std::sync::Mutex::new(MeshCache::new()))
}

/// Whether the free mesh functions currently route through the shared
/// process-wide cache.
pub fn process_cache_enabled() -> bool {
    PROCESS_CACHE_ENABLED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Routes [`mesh_worst_drop`] / [`mesh_worst_drop_with_resolution`]
/// through one process-wide shared [`MeshCache`] until the returned
/// guard drops, which restores the previous setting.
///
/// Off by default: one-shot runs (and the byte-identical `repro`
/// artifacts) keep the direct solver path. A long-running service turns
/// it on once at startup so every request on every connection shares
/// assembled meshes and warm-started solutions. The cached and direct
/// paths agree to solver tolerance (≤1e-6 relative — see the
/// `cache_matches_the_free_function` test); entries key on the exact
/// geometry bits, so there is no cross-geometry contamination. Nested
/// guards restore in LIFO drop order, mirroring
/// [`crate::plan::scoped_thread_budget`].
pub fn scoped_process_cache(enabled: bool) -> ProcessCacheGuard {
    let previous = PROCESS_CACHE_ENABLED.swap(enabled, std::sync::atomic::Ordering::Relaxed);
    ProcessCacheGuard { previous }
}

/// Restores the prior [`process_cache_enabled`] state on drop; created
/// by [`scoped_process_cache`].
#[derive(Debug)]
pub struct ProcessCacheGuard {
    previous: bool,
}

impl Drop for ProcessCacheGuard {
    fn drop(&mut self) {
        PROCESS_CACHE_ENABLED.store(self.previous, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Lifetime `(hits, misses)` of the process-wide shared cache,
/// regardless of whether routing is currently enabled — the counters a
/// service surfaces in its stats response.
pub fn process_cache_stats() -> (u64, u64) {
    let cache = process_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    (cache.hits(), cache.misses())
}

/// Entries currently resident in the process-wide shared cache — the
/// occupancy figure a service's stats/health endpoints report alongside
/// [`process_cache_stats`].
pub fn process_cache_entries() -> usize {
    process_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::worst_case_drop;

    #[test]
    fn mesh_and_analytic_agree_within_a_factor() {
        // The analytic k_geo was chosen to track the mesh; demand
        // agreement within ±50% across nodes and widths.
        for (node, pitch, w) in [
            (TechNode::N35, 80.0, 4.0),
            (TechNode::N50, 90.0, 3.0),
            (TechNode::N70, 110.0, 2.0),
        ] {
            let mesh = mesh_worst_drop(node, Microns(pitch), Microns(w)).unwrap();
            let ana = worst_case_drop(node, Microns(pitch), Microns(w)).unwrap();
            let ratio = mesh.0 / ana.0;
            assert!(
                (0.5..=1.6).contains(&ratio),
                "{node} P={pitch} w={w}: mesh {mesh} vs analytic {ana} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn mesh_drop_scales_inversely_with_width() {
        let d2 = mesh_worst_drop(TechNode::N35, Microns(80.0), Microns(2.0)).unwrap();
        let d8 = mesh_worst_drop(TechNode::N35, Microns(80.0), Microns(8.0)).unwrap();
        let ratio = d2.0 / d8.0;
        assert!((ratio - 4.0).abs() < 0.1, "got {ratio}");
    }

    #[test]
    fn resolution_convergence() {
        let coarse =
            mesh_worst_drop_with_resolution(TechNode::N35, Microns(80.0), Microns(4.0), 17)
                .unwrap();
        let fine = mesh_worst_drop_with_resolution(TechNode::N35, Microns(80.0), Microns(4.0), 49)
            .unwrap();
        // The mesh refines the same physical sheet; answers drift by the
        // log-divergent point-pin correction but stay close.
        let ratio = fine.0 / coarse.0;
        assert!((0.7..=1.4).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(mesh_worst_drop(TechNode::N35, Microns(0.0), Microns(1.0)).is_err());
        assert!(
            mesh_worst_drop_with_resolution(TechNode::N35, Microns(80.0), Microns(1.0), 3).is_err()
        );
    }

    #[test]
    fn cache_matches_the_free_function() {
        let mut cache = MeshCache::new();
        let cached = cache
            .worst_drop(TechNode::N35, Microns(80.0), Microns(4.0))
            .unwrap();
        let direct = mesh_worst_drop(TechNode::N35, Microns(80.0), Microns(4.0)).unwrap();
        // Different solvers (warm PCG vs SOR), same physics: agree to
        // solver tolerance, far tighter than the model's own accuracy.
        assert!(
            (cached.0 - direct.0).abs() <= 1e-6 * direct.0.abs(),
            "cached {cached} vs direct {direct}"
        );
        assert_eq!((cache.misses(), cache.hits()), (1, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn repeat_solves_hit_the_cache_and_agree() {
        let mut cache = MeshCache::new();
        let first = cache
            .worst_drop(TechNode::N50, Microns(90.0), Microns(3.0))
            .unwrap();
        let second = cache
            .worst_drop(TechNode::N50, Microns(90.0), Microns(3.0))
            .unwrap();
        assert!((first.0 - second.0).abs() <= 1e-9 * first.0.abs());
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        // A different geometry is a fresh entry, not a stale hit.
        cache
            .worst_drop(TechNode::N50, Microns(91.0), Microns(3.0))
            .unwrap();
        assert_eq!((cache.misses(), cache.hits()), (2, 1));
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
    }

    #[test]
    fn scaled_injection_scales_the_drop_linearly() {
        let mut cache = MeshCache::new();
        let base = cache
            .worst_drop_scaled(TechNode::N35, Microns(80.0), Microns(4.0), 33, 1.0)
            .unwrap();
        let doubled = cache
            .worst_drop_scaled(TechNode::N35, Microns(80.0), Microns(4.0), 33, 2.0)
            .unwrap();
        // The operator is linear in the injection.
        assert!(
            (doubled.0 - 2.0 * base.0).abs() <= 1e-6 * base.0.abs(),
            "base {base}, doubled {doubled}"
        );
        assert!(cache
            .worst_drop_scaled(TechNode::N35, Microns(80.0), Microns(4.0), 33, f64::NAN)
            .is_err());
    }

    #[test]
    fn warm_started_scale_sweep_handles_zero_and_tiny_scales() {
        // One cache, three scales, all on the same warm-started entry:
        // the second and third solves reuse the previous solution as the
        // PCG starting guess, which is exactly the path that used to
        // break down for a zero injection (the residual decayed into
        // denormals chasing a clamped tolerance).
        let mut cache = MeshCache::new();
        let base = cache
            .worst_drop_scaled(TechNode::N35, Microns(80.0), Microns(4.0), 33, 1.0)
            .unwrap();
        assert!(base.0 > 0.0, "unit scale must produce a real drop: {base}");
        // scale = 0: no injection means no drop, exactly.
        let zero = cache
            .worst_drop_scaled(TechNode::N35, Microns(80.0), Microns(4.0), 33, 0.0)
            .unwrap();
        assert_eq!(zero, Volts(0.0), "zero injection must yield a zero drop");
        // scale = 1e-9: linearity, warm-started from the zero solution.
        let tiny = cache
            .worst_drop_scaled(TechNode::N35, Microns(80.0), Microns(4.0), 33, 1e-9)
            .unwrap();
        assert!(
            (tiny.0 - 1e-9 * base.0).abs() <= 1e-6 * 1e-9 * base.0,
            "tiny-scale drop must stay linear: base {base}, tiny {tiny}"
        );
        // All three solves shared one assembled mesh.
        assert_eq!((cache.misses(), cache.hits()), (1, 2));
    }

    #[test]
    fn process_cache_routes_and_counts() {
        // Unique geometry bits so parallel tests sharing the global
        // cache cannot interfere with the hit/miss deltas.
        let pitch = Microns(83.257_119);
        let width = Microns(4.113_271);
        let direct = mesh_worst_drop(TechNode::N35, pitch, width).unwrap();
        assert!(!process_cache_enabled(), "off by default");
        let (hits_before, _) = process_cache_stats();
        {
            let _guard = scoped_process_cache(true);
            assert!(process_cache_enabled());
            let cold = mesh_worst_drop(TechNode::N35, pitch, width).unwrap();
            let warm = mesh_worst_drop(TechNode::N35, pitch, width).unwrap();
            assert!(
                (cold.0 - direct.0).abs() <= 1e-6 * direct.0.abs(),
                "cached {cold} vs direct {direct}"
            );
            assert!((warm.0 - cold.0).abs() <= 1e-9 * cold.0.abs());
        }
        assert!(!process_cache_enabled(), "guard restores");
        let (hits_after, _) = process_cache_stats();
        assert!(hits_after > hits_before, "repeat solve hit the cache");
        // Routing disabled again: direct path, stats unchanged.
        let again = mesh_worst_drop(TechNode::N35, pitch, width).unwrap();
        assert_eq!(again, direct);
        assert_eq!(process_cache_stats().0, hits_after);
        // Guards nest LIFO, like `scoped_thread_budget`. (Exercised here
        // rather than in a separate test: the flag is process-global and
        // parallel tests toggling it would race.)
        let outer = scoped_process_cache(true);
        {
            let _inner = scoped_process_cache(false);
            assert!(!process_cache_enabled());
        }
        assert!(process_cache_enabled(), "inner guard restored outer state");
        drop(outer);
        assert!(!process_cache_enabled());
    }

    #[test]
    fn strategy_switches_share_the_entry_but_not_warm_starts() {
        // One cache, one mesh (64 rounds up to 65 = 2^6+1, so the
        // multigrid ladder applies), three strategy switches: every
        // solve reuses the single assembled entry, each family warm
        // starts from its own last solution, and the answers agree.
        let mut cache = MeshCache::with_plan(SolvePlan::with_strategy(SolveStrategy::SequentialCg));
        let geometry = (TechNode::N50, Microns(90.0), Microns(3.0), 65);
        let (node, pitch, width, res) = geometry;
        let cg = cache
            .worst_drop_with_resolution(node, pitch, width, res)
            .unwrap();
        cache.set_plan(SolvePlan::with_strategy(SolveStrategy::Multigrid).with_shards(1));
        let mg = cache
            .worst_drop_with_resolution(node, pitch, width, res)
            .unwrap();
        cache.set_plan(SolvePlan::with_strategy(SolveStrategy::MultigridCg).with_shards(1));
        let mgcg = cache
            .worst_drop_with_resolution(node, pitch, width, res)
            .unwrap();
        cache.set_plan(SolvePlan::with_strategy(SolveStrategy::SequentialCg));
        let cg_again = cache
            .worst_drop_with_resolution(node, pitch, width, res)
            .unwrap();
        assert!(
            (cg.0 - mg.0).abs() <= 1e-6 * cg.0.abs(),
            "CG {cg} vs MG {mg}"
        );
        assert!(
            (cg.0 - mgcg.0).abs() <= 1e-6 * cg.0.abs(),
            "CG {cg} vs MGCG {mgcg}"
        );
        // The CG family's warm start survived the multigrid interlude:
        // returning to CG reproduces its own answer to solver precision.
        assert!(
            (cg.0 - cg_again.0).abs() <= 1e-9 * cg.0.abs(),
            "CG {cg} vs warm CG {cg_again}"
        );
        assert_eq!(
            (cache.misses(), cache.hits()),
            (1, 3),
            "all four solves shared one assembled mesh"
        );
    }

    #[test]
    fn cache_honours_an_explicit_plan() {
        let mut cache = MeshCache::with_plan(
            SolvePlan::with_strategy(SolveStrategy::ParallelSor).with_shards(3),
        );
        let v = cache
            .worst_drop(TechNode::N35, Microns(80.0), Microns(4.0))
            .unwrap();
        let direct = mesh_worst_drop(TechNode::N35, Microns(80.0), Microns(4.0)).unwrap();
        // Parallel SOR is bitwise identical to the sequential sweep.
        assert_eq!(v, direct);
    }
}
