//! Bump-cell mesh analysis: the numeric counterpart of
//! [`crate::analytic`].
//!
//! One bump cell (pitch × pitch) is discretized as a resistive sheet whose
//! effective sheet conductivity comes from rails of width `w` at the grid
//! pitch, the hot-spot current is spread uniformly over the cell, and the
//! bump pins the centre node. The worst mesh drop validates the analytic
//! `k_geo` factor.

use crate::analytic::hotspot_current_density;
use crate::error::GridError;
use crate::solver::MeshProblem;
use np_roadmap::TechNode;
use np_units::{Microns, Volts};

/// Default mesh resolution per bump cell (nodes per side).
pub const DEFAULT_RESOLUTION: usize = 33;

/// Numeric worst-case IR drop in a bump cell of `pitch` with rails of
/// `rail_width` at the same pitch (one rail per cell per direction).
///
/// # Errors
///
/// Propagates solver errors; rejects non-positive geometry.
pub fn mesh_worst_drop(
    node: TechNode,
    pitch: Microns,
    rail_width: Microns,
) -> Result<Volts, GridError> {
    mesh_worst_drop_with_resolution(node, pitch, rail_width, DEFAULT_RESOLUTION)
}

/// [`mesh_worst_drop`] at an explicit resolution (for convergence
/// studies).
///
/// # Errors
///
/// Same as [`mesh_worst_drop`]; additionally rejects resolutions < 5.
pub fn mesh_worst_drop_with_resolution(
    node: TechNode,
    pitch: Microns,
    rail_width: Microns,
    resolution: usize,
) -> Result<Volts, GridError> {
    if !(pitch.0 > 0.0 && rail_width.0 > 0.0) {
        return Err(GridError::BadParameter("pitch and width must be positive"));
    }
    if resolution < 5 {
        return Err(GridError::BadParameter("resolution must be at least 5"));
    }
    let n = if resolution.is_multiple_of(2) {
        resolution + 1
    } else {
        resolution
    };
    let rho_s = node.params().top_metal_sheet_resistance().0; // Ω/sq
                                                              // Rails of width w at pitch P give the sheet an effective sheet
                                                              // conductivity of (w/P)/ρ_s per routing direction; a square mesh edge
                                                              // then has that conductance.
    let sheet_conductance = (rail_width.0 / pitch.0) / rho_s;
    let mut m = MeshProblem::new(n, n, sheet_conductance);
    let j = hotspot_current_density(node); // A/µm²
    let h = pitch.0 / (n as f64 - 1.0); // µm per mesh step
    let i_per_node = j * h * h;
    for v in m.injection.iter_mut() {
        *v = i_per_node;
    }
    let centre = m.index(n / 2, n / 2);
    m.pinned[centre] = true;
    let v = m.solve()?;
    Ok(Volts(-v.iter().copied().fold(f64::INFINITY, f64::min)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::worst_case_drop;

    #[test]
    fn mesh_and_analytic_agree_within_a_factor() {
        // The analytic k_geo was chosen to track the mesh; demand
        // agreement within ±50% across nodes and widths.
        for (node, pitch, w) in [
            (TechNode::N35, 80.0, 4.0),
            (TechNode::N50, 90.0, 3.0),
            (TechNode::N70, 110.0, 2.0),
        ] {
            let mesh = mesh_worst_drop(node, Microns(pitch), Microns(w)).unwrap();
            let ana = worst_case_drop(node, Microns(pitch), Microns(w)).unwrap();
            let ratio = mesh.0 / ana.0;
            assert!(
                (0.5..=1.6).contains(&ratio),
                "{node} P={pitch} w={w}: mesh {mesh} vs analytic {ana} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn mesh_drop_scales_inversely_with_width() {
        let d2 = mesh_worst_drop(TechNode::N35, Microns(80.0), Microns(2.0)).unwrap();
        let d8 = mesh_worst_drop(TechNode::N35, Microns(80.0), Microns(8.0)).unwrap();
        let ratio = d2.0 / d8.0;
        assert!((ratio - 4.0).abs() < 0.1, "got {ratio}");
    }

    #[test]
    fn resolution_convergence() {
        let coarse =
            mesh_worst_drop_with_resolution(TechNode::N35, Microns(80.0), Microns(4.0), 17)
                .unwrap();
        let fine = mesh_worst_drop_with_resolution(TechNode::N35, Microns(80.0), Microns(4.0), 49)
            .unwrap();
        // The mesh refines the same physical sheet; answers drift by the
        // log-divergent point-pin correction but stay close.
        let ratio = fine.0 / coarse.0;
        assert!((0.7..=1.4).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(mesh_worst_drop(TechNode::N35, Microns(0.0), Microns(1.0)).is_err());
        assert!(
            mesh_worst_drop_with_resolution(TechNode::N35, Microns(80.0), Microns(1.0), 3).is_err()
        );
    }
}
