//! Conjugate-gradient solver for the resistive mesh.
//!
//! A second, independent numeric method for the same
//! [`MeshProblem`]: the mesh Laplacian is
//! symmetric positive-definite once at least one node is pinned, so
//! conjugate gradients converge in at most `n` steps and typically far
//! fewer. Having two solvers lets the test suite cross-validate the
//! linear algebra itself, not just the physics built on it — and CG is
//! the faster choice on large meshes.

use crate::error::GridError;
use crate::solver::MeshProblem;

/// Applies the mesh Laplacian `G·v` (pinned nodes held at zero).
fn apply(m: &MeshProblem, v: &[f64], out: &mut [f64]) {
    let (nx, ny, g) = (m.nx, m.ny, m.edge_conductance);
    for y in 0..ny {
        for x in 0..nx {
            let i = y * nx + x;
            if m.pinned[i] {
                out[i] = v[i]; // identity row for pinned nodes
                continue;
            }
            let mut acc = 0.0;
            let mut deg = 0.0;
            if x > 0 {
                acc += if m.pinned[i - 1] { 0.0 } else { v[i - 1] };
                deg += 1.0;
            }
            if x + 1 < nx {
                acc += if m.pinned[i + 1] { 0.0 } else { v[i + 1] };
                deg += 1.0;
            }
            if y > 0 {
                acc += if m.pinned[i - nx] { 0.0 } else { v[i - nx] };
                deg += 1.0;
            }
            if y + 1 < ny {
                acc += if m.pinned[i + nx] { 0.0 } else { v[i + nx] };
                deg += 1.0;
            }
            out[i] = g * (deg * v[i] - acc);
        }
    }
}

/// Solves the mesh by conjugate gradients.
///
/// Returns node voltages identical (to solver tolerance) to
/// [`MeshProblem::solve`].
///
/// # Errors
///
/// [`GridError::BadParameter`] when no node is pinned;
/// [`GridError::NoConvergence`] if the iteration stalls (cannot happen
/// for a well-posed SPD system within the generous budget, kept for API
/// honesty).
pub fn solve_cg(m: &MeshProblem) -> Result<Vec<f64>, GridError> {
    if !m.pinned.iter().any(|&p| p) {
        return Err(GridError::BadParameter("at least one node must be pinned"));
    }
    let n = m.nx * m.ny;
    // RHS: -I at free nodes (current draw pulls the node negative),
    // 0 at pinned nodes.
    let b: Vec<f64> = (0..n)
        .map(|i| if m.pinned[i] { 0.0 } else { -m.injection[i] })
        .collect();
    let mut x = vec![0.0f64; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut ap = vec![0.0f64; n];
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    let b_norm = rs_old.sqrt().max(1e-300);
    let tol = 1e-12 * b_norm;
    let max_iters = 10 * n;
    for _ in 0..max_iters {
        if rs_old.sqrt() <= tol {
            return Ok(x);
        }
        apply(m, &p, &mut ap);
        let p_ap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if p_ap <= 0.0 {
            break; // loss of positive-definiteness: numerical breakdown
        }
        let alpha = rs_old / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    if rs_old.sqrt() <= tol * 10.0 {
        Ok(x)
    } else {
        Err(GridError::NoConvergence {
            iterations: max_iters,
            residual: rs_old.sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_mesh(n: usize) -> MeshProblem {
        let mut m = MeshProblem::new(n, n, 1.3);
        let pin = m.index(n / 2, n / 2);
        m.pinned[pin] = true;
        for i in 0..m.injection.len() {
            m.injection[i] = 1e-3;
        }
        m
    }

    #[test]
    fn cg_matches_sor() {
        for n in [5usize, 9, 16] {
            let m = loaded_mesh(n);
            let sor = m.solve().expect("sor");
            let cg = solve_cg(&m).expect("cg");
            for i in 0..sor.len() {
                assert!(
                    (sor[i] - cg[i]).abs() < 1e-6,
                    "n={n} node {i}: SOR {} vs CG {}",
                    sor[i],
                    cg[i]
                );
            }
        }
    }

    #[test]
    fn cg_satisfies_kcl() {
        let m = loaded_mesh(9);
        let v = solve_cg(&m).unwrap();
        let mut gv = vec![0.0; v.len()];
        apply(&m, &v, &mut gv);
        for (i, g) in gv.iter().enumerate() {
            if !m.pinned[i] {
                assert!(
                    (g + m.injection[i]).abs() < 1e-9,
                    "KCL at {i}: {g} vs {}",
                    -m.injection[i]
                );
            }
        }
    }

    #[test]
    fn pinned_nodes_stay_at_zero() {
        let m = loaded_mesh(11);
        let v = solve_cg(&m).unwrap();
        for (i, vi) in v.iter().enumerate() {
            if m.pinned[i] {
                assert_eq!(*vi, 0.0);
            }
        }
    }

    #[test]
    fn unpinned_rejected() {
        let m = MeshProblem::new(4, 4, 1.0);
        assert!(matches!(solve_cg(&m), Err(GridError::BadParameter(_))));
    }

    #[test]
    fn multiple_pins_supported() {
        let mut m = loaded_mesh(13);
        let extra = m.index(0, 0);
        m.pinned[extra] = true;
        let sor = m.solve().unwrap();
        let cg = solve_cg(&m).unwrap();
        for i in 0..sor.len() {
            assert!((sor[i] - cg[i]).abs() < 1e-6);
        }
    }
}
