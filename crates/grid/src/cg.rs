//! Conjugate-gradient solver for the resistive mesh.
//!
//! A second, independent numeric method for the same
//! [`MeshProblem`]: the mesh Laplacian is
//! symmetric positive-definite once at least one node is pinned, so
//! conjugate gradients converge in at most `n` steps and typically far
//! fewer. Having two solvers lets the test suite cross-validate the
//! linear algebra itself, not just the physics built on it — and CG is
//! the faster choice on large meshes.

use crate::error::GridError;
use crate::solver::MeshProblem;
use np_units::convergence::{Breakdown, ResidualTrace};

/// Applies the mesh Laplacian `G·v` (pinned nodes held at zero).
fn apply(m: &MeshProblem, v: &[f64], out: &mut [f64]) {
    let (nx, ny, g) = (m.nx, m.ny, m.edge_conductance);
    for y in 0..ny {
        for x in 0..nx {
            let i = y * nx + x;
            if m.pinned[i] {
                out[i] = v[i]; // identity row for pinned nodes
                continue;
            }
            let mut acc = 0.0;
            let mut deg = 0.0;
            if x > 0 {
                acc += if m.pinned[i - 1] { 0.0 } else { v[i - 1] };
                deg += 1.0;
            }
            if x + 1 < nx {
                acc += if m.pinned[i + 1] { 0.0 } else { v[i + 1] };
                deg += 1.0;
            }
            if y > 0 {
                acc += if m.pinned[i - nx] { 0.0 } else { v[i - nx] };
                deg += 1.0;
            }
            if y + 1 < ny {
                acc += if m.pinned[i + nx] { 0.0 } else { v[i + nx] };
                deg += 1.0;
            }
            out[i] = g * (deg * v[i] - acc);
        }
    }
}

/// Solves the mesh by conjugate gradients.
///
/// Returns node voltages identical (to solver tolerance) to
/// [`MeshProblem::solve`].
///
/// # Errors
///
/// [`GridError::BadParameter`]/[`GridError::NonFinite`] when
/// [`MeshProblem::validate`] rejects the problem;
/// [`GridError::NoConvergence`] if the iteration stalls, with a
/// diagnostic whose reason distinguishes a plain budget exhaustion from
/// a loss of positive-definiteness
/// ([`Breakdown::IndefiniteOperator`]) — the latter means the system is
/// singular/indefinite and re-running cannot help.
pub fn solve_cg(m: &MeshProblem) -> Result<Vec<f64>, GridError> {
    m.validate()?;
    cg_iterate(m)
}

/// The CG iteration proper, after [`MeshProblem::validate`] has accepted
/// the inputs. Kept separate so the breakdown watchdogs can be exercised
/// on inputs `validate` would reject.
fn cg_iterate(m: &MeshProblem) -> Result<Vec<f64>, GridError> {
    let _span = np_telemetry::span("grid.cg.solve");
    let n = m.nx * m.ny;
    // RHS: -I at free nodes (current draw pulls the node negative),
    // 0 at pinned nodes.
    let b: Vec<f64> = (0..n)
        .map(|i| if m.pinned[i] { 0.0 } else { -m.injection[i] })
        .collect();
    let mut x = vec![0.0f64; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut ap = vec![0.0f64; n];
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    let b_norm = rs_old.sqrt().max(1e-300);
    let tol = 1e-12 * b_norm;
    let max_iters = 10 * n;
    let mut trace = ResidualTrace::new();
    // The labeled block funnels every exit path through one point so the
    // iteration count and final residual are recorded exactly once.
    let result = 'solve: {
        for _ in 0..max_iters {
            if rs_old.sqrt() <= tol {
                break 'solve Ok(x);
            }
            apply(m, &p, &mut ap);
            let p_ap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if !p_ap.is_finite() {
                break 'solve Err(GridError::NoConvergence {
                    diag: trace.diagnostic(Breakdown::NonFinite {
                        at_iteration: trace.iterations(),
                    }),
                });
            }
            if p_ap <= 0.0 {
                // Loss of positive-definiteness is a structural breakdown, not
                // a budget problem — report it as its own reason so callers
                // don't retry a solve that cannot succeed. A solution already
                // within the relaxed tolerance is still accepted.
                if rs_old.sqrt() <= tol * 10.0 {
                    break 'solve Ok(x);
                }
                break 'solve Err(GridError::NoConvergence {
                    diag: trace.diagnostic(Breakdown::IndefiniteOperator { curvature: p_ap }),
                });
            }
            let alpha = rs_old / p_ap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rs_new: f64 = r.iter().map(|v| v * v).sum();
            let beta = rs_new / rs_old;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            rs_old = rs_new;
            trace.record(rs_old.sqrt());
        }
        if rs_old.sqrt() <= tol * 10.0 {
            Ok(x)
        } else {
            Err(GridError::NoConvergence {
                diag: trace.diagnostic(Breakdown::IterationBudget),
            })
        }
    };
    np_telemetry::counter("grid.cg.iterations", trace.iterations() as u64);
    np_telemetry::value("grid.cg.final_residual", rs_old.sqrt());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_mesh(n: usize) -> MeshProblem {
        let mut m = MeshProblem::new(n, n, 1.3);
        let pin = m.index(n / 2, n / 2);
        m.pinned[pin] = true;
        for i in 0..m.injection.len() {
            m.injection[i] = 1e-3;
        }
        m
    }

    #[test]
    fn cg_matches_sor() {
        for n in [5usize, 9, 16] {
            let m = loaded_mesh(n);
            let sor = m.solve().expect("sor");
            let cg = solve_cg(&m).expect("cg");
            for i in 0..sor.len() {
                assert!(
                    (sor[i] - cg[i]).abs() < 1e-6,
                    "n={n} node {i}: SOR {} vs CG {}",
                    sor[i],
                    cg[i]
                );
            }
        }
    }

    #[test]
    fn cg_satisfies_kcl() {
        let m = loaded_mesh(9);
        let v = solve_cg(&m).unwrap();
        let mut gv = vec![0.0; v.len()];
        apply(&m, &v, &mut gv);
        for (i, g) in gv.iter().enumerate() {
            if !m.pinned[i] {
                assert!(
                    (g + m.injection[i]).abs() < 1e-9,
                    "KCL at {i}: {g} vs {}",
                    -m.injection[i]
                );
            }
        }
    }

    #[test]
    fn pinned_nodes_stay_at_zero() {
        let m = loaded_mesh(11);
        let v = solve_cg(&m).unwrap();
        for (i, vi) in v.iter().enumerate() {
            if m.pinned[i] {
                assert_eq!(*vi, 0.0);
            }
        }
    }

    #[test]
    fn unpinned_rejected() {
        let m = MeshProblem::new(4, 4, 1.0);
        assert!(matches!(solve_cg(&m), Err(GridError::BadParameter(_))));
    }

    #[test]
    fn non_finite_injection_rejected_with_typed_error() {
        let mut m = loaded_mesh(5);
        m.injection[3] = f64::NAN;
        assert!(matches!(solve_cg(&m), Err(GridError::NonFinite(_))));
    }

    #[test]
    fn mismatched_injection_length_rejected_not_panicking() {
        let mut m = loaded_mesh(5);
        m.injection.truncate(3);
        assert!(matches!(solve_cg(&m), Err(GridError::BadParameter(_))));
    }

    #[test]
    fn indefinite_operator_reports_breakdown_reason() {
        use np_units::convergence::Breakdown;
        // A negative conductance makes the operator negative-definite:
        // pᵀAp < 0 on the first step. `validate` rejects this at the
        // public API; the iteration's own watchdog must still name the
        // structural cause rather than a generic budget exhaustion.
        let mut m = loaded_mesh(5);
        m.edge_conductance = -1.0;
        match cg_iterate(&m) {
            Err(GridError::NoConvergence { diag }) => {
                assert!(
                    matches!(diag.reason, Breakdown::IndefiniteOperator { curvature } if curvature < 0.0),
                    "got {:?}",
                    diag.reason
                );
            }
            other => panic!("expected breakdown, got {other:?}"),
        }
    }

    #[test]
    fn multiple_pins_supported() {
        let mut m = loaded_mesh(13);
        let extra = m.index(0, 0);
        m.pinned[extra] = true;
        let sor = m.solve().unwrap();
        let cg = solve_cg(&m).unwrap();
        for i in 0..sor.len() {
            assert!((sor[i] - cg[i]).abs() < 1e-6);
        }
    }
}
