//! Conjugate-gradient solvers for the resistive mesh.
//!
//! A second, independent numeric method for the same
//! [`MeshProblem`]: the mesh Laplacian is
//! symmetric positive-definite once at least one node is pinned, so
//! conjugate gradients converge in at most `n` steps and typically far
//! fewer. Having two solvers lets the test suite cross-validate the
//! linear algebra itself, not just the physics built on it — and CG is
//! the faster choice on large meshes.
//!
//! Three CG entry points share the iteration core:
//!
//! * [`solve_cg`] — plain CG, the historical reference;
//! * [`solve_pcg`] — Jacobi-preconditioned CG (the standard choice for
//!   power-grid meshes), with optional warm starts via
//!   [`solve_pcg_warm`] for repeated solves (see
//!   [`crate::mesh::MeshCache`]);
//! * [`solve_pcg_parallel`] — the same preconditioned iteration with the
//!   vector kernels (mat-vec, dots, axpy) sharded across row bands on
//!   scoped `std::thread` workers. Partial dot products are reduced in
//!   fixed shard order, so results are deterministic for a given shard
//!   count and agree with the sequential solver to solver tolerance.
//!
//! Callers normally pick a method through [`crate::plan::SolvePlan`]
//! rather than calling a specific solver directly.

use crate::error::GridError;
use crate::shard::{self, AtomicF64Vec};
use crate::solver::MeshProblem;
use np_units::convergence::{Breakdown, ResidualTrace};
use std::sync::{Barrier, Mutex, PoisonError};

/// Applies the mesh Laplacian `G·v` (pinned nodes held at zero).
///
/// Shared with [`crate::multigrid`], whose outer MGCG iteration runs the
/// same mat-vec.
pub(crate) fn apply(m: &MeshProblem, v: &[f64], out: &mut [f64]) {
    let (nx, ny, g) = (m.nx, m.ny, m.edge_conductance);
    for y in 0..ny {
        for x in 0..nx {
            let i = y * nx + x;
            if m.pinned[i] {
                out[i] = v[i]; // identity row for pinned nodes
                continue;
            }
            let mut acc = 0.0;
            let mut deg = 0.0;
            if x > 0 {
                acc += if m.pinned[i - 1] { 0.0 } else { v[i - 1] };
                deg += 1.0;
            }
            if x + 1 < nx {
                acc += if m.pinned[i + 1] { 0.0 } else { v[i + 1] };
                deg += 1.0;
            }
            if y > 0 {
                acc += if m.pinned[i - nx] { 0.0 } else { v[i - nx] };
                deg += 1.0;
            }
            if y + 1 < ny {
                acc += if m.pinned[i + nx] { 0.0 } else { v[i + nx] };
                deg += 1.0;
            }
            out[i] = g * (deg * v[i] - acc);
        }
    }
}

/// Solves the mesh by conjugate gradients.
///
/// Returns node voltages identical (to solver tolerance) to
/// [`MeshProblem::solve`].
///
/// # Errors
///
/// [`GridError::BadParameter`]/[`GridError::NonFinite`] when
/// [`MeshProblem::validate`] rejects the problem;
/// [`GridError::NoConvergence`] if the iteration stalls, with a
/// diagnostic whose reason distinguishes a plain budget exhaustion from
/// a loss of positive-definiteness
/// ([`Breakdown::IndefiniteOperator`]) — the latter means the system is
/// singular/indefinite and re-running cannot help.
pub fn solve_cg(m: &MeshProblem) -> Result<Vec<f64>, GridError> {
    m.validate()?;
    cg_iterate(m)
}

/// The CG iteration proper, after [`MeshProblem::validate`] has accepted
/// the inputs. Kept separate so the breakdown watchdogs can be exercised
/// on inputs `validate` would reject.
fn cg_iterate(m: &MeshProblem) -> Result<Vec<f64>, GridError> {
    // Degenerate meshes must surface as the typed domain error, never as
    // a convergence/IndefiniteOperator breakdown (or a silent empty
    // success): the guard runs before any iteration state is built.
    if m.nx < 2 || m.ny < 2 {
        return Err(GridError::BadParameter("mesh needs at least 2x2 nodes"));
    }
    let _span = np_telemetry::span("grid.cg.solve");
    let n = m.nx * m.ny;
    // RHS: -I at free nodes (current draw pulls the node negative),
    // 0 at pinned nodes.
    let b: Vec<f64> = (0..n)
        .map(|i| if m.pinned[i] { 0.0 } else { -m.injection[i] })
        .collect();
    let mut x = vec![0.0f64; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut ap = vec![0.0f64; n];
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    let b_norm = rs_old.sqrt().max(1e-300);
    let tol = 1e-12 * b_norm;
    let max_iters = 10 * n;
    let mut trace = ResidualTrace::new();
    // The labeled block funnels every exit path through one point so the
    // iteration count and final residual are recorded exactly once.
    let result = 'solve: {
        for _ in 0..max_iters {
            if rs_old.sqrt() <= tol {
                break 'solve Ok(x);
            }
            apply(m, &p, &mut ap);
            let p_ap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if !p_ap.is_finite() {
                break 'solve Err(GridError::NoConvergence {
                    diag: trace.diagnostic(Breakdown::NonFinite {
                        at_iteration: trace.iterations(),
                    }),
                });
            }
            if p_ap <= 0.0 {
                // Loss of positive-definiteness is a structural breakdown, not
                // a budget problem — report it as its own reason so callers
                // don't retry a solve that cannot succeed. A solution already
                // within the relaxed tolerance is still accepted.
                if rs_old.sqrt() <= tol * 10.0 {
                    break 'solve Ok(x);
                }
                break 'solve Err(GridError::NoConvergence {
                    diag: trace.diagnostic(Breakdown::IndefiniteOperator { curvature: p_ap }),
                });
            }
            let alpha = rs_old / p_ap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rs_new: f64 = r.iter().map(|v| v * v).sum();
            let beta = rs_new / rs_old;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            rs_old = rs_new;
            trace.record(rs_old.sqrt());
        }
        if rs_old.sqrt() <= tol * 10.0 {
            Ok(x)
        } else {
            Err(GridError::NoConvergence {
                diag: trace.diagnostic(Breakdown::IterationBudget),
            })
        }
    };
    np_telemetry::counter("grid.cg.iterations", trace.iterations() as u64);
    np_telemetry::value("grid.cg.final_residual", rs_old.sqrt());
    result
}

/// Mesh setup that repeated solves can reuse: the Jacobi preconditioner
/// (the inverse of the Laplacian diagonal) for a given mesh shape.
///
/// Assembling it costs one pass over the mesh; the electro-thermal loop
/// and the bench harness solve the same mesh shape dozens of times, so
/// [`crate::mesh::MeshCache`] builds one `PreparedMesh` per mesh and
/// hands it back to every subsequent [`solve_pcg_warm`]/
/// [`solve_pcg_parallel_warm`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedMesh {
    /// `1 / diag(G)` per node: `1/(g·deg)` at free nodes, `1.0` at
    /// pinned nodes (whose rows are identity).
    inv_diag: Vec<f64>,
}

impl PreparedMesh {
    /// Builds the preconditioner for `m` (which should already satisfy
    /// [`MeshProblem::validate`]; degenerate meshes yield an empty or
    /// unusable preconditioner that the solvers reject).
    pub fn new(m: &MeshProblem) -> Self {
        let (nx, ny, g) = (m.nx, m.ny, m.edge_conductance);
        let n = nx * ny;
        let mut inv_diag = vec![1.0; n];
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                if i < m.pinned.len() && m.pinned[i] {
                    continue; // identity row
                }
                let deg = f64::from(u8::from(x > 0))
                    + f64::from(u8::from(x + 1 < nx))
                    + f64::from(u8::from(y > 0))
                    + f64::from(u8::from(y + 1 < ny));
                if deg > 0.0 && g != 0.0 {
                    inv_diag[i] = 1.0 / (g * deg);
                }
            }
        }
        Self { inv_diag }
    }

    /// The inverse-diagonal entries, node-indexed.
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_diag
    }
}

/// Solves the mesh by Jacobi-preconditioned conjugate gradients.
///
/// Same contract as [`solve_cg`]; the diagonal preconditioner cuts the
/// iteration count roughly in half on loaded meshes and is the method
/// [`crate::plan::SolvePlan`] selects for sequential CG solves.
///
/// # Errors
///
/// Exactly those of [`solve_cg`].
pub fn solve_pcg(m: &MeshProblem) -> Result<Vec<f64>, GridError> {
    m.validate()?;
    pcg_iterate(m, &PreparedMesh::new(m), None)
}

/// [`solve_pcg`] with a reusable [`PreparedMesh`] and an optional warm
/// start.
///
/// `x0` seeds the iteration (its pinned entries are forced to zero); a
/// start near the solution — e.g. the previous solve of the same mesh in
/// a fixed-point loop — converges in a handful of iterations instead of
/// `O(nx)`.
///
/// # Errors
///
/// Those of [`solve_pcg`], plus [`GridError::BadParameter`] when
/// `prepared` or `x0` does not match the mesh size.
pub fn solve_pcg_warm(
    m: &MeshProblem,
    prepared: &PreparedMesh,
    x0: Option<&[f64]>,
) -> Result<Vec<f64>, GridError> {
    m.validate()?;
    check_warm_inputs(m, prepared, x0)?;
    pcg_iterate(m, prepared, x0)
}

/// Rejects mismatched prepared/warm-start vectors before iterating.
fn check_warm_inputs(
    m: &MeshProblem,
    prepared: &PreparedMesh,
    x0: Option<&[f64]>,
) -> Result<(), GridError> {
    let n = m.nx * m.ny;
    if prepared.inv_diag.len() != n {
        return Err(GridError::BadParameter(
            "prepared mesh does not match the problem size",
        ));
    }
    if let Some(x0) = x0 {
        if x0.len() != n {
            return Err(GridError::BadParameter(
                "warm-start vector must have nx*ny entries",
            ));
        }
    }
    Ok(())
}

/// Builds the PCG start state shared by the sequential and parallel
/// iterations: RHS, (warm-started) solution, residual, preconditioned
/// residual, and the two scalars `r·z` and `r·r`.
#[allow(clippy::type_complexity)]
fn pcg_start(
    m: &MeshProblem,
    prepared: &PreparedMesh,
    x0: Option<&[f64]>,
) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, f64, f64, f64) {
    let n = m.nx * m.ny;
    let b: Vec<f64> = (0..n)
        .map(|i| if m.pinned[i] { 0.0 } else { -m.injection[i] })
        .collect();
    let (x, r) = match x0 {
        Some(seed) => {
            let mut x = seed.to_vec();
            for (i, xi) in x.iter_mut().enumerate() {
                if m.pinned[i] {
                    *xi = 0.0; // pinned nodes stay exactly at the bump rail
                }
            }
            let mut ax = vec![0.0; n];
            apply(m, &x, &mut ax);
            let r: Vec<f64> = b.iter().zip(&ax).map(|(b, ax)| b - ax).collect();
            (x, r)
        }
        None => (vec![0.0; n], b.clone()),
    };
    let z: Vec<f64> = r
        .iter()
        .zip(&prepared.inv_diag)
        .map(|(r, d)| r * d)
        .collect();
    let rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
    let rr: f64 = r.iter().map(|v| v * v).sum();
    let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
    (b, x, r, z, rz, rr, b_norm)
}

/// The Jacobi-PCG iteration, sequential.
fn pcg_iterate(
    m: &MeshProblem,
    prepared: &PreparedMesh,
    x0: Option<&[f64]>,
) -> Result<Vec<f64>, GridError> {
    if m.nx < 2 || m.ny < 2 {
        return Err(GridError::BadParameter("mesh needs at least 2x2 nodes"));
    }
    let _span = np_telemetry::span("grid.pcg.solve");
    let n = m.nx * m.ny;
    let (b, mut x, mut r, mut z, mut rz, mut rr, b_norm) = pcg_start(m, prepared, x0);
    if b.iter().all(|&v| v == 0.0) {
        // x = 0 is the exact solution of the pinned SPD system with zero
        // injection. Iterating a warm start toward it instead chases a
        // tolerance of ~1e-312 (b_norm clamps at 1e-300) into denormal
        // territory until p·Ap underflows to an indefinite 0.
        return Ok(vec![0.0; n]);
    }
    let mut p = z.clone();
    let mut ap = vec![0.0f64; n];
    let tol = 1e-12 * b_norm;
    let max_iters = 10 * n;
    let mut trace = ResidualTrace::new();
    // The labeled block funnels every exit path through one point so the
    // iteration count and final residual are recorded exactly once.
    let result = 'solve: {
        for _ in 0..max_iters {
            if rr.sqrt() <= tol {
                break 'solve Ok(x);
            }
            apply(m, &p, &mut ap);
            let p_ap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if !p_ap.is_finite() {
                break 'solve Err(GridError::NoConvergence {
                    diag: trace.diagnostic(Breakdown::NonFinite {
                        at_iteration: trace.iterations(),
                    }),
                });
            }
            if p_ap <= 0.0 {
                if rr.sqrt() <= tol * 10.0 {
                    break 'solve Ok(x);
                }
                break 'solve Err(GridError::NoConvergence {
                    diag: trace.diagnostic(Breakdown::IndefiniteOperator { curvature: p_ap }),
                });
            }
            let alpha = rz / p_ap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            rr = r.iter().map(|v| v * v).sum();
            trace.record(rr.sqrt());
            for i in 0..n {
                z[i] = r[i] * prepared.inv_diag[i];
            }
            let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        if rr.sqrt() <= tol * 10.0 {
            Ok(x)
        } else {
            Err(GridError::NoConvergence {
                diag: trace.diagnostic(Breakdown::IterationBudget),
            })
        }
    };
    np_telemetry::counter("grid.pcg.iterations", trace.iterations() as u64);
    np_telemetry::value("grid.pcg.final_residual", rr.sqrt());
    result
}

/// Solves the mesh by Jacobi-preconditioned CG with the vector kernels
/// sharded across `shards` row bands.
///
/// Each iteration runs three barrier-separated phases on persistent
/// scoped workers — mat-vec + partial `p·Ap`, the x/r/z updates with
/// partial `r·r`/`r·z`, and the search-direction update — with all
/// partial dot products reduced in fixed shard order on every worker, so
/// every worker takes identical convergence decisions and the result is
/// deterministic for a given shard count. Floating-point association
/// differs from the sequential solver, so answers agree to solver
/// tolerance rather than bitwise.
///
/// `shards` is clamped to `1..=ny`; one shard falls back to
/// [`solve_pcg`].
///
/// # Errors
///
/// Exactly those of [`solve_pcg`].
pub fn solve_pcg_parallel(m: &MeshProblem, shards: usize) -> Result<Vec<f64>, GridError> {
    m.validate()?;
    let prepared = PreparedMesh::new(m);
    pcg_parallel_iterate(m, &prepared, shards, None)
}

/// [`solve_pcg_parallel`] with a reusable [`PreparedMesh`] and an
/// optional warm start (see [`solve_pcg_warm`]).
///
/// # Errors
///
/// Those of [`solve_pcg_parallel`], plus [`GridError::BadParameter`]
/// when `prepared` or `x0` does not match the mesh size.
pub fn solve_pcg_parallel_warm(
    m: &MeshProblem,
    prepared: &PreparedMesh,
    shards: usize,
    x0: Option<&[f64]>,
) -> Result<Vec<f64>, GridError> {
    m.validate()?;
    check_warm_inputs(m, prepared, x0)?;
    pcg_parallel_iterate(m, prepared, shards, x0)
}

/// What shard 0 parks for the caller: verdict, iteration count, final
/// residual norm.
type PcgOutcome = (Result<(), GridError>, usize, f64);

/// How a parallel PCG worker's iteration loop ended.
#[derive(Clone, Copy)]
enum PcgStatus {
    Converged,
    NonFinite,
    Indefinite(f64),
    Budget,
}

/// The sharded Jacobi-PCG iteration.
fn pcg_parallel_iterate(
    m: &MeshProblem,
    prepared: &PreparedMesh,
    shards: usize,
    x0: Option<&[f64]>,
) -> Result<Vec<f64>, GridError> {
    if m.nx < 2 || m.ny < 2 {
        return Err(GridError::BadParameter("mesh needs at least 2x2 nodes"));
    }
    let shards = shard::clamp_shards(shards, m.ny);
    if shards == 1 {
        return pcg_iterate(m, prepared, x0);
    }
    let _span = np_telemetry::span("grid.pcg.solve_parallel");
    let (nx, n) = (m.nx, m.nx * m.ny);
    let (b, x, r, z, rz0, rr0, b_norm) = pcg_start(m, prepared, x0);
    if b.iter().all(|&v| v == 0.0) {
        // Same zero-RHS short-circuit as the sequential path: x = 0 is
        // exact, and a warm start cannot reach the clamped tolerance.
        return Ok(vec![0.0; n]);
    }
    let tol = 1e-12 * b_norm;
    let max_iters = 10 * n;
    let xa = AtomicF64Vec::from_slice(&x);
    let ra = AtomicF64Vec::from_slice(&r);
    let za = AtomicF64Vec::from_slice(&z);
    let pa = AtomicF64Vec::from_slice(&z); // p starts as z
    let apa = AtomicF64Vec::zeros(n);
    let s_pap = AtomicF64Vec::zeros(shards);
    let s_rr = AtomicF64Vec::zeros(shards);
    let s_rz = AtomicF64Vec::zeros(shards);
    let barrier = Barrier::new(shards);
    let bands = shard::row_bands(m.ny, shards);
    // Shard 0 owns the residual trace and parks (verdict, iterations,
    // final residual) here for the caller to unwrap and report.
    let outcome: Mutex<Option<PcgOutcome>> = Mutex::new(None);
    let collector = np_telemetry::current();
    std::thread::scope(|scope| {
        for (shard_idx, band) in bands.iter().enumerate() {
            let nodes = band.start * nx..band.end * nx;
            let (xa, ra, za, pa, apa) = (&xa, &ra, &za, &pa, &apa);
            let (s_pap, s_rr, s_rz) = (&s_pap, &s_rr, &s_rz);
            let (barrier, outcome, collector) = (&barrier, &outcome, &collector);
            scope.spawn(move || {
                let _telemetry = collector.as_ref().map(np_telemetry::install);
                let _shard_span = np_telemetry::shard_span("grid.pcg.shard", shard_idx);
                let mut trace = ResidualTrace::new();
                let (mut rz, mut rr) = (rz0, rr0);
                let mut status = PcgStatus::Budget;
                for _ in 0..max_iters {
                    if rr.sqrt() <= tol {
                        status = PcgStatus::Converged;
                        break;
                    }
                    // Phase 1: mat-vec over the band plus partial p·Ap.
                    // `pa` is read-only here (cross-band reads are safe);
                    // `apa` writes stay inside the band.
                    let mut pap_part = 0.0f64;
                    for i in nodes.clone() {
                        let av = apply_row_atomic(m, pa, i);
                        apa.set(i, av);
                        pap_part += pa.get(i) * av;
                    }
                    s_pap.set(shard_idx, pap_part);
                    barrier.wait(); // B1: apa + pap partials visible
                    let p_ap = (0..shards).map(|s| s_pap.get(s)).sum::<f64>();
                    if !p_ap.is_finite() {
                        status = PcgStatus::NonFinite;
                        break;
                    }
                    if p_ap <= 0.0 {
                        status = if rr.sqrt() <= tol * 10.0 {
                            PcgStatus::Converged
                        } else {
                            PcgStatus::Indefinite(p_ap)
                        };
                        break;
                    }
                    let alpha = rz / p_ap;
                    // Phase 2: band-local x/r/z updates with partial
                    // r·r and r·z.
                    let (mut rr_part, mut rz_part) = (0.0f64, 0.0f64);
                    for i in nodes.clone() {
                        xa.set(i, xa.get(i) + alpha * pa.get(i));
                        let ri = ra.get(i) - alpha * apa.get(i);
                        ra.set(i, ri);
                        let zi = ri * prepared.inv_diag[i];
                        za.set(i, zi);
                        rr_part += ri * ri;
                        rz_part += ri * zi;
                    }
                    s_rr.set(shard_idx, rr_part);
                    s_rz.set(shard_idx, rz_part);
                    barrier.wait(); // B2: updates + partials visible
                    let rr_new = (0..shards).map(|s| s_rr.get(s)).sum::<f64>();
                    let rz_new = (0..shards).map(|s| s_rz.get(s)).sum::<f64>();
                    trace.record(rr_new.sqrt());
                    let beta = rz_new / rz;
                    rz = rz_new;
                    rr = rr_new;
                    // Phase 3: search-direction update on the band.
                    for i in nodes.clone() {
                        pa.set(i, za.get(i) + beta * pa.get(i));
                    }
                    // B3: p complete before the next mat-vec reads it
                    // across bands; also keeps fast shards from
                    // overwriting the dot-product slots early.
                    barrier.wait();
                }
                if matches!(status, PcgStatus::Budget) && rr.sqrt() <= tol * 10.0 {
                    status = PcgStatus::Converged;
                }
                if shard_idx == 0 {
                    let result = match status {
                        PcgStatus::Converged => Ok(()),
                        PcgStatus::NonFinite => Err(GridError::NoConvergence {
                            diag: trace.diagnostic(Breakdown::NonFinite {
                                at_iteration: trace.iterations(),
                            }),
                        }),
                        PcgStatus::Indefinite(curvature) => Err(GridError::NoConvergence {
                            diag: trace.diagnostic(Breakdown::IndefiniteOperator { curvature }),
                        }),
                        PcgStatus::Budget => Err(GridError::NoConvergence {
                            diag: trace.diagnostic(Breakdown::IterationBudget),
                        }),
                    };
                    let iters = trace.iterations();
                    *outcome.lock().unwrap_or_else(PoisonError::into_inner) =
                        Some((result, iters, rr.sqrt()));
                }
            });
        }
    });
    // The fallback is unreachable (shard 0 always records before its
    // scope ends) but kept as a typed error rather than a panic.
    let (result, iters, final_residual) = outcome
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .unwrap_or((
            Err(GridError::BadParameter(
                "parallel PCG worker exited without recording an outcome",
            )),
            0,
            f64::NAN,
        ));
    np_telemetry::counter("grid.pcg.iterations", iters as u64);
    np_telemetry::value("grid.pcg.final_residual", final_residual);
    result.map(|()| xa.to_vec())
}

/// One row of the mesh Laplacian `(G·v)_i`, reading `v` through the
/// shared atomic vector; mirrors [`apply`] exactly. Shared with
/// [`crate::multigrid`]'s per-level residual evaluation.
#[inline]
pub(crate) fn apply_row_atomic(m: &MeshProblem, v: &AtomicF64Vec, i: usize) -> f64 {
    let (nx, ny, g) = (m.nx, m.ny, m.edge_conductance);
    if m.pinned[i] {
        return v.get(i); // identity row for pinned nodes
    }
    let (x, y) = (i % nx, i / nx);
    let mut acc = 0.0;
    let mut deg = 0.0;
    if x > 0 {
        acc += if m.pinned[i - 1] { 0.0 } else { v.get(i - 1) };
        deg += 1.0;
    }
    if x + 1 < nx {
        acc += if m.pinned[i + 1] { 0.0 } else { v.get(i + 1) };
        deg += 1.0;
    }
    if y > 0 {
        acc += if m.pinned[i - nx] { 0.0 } else { v.get(i - nx) };
        deg += 1.0;
    }
    if y + 1 < ny {
        acc += if m.pinned[i + nx] { 0.0 } else { v.get(i + nx) };
        deg += 1.0;
    }
    g * (deg * v.get(i) - acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_mesh(n: usize) -> MeshProblem {
        let mut m = MeshProblem::new(n, n, 1.3);
        let pin = m.index(n / 2, n / 2);
        m.pinned[pin] = true;
        for i in 0..m.injection.len() {
            m.injection[i] = 1e-3;
        }
        m
    }

    #[test]
    fn cg_matches_sor() {
        for n in [5usize, 9, 16] {
            let m = loaded_mesh(n);
            let sor = m.solve().expect("sor");
            let cg = solve_cg(&m).expect("cg");
            for i in 0..sor.len() {
                assert!(
                    (sor[i] - cg[i]).abs() < 1e-6,
                    "n={n} node {i}: SOR {} vs CG {}",
                    sor[i],
                    cg[i]
                );
            }
        }
    }

    #[test]
    fn cg_satisfies_kcl() {
        let m = loaded_mesh(9);
        let v = solve_cg(&m).unwrap();
        let mut gv = vec![0.0; v.len()];
        apply(&m, &v, &mut gv);
        for (i, g) in gv.iter().enumerate() {
            if !m.pinned[i] {
                assert!(
                    (g + m.injection[i]).abs() < 1e-9,
                    "KCL at {i}: {g} vs {}",
                    -m.injection[i]
                );
            }
        }
    }

    #[test]
    fn pinned_nodes_stay_at_zero() {
        let m = loaded_mesh(11);
        let v = solve_cg(&m).unwrap();
        for (i, vi) in v.iter().enumerate() {
            if m.pinned[i] {
                assert_eq!(*vi, 0.0);
            }
        }
    }

    #[test]
    fn unpinned_rejected() {
        let m = MeshProblem::new(4, 4, 1.0);
        assert!(matches!(solve_cg(&m), Err(GridError::BadParameter(_))));
    }

    #[test]
    fn non_finite_injection_rejected_with_typed_error() {
        let mut m = loaded_mesh(5);
        m.injection[3] = f64::NAN;
        assert!(matches!(solve_cg(&m), Err(GridError::NonFinite(_))));
    }

    #[test]
    fn mismatched_injection_length_rejected_not_panicking() {
        let mut m = loaded_mesh(5);
        m.injection.truncate(3);
        assert!(matches!(solve_cg(&m), Err(GridError::BadParameter(_))));
    }

    #[test]
    fn indefinite_operator_reports_breakdown_reason() {
        use np_units::convergence::Breakdown;
        // A negative conductance makes the operator negative-definite:
        // pᵀAp < 0 on the first step. `validate` rejects this at the
        // public API; the iteration's own watchdog must still name the
        // structural cause rather than a generic budget exhaustion.
        let mut m = loaded_mesh(5);
        m.edge_conductance = -1.0;
        match cg_iterate(&m) {
            Err(GridError::NoConvergence { diag }) => {
                assert!(
                    matches!(diag.reason, Breakdown::IndefiniteOperator { curvature } if curvature < 0.0),
                    "got {:?}",
                    diag.reason
                );
            }
            other => panic!("expected breakdown, got {other:?}"),
        }
    }

    #[test]
    fn multiple_pins_supported() {
        let mut m = loaded_mesh(13);
        let extra = m.index(0, 0);
        m.pinned[extra] = true;
        let sor = m.solve().unwrap();
        let cg = solve_cg(&m).unwrap();
        for i in 0..sor.len() {
            assert!((sor[i] - cg[i]).abs() < 1e-6);
        }
    }

    // Regression: a degenerate (zero- or one-row) mesh must surface the
    // typed domain error, not an IndefiniteOperator breakdown or a
    // silent empty success from a zero-trip iteration loop.
    #[test]
    fn degenerate_mesh_is_a_domain_error_not_a_breakdown() {
        let empty = MeshProblem {
            nx: 0,
            ny: 0,
            edge_conductance: 1.0,
            injection: vec![],
            pinned: vec![],
        };
        assert!(matches!(
            cg_iterate(&empty),
            Err(GridError::BadParameter("mesh needs at least 2x2 nodes"))
        ));
        assert!(matches!(
            solve_cg(&empty),
            Err(GridError::BadParameter("mesh needs at least 2x2 nodes"))
        ));
        // A 1-wide strip is singular without pins; the guard must fire
        // before the iteration can report IndefiniteOperator.
        let strip = MeshProblem {
            nx: 1,
            ny: 4,
            edge_conductance: 1.0,
            injection: vec![1e-3; 4],
            pinned: vec![false; 4],
        };
        assert!(matches!(
            cg_iterate(&strip),
            Err(GridError::BadParameter("mesh needs at least 2x2 nodes"))
        ));
        let prepared = PreparedMesh { inv_diag: vec![] };
        assert!(matches!(
            pcg_iterate(&empty, &prepared, None),
            Err(GridError::BadParameter("mesh needs at least 2x2 nodes"))
        ));
        assert!(matches!(
            pcg_parallel_iterate(&empty, &prepared, 2, None),
            Err(GridError::BadParameter("mesh needs at least 2x2 nodes"))
        ));
    }

    #[test]
    fn pcg_matches_sor_and_cg() {
        for n in [5usize, 9, 16] {
            let m = loaded_mesh(n);
            let sor = m.solve().expect("sor");
            let pcg = solve_pcg(&m).expect("pcg");
            for i in 0..sor.len() {
                assert!(
                    (sor[i] - pcg[i]).abs() < 1e-6,
                    "n={n} node {i}: SOR {} vs PCG {}",
                    sor[i],
                    pcg[i]
                );
            }
        }
    }

    #[test]
    fn parallel_pcg_matches_sequential_within_tolerance() {
        for n in [6usize, 9, 17] {
            let m = loaded_mesh(n);
            let seq = solve_pcg(&m).expect("sequential pcg");
            for shards in [2usize, 3, 7] {
                let par = solve_pcg_parallel(&m, shards).expect("parallel pcg");
                for i in 0..seq.len() {
                    assert!(
                        (seq[i] - par[i]).abs() <= 1e-9 * (1.0 + seq[i].abs()),
                        "n={n} shards={shards} node {i}: {} vs {}",
                        seq[i],
                        par[i]
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_pcg_single_shard_falls_back_to_sequential() {
        let m = loaded_mesh(9);
        assert_eq!(
            solve_pcg_parallel(&m, 1).unwrap(),
            solve_pcg(&m).unwrap(),
            "one shard must be the exact sequential iteration"
        );
    }

    #[test]
    fn warm_start_from_the_solution_converges_immediately() {
        let m = loaded_mesh(17);
        let prepared = PreparedMesh::new(&m);
        let cold = solve_pcg_warm(&m, &prepared, None).unwrap();
        let warm = solve_pcg_warm(&m, &prepared, Some(&cold)).unwrap();
        for i in 0..cold.len() {
            assert!((warm[i] - cold[i]).abs() <= 1e-9 * (1.0 + cold[i].abs()));
        }
        let warm_par = solve_pcg_parallel_warm(&m, &prepared, 3, Some(&cold)).unwrap();
        for i in 0..cold.len() {
            assert!((warm_par[i] - cold[i]).abs() <= 1e-9 * (1.0 + cold[i].abs()));
        }
    }

    #[test]
    fn warm_inputs_are_validated() {
        let m = loaded_mesh(5);
        let wrong = PreparedMesh {
            inv_diag: vec![1.0; 3],
        };
        assert!(matches!(
            solve_pcg_warm(&m, &wrong, None),
            Err(GridError::BadParameter(_))
        ));
        let prepared = PreparedMesh::new(&m);
        let short = vec![0.0; 3];
        assert!(matches!(
            solve_pcg_warm(&m, &prepared, Some(&short)),
            Err(GridError::BadParameter(_))
        ));
        assert!(matches!(
            solve_pcg_parallel_warm(&m, &prepared, 2, Some(&short)),
            Err(GridError::BadParameter(_))
        ));
    }

    #[test]
    fn prepared_mesh_inverts_the_diagonal() {
        let m = loaded_mesh(5);
        let p = PreparedMesh::new(&m);
        let pin = m.index(2, 2);
        assert_eq!(p.inv_diag()[pin], 1.0, "pinned rows are identity");
        // A corner node has degree 2.
        assert!((p.inv_diag()[0] - 1.0 / (1.3 * 2.0)).abs() < 1e-15);
        // An interior free node has degree 4.
        let interior = m.index(1, 1);
        assert!((p.inv_diag()[interior] - 1.0 / (1.3 * 4.0)).abs() < 1e-15);
    }

    #[test]
    fn parallel_pcg_indefinite_operator_reports_breakdown() {
        use np_units::convergence::Breakdown;
        let mut m = loaded_mesh(6);
        m.edge_conductance = -1.0;
        let prepared = PreparedMesh::new(&m);
        match pcg_parallel_iterate(&m, &prepared, 2, None) {
            Err(GridError::NoConvergence { diag }) => {
                assert!(
                    matches!(diag.reason, Breakdown::IndefiniteOperator { curvature } if curvature < 0.0),
                    "got {:?}",
                    diag.reason
                );
            }
            other => panic!("expected breakdown, got {other:?}"),
        }
    }
}
