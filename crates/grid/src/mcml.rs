//! MOS current-mode logic as a current-transient-free alternative
//! (Section 4, ref. \[42\]).
//!
//! "One option is MOS current mode logic (MCML), which burns static power
//! but yields much smaller current transients while providing comparable
//! performance and lower total power in high activity circuitry such as
//! datapaths."
//!
//! An MCML gate steers a constant tail current `I_tail` between two legs;
//! its supply current is flat (transient ≈ a small mismatch residue),
//! while a static-CMOS gate draws its whole switching charge as a spike.

use crate::error::GridError;
use np_units::{Amps, Farads, Hertz, Volts, Watts};

/// Residual supply-current disturbance of an MCML gate during switching,
/// as a fraction of its tail current.
pub const MCML_TRANSIENT_RESIDUE: f64 = 0.05;

/// A comparison of one CMOS gate versus one MCML gate of equal drive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogicStyleComparison {
    /// Load both gates drive.
    pub c_load: Farads,
    /// Supply voltage.
    pub vdd: Volts,
    /// Clock frequency.
    pub freq: Hertz,
    /// MCML tail current sized to switch the same load at the same speed.
    pub i_tail: Amps,
}

impl LogicStyleComparison {
    /// Sizes the MCML tail current to match the CMOS gate's speed: the
    /// tail must slew the load through the MCML swing within half a clock
    /// period (`I = C·V_swing·2f`); MCML swing is ~0.4·Vdd.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::BadParameter`] for non-positive inputs.
    pub fn matched(c_load: Farads, vdd: Volts, freq: Hertz) -> Result<Self, GridError> {
        if !(c_load.0 > 0.0 && vdd.0 > 0.0 && freq.0 > 0.0) {
            return Err(GridError::BadParameter(
                "comparison inputs must be positive",
            ));
        }
        let swing = 0.4 * vdd.0;
        let i_tail = Amps(c_load.0 * swing * 2.0 * freq.0);
        Ok(Self {
            c_load,
            vdd,
            freq,
            i_tail,
        })
    }

    /// CMOS power at switching activity `activity`.
    pub fn cmos_power(&self, activity: f64) -> Watts {
        Watts(activity * self.freq.0 * self.c_load.0 * self.vdd.0 * self.vdd.0)
    }

    /// MCML power — activity-independent static burn.
    pub fn mcml_power(&self) -> Watts {
        self.i_tail * self.vdd
    }

    /// Peak supply-current transient of the CMOS gate (charge delivered
    /// in roughly a quarter period).
    pub fn cmos_current_transient(&self) -> Amps {
        Amps(self.c_load.0 * self.vdd.0 * 4.0 * self.freq.0)
    }

    /// Peak supply-current disturbance of the MCML gate.
    pub fn mcml_current_transient(&self) -> Amps {
        self.i_tail * MCML_TRANSIENT_RESIDUE
    }

    /// The activity above which MCML burns *less* total power than CMOS:
    /// `α* = I_tail·Vdd / (f·C·Vdd²)`.
    pub fn crossover_activity(&self) -> f64 {
        self.mcml_power().0 / (self.freq.0 * self.c_load.0 * self.vdd.0 * self.vdd.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp() -> LogicStyleComparison {
        LogicStyleComparison::matched(Farads::from_femto(20.0), Volts(0.6), Hertz::from_giga(10.0))
            .unwrap()
    }

    #[test]
    fn mcml_transients_are_an_order_smaller() {
        let c = cmp();
        let ratio = c.cmos_current_transient().0 / c.mcml_current_transient().0;
        assert!(ratio > 10.0, "got {ratio}");
    }

    #[test]
    fn mcml_power_is_activity_independent() {
        let c = cmp();
        assert_eq!(c.mcml_power(), c.mcml_power());
        assert!(c.cmos_power(0.2).0 > c.cmos_power(0.1).0);
    }

    #[test]
    fn mcml_wins_at_datapath_activities() {
        // The crossover sits below 1: high-activity datapaths favor MCML.
        let c = cmp();
        let a_star = c.crossover_activity();
        assert!(
            (0.2..1.0).contains(&a_star),
            "crossover {a_star} should be sub-unity"
        );
        assert!(c.mcml_power() < c.cmos_power(a_star * 1.2));
        assert!(c.mcml_power() > c.cmos_power(a_star * 0.8));
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(
            LogicStyleComparison::matched(Farads(0.0), Volts(0.6), Hertz::from_giga(1.0)).is_err()
        );
    }
}
