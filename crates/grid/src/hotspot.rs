//! Hot-spot power-density model (Section 4, footnote 7).
//!
//! "A hot-spot is defined to have a localized power density four times
//! larger than a uniform power density approximation … The factor of four
//! stems from estimating that half the chip area is consumed by memory
//! (having about 1/10th the power density of logic) and that certain logic
//! areas may have twice the power density of others."

use crate::error::GridError;
use np_roadmap::TechNode;
use np_units::WattsPerCm2;

/// Floorplan composition used to derive the hot-spot factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloorplanMix {
    /// Fraction of die area that is memory.
    pub memory_fraction: f64,
    /// Memory power density relative to average logic.
    pub memory_density_ratio: f64,
    /// Peak logic density relative to average logic.
    pub logic_peak_ratio: f64,
}

impl Default for FloorplanMix {
    fn default() -> Self {
        // The paper's estimates.
        Self {
            memory_fraction: 0.5,
            memory_density_ratio: 0.1,
            logic_peak_ratio: 2.0,
        }
    }
}

impl FloorplanMix {
    /// The hot-spot factor: peak local density over the uniform
    /// (chip-average) density.
    ///
    /// With the paper's numbers: average = 0.5·ρ_logic·(1 + 0.1) ≈
    /// 0.55·ρ_logic; peak = 2·ρ_logic; factor ≈ 3.6 ≈ 4.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::BadParameter`] for fractions outside `[0, 1)`
    /// or non-positive ratios.
    pub fn hotspot_factor(&self) -> Result<f64, GridError> {
        if !(0.0..1.0).contains(&self.memory_fraction) {
            return Err(GridError::BadParameter("memory fraction must be in [0, 1)"));
        }
        if !(self.memory_density_ratio > 0.0 && self.logic_peak_ratio > 0.0) {
            return Err(GridError::BadParameter("density ratios must be positive"));
        }
        let average =
            self.memory_fraction * self.memory_density_ratio + (1.0 - self.memory_fraction) * 1.0;
        Ok(self.logic_peak_ratio / average)
    }
}

/// The paper's round hot-spot factor.
pub const HOTSPOT_FACTOR: f64 = 4.0;

/// Hot-spot power density of a node: the ×4 factor on the uniform
/// `Pchip/Achip` density.
pub fn hotspot_density(node: TechNode) -> WattsPerCm2 {
    node.params().average_power_density() * HOTSPOT_FACTOR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_gives_about_four() {
        let f = FloorplanMix::default().hotspot_factor().unwrap();
        assert!((3.2..=4.2).contains(&f), "got {f}");
    }

    #[test]
    fn all_logic_chip_has_smaller_factor() {
        let mix = FloorplanMix {
            memory_fraction: 0.0,
            ..FloorplanMix::default()
        };
        assert!((mix.hotspot_factor().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hotspot_density_is_over_100w_per_cm2_midroadmap() {
        // Section 2.2 footnote 2: "power densities can exceed 100 W/cm²".
        let d = hotspot_density(TechNode::N100);
        assert!(d.0 > 100.0, "got {d}");
    }

    #[test]
    fn density_falls_from_50_to_35() {
        assert!(hotspot_density(TechNode::N35) < hotspot_density(TechNode::N50));
    }

    #[test]
    fn bad_mix_rejected() {
        let mix = FloorplanMix {
            memory_fraction: 1.0,
            ..FloorplanMix::default()
        };
        assert!(mix.hotspot_factor().is_err());
        let mix = FloorplanMix {
            memory_density_ratio: 0.0,
            ..FloorplanMix::default()
        };
        assert!(mix.hotspot_factor().is_err());
    }
}
