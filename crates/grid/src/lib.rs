//! # np-grid
//!
//! Power-distribution models for Section 4 of *Future Performance
//! Challenges in Nanometer Design* (Sylvester & Kaul, DAC 2001) — a
//! BACPAC-style \[41\] top-level power-grid analysis:
//!
//! * [`hotspot`] — the ×4 hot-spot power-density model (footnote 7);
//! * [`analytic`] — closed-form worst-case IR drop in a bump cell and the
//!   rail width required for a <10 % drop budget;
//! * [`solver`] / [`mesh`] — an independent resistive-mesh field solver
//!   (successive over-relaxation) used to validate the analytic model;
//! * [`cg`] / [`shard`] — conjugate-gradient solvers (plain and
//!   Jacobi-preconditioned, sequential and row-band parallel) over the
//!   same mesh, plus the lock-free sharing primitives they build on;
//! * [`multigrid`] — the O(N) geometric multigrid V-cycle over the same
//!   mesh (red-black smoothing, full-weighting restriction, bilinear
//!   prolongation), standalone or as a CG preconditioner (MGCG);
//! * [`plan`] — the Fig. 5 study: required rail width (normalized to the
//!   minimum top-metal width) and routing-resource share per node, under
//!   (a) minimum attainable bump pitch and (b) ITRS pad counts — and the
//!   [`plan::SolvePlan`] strategy enum that routes a mesh to the right
//!   solver under the process-wide thread budget;
//! * [`transient`] — `L·di/dt` noise from sleep-mode wake-up;
//! * [`mcml`] — MOS current-mode logic as a current-transient-free
//!   alternative (ref. \[42\]).
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), np_grid::GridError> {
//! use np_grid::plan::GridPlan;
//! use np_roadmap::TechNode;
//!
//! let plan = GridPlan::min_pitch(TechNode::N35)?;
//! // Fig. 5: manageable rail widths at the minimum bump pitch...
//! assert!(plan.width_over_min() < 40.0);
//! let itrs = GridPlan::itrs_pads(TechNode::N35)?;
//! // ...but a blow-up under the ITRS pad-count assumptions.
//! assert!(itrs.width_over_min() > 500.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analytic;
pub mod cg;
pub mod decap;
mod error;
pub mod hotspot;
pub mod mcml;
pub mod mesh;
pub mod multigrid;
pub mod plan;
pub mod shard;
pub mod solver;
pub mod transient;

pub use error::GridError;
pub use plan::{GridPlan, SolvePlan, SolveStrategy};
