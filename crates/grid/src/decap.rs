//! On-die decoupling capacitance against wake-up transients (Section 4).
//!
//! The paper's closing worry — "awakening from standby results in large
//! current transients, placing an extreme burden on the power distribution
//! network" — is met in practice with on-die decoupling capacitance: the
//! decap sources the current step locally until current through the
//! package inductance catches up (the response window
//! [`PACKAGE_RESPONSE`]). The required capacitance is the window's charge
//! deficit over the droop budget; staging the wake-up (a slow ramp)
//! shrinks the deficit proportionally.
//!
//! Decap is not free: it is thin-oxide area. The model reports the die
//! fraction consumed, using the node's gate capacitance per area.

use crate::error::GridError;
use crate::transient::WakeUpEvent;
use np_roadmap::TechNode;
use np_units::{Farads, Volts};
use std::fmt;

/// Fraction of decap capacitance usable during a droop (series resistance
/// and placement derating).
pub const DECAP_EFFICIENCY: f64 = 0.8;

/// Package response time: how long the decap must hold the rail before
/// current through the bump/package inductance catches up.
pub const PACKAGE_RESPONSE: np_units::Seconds = np_units::Seconds(20e-9);

/// A decap plan for one wake-up scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DecapPlan {
    /// The node planned.
    pub node: TechNode,
    /// Required on-die decoupling capacitance.
    pub required: Farads,
    /// Droop budget the plan meets.
    pub droop_budget: Volts,
    /// Fraction of the die consumed by the decap (thin-oxide area).
    pub die_fraction: f64,
}

impl DecapPlan {
    /// Sizes decap so the wake-up `event` droops the rail by at most
    /// `droop_budget` during the package response window: the decap must
    /// source the charge deficit `½ · ΔI_window · T_resp`, where the
    /// current step seen within the window is the full `ΔI` for abrupt
    /// ramps and `ΔI · T_resp/t_ramp` for staged (slow) ones.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive droop budget; propagates device errors as
    /// [`GridError::BadParameter`].
    pub fn size_for(
        node: TechNode,
        event: &WakeUpEvent,
        droop_budget: Volts,
    ) -> Result<Self, GridError> {
        if !(droop_budget.0 > 0.0) {
            return Err(GridError::BadParameter("droop budget must be positive"));
        }
        let delta_i = (event.i_active - event.i_standby).0;
        let t_resp = PACKAGE_RESPONSE.0;
        let window_fraction = (t_resp / event.t_ramp.0).min(1.0);
        let charge = 0.5 * delta_i * window_fraction * t_resp;
        let required = Farads(charge / (droop_budget.0 * DECAP_EFFICIENCY));
        // Thin-oxide decap density from the node's electrical oxide.
        let dev = np_device::Mosfet::for_node(node)
            .map_err(|_| GridError::BadParameter("device calibration failed"))?;
        let density_f_per_cm2 = dev.coxe().0; // F/cm²
        let area_cm2 = required.0 / density_f_per_cm2;
        Ok(Self {
            node,
            required,
            droop_budget,
            die_fraction: area_cm2 / node.params().die_area.as_cm2(),
        })
    }

    /// True when the decap fits in a sane floorplan allowance.
    pub fn is_practical(&self, max_die_fraction: f64) -> bool {
        self.die_fraction <= max_die_fraction
    }
}

impl fmt::Display for DecapPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.0} nF decap for {:.0} mV droop ({:.1}% of die)",
            self.node,
            self.required.0 * 1e9,
            self.droop_budget.as_milli(),
            self.die_fraction * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_units::Seconds;

    fn event(ramp_ns: f64) -> WakeUpEvent {
        WakeUpEvent::for_node(TechNode::N35, Seconds::from_nano(ramp_ns))
    }

    #[test]
    fn staged_wakeup_decap_is_practical() {
        // A tens-of-microseconds staged wake-up needs decap the floorplan
        // can absorb.
        let budget = TechNode::N35.params().vdd * 0.05;
        let plan = DecapPlan::size_for(TechNode::N35, &event(20_000.0), budget).unwrap();
        assert!(
            plan.is_practical(0.05),
            "20 µs ramp needs {:.1}% of die",
            plan.die_fraction * 100.0
        );
        assert!(plan.required.0 > 1e-9, "still nanofarads-scale");
    }

    #[test]
    fn abrupt_wakeup_decap_is_not() {
        // The paper's worry quantified: waking the whole 300 A chip in a
        // package response time demands decap beyond any floorplan.
        let budget = TechNode::N35.params().vdd * 0.05;
        let fast = DecapPlan::size_for(TechNode::N35, &event(20.0), budget).unwrap();
        let staged = DecapPlan::size_for(TechNode::N35, &event(20_000.0), budget).unwrap();
        assert!(fast.required > staged.required * 100.0);
        assert!(!fast.is_practical(0.25));
    }

    #[test]
    fn tighter_droop_needs_more_decap() {
        let loose = DecapPlan::size_for(TechNode::N35, &event(100.0), Volts(0.06)).unwrap();
        let tight = DecapPlan::size_for(TechNode::N35, &event(100.0), Volts(0.015)).unwrap();
        assert!((tight.required.0 / loose.required.0 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bad_budget_rejected() {
        assert!(DecapPlan::size_for(TechNode::N35, &event(100.0), Volts(0.0)).is_err());
    }

    #[test]
    fn display_summarizes() {
        let plan = DecapPlan::size_for(TechNode::N35, &event(100.0), Volts(0.03)).unwrap();
        let s = format!("{plan}");
        assert!(s.contains("decap"));
        assert!(s.contains("droop"));
    }
}
