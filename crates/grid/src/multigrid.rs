//! Geometric multigrid for the power-grid Poisson solve.
//!
//! The mesh Laplacian of a `2^k+1 × 2^j+1` grid coarsens geometrically:
//! every other node in each direction forms the next level, whose
//! operator is the *same* `g·L` graph Laplacian on the smaller grid.
//! A V-cycle then drives every error wavelength at the level where it is
//! cheap to damp:
//!
//! 1. **smooth** — a few red-black Gauss-Seidel sweeps (the `ω = 1`
//!    special case of the SOR half-sweep the parallel SOR solver already
//!    shards) kill the high-frequency error;
//! 2. **restrict** — the remaining smooth residual moves to the next
//!    coarser grid by full weighting (the 9-point `1/16·[1 2 1; 2 4 2;
//!    1 2 1]` stencil), scaled by 4 because the coarse `g·L` operator
//!    discretizes a `(2h)²` cell;
//! 3. **recurse** — down to a ≤ 9-node-per-side grid solved (near-)
//!    exactly by Jacobi-PCG;
//! 4. **prolongate** — the coarse correction interpolates back
//!    bilinearly and a few more sweeps smooth the interpolation error.
//!
//! The total work per cycle is a small constant number of fine-grid
//! sweeps (the level sizes form a geometric series), and the cycle count
//! to a fixed tolerance is essentially mesh-independent — the solve is
//! O(N) where CG-family methods are O(N^1.5). Two entry families are
//! exposed:
//!
//! * [`solve_multigrid`] / [`solve_multigrid_sharded`] /
//!   [`solve_multigrid_warm`] — the standalone V-cycle iteration, bitwise
//!   deterministic for every shard count (smoothing shards are the
//!   bitwise-identical red-black pass; every reduction is sequential);
//! * [`solve_mgcg`] / [`solve_mgcg_sharded`] / [`solve_mgcg_warm`] — CG
//!   preconditioned by one V-cycle (symmetrized: red-black pre-sweeps,
//!   black-red post-sweeps, near-exact coarse solve), the robust choice
//!   [`crate::plan::SolvePlan`] auto-selects on large compatible meshes.
//!
//! Dirichlet pins coarsen conservatively: a coarse node is pinned when
//! *any* fine pin falls in the 3×3 fine neighborhood it represents, so
//! pins always survive to the coarsest grid (every level stays
//! non-singular) and corrections never move a pinned node. Pin-adjacent
//! restriction/interpolation error only costs convergence *rate*, never
//! correctness — acceptance is always the fine-grid residual reaching
//! the CG-family tolerance `1e-12·‖b‖`.

use crate::cg::{apply, apply_row_atomic, solve_pcg};
use crate::error::GridError;
use crate::shard::{self, AtomicF64Vec};
use crate::solver::{sor_color_pass, MeshProblem};
use np_units::convergence::{Breakdown, ResidualTrace};
use std::sync::Barrier;

/// Coarsening stops once a level reaches this many nodes per side; the
/// resulting ≤ 9×9 system is handed to the (near-exact) PCG coarse
/// solver.
pub const MG_COARSEST_SIDE: usize = 9;

/// Gauss-Seidel sweeps before restriction at each level.
const PRE_SWEEPS: usize = 2;

/// Gauss-Seidel sweeps after prolongation at each level (run black-red,
/// mirroring the pre-sweeps, so the V-cycle is a symmetric operator and
/// therefore a valid CG preconditioner).
const POST_SWEEPS: usize = 2;

/// V-cycle budget for the standalone solver; typical loaded meshes
/// converge in 10–20 cycles regardless of size.
const MAX_CYCLES: usize = 100;

/// Levels below this node count always smooth sequentially — the same
/// break-even as [`crate::plan::AUTO_PARALLEL_THRESHOLD`]: barrier
/// overhead beats the work saved on small grids.
const LEVEL_PARALLEL_MIN: usize = 16_384;

/// The full-weighting restriction stencil, `[dy+1][dx+1]`-indexed.
const FW_WEIGHTS: [[f64; 3]; 3] = [
    [1.0 / 16.0, 1.0 / 8.0, 1.0 / 16.0],
    [1.0 / 8.0, 1.0 / 4.0, 1.0 / 8.0],
    [1.0 / 16.0, 1.0 / 8.0, 1.0 / 16.0],
];

/// Whether an `n`-node-per-side dimension fits the 2^k+1 coarsening
/// ladder.
fn is_pow2_plus_one(n: usize) -> bool {
    n >= 3 && (n - 1).is_power_of_two()
}

/// One level's shape: grid dimensions plus the coarsened pin mask.
#[derive(Debug, Clone)]
struct LevelShape {
    nx: usize,
    ny: usize,
    pinned: Vec<bool>,
}

/// The precomputed level ladder for one mesh shape — dimensions and
/// coarsened pin masks per level, finest first.
///
/// Building the hierarchy costs one pass over the mesh; repeated solves
/// of the same geometry (the electro-thermal fixed point, warm bench
/// runs, [`crate::mesh::MeshCache`] entries) reuse one hierarchy across
/// every [`solve_multigrid_warm`] / [`solve_mgcg_warm`] call.
///
/// ```
/// use np_grid::multigrid::{solve_multigrid_warm, MgHierarchy};
/// use np_grid::solver::MeshProblem;
///
/// let mut m = MeshProblem::new(33, 33, 1.0);
/// m.injection = vec![1e-4; 33 * 33];
/// let centre = m.index(16, 16);
/// m.pinned[centre] = true;
/// let hier = MgHierarchy::new(&m)?;
/// assert_eq!(hier.levels(), 3); // 33 -> 17 -> 9
/// let cold = solve_multigrid_warm(&m, &hier, 1, None)?;
/// let warm = solve_multigrid_warm(&m, &hier, 1, Some(&cold))?;
/// assert_eq!(cold, warm); // warm start from the solution is a no-op
/// # Ok::<(), np_grid::GridError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MgHierarchy {
    levels: Vec<LevelShape>,
    edge_conductance: f64,
}

impl MgHierarchy {
    /// Whether a `nx × ny` mesh fits the geometric coarsening ladder
    /// (both dimensions of the form `2^k+1`).
    pub fn compatible(nx: usize, ny: usize) -> bool {
        is_pow2_plus_one(nx) && is_pow2_plus_one(ny)
    }

    /// Builds the level ladder for `m`, coarsening until a side reaches
    /// [`MG_COARSEST_SIDE`].
    ///
    /// # Errors
    ///
    /// Those of [`MeshProblem::validate`], plus
    /// [`GridError::BadParameter`] when either dimension is not `2^k+1`.
    pub fn new(m: &MeshProblem) -> Result<Self, GridError> {
        m.validate()?;
        if !Self::compatible(m.nx, m.ny) {
            return Err(GridError::BadParameter(
                "multigrid needs 2^k+1 nodes per side",
            ));
        }
        let mut levels = vec![LevelShape {
            nx: m.nx,
            ny: m.ny,
            pinned: m.pinned.clone(),
        }];
        loop {
            let last = &levels[levels.len() - 1];
            if last.nx <= MG_COARSEST_SIDE || last.ny <= MG_COARSEST_SIDE {
                break;
            }
            let (nxc, nyc) = ((last.nx - 1) / 2 + 1, (last.ny - 1) / 2 + 1);
            let pinned = coarsen_pins(last, nxc, nyc);
            levels.push(LevelShape {
                nx: nxc,
                ny: nyc,
                pinned,
            });
        }
        Ok(Self {
            levels,
            edge_conductance: m.edge_conductance,
        })
    }

    /// Number of levels in the ladder (≥ 1; the finest counts).
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Rejects a hierarchy built for a different mesh: the level ladder
    /// bakes in the pin masks, so shape *and* pins must match exactly.
    fn check_matches(&self, m: &MeshProblem) -> Result<(), GridError> {
        let Some(fine) = self.levels.first() else {
            return Err(GridError::BadParameter("multigrid hierarchy is empty"));
        };
        if fine.nx != m.nx
            || fine.ny != m.ny
            || fine.pinned != m.pinned
            || self.edge_conductance.to_bits() != m.edge_conductance.to_bits()
        {
            return Err(GridError::BadParameter(
                "multigrid hierarchy does not match the mesh",
            ));
        }
        Ok(())
    }
}

/// A coarse node is pinned when any fine pin falls in the 3×3 fine
/// neighborhood of its image `(2x, 2y)` — conservative, so every pin
/// survives coarsening and each level keeps at least one Dirichlet node.
fn coarsen_pins(fine: &LevelShape, nxc: usize, nyc: usize) -> Vec<bool> {
    let mut pinned = vec![false; nxc * nyc];
    for yc in 0..nyc {
        for xc in 0..nxc {
            let (fx, fy) = (2 * xc, 2 * yc);
            let mut any = false;
            for py in fy.saturating_sub(1)..=(fy + 1).min(fine.ny - 1) {
                for px in fx.saturating_sub(1)..=(fx + 1).min(fine.nx - 1) {
                    any |= fine.pinned[py * fine.nx + px];
                }
            }
            pinned[yc * nxc + xc] = any;
        }
    }
    pinned
}

/// Per-solve mutable state of one level: the correction problem (its
/// `injection` rewritten every cycle), the level solution, and a
/// residual scratch vector.
struct LevelState {
    m: MeshProblem,
    x: AtomicF64Vec,
    r: Vec<f64>,
}

/// Materializes the per-level solve state from a hierarchy; level 0
/// carries the caller's problem verbatim.
fn make_workspace(m: &MeshProblem, hier: &MgHierarchy) -> Vec<LevelState> {
    let mut levels = Vec::with_capacity(hier.levels.len());
    let n0 = m.nx * m.ny;
    levels.push(LevelState {
        m: m.clone(),
        x: AtomicF64Vec::zeros(n0),
        r: vec![0.0; n0],
    });
    for shape in &hier.levels[1..] {
        let n = shape.nx * shape.ny;
        levels.push(LevelState {
            m: MeshProblem {
                nx: shape.nx,
                ny: shape.ny,
                edge_conductance: hier.edge_conductance,
                injection: vec![0.0; n],
                pinned: shape.pinned.clone(),
            },
            x: AtomicF64Vec::zeros(n),
            r: vec![0.0; n],
        });
    }
    levels
}

/// `sweeps` Gauss-Seidel sweeps over `m`, each visiting `colors[0]` then
/// `colors[1]`, sharded across row bands when `shards > 1`.
///
/// Same-color nodes are independent, so the sharded schedule performs
/// exactly the sequential arithmetic — the result is bitwise identical
/// for every shard count (the property the parallel SOR solver already
/// proves; this is the same pass at `ω = 1`).
fn smooth(m: &MeshProblem, x: &AtomicF64Vec, sweeps: usize, colors: [usize; 2], shards: usize) {
    if sweeps == 0 {
        return;
    }
    let shards = shard::clamp_shards(shards, m.ny);
    if shards == 1 {
        for _ in 0..sweeps {
            for color in colors {
                let _ = sor_color_pass(m, x, 0..m.ny, color, 1.0);
            }
        }
        return;
    }
    let bands = shard::row_bands(m.ny, shards);
    let barrier = Barrier::new(shards);
    std::thread::scope(|scope| {
        for band in bands {
            let (barrier, x) = (&barrier, x);
            scope.spawn(move || {
                for _ in 0..sweeps {
                    for color in colors {
                        let _ = sor_color_pass(m, x, band.clone(), color, 1.0);
                        // Cross-band reads of this color's values happen
                        // in the next half-sweep; the final barrier's
                        // happens-before is subsumed by the scope join.
                        barrier.wait();
                    }
                }
            });
        }
    });
}

/// `r = b − A·x` for the level problem (`b` being `−injection` at free
/// nodes, `0` at pinned ones — where `x` is held at `0`, so `r` is `0`
/// there too).
fn residual(m: &MeshProblem, x: &AtomicF64Vec, r: &mut [f64]) {
    let n = m.nx * m.ny;
    for (i, ri) in r.iter_mut().enumerate().take(n) {
        let b = if m.pinned[i] { 0.0 } else { -m.injection[i] };
        *ri = b - apply_row_atomic(m, x, i);
    }
}

/// Full-weighting restriction of the fine residual into the coarse
/// level's correction problem.
///
/// The coarse operator is the same `g·L` graph Laplacian, which in
/// continuum terms discretizes a `(2h)²` cell — so the restricted
/// residual scales by 4 per coarsening. Stencil taps falling outside the
/// grid (or on a pinned fine node, whose residual is zero) contribute
/// nothing; boundary underweighting costs rate, not correctness.
fn restrict_residual(fine: &MeshProblem, r: &[f64], coarse: &mut MeshProblem) {
    let (nxf, nyf) = (fine.nx as isize, fine.ny as isize);
    let nxc = coarse.nx;
    for yc in 0..coarse.ny {
        for xc in 0..nxc {
            let ic = yc * nxc + xc;
            if coarse.pinned[ic] {
                coarse.injection[ic] = 0.0;
                continue;
            }
            let (fx, fy) = (2 * xc as isize, 2 * yc as isize);
            let mut acc = 0.0;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let (px, py) = (fx + dx as isize, fy + dy as isize);
                    if px < 0 || py < 0 || px >= nxf || py >= nyf {
                        continue;
                    }
                    #[allow(clippy::cast_sign_loss)]
                    let fi = (py * nxf + px) as usize;
                    acc += FW_WEIGHTS[(dy + 1) as usize][(dx + 1) as usize] * r[fi];
                }
            }
            // Solver convention: the level solves A·v = −injection.
            coarse.injection[ic] = -(4.0 * acc);
        }
    }
}

/// Adds the bilinear interpolation of the coarse correction into the
/// fine solution; pinned fine nodes stay exactly at the rail.
fn prolong_add(coarse: &MeshProblem, xc: &AtomicF64Vec, fine: &MeshProblem, x: &AtomicF64Vec) {
    let nxc = coarse.nx;
    let at = |cx: usize, cy: usize| xc.get(cy * nxc + cx);
    for fy in 0..fine.ny {
        for fx in 0..fine.nx {
            let i = fy * fine.nx + fx;
            if fine.pinned[i] {
                continue;
            }
            let (cx, cy) = (fx / 2, fy / 2);
            let corr = match (fx % 2, fy % 2) {
                (0, 0) => at(cx, cy),
                (1, 0) => 0.5 * (at(cx, cy) + at(cx + 1, cy)),
                (0, 1) => 0.5 * (at(cx, cy) + at(cx, cy + 1)),
                _ => 0.25 * (at(cx, cy) + at(cx + 1, cy) + at(cx, cy + 1) + at(cx + 1, cy + 1)),
            };
            x.set(i, x.get(i) + corr);
        }
    }
}

/// One V-cycle over `levels` (the slice starting at the current level).
///
/// `work` accumulates fine-grid-sweep equivalents: each sweep at a level
/// counts as its node-count fraction of the finest grid, plus two
/// sweeps' worth per level visit for the residual/restrict/prolongate
/// passes — the currency the bench harness compares against PCG
/// iteration counts.
fn v_cycle(
    levels: &mut [LevelState],
    depth: usize,
    shards: usize,
    fine_nodes: f64,
    work: &mut f64,
) -> Result<(), GridError> {
    let Some((cur, rest)) = levels.split_first_mut() else {
        return Err(GridError::BadParameter("multigrid hierarchy is empty"));
    };
    let _level_span = np_telemetry::shard_span("grid.mg.level", depth);
    let nodes = (cur.m.nx * cur.m.ny) as f64;
    if rest.is_empty() {
        // Coarsest grid: a ≤ 9×9 system, solved near-exactly.
        let v = solve_pcg(&cur.m)?;
        for (i, value) in v.iter().enumerate() {
            cur.x.set(i, *value);
        }
        *work += nodes / fine_nodes;
        return Ok(());
    }
    let level_shards = if nodes as usize >= LEVEL_PARALLEL_MIN {
        shards
    } else {
        1
    };
    smooth(&cur.m, &cur.x, PRE_SWEEPS, [0, 1], level_shards);
    residual(&cur.m, &cur.x, &mut cur.r);
    let next = &mut rest[0];
    restrict_residual(&cur.m, &cur.r, &mut next.m);
    for i in 0..next.x.len() {
        next.x.set(i, 0.0);
    }
    v_cycle(rest, depth + 1, shards, fine_nodes, work)?;
    let next = &rest[0];
    prolong_add(&next.m, &next.x, &cur.m, &cur.x);
    smooth(&cur.m, &cur.x, POST_SWEEPS, [1, 0], level_shards);
    *work += ((PRE_SWEEPS + POST_SWEEPS) as f64 + 2.0) * nodes / fine_nodes;
    Ok(())
}

/// Squared-norm of the level-0 residual, recomputed from scratch
/// (sequentially, so the convergence decision is bitwise independent of
/// the shard count).
fn fine_residual_norm(levels: &mut [LevelState]) -> f64 {
    let Some(lvl) = levels.first_mut() else {
        return f64::NAN;
    };
    residual(&lvl.m, &lvl.x, &mut lvl.r);
    lvl.r.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// The coupling `1ᵀ·A·1` of the all-ones free-node vector: `g` times the
/// number of free→pinned edges. This is the denominator of the
/// constant-mode deflation step (see [`deflate_constant_mode`]).
fn pin_coupling(m: &MeshProblem) -> f64 {
    let mut edges = 0usize;
    for y in 0..m.ny {
        for x in 0..m.nx {
            let i = y * m.nx + x;
            if m.pinned[i] {
                continue;
            }
            let mut nb = |xx: usize, yy: usize| {
                if m.pinned[yy * m.nx + xx] {
                    edges += 1;
                }
            };
            if x > 0 {
                nb(x - 1, y);
            }
            if x + 1 < m.nx {
                nb(x + 1, y);
            }
            if y > 0 {
                nb(x, y - 1);
            }
            if y + 1 < m.ny {
                nb(x, y + 1);
            }
        }
    }
    m.edge_conductance * edges as f64
}

/// Rank-one correction of the near-constant error mode:
/// `x += 1_free · ⟨1_free, r⟩ / ⟨1_free, A·1_free⟩`.
///
/// A bump cell pins a handful of nodes in a sea of free ones, so the
/// operator's weakest mode is almost constant — its amplitude is set by
/// the log-divergent spreading resistance into the pin, which the
/// coarse grids (at 2h, 4h, …) systematically under-represent; the
/// V-cycle alone then contracts that one mode by only ~0.5 per cycle.
/// Deflating it explicitly (the exact A-projection of the residual onto
/// the constant) restores the mesh-independent ~0.1 contraction of the
/// fully-pinned-boundary case. With no free→pinned edge the step is
/// skipped (`coupling = 0` cannot happen on a validated mesh, which
/// requires at least one pin).
fn deflate_constant_mode(m: &MeshProblem, x: &AtomicF64Vec, r: &[f64], coupling: f64) {
    if coupling <= 0.0 {
        return;
    }
    let mass: f64 = (0..r.len()).filter(|&i| !m.pinned[i]).map(|i| r[i]).sum();
    let alpha = mass / coupling;
    for i in 0..r.len() {
        if !m.pinned[i] {
            x.set(i, x.get(i) + alpha);
        }
    }
}

/// Rejects a warm-start vector of the wrong length.
fn check_warm_len(m: &MeshProblem, x0: Option<&[f64]>) -> Result<(), GridError> {
    if let Some(x0) = x0 {
        if x0.len() != m.nx * m.ny {
            return Err(GridError::BadParameter(
                "warm-start vector must have nx*ny entries",
            ));
        }
    }
    Ok(())
}

/// Solves the mesh by the standalone multigrid V-cycle iteration.
///
/// Same contract (and `1e-12·‖b‖` tolerance) as
/// [`crate::cg::solve_pcg`], in O(N) total work. Bitwise deterministic:
/// the result is a pure function of the problem alone.
///
/// ```
/// use np_grid::multigrid::solve_multigrid;
/// use np_grid::solver::MeshProblem;
///
/// let mut m = MeshProblem::new(17, 17, 1.0);
/// m.injection = vec![1e-4; 17 * 17];
/// let centre = m.index(8, 8);
/// m.pinned[centre] = true;
/// let v = solve_multigrid(&m)?;
/// assert_eq!(v.len(), 17 * 17);
/// assert_eq!(v[centre], 0.0); // the bump stays at the rail
/// # Ok::<(), np_grid::GridError>(())
/// ```
///
/// # Errors
///
/// Those of [`MeshProblem::validate`]; [`GridError::BadParameter`] when
/// a dimension is not `2^k+1`; [`GridError::NoConvergence`] when the
/// cycle budget runs out.
pub fn solve_multigrid(m: &MeshProblem) -> Result<Vec<f64>, GridError> {
    solve_multigrid_sharded(m, 1)
}

/// [`solve_multigrid`] with smoothing sharded across `shards` row bands
/// on levels large enough to profit.
///
/// Bitwise identical to the sequential solve for every shard count: the
/// red-black half-sweeps perform identical arithmetic regardless of
/// banding, and every reduction (residual norms, transfers, the coarse
/// solve) runs sequentially.
///
/// # Errors
///
/// Exactly those of [`solve_multigrid`].
pub fn solve_multigrid_sharded(m: &MeshProblem, shards: usize) -> Result<Vec<f64>, GridError> {
    let hier = MgHierarchy::new(m)?;
    solve_multigrid_warm(m, &hier, shards, None)
}

/// [`solve_multigrid_sharded`] with a reusable [`MgHierarchy`] and an
/// optional warm start (pinned entries of `x0` are forced to zero).
///
/// # Errors
///
/// Those of [`solve_multigrid`], plus [`GridError::BadParameter`] when
/// `hier` or `x0` does not match the mesh.
pub fn solve_multigrid_warm(
    m: &MeshProblem,
    hier: &MgHierarchy,
    shards: usize,
    x0: Option<&[f64]>,
) -> Result<Vec<f64>, GridError> {
    m.validate()?;
    hier.check_matches(m)?;
    check_warm_len(m, x0)?;
    let _span = np_telemetry::span("grid.mg.solve");
    let n = m.nx * m.ny;
    let b_norm_sq: f64 = (0..n)
        .filter(|&i| !m.pinned[i])
        .map(|i| m.injection[i] * m.injection[i])
        .sum();
    if b_norm_sq == 0.0 {
        // x = 0 is the exact solution; iterating a warm start toward it
        // chases a clamped tolerance into denormals (same short-circuit
        // as the PCG family).
        return Ok(vec![0.0; n]);
    }
    let tol = 1e-12 * b_norm_sq.sqrt().max(1e-300);
    let mut levels = make_workspace(m, hier);
    if let Some(seed) = x0 {
        let Some(fine) = levels.first_mut() else {
            return Err(GridError::BadParameter("multigrid hierarchy is empty"));
        };
        for (i, v) in seed.iter().enumerate() {
            fine.x.set(i, if m.pinned[i] { 0.0 } else { *v });
        }
    }
    let fine_nodes = n as f64;
    let coupling = pin_coupling(m);
    let mut work = 0.0f64;
    let mut cycles: usize = 0;
    let mut final_rnorm;
    let mut prev_rnorm = f64::INFINITY;
    let mut stalled: usize = 0;
    let mut trace = ResidualTrace::new();
    let result = loop {
        let rnorm = fine_residual_norm(&mut levels);
        final_rnorm = rnorm;
        trace.record(rnorm);
        work += 1.0; // the fine residual evaluation itself
        if !rnorm.is_finite() {
            break Err(GridError::NoConvergence {
                diag: trace.diagnostic(Breakdown::NonFinite {
                    at_iteration: cycles,
                }),
            });
        }
        if rnorm <= tol {
            break Ok(());
        }
        // Unlike the CG family, this loop measures the TRUE residual
        // every cycle (the recursive CG residual drifts optimistic by
        // 10-100× at these tolerances), and the true residual has a
        // rounding floor near `n·ε·‖A‖·‖x‖` that a tight relative
        // tolerance can sit below. Once cycles stop contracting the
        // iterate is at that floor — more accurate than a nominally
        // "converged" PCG solve — so accept within a generous band and
        // report failure only for a genuinely unconverged stall. The
        // comparison is against the PREVIOUS cycle: the first deflation
        // step spikes the residual transiently (it concentrates the
        // constant mode's mass at the pin), which a best-so-far
        // comparison would misread as three straight stalls.
        if rnorm > 0.9 * prev_rnorm {
            stalled += 1;
        } else {
            stalled = 0;
        }
        prev_rnorm = rnorm;
        if stalled >= 3 || cycles >= MAX_CYCLES {
            break if rnorm <= tol * 1e3 {
                Ok(())
            } else {
                Err(GridError::NoConvergence {
                    diag: trace.diagnostic(Breakdown::IterationBudget),
                })
            };
        }
        if let Some(fine) = levels.first() {
            // The residual in fine.r is current (just computed above).
            deflate_constant_mode(&fine.m, &fine.x, &fine.r, coupling);
        }
        if let Err(e) = v_cycle(&mut levels, 0, shards, fine_nodes, &mut work) {
            break Err(e);
        }
        cycles += 1;
    };
    np_telemetry::counter("grid.mg.cycles", cycles as u64);
    np_telemetry::counter("grid.mg.sweeps_equivalent", work.round() as u64);
    np_telemetry::value("grid.mg.sweeps_equivalent", work);
    np_telemetry::value("grid.mg.final_residual", final_rnorm);
    result.map(|()| levels.first().map(|lvl| lvl.x.to_vec()).unwrap_or_default())
}

/// Solves the mesh by multigrid-preconditioned conjugate gradients
/// (MGCG): the CG iteration of [`crate::cg::solve_pcg`] with one
/// symmetrized V-cycle as the preconditioner instead of the Jacobi
/// diagonal.
///
/// Converges in a near-mesh-independent number of CG iterations (each
/// O(N)), and tolerates rough patches — irregular pin clusters, strong
/// local corrections — that can slow the standalone V-cycle, which is
/// why [`crate::plan::SolvePlan`]'s auto heuristic picks MGCG on large
/// compatible meshes.
///
/// # Errors
///
/// Exactly those of [`solve_multigrid`].
pub fn solve_mgcg(m: &MeshProblem) -> Result<Vec<f64>, GridError> {
    solve_mgcg_sharded(m, 1)
}

/// [`solve_mgcg`] with sharded smoothing inside the preconditioner (see
/// [`solve_multigrid_sharded`]; MGCG is likewise bitwise deterministic
/// for every shard count).
///
/// # Errors
///
/// Exactly those of [`solve_multigrid`].
pub fn solve_mgcg_sharded(m: &MeshProblem, shards: usize) -> Result<Vec<f64>, GridError> {
    let hier = MgHierarchy::new(m)?;
    solve_mgcg_warm(m, &hier, shards, None)
}

/// [`solve_mgcg_sharded`] with a reusable [`MgHierarchy`] and an
/// optional warm start.
///
/// # Errors
///
/// Those of [`solve_mgcg`], plus [`GridError::BadParameter`] when
/// `hier` or `x0` does not match the mesh.
pub fn solve_mgcg_warm(
    m: &MeshProblem,
    hier: &MgHierarchy,
    shards: usize,
    x0: Option<&[f64]>,
) -> Result<Vec<f64>, GridError> {
    m.validate()?;
    hier.check_matches(m)?;
    check_warm_len(m, x0)?;
    let _span = np_telemetry::span("grid.mgcg.solve");
    let n = m.nx * m.ny;
    let b: Vec<f64> = (0..n)
        .map(|i| if m.pinned[i] { 0.0 } else { -m.injection[i] })
        .collect();
    if b.iter().all(|&v| v == 0.0) {
        return Ok(vec![0.0; n]); // see solve_multigrid_warm
    }
    let mut levels = make_workspace(m, hier);
    let (mut x, mut r) = match x0 {
        Some(seed) => {
            let mut x = seed.to_vec();
            for (i, xi) in x.iter_mut().enumerate() {
                if m.pinned[i] {
                    *xi = 0.0;
                }
            }
            let mut ax = vec![0.0; n];
            apply(m, &x, &mut ax);
            let r: Vec<f64> = b.iter().zip(&ax).map(|(b, ax)| b - ax).collect();
            (x, r)
        }
        None => (vec![0.0; n], b.clone()),
    };
    let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
    let tol = 1e-12 * b_norm;
    let max_iters = 10 * n;
    let fine_nodes = n as f64;
    let mut work = 0.0f64;
    let mut z = vec![0.0; n];
    let mut ap = vec![0.0f64; n];
    let mut rr: f64 = r.iter().map(|v| v * v).sum();
    let mut trace = ResidualTrace::new();
    // The labeled block funnels every exit path through one point so the
    // iteration count and final residual are recorded exactly once.
    let result = 'solve: {
        if let Err(e) = apply_preconditioner(&mut levels, &r, &mut z, shards, fine_nodes, &mut work)
        {
            break 'solve Err(e);
        }
        let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let mut p = z.clone();
        for _ in 0..max_iters {
            if rr.sqrt() <= tol {
                break 'solve Ok(x);
            }
            apply(m, &p, &mut ap);
            work += 2.0; // mat-vec plus the iteration's vector updates
            let p_ap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if !p_ap.is_finite() {
                break 'solve Err(GridError::NoConvergence {
                    diag: trace.diagnostic(Breakdown::NonFinite {
                        at_iteration: trace.iterations(),
                    }),
                });
            }
            if p_ap <= 0.0 {
                if rr.sqrt() <= tol * 10.0 {
                    break 'solve Ok(x);
                }
                break 'solve Err(GridError::NoConvergence {
                    diag: trace.diagnostic(Breakdown::IndefiniteOperator { curvature: p_ap }),
                });
            }
            let alpha = rz / p_ap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            rr = r.iter().map(|v| v * v).sum();
            trace.record(rr.sqrt());
            if let Err(e) =
                apply_preconditioner(&mut levels, &r, &mut z, shards, fine_nodes, &mut work)
            {
                break 'solve Err(e);
            }
            let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        if rr.sqrt() <= tol * 10.0 {
            Ok(x)
        } else {
            Err(GridError::NoConvergence {
                diag: trace.diagnostic(Breakdown::IterationBudget),
            })
        }
    };
    np_telemetry::counter("grid.mgcg.iterations", trace.iterations() as u64);
    np_telemetry::counter("grid.mgcg.sweeps_equivalent", work.round() as u64);
    np_telemetry::value("grid.mgcg.sweeps_equivalent", work);
    np_telemetry::value("grid.mgcg.final_residual", rr.sqrt());
    result
}

/// `z = M⁻¹·r` where `M⁻¹` is one V-cycle from a zero guess on the
/// correction system `A·z = r`. The cycle's symmetric smoothing order
/// and near-exact coarse solve make `M` symmetric positive-definite, as
/// CG requires of its preconditioner.
fn apply_preconditioner(
    levels: &mut [LevelState],
    r: &[f64],
    z: &mut [f64],
    shards: usize,
    fine_nodes: f64,
    work: &mut f64,
) -> Result<(), GridError> {
    {
        let Some(fine) = levels.first_mut() else {
            return Err(GridError::BadParameter("multigrid hierarchy is empty"));
        };
        for (i, ri) in r.iter().enumerate() {
            fine.m.injection[i] = -ri; // level convention: A·v = −injection
            fine.x.set(i, 0.0);
        }
    }
    v_cycle(levels, 0, shards, fine_nodes, work)?;
    let Some(fine) = levels.first() else {
        return Err(GridError::BadParameter("multigrid hierarchy is empty"));
    };
    for (i, zi) in z.iter_mut().enumerate() {
        *zi = fine.x.get(i);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::solve_pcg;

    fn loaded(n: usize) -> MeshProblem {
        let mut m = MeshProblem::new(n, n, 1.3);
        let pin = m.index(n / 2, n / 2);
        m.pinned[pin] = true;
        for i in 0..m.injection.len() {
            m.injection[i] = 1e-3;
        }
        m
    }

    #[test]
    fn hierarchy_ladder_has_the_expected_depth() {
        let h = MgHierarchy::new(&loaded(33)).unwrap();
        assert_eq!(h.levels(), 3, "33 -> 17 -> 9");
        let h = MgHierarchy::new(&loaded(9)).unwrap();
        assert_eq!(h.levels(), 1, "9 is already the coarsest");
        let h = MgHierarchy::new(&loaded(129)).unwrap();
        assert_eq!(h.levels(), 5, "129 -> 65 -> 33 -> 17 -> 9");
    }

    #[test]
    fn non_pow2_plus_one_meshes_are_a_typed_bad_parameter() {
        for n in [12usize, 16, 30, 100] {
            let mut m = MeshProblem::new(n, n, 1.0);
            let pin = m.index(n / 2, n / 2);
            m.pinned[pin] = true;
            m.injection = vec![1e-3; n * n];
            assert!(
                matches!(solve_multigrid(&m), Err(GridError::BadParameter(_))),
                "n={n} must be rejected"
            );
            assert!(
                matches!(solve_mgcg(&m), Err(GridError::BadParameter(_))),
                "n={n} must be rejected for MGCG too"
            );
        }
        // 2x2 passes MeshProblem::new but not the coarsening ladder.
        let mut m = MeshProblem::new(2, 2, 1.0);
        m.pinned[0] = true;
        assert!(matches!(
            solve_multigrid(&m),
            Err(GridError::BadParameter(_))
        ));
    }

    #[test]
    fn multigrid_matches_sor_and_pcg() {
        for n in [9usize, 17, 33] {
            let m = loaded(n);
            let sor = m.solve().expect("sor");
            let mg = solve_multigrid(&m).expect("mg");
            for i in 0..sor.len() {
                assert!(
                    (sor[i] - mg[i]).abs() < 1e-6 * (1.0 + sor[i].abs()),
                    "n={n} node {i}: SOR {} vs MG {}",
                    sor[i],
                    mg[i]
                );
            }
        }
    }

    #[test]
    fn mgcg_matches_pcg() {
        for n in [17usize, 33] {
            let m = loaded(n);
            let pcg = solve_pcg(&m).expect("pcg");
            let mgcg = solve_mgcg(&m).expect("mgcg");
            for i in 0..pcg.len() {
                assert!(
                    (pcg[i] - mgcg[i]).abs() < 1e-6 * (1.0 + pcg[i].abs()),
                    "n={n} node {i}: PCG {} vs MGCG {}",
                    pcg[i],
                    mgcg[i]
                );
            }
        }
    }

    #[test]
    fn sharded_smoothing_is_bitwise_identical() {
        let m = loaded(33);
        let seq = solve_multigrid(&m).unwrap();
        for shards in [2usize, 3, 7, 16] {
            assert_eq!(
                seq,
                solve_multigrid_sharded(&m, shards).unwrap(),
                "MG shards={shards}"
            );
        }
        let seq = solve_mgcg(&m).unwrap();
        for shards in [2usize, 3, 7] {
            assert_eq!(
                seq,
                solve_mgcg_sharded(&m, shards).unwrap(),
                "MGCG shards={shards}"
            );
        }
    }

    #[test]
    fn off_centre_and_multiple_pins_survive_coarsening() {
        for pins in [vec![(0usize, 0usize)], vec![(1, 2), (31, 30), (16, 0)]] {
            let mut m = MeshProblem::new(33, 33, 1.0);
            for &(x, y) in &pins {
                let i = m.index(x, y);
                m.pinned[i] = true;
            }
            m.injection = vec![1e-3; 33 * 33];
            let mg = solve_multigrid(&m).expect("mg with awkward pins");
            let pcg = solve_pcg(&m).expect("pcg");
            for i in 0..mg.len() {
                assert!(
                    (pcg[i] - mg[i]).abs() < 1e-6 * (1.0 + pcg[i].abs()),
                    "pins {pins:?} node {i}"
                );
            }
        }
    }

    #[test]
    fn rectangular_meshes_coarsen_per_dimension() {
        let mut m = MeshProblem::new(17, 33, 1.0);
        let pin = m.index(8, 16);
        m.pinned[pin] = true;
        m.injection = vec![1e-3; 17 * 33];
        let mg = solve_multigrid(&m).unwrap();
        let pcg = solve_pcg(&m).unwrap();
        for i in 0..mg.len() {
            assert!((pcg[i] - mg[i]).abs() < 1e-6 * (1.0 + pcg[i].abs()));
        }
    }

    #[test]
    fn warm_start_from_the_solution_takes_zero_cycles() {
        let m = loaded(33);
        let hier = MgHierarchy::new(&m).unwrap();
        let cold = solve_multigrid_warm(&m, &hier, 1, None).unwrap();
        let collector = np_telemetry::Collector::new();
        let warm = {
            let _guard = np_telemetry::install(&collector);
            solve_multigrid_warm(&m, &hier, 1, Some(&cold)).unwrap()
        };
        assert_eq!(cold, warm);
        let summary = collector.summary();
        let cycles = summary
            .counters
            .iter()
            .find(|(name, _)| name == "grid.mg.cycles")
            .map(|(_, n)| *n);
        assert_eq!(cycles, Some(0), "a converged warm start needs no cycles");
    }

    #[test]
    fn zero_injection_short_circuits_to_zeros() {
        let mut m = MeshProblem::new(17, 17, 1.0);
        let pin = m.index(8, 8);
        m.pinned[pin] = true;
        assert_eq!(solve_multigrid(&m).unwrap(), vec![0.0; 17 * 17]);
        assert_eq!(solve_mgcg(&m).unwrap(), vec![0.0; 17 * 17]);
    }

    #[test]
    fn mismatched_hierarchy_and_warm_starts_are_rejected() {
        let m = loaded(17);
        let other = MgHierarchy::new(&loaded(33)).unwrap();
        assert!(matches!(
            solve_multigrid_warm(&m, &other, 1, None),
            Err(GridError::BadParameter(_))
        ));
        // Same shape, different pins: still a mismatch.
        let mut repinned = m.clone();
        let extra = repinned.index(0, 0);
        repinned.pinned[extra] = true;
        let hier = MgHierarchy::new(&m).unwrap();
        assert!(matches!(
            solve_multigrid_warm(&repinned, &hier, 1, None),
            Err(GridError::BadParameter(_))
        ));
        let short = vec![0.0; 3];
        assert!(matches!(
            solve_multigrid_warm(&m, &hier, 1, Some(&short)),
            Err(GridError::BadParameter(_))
        ));
        assert!(matches!(
            solve_mgcg_warm(&m, &hier, 1, Some(&short)),
            Err(GridError::BadParameter(_))
        ));
    }

    #[test]
    fn multigrid_beats_pcg_on_sweeps_equivalent() {
        // The acceptance currency: MGCG's total fine-grid-sweep
        // equivalents must undercut PCG's iteration count by ≥5× from
        // 257×257 up (the gap only widens with N — PCG iterations grow
        // ~O(nx): 381/841/1954 at 129/257/513, while MGCG stays nearly
        // flat at ~140). Separate collectors: the V-cycle's coarse
        // solves also emit `grid.pcg.iterations`, which would pollute a
        // shared one.
        let m = loaded(257);
        let counter = |summary: &np_telemetry::Summary, name: &str| {
            summary
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        let pcg_collector = np_telemetry::Collector::new();
        {
            let _guard = np_telemetry::install(&pcg_collector);
            solve_pcg(&m).unwrap();
        }
        let mgcg_collector = np_telemetry::Collector::new();
        {
            let _guard = np_telemetry::install(&mgcg_collector);
            solve_mgcg(&m).unwrap();
        }
        let pcg_iters = counter(&pcg_collector.summary(), "grid.pcg.iterations");
        let mgcg_sweeps = counter(&mgcg_collector.summary(), "grid.mgcg.sweeps_equivalent");
        assert!(
            pcg_iters >= 5 * mgcg_sweeps,
            "PCG {pcg_iters} iterations vs MGCG {mgcg_sweeps} sweep-equivalents"
        );
        // The standalone V-cycle also has to beat PCG outright, if not
        // by the same margin (the point-pin log mode costs it a
        // slowly-growing cycle count: ~38 cycles here vs MGCG's 13
        // iterations).
        let mg_collector = np_telemetry::Collector::new();
        {
            let _guard = np_telemetry::install(&mg_collector);
            solve_multigrid(&m).unwrap();
        }
        let mg_sweeps = counter(&mg_collector.summary(), "grid.mg.sweeps_equivalent");
        assert!(
            pcg_iters >= 2 * mg_sweeps,
            "PCG {pcg_iters} iterations vs MG {mg_sweeps} sweep-equivalents"
        );
    }
}
