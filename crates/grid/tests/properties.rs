//! Property-based tests on the mesh solver and IR-drop models.

use np_grid::analytic::{required_rail_width, worst_case_drop, IrBudget};
use np_grid::cg::{solve_pcg, solve_pcg_parallel};
use np_grid::multigrid::{solve_mgcg_sharded, solve_multigrid, solve_multigrid_sharded};
use np_grid::solver::MeshProblem;
use np_grid::{GridError, SolvePlan, SolveStrategy};
use np_roadmap::TechNode;
use np_units::Microns;
use proptest::prelude::*;

fn any_node() -> impl Strategy<Value = TechNode> {
    prop::sample::select(TechNode::ALL.to_vec())
}

/// Shard counts the parallel-equivalence properties sweep: serial
/// fallback, a couple of awkward splits, and the machine's parallelism.
fn any_shards() -> impl Strategy<Value = usize> {
    let ncpu = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    prop::sample::select(vec![1usize, 2, 7, ncpu])
}

/// A loaded mesh: uniform injection, pin at `(px, py)`.
fn loaded_mesh(n: usize, g: f64, load: f64, px: usize, py: usize) -> MeshProblem {
    let mut m = MeshProblem::new(n, n, g);
    let pin = m.index(px.min(n - 1), py.min(n - 1));
    m.pinned[pin] = true;
    for i in 0..m.injection.len() {
        m.injection[i] = load / (n * n) as f64;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mesh_solution_satisfies_kcl(
        n in 5usize..12,
        g in 0.1..10.0f64,
        load in 1e-4..1e-1f64,
    ) {
        let mut m = MeshProblem::new(n, n, g);
        let pin = m.index(n / 2, n / 2);
        m.pinned[pin] = true;
        for i in 0..m.injection.len() {
            m.injection[i] = load / (n * n) as f64;
        }
        let v = m.solve().unwrap();
        // KCL at every free node: sum of edge currents equals injection.
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if m.pinned[i] {
                    continue;
                }
                let mut into = 0.0;
                if x > 0 { into += g * (v[i - 1] - v[i]); }
                if x + 1 < n { into += g * (v[i + 1] - v[i]); }
                if y > 0 { into += g * (v[i - n] - v[i]); }
                if y + 1 < n { into += g * (v[i + n] - v[i]); }
                prop_assert!(
                    (into - m.injection[i]).abs() < 1e-7 * (1.0 + m.injection[i].abs()),
                    "KCL violated at ({x},{y}): {into} vs {}",
                    m.injection[i]
                );
            }
        }
    }

    #[test]
    fn mesh_drops_are_nonpositive_under_load(n in 5usize..12, load in 1e-4..1e-1f64) {
        let mut m = MeshProblem::new(n, n, 1.0);
        let pin = m.index(0, 0);
        m.pinned[pin] = true;
        for i in 0..m.injection.len() {
            m.injection[i] = load / (n * n) as f64;
        }
        let v = m.solve().unwrap();
        prop_assert!(v.iter().all(|&x| x <= 1e-12), "grid voltages sag below the pin");
    }

    #[test]
    fn analytic_drop_scales_exactly(
        node in any_node(),
        pitch in 50.0..200.0f64,
        w in 0.5..10.0f64,
        k in 1.1..4.0f64,
    ) {
        let base = worst_case_drop(node, Microns(pitch), Microns(w)).unwrap();
        let wider = worst_case_drop(node, Microns(pitch), Microns(w * k)).unwrap();
        prop_assert!((base.0 / wider.0 / k - 1.0).abs() < 1e-9, "1/w scaling");
        let coarser = worst_case_drop(node, Microns(pitch * k), Microns(w)).unwrap();
        prop_assert!((coarser.0 / base.0 / k.powi(3) - 1.0).abs() < 1e-9, "P^3 scaling");
    }

    #[test]
    fn solved_width_always_meets_budget(node in any_node(), pitch in 40.0..150.0f64) {
        let budget = IrBudget::default();
        if let Ok(w) = required_rail_width(node, Microns(pitch), &budget) {
            let drop = worst_case_drop(node, Microns(pitch), w).unwrap();
            let allowed = budget.per_net(node.params().vdd).unwrap();
            prop_assert!(drop.0 <= allowed.0 * 1.0001);
            prop_assert!(w.0 >= node.params().top_metal_min_width.0);
        }
    }

    // Parallel SOR shares every arithmetic operation with the sequential
    // sweep (same-color nodes are independent; the convergence reduction
    // is an associative max) — so equality is exact, well inside the
    // 1e-9 relative tolerance the contract demands.
    #[test]
    fn parallel_sor_matches_sequential(
        n in 5usize..20,
        g in 0.1..10.0f64,
        load in 1e-4..1e-1f64,
        px in 0usize..20,
        py in 0usize..20,
        shards in any_shards(),
    ) {
        let m = loaded_mesh(n, g, load, px, py);
        let seq = m.solve().unwrap();
        let par = m.solve_parallel(shards).unwrap();
        for i in 0..seq.len() {
            prop_assert!(
                (seq[i] - par[i]).abs() <= 1e-9 * (1.0 + seq[i].abs()),
                "shards={shards} node {i}: {} vs {}",
                seq[i],
                par[i]
            );
        }
    }

    // Parallel PCG re-associates the dot products, so agreement is to
    // solver tolerance rather than bitwise.
    #[test]
    fn parallel_pcg_matches_sequential(
        n in 5usize..20,
        g in 0.1..10.0f64,
        load in 1e-4..1e-1f64,
        px in 0usize..20,
        py in 0usize..20,
        shards in any_shards(),
    ) {
        let m = loaded_mesh(n, g, load, px, py);
        let seq = solve_pcg(&m).unwrap();
        let par = solve_pcg_parallel(&m, shards).unwrap();
        for i in 0..seq.len() {
            prop_assert!(
                (seq[i] - par[i]).abs() <= 1e-9 * (1.0 + seq[i].abs()),
                "shards={shards} node {i}: {} vs {}",
                seq[i],
                par[i]
            );
        }
    }

    // Every strategy the SolvePlan enum can route to answers the same
    // physics: all agree with the SOR reference within tolerance.
    #[test]
    fn every_solve_plan_strategy_agrees(
        n in 5usize..16,
        load in 1e-4..1e-1f64,
        shards in any_shards(),
    ) {
        let m = loaded_mesh(n, 1.0, load, n / 2, n / 2);
        let reference = m.solve().unwrap();
        for strategy in [
            SolveStrategy::Auto,
            SolveStrategy::ParallelSor,
            SolveStrategy::SequentialCg,
            SolveStrategy::ParallelCg,
        ] {
            let v = SolvePlan::with_strategy(strategy)
                .with_shards(shards)
                .solve(&m)
                .unwrap();
            // Cross-algorithm comparison (CG-family vs the SOR
            // reference): both stop at their own 1e-12-scaled criteria,
            // so agreement is to solver accuracy, not parallel-vs-
            // sequential tightness.
            for i in 0..reference.len() {
                prop_assert!(
                    (reference[i] - v[i]).abs() <= 1e-6 * (1.0 + reference[i].abs()),
                    "{strategy:?} shards={shards} node {i}: {} vs {}",
                    reference[i],
                    v[i]
                );
            }
        }
    }

    #[test]
    fn tighter_budgets_demand_wider_rails(
        node in any_node(),
        share in 0.2..0.9f64,
    ) {
        let pitch = Microns(80.0);
        let loose = IrBudget { total_fraction: 0.10, top_level_share: share };
        let tight = IrBudget { total_fraction: 0.05, top_level_share: share };
        if let (Ok(wl), Ok(wt)) = (
            required_rail_width(node, pitch, &loose),
            required_rail_width(node, pitch, &tight),
        ) {
            prop_assert!(wt >= wl);
        }
    }
}

// A separate block with a lower case count: 257×257 solves are real
// work, and the property holds per (size, shards) cell rather than
// needing a dense random sweep.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // ISSUE 8's equivalence contract: the multigrid family agrees with
    // PCG to 1e-6 at every ladder size (33/129/257) and shard count
    // (1/2/NCPU via `any_shards`).
    #[test]
    fn multigrid_family_matches_pcg_across_sizes_and_shards(
        n in prop::sample::select(vec![33usize, 129, 257]),
        g in 0.1..10.0f64,
        load in 1e-4..1e-1f64,
        shards in any_shards(),
    ) {
        let m = loaded_mesh(n, g, load, n / 2, n / 2);
        let pcg = solve_pcg(&m).unwrap();
        let mg = solve_multigrid_sharded(&m, shards).unwrap();
        let mgcg = solve_mgcg_sharded(&m, shards).unwrap();
        for i in 0..pcg.len() {
            prop_assert!(
                (pcg[i] - mg[i]).abs() <= 1e-6 * (1.0 + pcg[i].abs()),
                "MG n={n} shards={shards} node {i}: {} vs {}",
                pcg[i],
                mg[i]
            );
            prop_assert!(
                (pcg[i] - mgcg[i]).abs() <= 1e-6 * (1.0 + pcg[i].abs()),
                "MGCG n={n} shards={shards} node {i}: {} vs {}",
                pcg[i],
                mgcg[i]
            );
        }
    }
}

#[test]
fn multigrid_rejects_non_pow2_plus_one_meshes_with_a_typed_error() {
    // 20 is even (MeshProblem::new accepts it) and 21 = 3·7 misses the
    // 2^k+1 ladder; both must come back as a typed BadParameter, not a
    // panic or a silent wrong answer.
    for n in [20usize, 21] {
        let m = loaded_mesh(n, 1.0, 1e-2, n / 2, n / 2);
        assert!(
            matches!(solve_multigrid(&m), Err(GridError::BadParameter(_))),
            "n={n} must be a BadParameter"
        );
    }
}
