//! # np-telemetry
//!
//! Zero-dependency run telemetry for the `nanopower` workspace: spans,
//! counters, and value statistics with thread-safe collection, a
//! Chrome `trace_event` exporter, and a flat-text exporter.
//!
//! The workspace is offline (every dependency is vendored), so this
//! crate is a deliberately small, std-only shim instead of a `tracing`
//! dependency — see DESIGN.md §11 for the architecture and the
//! trade-offs. The paper's results come from chained solvers (device
//! I–V → STA/power → electro-thermal fixed point → IR-drop CG/SOR), and
//! this crate is how the workspace sees where wall-clock goes and how
//! convergence trends across those chains:
//!
//! | instrumented path | span / counter names |
//! |---|---|
//! | engine job lifecycle | `engine.run`, `engine.worker`, per-artifact spans, `engine.queue_wait_us`, `engine.retries`, `engine.deadline_exceeded` |
//! | IR-drop CG (`np-grid`) | `grid.cg.solve`, `grid.cg.iterations`, `grid.cg.final_residual` |
//! | IR-drop SOR (`np-grid`) | `grid.sor.solve`, `grid.sor.iterations` |
//! | electro-thermal fixed point (`np-thermal`) | `thermal.fixed_point`, `thermal.fixed_point.iterations` |
//! | thermal-RC settle (`np-thermal`) | `thermal.rc.settle`, `thermal.rc.settle_steps` |
//! | STA (`np-circuit`) | `circuit.sta.analyze`, `circuit.sta.gates`, `circuit.sta.level_passes` |
//! | Vth solve (`np-device`) | `device.solve_vth`, `device.solve_vth.evals` |
//!
//! # Model
//!
//! A [`Collector`] is a cheaply clonable handle to a thread-safe sink.
//! Instrumented code never holds a collector: it calls the free
//! functions [`span`], [`counter`], and [`value`], which look up the
//! *currently installed* collector in a thread-local and do nothing —
//! a few nanoseconds — when none is installed. A runner that wants
//! telemetry creates a collector, [`install`]s it (and installs clones
//! on any worker threads it spawns), runs the workload, and exports.
//!
//! # Quickstart
//!
//! ```
//! use np_telemetry::{Collector, install, span, counter, value};
//! # if cfg!(feature = "off") { return; }
//!
//! let collector = Collector::new();
//! {
//!     let _guard = install(&collector);
//!     let _solve = span("outer.solve");
//!     {
//!         let _inner = span("inner.iterate");
//!         counter("inner.iterations", 42);
//!         value("inner.final_residual", 1e-13);
//!     }
//! }
//! let summary = collector.summary();
//! assert_eq!(summary.counters, vec![("inner.iterations".to_string(), 42)]);
//! let trace = collector.chrome_trace();
//! assert!(trace.contains("\"traceEvents\""));
//! assert!(trace.contains("\"name\": \"inner.iterate\""));
//! ```
//!
//! # No-op modes
//!
//! Two levels of "off":
//!
//! * **No collector installed** (the default for library users): every
//!   instrumentation call is a thread-local read plus a branch.
//! * **Feature `off`**: every instrumentation call compiles to an empty
//!   inline function and collectors record nothing, for proving the
//!   instrumentation has zero cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod collector;
pub mod export;

pub use collector::{Collector, SpanRecord, SpanStats, Summary, ValueStats};

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

thread_local! {
    /// Stack of installed collectors; the top is the current one.
    static CURRENT: RefCell<Vec<Collector>> = const { RefCell::new(Vec::new()) };
    /// Open recorded-span count on this thread (span nesting depth).
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// This thread's dense telemetry id (`u64::MAX` = unassigned).
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// Process-wide source of dense thread ids for trace attribution.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// The dense telemetry id of the calling thread (assigned on first use).
fn thread_id() -> u64 {
    TID.with(|cell| {
        let id = cell.get();
        if id != u64::MAX {
            id
        } else {
            let id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            cell.set(id);
            id
        }
    })
}

/// Installs `collector` as the calling thread's current collector until
/// the returned guard drops (installs nest: dropping restores the
/// previous collector).
///
/// # Examples
///
/// ```
/// use np_telemetry::{Collector, install, current};
/// # if cfg!(feature = "off") { return; }
///
/// assert!(current().is_none());
/// let c = Collector::new();
/// {
///     let _guard = install(&c);
///     assert!(current().is_some());
/// }
/// assert!(current().is_none());
/// ```
pub fn install(collector: &Collector) -> InstallGuard {
    CURRENT.with(|stack| stack.borrow_mut().push(collector.clone()));
    InstallGuard { _priv: () }
}

/// Uninstalls the collector pushed by the matching [`install`] call when
/// dropped.
#[must_use = "dropping the guard uninstalls the collector immediately"]
#[derive(Debug)]
pub struct InstallGuard {
    _priv: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// The calling thread's currently installed collector, if any.
///
/// Runners use this to propagate telemetry onto worker threads they
/// spawn (capture before spawning, [`install`] inside the worker).
///
/// # Examples
///
/// ```
/// use np_telemetry::{Collector, install, current};
/// # if cfg!(feature = "off") { return; }
///
/// let c = Collector::new();
/// let _guard = install(&c);
/// let captured = current().unwrap();
/// std::thread::spawn(move || {
///     let _guard = np_telemetry::install(&captured);
///     np_telemetry::counter("worker.jobs", 1);
/// })
/// .join()
/// .unwrap();
/// assert_eq!(c.summary().counters, vec![("worker.jobs".to_string(), 1)]);
/// ```
pub fn current() -> Option<Collector> {
    if cfg!(feature = "off") {
        return None;
    }
    CURRENT.with(|stack| stack.borrow().last().cloned())
}

/// An open span: a named region of wall-clock time, recorded to the
/// collector that was current when it was opened. Closed (and recorded)
/// on drop. Inert — a zero-cost placeholder — when no collector was
/// installed.
///
/// # Examples
///
/// ```
/// use np_telemetry::{Collector, install, span};
/// # if cfg!(feature = "off") { return; }
///
/// let c = Collector::new();
/// let _guard = install(&c);
/// {
///     let _s = span("model.solve");
/// } // recorded here
/// assert_eq!(c.summary().spans[0].0, "model.solve");
/// ```
#[must_use = "a span records the time until it is dropped; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Span {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    collector: Collector,
    name: Cow<'static, str>,
    start: Instant,
    depth: u32,
    tid: u64,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            active.collector.record_span(
                active.name,
                active.start,
                Instant::now(),
                active.tid,
                active.depth,
            );
        }
    }
}

/// Opens a [`Span`] on the current collector (inert when none is
/// installed, or under the `off` feature).
///
/// # Examples
///
/// ```
/// // Without a collector installed this is a no-op — safe to leave in
/// // library hot paths unconditionally.
/// let _s = np_telemetry::span("grid.cg.solve");
/// ```
pub fn span(name: impl Into<Cow<'static, str>>) -> Span {
    if cfg!(feature = "off") {
        return Span { active: None };
    }
    let Some(collector) = current() else {
        return Span { active: None };
    };
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    Span {
        active: Some(ActiveSpan {
            collector,
            name: name.into(),
            start: Instant::now(),
            depth,
            tid: thread_id(),
        }),
    }
}

/// Opens a [`Span`] attributed to one shard of a sharded computation,
/// named `{name}#{shard}` (inert when no collector is installed, or
/// under the `off` feature).
///
/// Parallel solvers give each worker its own span this way, so a trace
/// shows per-shard wall-clock and the flat-text/Chrome exports separate
/// the shards into distinguishable rows. The name is only allocated when
/// a collector is actually listening, so the helper stays free on
/// un-instrumented runs.
///
/// # Examples
///
/// ```
/// use np_telemetry::{Collector, install, shard_span};
/// # if cfg!(feature = "off") { return; }
///
/// let c = Collector::new();
/// {
///     let _guard = install(&c);
///     let _s = shard_span("grid.pcg.shard", 3);
/// }
/// assert_eq!(c.summary().spans[0].0, "grid.pcg.shard#3");
/// ```
pub fn shard_span(name: &str, shard: usize) -> Span {
    if cfg!(feature = "off") || current().is_none() {
        return Span { active: None };
    }
    span(format!("{name}#{shard}"))
}

/// Adds `n` to the named monotonic counter on the current collector
/// (no-op when none is installed).
///
/// Hot loops should accumulate locally and call this once per solve —
/// the counter is behind a mutex, not a per-iteration atomic.
///
/// # Examples
///
/// ```
/// use np_telemetry::{Collector, install, counter};
/// # if cfg!(feature = "off") { return; }
///
/// let c = Collector::new();
/// let _guard = install(&c);
/// counter("grid.cg.iterations", 12);
/// counter("grid.cg.iterations", 30);
/// assert_eq!(c.summary().counters, vec![("grid.cg.iterations".to_string(), 42)]);
/// ```
pub fn counter(name: &str, n: u64) {
    if cfg!(feature = "off") {
        return;
    }
    if let Some(collector) = current() {
        collector.record_counter(name, n);
    }
}

/// Records one observation of the named value (min/max/mean statistics)
/// on the current collector (no-op when none is installed).
///
/// # Examples
///
/// ```
/// use np_telemetry::{Collector, install, value};
/// # if cfg!(feature = "off") { return; }
///
/// let c = Collector::new();
/// let _guard = install(&c);
/// value("grid.cg.final_residual", 1e-13);
/// value("grid.cg.final_residual", 3e-13);
/// let stats = &c.summary().values[0].1;
/// assert_eq!(stats.count, 2);
/// assert!((stats.mean() - 2e-13).abs() < 1e-20);
/// ```
pub fn value(name: &str, v: f64) {
    if cfg!(feature = "off") {
        return;
    }
    if let Some(collector) = current() {
        collector.record_value(name, v);
    }
}

// The recording-behavior tests are meaningless under the compile-away
// feature (nothing records, by design); the `off` build is validated by
// `cargo check --features off` plus `off_feature_is_inert` below.
#[cfg(all(test, feature = "off"))]
mod off_tests {
    use super::*;

    #[test]
    fn off_feature_is_inert() {
        let c = Collector::new();
        let _g = install(&c);
        assert!(current().is_none(), "`off` hides even installed collectors");
        let s = span("ignored");
        drop(s);
        counter("ignored", 1);
        value("ignored", 1.0);
        let summary = c.summary();
        assert!(summary.counters.is_empty());
        assert!(summary.values.is_empty());
        assert!(summary.spans.is_empty());
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn no_collector_means_inert_everything() {
        assert!(current().is_none());
        let s = span("nobody.listening");
        assert!(s.active.is_none());
        drop(s);
        counter("nobody.counts", 1);
        value("nobody.values", 1.0);
    }

    #[test]
    fn install_nests_and_restores() {
        let a = Collector::new();
        let b = Collector::new();
        let ga = install(&a);
        {
            let _gb = install(&b);
            counter("hit", 1);
        }
        counter("hit", 10);
        drop(ga);
        assert_eq!(b.summary().counters, vec![("hit".to_string(), 1)]);
        assert_eq!(a.summary().counters, vec![("hit".to_string(), 10)]);
    }

    #[test]
    fn span_depth_tracks_nesting() {
        let c = Collector::new();
        let _g = install(&c);
        {
            let _outer = span("outer");
            {
                let _mid = span("mid");
                let _inner = span("inner");
            }
            let _sibling = span("sibling");
        }
        let mut spans = c.records();
        spans.sort_by(|x, y| x.name.cmp(&y.name));
        let depth_of = |n: &str| spans.iter().find(|s| s.name == n).map(|s| s.depth).unwrap();
        assert_eq!(depth_of("outer"), 0);
        assert_eq!(depth_of("mid"), 1);
        assert_eq!(depth_of("inner"), 2);
        assert_eq!(depth_of("sibling"), 1);
    }

    #[test]
    fn spans_record_to_their_opening_collector() {
        let a = Collector::new();
        let b = Collector::new();
        let _ga = install(&a);
        let s = {
            let _gb = install(&b);
            span("opened-under-b")
        };
        // `b` is no longer installed when the span closes; it must still
        // receive the record.
        drop(s);
        assert_eq!(b.summary().spans.len(), 1);
        assert!(a.summary().spans.is_empty());
    }

    #[test]
    fn disabled_path_is_fast() {
        // ~1M inert span+counter+value calls: guards against the no-op
        // path growing a lock or allocation. Generous absolute bound so
        // loaded CI machines don't flake; the real cost is ~ns each.
        assert!(current().is_none());
        let start = Instant::now();
        for i in 0..1_000_000u64 {
            let _s = span("noop");
            counter("noop", i);
            value("noop", i as f64);
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "no-op telemetry path took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn shard_spans_attribute_by_index() {
        let c = Collector::new();
        {
            let _g = install(&c);
            let _a = shard_span("solver.shard", 0);
            let _b = shard_span("solver.shard", 7);
        }
        let names: Vec<String> = c.summary().spans.iter().map(|(n, _)| n.clone()).collect();
        assert!(names.contains(&"solver.shard#0".to_string()), "{names:?}");
        assert!(names.contains(&"solver.shard#7".to_string()), "{names:?}");
        let inert = shard_span("solver.shard", 1);
        assert!(inert.active.is_none(), "inert without a collector");
    }

    #[test]
    fn thread_ids_are_dense_and_stable_per_thread() {
        let t1 = thread_id();
        assert_eq!(thread_id(), t1, "stable within a thread");
        let t2 = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(t1, t2, "distinct across threads");
    }
}
