//! The thread-safe collector and its summary types.
//!
//! A [`Collector`] is an `Arc` around a mutex-guarded sink of closed
//! [`SpanRecord`]s, monotonic counters, and [`ValueStats`] observation
//! streams. Clones share the sink, so a runner can hand clones to
//! worker threads and export once at the end. All timestamps are
//! microseconds since the collector's creation, which makes exports
//! reproducible in everything but the timing numbers themselves.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// A thread-safe telemetry sink; clone freely, all clones share state.
///
/// # Examples
///
/// ```
/// use np_telemetry::Collector;
/// # if cfg!(feature = "off") { return; }
///
/// let c = Collector::new();
/// let worker = c.clone();
/// std::thread::spawn(move || {
///     let _guard = np_telemetry::install(&worker);
///     np_telemetry::counter("jobs", 1);
/// })
/// .join()
/// .unwrap();
/// assert_eq!(c.summary().counters.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Collector {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    values: BTreeMap<String, ValueStats>,
}

/// One closed span: a named wall-clock interval on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `grid.cg.solve` or an artifact name).
    pub name: String,
    /// Start, microseconds since the collector was created.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Dense id of the thread the span ran on.
    pub tid: u64,
    /// Nesting depth at open time (0 = top-level on its thread).
    pub depth: u32,
}

/// Min/max/mean statistics over a stream of observations.
///
/// # Examples
///
/// ```
/// use np_telemetry::ValueStats;
///
/// let mut s = ValueStats::default();
/// s.observe(2.0);
/// s.observe(4.0);
/// assert_eq!(s.count, 2);
/// assert_eq!(s.min, 2.0);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.mean(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueStats {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation (`0.0` before the first).
    pub min: f64,
    /// Largest observation (`0.0` before the first).
    pub max: f64,
    /// Sum of observations.
    pub sum: f64,
}

impl Default for ValueStats {
    fn default() -> Self {
        ValueStats {
            count: 0,
            min: 0.0,
            max: 0.0,
            sum: 0.0,
        }
    }
}

impl ValueStats {
    /// Folds one observation in.
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean of the observations (`0.0` before the first).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Aggregate statistics for all spans sharing a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of spans with this name.
    pub count: u64,
    /// Total wall-clock across them, microseconds.
    pub total_us: u64,
}

/// A point-in-time aggregation of a collector: sorted counter, value,
/// and per-span-name statistics. This is the `telemetry` section of the
/// engine's run-report JSON.
///
/// # Examples
///
/// ```
/// use np_telemetry::{Collector, install, counter, span};
/// # if cfg!(feature = "off") { return; }
///
/// let c = Collector::new();
/// {
///     let _g = install(&c);
///     let _s = span("solve");
///     counter("iterations", 7);
/// }
/// let summary = c.summary();
/// assert_eq!(summary.counters, vec![("iterations".to_string(), 7)]);
/// assert_eq!(summary.spans[0].0, "solve");
/// assert_eq!(summary.spans[0].1.count, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    /// `(name, total)` for every counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, stats)` for every observed value, name-sorted.
    pub values: Vec<(String, ValueStats)>,
    /// `(name, stats)` aggregated over spans, name-sorted.
    pub spans: Vec<(String, SpanStats)>,
}

impl Collector {
    /// A fresh, empty, enabled collector; its creation instant is the
    /// zero point of all span timestamps.
    pub fn new() -> Self {
        Collector {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn record_span(
        &self,
        name: Cow<'static, str>,
        start: Instant,
        end: Instant,
        tid: u64,
        depth: u32,
    ) {
        if cfg!(feature = "off") {
            return;
        }
        let start_us = start
            .saturating_duration_since(self.inner.epoch)
            .as_micros() as u64;
        let dur_us = end.saturating_duration_since(start).as_micros() as u64;
        self.lock().spans.push(SpanRecord {
            name: name.into_owned(),
            start_us,
            dur_us,
            tid,
            depth,
        });
    }

    pub(crate) fn record_counter(&self, name: &str, n: u64) {
        if cfg!(feature = "off") {
            return;
        }
        let mut state = self.lock();
        match state.counters.get_mut(name) {
            Some(slot) => *slot = slot.saturating_add(n),
            None => {
                state.counters.insert(name.to_string(), n);
            }
        }
    }

    pub(crate) fn record_value(&self, name: &str, v: f64) {
        if cfg!(feature = "off") {
            return;
        }
        let mut state = self.lock();
        match state.values.get_mut(name) {
            Some(slot) => slot.observe(v),
            None => {
                let mut stats = ValueStats::default();
                stats.observe(v);
                state.values.insert(name.to_string(), stats);
            }
        }
    }

    /// Every closed span so far, in a deterministic order: by thread,
    /// then start time, then longest-first (so a parent precedes the
    /// children that share its start microsecond).
    ///
    /// # Examples
    ///
    /// ```
    /// use np_telemetry::{Collector, install, span};
    /// # if cfg!(feature = "off") { return; }
    ///
    /// let c = Collector::new();
    /// {
    ///     let _g = install(&c);
    ///     let _outer = span("outer");
    ///     let _inner = span("inner");
    /// }
    /// let records = c.records();
    /// assert_eq!(records[0].name, "outer");
    /// assert_eq!(records[1].name, "inner");
    /// assert_eq!(records[1].depth, records[0].depth + 1);
    /// ```
    pub fn records(&self) -> Vec<SpanRecord> {
        let mut spans = self.lock().spans.clone();
        spans.sort_by(|a, b| {
            (a.tid, a.start_us, std::cmp::Reverse(a.dur_us), a.depth).cmp(&(
                b.tid,
                b.start_us,
                std::cmp::Reverse(b.dur_us),
                b.depth,
            ))
        });
        spans
    }

    /// Aggregates the collector into a [`Summary`].
    pub fn summary(&self) -> Summary {
        let state = self.lock();
        let mut spans: BTreeMap<String, SpanStats> = BTreeMap::new();
        for s in &state.spans {
            let entry = spans.entry(s.name.clone()).or_insert(SpanStats {
                count: 0,
                total_us: 0,
            });
            entry.count += 1;
            entry.total_us = entry.total_us.saturating_add(s.dur_us);
        }
        Summary {
            counters: state
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            values: state.values.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            spans: spans.into_iter().collect(),
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn value_stats_track_min_max_mean() {
        let mut s = ValueStats::default();
        assert_eq!(s.mean(), 0.0);
        for v in [5.0, -1.0, 3.0] {
            s.observe(v);
        }
        assert_eq!(s.count, 3);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn counters_saturate_instead_of_overflowing() {
        let c = Collector::new();
        c.record_counter("big", u64::MAX - 1);
        c.record_counter("big", 5);
        assert_eq!(c.summary().counters, vec![("big".to_string(), u64::MAX)]);
    }

    #[test]
    fn summary_aggregates_spans_by_name() {
        let c = Collector::new();
        let t0 = Instant::now();
        for _ in 0..3 {
            c.record_span("solve".into(), t0, t0 + Duration::from_micros(10), 0, 0);
        }
        c.record_span("other".into(), t0, t0 + Duration::from_micros(1), 0, 1);
        let summary = c.summary();
        assert_eq!(summary.spans.len(), 2);
        let solve = summary.spans.iter().find(|(n, _)| n == "solve").unwrap();
        assert_eq!(solve.1.count, 3);
        assert_eq!(solve.1.total_us, 30);
    }

    #[test]
    fn records_order_parents_before_children() {
        let c = Collector::new();
        let t0 = Instant::now();
        // Child closed (recorded) before the parent, same start µs.
        c.record_span("child".into(), t0, t0 + Duration::from_micros(5), 7, 1);
        c.record_span("parent".into(), t0, t0 + Duration::from_micros(50), 7, 0);
        let r = c.records();
        assert_eq!(r[0].name, "parent");
        assert_eq!(r[1].name, "child");
    }

    #[test]
    fn clones_share_the_sink() {
        let a = Collector::new();
        let b = a.clone();
        b.record_counter("shared", 2);
        assert_eq!(a.summary().counters, vec![("shared".to_string(), 2)]);
    }
}
