//! Exporters: Chrome `trace_event` JSON and a flat-text dump.
//!
//! Both exporters render [`Collector::records`] — the deterministic
//! span order — so two runs of the same workload produce structurally
//! identical output, differing only in the timing numbers.

use crate::collector::{Collector, Summary};
use std::fmt::Write as _;

/// Escapes a string as a JSON string literal, quotes included.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (finite values only; NaN/inf are
/// clamped to 0 because JSON has no representation for them).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Trim to a stable, compact form; `{:e}` keeps tiny residuals
        // readable (1.3e-13 instead of 0.00000...).
        if v == 0.0 || (1e-3..1e15).contains(&v.abs()) {
            format!("{v:.3}")
        } else {
            format!("{v:e}")
        }
    } else {
        "0".to_string()
    }
}

impl Collector {
    /// Exports every span as a Chrome `trace_event` JSON document —
    /// "X" (complete) events with microsecond timestamps — loadable in
    /// `chrome://tracing` or <https://ui.perfetto.dev>. Counters and
    /// value statistics ride along under `otherData`.
    ///
    /// # Examples
    ///
    /// ```
    /// use np_telemetry::{Collector, install, span};
    /// # if cfg!(feature = "off") { return; }
    ///
    /// let c = Collector::new();
    /// {
    ///     let _g = install(&c);
    ///     let _s = span("solve");
    /// }
    /// let trace = c.chrome_trace();
    /// assert!(trace.starts_with('{'));
    /// assert!(trace.contains("\"ph\": \"X\""));
    /// assert!(trace.contains("\"name\": \"solve\""));
    /// ```
    pub fn chrome_trace(&self) -> String {
        let records = self.records();
        let summary = self.summary();
        let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
        for (i, r) in records.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"cat\": \"span\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"depth\": {}}}}}",
                json_string(&r.name),
                r.start_us,
                r.dur_us,
                r.tid,
                r.depth
            );
            if i + 1 < records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"otherData\": {\n    \"counters\": {");
        for (i, (name, total)) in summary.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n      {}: {}", json_string(name), total);
        }
        if !summary.counters.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("},\n    \"values\": {");
        for (i, (name, stats)) in summary.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {}: {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}}}",
                json_string(name),
                stats.count,
                json_f64(stats.min),
                json_f64(stats.max),
                json_f64(stats.mean())
            );
        }
        if !summary.values.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("}\n  }\n}\n");
        out
    }

    /// Exports the collector as indented flat text: one line per span
    /// record (with nesting shown by indentation), then counters and
    /// value statistics. Meant for eyeballs and logs, not machines.
    ///
    /// # Examples
    ///
    /// ```
    /// use np_telemetry::{Collector, install, span, counter};
    /// # if cfg!(feature = "off") { return; }
    ///
    /// let c = Collector::new();
    /// {
    ///     let _g = install(&c);
    ///     let _outer = span("outer");
    ///     let _inner = span("inner");
    ///     counter("iterations", 3);
    /// }
    /// let text = c.flat_text();
    /// assert!(text.contains("outer"));
    /// assert!(text.contains("  inner"));
    /// assert!(text.contains("counter iterations 3"));
    /// ```
    pub fn flat_text(&self) -> String {
        let records = self.records();
        let summary = self.summary();
        let mut out = String::from("spans:\n");
        let mut last_tid = None;
        for r in &records {
            if last_tid != Some(r.tid) {
                let _ = writeln!(out, " thread {}:", r.tid);
                last_tid = Some(r.tid);
            }
            let _ = writeln!(
                out,
                "  {}{} {} us (at +{} us)",
                "  ".repeat(r.depth as usize),
                r.name,
                r.dur_us,
                r.start_us
            );
        }
        out.push_str("counters:\n");
        for (name, total) in &summary.counters {
            let _ = writeln!(out, "  counter {name} {total}");
        }
        out.push_str("values:\n");
        for (name, stats) in &summary.values {
            let _ = writeln!(
                out,
                "  value {name} count={} min={} max={} mean={}",
                stats.count,
                json_f64(stats.min),
                json_f64(stats.max),
                json_f64(stats.mean())
            );
        }
        out
    }
}

impl Summary {
    /// Renders the summary as a JSON object (no trailing newline), for
    /// embedding as the `telemetry` section of a larger report. Every
    /// line is prefixed with `indent` spaces except the first.
    ///
    /// # Examples
    ///
    /// ```
    /// use np_telemetry::{Collector, install, counter};
    /// # if cfg!(feature = "off") { return; }
    ///
    /// let c = Collector::new();
    /// {
    ///     let _g = install(&c);
    ///     counter("engine.jobs", 17);
    /// }
    /// let json = c.summary().to_json(2);
    /// assert!(json.starts_with('{'));
    /// assert!(json.contains("\"engine.jobs\": 17"));
    /// ```
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut out = String::from("{\n");
        let _ = write!(out, "{pad}  \"counters\": {{");
        for (i, (name, total)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n{pad}    {}: {}", json_string(name), total);
        }
        if !self.counters.is_empty() {
            let _ = write!(out, "\n{pad}  ");
        }
        out.push_str("},\n");
        let _ = write!(out, "{pad}  \"values\": {{");
        for (i, (name, stats)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{pad}    {}: {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}}}",
                json_string(name),
                stats.count,
                json_f64(stats.min),
                json_f64(stats.max),
                json_f64(stats.mean())
            );
        }
        if !self.values.is_empty() {
            let _ = write!(out, "\n{pad}  ");
        }
        out.push_str("},\n");
        let _ = write!(out, "{pad}  \"spans\": {{");
        for (i, (name, stats)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{pad}    {}: {{\"count\": {}, \"total_ms\": {:.3}}}",
                json_string(name),
                stats.count,
                stats.total_us as f64 / 1e3
            );
        }
        if !self.spans.is_empty() {
            let _ = write!(out, "\n{pad}  ");
        }
        let _ = write!(out, "}}\n{pad}}}");
        out
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;
    use crate::{counter, install, span, value};

    fn sample() -> Collector {
        let c = Collector::new();
        {
            let _g = install(&c);
            let _outer = span("outer");
            {
                let _inner = span("inner \"quoted\"");
                counter("iters", 42);
                value("residual", 1.25e-13);
            }
        }
        c
    }

    #[test]
    fn chrome_trace_is_balanced_json_with_events() {
        let trace = sample().chrome_trace();
        assert_eq!(
            trace.matches('{').count(),
            trace.matches('}').count(),
            "balanced braces:\n{trace}"
        );
        assert_eq!(trace.matches('[').count(), trace.matches(']').count());
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"name\": \"outer\""));
        assert!(trace.contains("\\\"quoted\\\""), "escaping: {trace}");
        assert!(trace.contains("\"iters\": 42"));
        assert!(trace.contains("1.25e-13"));
    }

    #[test]
    fn exports_are_deterministic_modulo_timestamps() {
        let strip = |s: &str| -> String {
            // Blank out every digit: what remains is the structure.
            s.chars()
                .map(|c| if c.is_ascii_digit() { '#' } else { c })
                .collect()
        };
        let a = strip(&sample().chrome_trace());
        let b = strip(&sample().chrome_trace());
        assert_eq!(a, b);
        let a = strip(&sample().flat_text());
        let b = strip(&sample().flat_text());
        assert_eq!(a, b);
    }

    #[test]
    fn flat_text_indents_nested_spans() {
        let text = sample().flat_text();
        let outer = text.lines().find(|l| l.contains("outer")).unwrap();
        let inner = text.lines().find(|l| l.contains("inner")).unwrap();
        let lead = |l: &str| l.len() - l.trim_start().len();
        assert_eq!(lead(inner), lead(outer) + 2, "{text}");
    }

    #[test]
    fn summary_json_handles_empty_collector() {
        let json = Collector::new().summary().to_json(0);
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"values\": {}"));
        assert!(json.contains("\"spans\": {}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_f64_forms() {
        assert_eq!(json_f64(0.0), "0.000");
        assert_eq!(json_f64(12.5), "12.500");
        assert_eq!(json_f64(1.5e-9), "1.5e-9");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
    }
}
