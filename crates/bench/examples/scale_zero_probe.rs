fn main() {
    let mut cache = np_grid::mesh::MeshCache::new();
    let warm = cache.worst_drop_scaled(np_roadmap::TechNode::N35, np_units::Microns(80.0), np_units::Microns(4.0), 33, 1.0);
    println!("scale=1.0 -> {warm:?}");
    let zero = cache.worst_drop_scaled(np_roadmap::TechNode::N35, np_units::Microns(80.0), np_units::Microns(4.0), 33, 0.0);
    println!("scale=0.0 warm-started -> {zero:?}");
    let tiny = cache.worst_drop_scaled(np_roadmap::TechNode::N35, np_units::Microns(80.0), np_units::Microns(4.0), 33, 1e-9);
    println!("scale=1e-9 warm-started -> {tiny:?}");
}
