//! Figures 1–5 of the paper.

use crate::average_wire_cap;
use nanopower::report::{fmt_sig, TextTable};
use nanopower::Error;
use np_circuit::power::fo4_power;
use np_circuit::CircuitError;
use np_device::dualvth::{ioff_penalty_for_gain, ion_gain};
use np_device::{GateKind, Mosfet};
use np_grid::plan::{fig5_series, GridPlan};
use np_opt::policy::{lowest_vdd_at_ratio, policy_curve, PolicyPoint, VthPolicy};
use np_opt::OptError;
use np_roadmap::TechNode;
use np_units::math::{linspace, logspace};
use np_units::{Celsius, Volts};

/// One curve of Fig. 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Curve {
    /// Node and supply of the curve ("50nm, Vdd=0.6V" …).
    pub label: String,
    /// Switching-activity sample points.
    pub activity: Vec<f64>,
    /// `Pstatic / Pdynamic` at each activity.
    pub ratio: Vec<f64>,
}

/// F1 — static-to-dynamic power ratio versus switching activity for an
/// FO4 inverter with average wiring load at 85 °C.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Report {
    /// The three curves of the figure.
    pub curves: Vec<Fig1Curve>,
}

/// Regenerates Fig. 1 (70 nm @ 0.9 V, 50 nm @ 0.7 V, 50 nm @ 0.6 V).
///
/// # Errors
///
/// Propagates device and power-model errors.
pub fn fig1() -> Result<Fig1Report, Error> {
    let activity = logspace(0.003, 0.5, 24);
    let cases = [
        (TechNode::N70, Volts(0.9)),
        (TechNode::N50, Volts(0.7)),
        (TechNode::N50, Volts(0.6)),
    ];
    let mut curves = Vec::new();
    for (node, vdd) in cases {
        let dev = Mosfet::for_node_with(node, vdd, GateKind::PolySilicon)?
            .with_temperature(Celsius(85.0));
        let wire = average_wire_cap(node);
        let f = node.params().local_clock;
        let ratio = activity
            .iter()
            .map(|&a| Ok(fo4_power(&dev, vdd, f, a, wire)?.static_fraction()))
            .collect::<Result<Vec<f64>, CircuitError>>()?;
        curves.push(Fig1Curve {
            label: format!("{node}, Vdd={:.1}V", vdd.0),
            activity: activity.clone(),
            ratio,
        });
    }
    Ok(Fig1Report { curves })
}

impl Fig1Report {
    /// The ratio of one curve at a given activity (nearest sample).
    ///
    /// # Panics
    ///
    /// Panics if the curve index is out of range.
    pub fn ratio_at(&self, curve: usize, activity: f64) -> f64 {
        let c = &self.curves[curve];
        let i = c
            .activity
            .iter()
            .enumerate()
            .min_by(|a, b| {
                (a.1 - activity)
                    .abs()
                    .partial_cmp(&(b.1 - activity).abs())
                    .expect("finite")
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        c.ratio[i]
    }

    /// CSV series: `activity,<curve1>,<curve2>,<curve3>`.
    pub fn csv(&self) -> String {
        let mut out = format!(
            "activity,{},{},{}\n",
            self.curves[0].label, self.curves[1].label, self.curves[2].label
        );
        for i in 0..self.curves[0].activity.len() {
            out.push_str(&format!(
                "{},{},{},{}\n",
                self.curves[0].activity[i],
                self.curves[0].ratio[i],
                self.curves[1].ratio[i],
                self.curves[2].ratio[i]
            ));
        }
        out
    }

    /// Plain-text rendering at a few representative activities.
    pub fn render(&self) -> String {
        let probes = [0.01, 0.03, 0.1, 0.3];
        let mut t = TextTable::new(&[
            "activity",
            &self.curves[0].label,
            &self.curves[1].label,
            &self.curves[2].label,
        ]);
        for &a in &probes {
            t.row(&[
                &format!("{a}"),
                &fmt_sig(self.ratio_at(0, a)),
                &fmt_sig(self.ratio_at(1, a)),
                &fmt_sig(self.ratio_at(2, a)),
            ]);
        }
        format!(
            "Figure 1. Pstatic/Pdynamic for an FO4 inverter + average wire, 85 C.\n{}",
            t.render()
        )
    }
}

/// F2 — dual-Vth scaling: `Ion` gain per 100 mV and `Ioff` cost of +20 %.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Report {
    /// Per-node `(node, ion_gain_fraction, ioff_penalty_x)`.
    pub rows: Vec<(TechNode, f64, f64)>,
}

/// Regenerates Fig. 2.
///
/// # Errors
///
/// Propagates device errors.
pub fn fig2() -> Result<Fig2Report, Error> {
    let mut rows = Vec::new();
    for node in TechNode::ALL {
        rows.push((
            node,
            ion_gain(node, Volts(0.1))?,
            ioff_penalty_for_gain(node, 0.20)?,
        ));
    }
    Ok(Fig2Report { rows })
}

impl Fig2Report {
    /// CSV series: `node_nm,ion_gain_pct,ioff_penalty_x`.
    pub fn csv(&self) -> String {
        let mut out = String::from("node_nm,ion_gain_pct,ioff_penalty_x\n");
        for (node, gain, penalty) in &self.rows {
            out.push_str(&format!(
                "{},{},{}\n",
                node.drawn().0,
                gain * 100.0,
                penalty
            ));
        }
        out
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "node",
            "Ion gain, dVth=100mV (%)",
            "Ioff penalty for +20% Ion (X)",
        ]);
        for (node, gain, penalty) in &self.rows {
            t.row(&[
                &format!("{node}"),
                &format!("{:.1}", gain * 100.0),
                &format!("{:.1}", penalty),
            ]);
        }
        format!(
            "Figure 2. Dual-Vth scaling (15X Ioff per 100 mV is node-independent).\n{}",
            t.render()
        )
    }
}

/// F3 — normalized delay versus `Vdd` under the three Vth policies
/// (35 nm, nominal 0.6 V).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Report {
    /// Per-policy curves over the shared sweep.
    pub curves: Vec<(VthPolicy, Vec<PolicyPoint>)>,
}

/// The shared Fig. 3/4 supply sweep, 0.2 → 0.6 V.
pub fn fig3_sweep() -> Vec<Volts> {
    linspace(0.2, 0.6, 17).into_iter().map(Volts).collect()
}

/// Regenerates Fig. 3.
///
/// # Errors
///
/// Propagates policy-model errors.
pub fn fig3() -> Result<Fig3Report, Error> {
    let dev = Mosfet::for_node(TechNode::N35)?;
    let sweep = fig3_sweep();
    let mut curves = Vec::new();
    for policy in VthPolicy::ALL {
        curves.push((policy, policy_curve(&dev, policy, &sweep)?));
    }
    Ok(Fig3Report { curves })
}

impl Fig3Report {
    /// The point of one policy curve nearest a supply.
    pub fn point_at(&self, policy: VthPolicy, vdd: Volts) -> Option<PolicyPoint> {
        self.curves
            .iter()
            .find(|(p, _)| *p == policy)?
            .1
            .iter()
            .min_by(|a, b| {
                (a.vdd - vdd)
                    .abs()
                    .partial_cmp(&(b.vdd - vdd).abs())
                    .expect("finite")
            })
            .copied()
    }

    /// CSV series: `vdd,constant_vth,const_pstatic,conservative` delays.
    pub fn csv(&self) -> String {
        let mut out = String::from("vdd,constant_vth,const_pstatic,conservative\n");
        for &vdd in &fig3_sweep() {
            let d = |p: VthPolicy| self.point_at(p, vdd).map(|pt| pt.delay).unwrap_or(f64::NAN);
            out.push_str(&format!(
                "{},{},{},{}\n",
                vdd.0,
                d(VthPolicy::ConstantVth),
                d(VthPolicy::ConstantStaticPower),
                d(VthPolicy::Conservative)
            ));
        }
        out
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["Vdd (V)", "constant Vth", "const Pstatic", "conservative"]);
        for &vdd in &fig3_sweep() {
            let d = |p: VthPolicy| {
                self.point_at(p, vdd)
                    .map(|pt| format!("{:.2}", pt.delay))
                    .unwrap_or_default()
            };
            t.row(&[
                &format!("{:.2}", vdd.0),
                &d(VthPolicy::ConstantVth),
                &d(VthPolicy::ConstantStaticPower),
                &d(VthPolicy::Conservative),
            ]);
        }
        format!("Figure 3. Normalized delay vs Vdd, 35 nm.\n{}", t.render())
    }
}

/// F4 — `Pdynamic/Pstatic` versus `Vdd` at activity 0.1 (35 nm).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Report {
    /// The nominal-point `Pdyn/Pstat` anchor from the FO4 power model.
    pub ratio0: f64,
    /// Per-policy `(vdd, ratio)` series.
    pub curves: Vec<(VthPolicy, Vec<(Volts, f64)>)>,
    /// The ITRS-constraint crossing on the constant-Pstatic curve: lowest
    /// supply with `Pdyn/Pstat >= 10`, and its dynamic saving.
    pub crossing: Option<(Volts, f64)>,
}

/// Regenerates Fig. 4. The absolute ratio is anchored by evaluating the
/// Fig. 1 FO4 power model at the nominal 35 nm point (activity 0.1,
/// 85 °C), then each policy scales it.
///
/// # Errors
///
/// Propagates model errors.
pub fn fig4() -> Result<Fig4Report, Error> {
    let node = TechNode::N35;
    let dev = Mosfet::for_node(node)?;
    let hot = dev.with_temperature(Celsius(85.0));
    let p = node.params();
    let anchor = fo4_power(&hot, p.vdd, p.local_clock, 0.1, average_wire_cap(node))
        .map_err(OptError::Circuit)?;
    let ratio0 = 1.0 / anchor.static_fraction();
    let sweep = fig3_sweep();
    let mut curves = Vec::new();
    let mut crossing = None;
    for policy in VthPolicy::ALL {
        let curve = policy_curve(&dev, policy, &sweep)?;
        if policy == VthPolicy::ConstantStaticPower {
            crossing =
                lowest_vdd_at_ratio(&curve, ratio0, 10.0).map(|pt| (pt.vdd, 1.0 - pt.dynamic));
        }
        curves.push((
            policy,
            curve
                .iter()
                .map(|pt| (pt.vdd, pt.power_ratio(ratio0)))
                .collect(),
        ));
    }
    Ok(Fig4Report {
        ratio0,
        curves,
        crossing,
    })
}

impl Fig4Report {
    /// CSV series: `vdd,constant_vth,const_pstatic,conservative` ratios.
    pub fn csv(&self) -> String {
        let mut out = String::from("vdd,constant_vth,const_pstatic,conservative\n");
        for i in 0..self.curves[0].1.len() {
            out.push_str(&format!(
                "{},{},{},{}\n",
                self.curves[0].1[i].0 .0,
                self.curves[0].1[i].1,
                self.curves[1].1[i].1,
                self.curves[2].1[i].1
            ));
        }
        out
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["Vdd (V)", "constant Vth", "const Pstatic", "conservative"]);
        let n = self.curves[0].1.len();
        for i in 0..n {
            t.row(&[
                &format!("{:.2}", self.curves[0].1[i].0 .0),
                &fmt_sig(self.curves[0].1[i].1),
                &fmt_sig(self.curves[1].1[i].1),
                &fmt_sig(self.curves[2].1[i].1),
            ]);
        }
        let crossing = match self.crossing {
            Some((v, s)) => format!(
                "Pdyn/Pstat >= 10 attainable down to {:.2} V (dynamic saving {:.0}%)",
                v.0,
                s * 100.0
            ),
            None => "ITRS 10:1 constraint unreachable below nominal".to_string(),
        };
        format!(
            "Figure 4. Pdynamic/Pstatic vs Vdd at activity 0.1, 35 nm (anchor {:.1}).\n{}\n{}\n",
            self.ratio0,
            t.render(),
            crossing
        )
    }
}

/// F5 — grid plans for every node under both bump assumptions.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Report {
    /// `(min-pitch plan, ITRS-pads plan)` per node.
    pub rows: Vec<(GridPlan, GridPlan)>,
}

/// Regenerates Fig. 5.
///
/// # Errors
///
/// Propagates grid-model errors.
pub fn fig5() -> Result<Fig5Report, Error> {
    Ok(Fig5Report {
        rows: fig5_series()?,
    })
}

impl Fig5Report {
    /// CSV series per node: both bump assumptions.
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "node_nm,min_pitch_um,width_over_min,rail_pct,itrs_pitch_um,itrs_width_over_min,itrs_routable\n",
        );
        for (a, b) in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                a.node.drawn().0,
                a.bump_pitch.0,
                a.width_over_min(),
                a.rail_fraction() * 100.0,
                b.bump_pitch.0,
                b.width_over_min(),
                b.is_routable()
            ));
        }
        out
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "node",
            "min pitch (um)",
            "width/min",
            "rails (%)",
            "ITRS pitch (um)",
            "width/min (ITRS)",
            "routable?",
        ]);
        for (a, b) in &self.rows {
            t.row(&[
                &format!("{}", a.node),
                &format!("{:.0}", a.bump_pitch.0),
                &format!("{:.1}", a.width_over_min()),
                &format!("{:.1}", a.rail_fraction() * 100.0),
                &format!("{:.0}", b.bump_pitch.0),
                &format!("{:.0}", b.width_over_min()),
                if b.is_routable() { "yes" } else { "NO" },
            ]);
        }
        format!(
            "Figure 5. IR-drop rail sizing: minimum bump pitch vs ITRS pad counts.\n{}",
            t.render()
        )
    }
}

/// One row of the production-scale Fig. 5 mesh study: a node's min-pitch
/// plan with analytic and 1025×1025-mesh worst-case drops.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5MeshRow {
    /// The min-pitch plan providing the geometry.
    pub plan: GridPlan,
    /// The rail width the drop budget demands (routable at min pitch).
    pub rail_width: np_units::Microns,
    /// Closed-form worst-case drop for that geometry.
    pub analytic: Volts,
    /// Full numerical solve on the 1025×1025 bump-cell mesh.
    pub mesh: Volts,
}

/// F5 at production scale — the Fig. 5 min-pitch geometries re-solved on
/// a 1025×1025 mesh (the grid the analytic model was built to
/// approximate), via the multigrid-preconditioned CG solver
/// ([`np_grid::SolveStrategy::MultigridCg`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5MeshReport {
    /// One row per node, roadmap order.
    pub rows: Vec<Fig5MeshRow>,
}

/// The mesh resolution of [`fig5_mesh`] (2^10 + 1 nodes per side).
pub const FIG5_MESH_RESOLUTION: usize = 1025;

/// Regenerates the production-scale Fig. 5 mesh comparison.
///
/// Deterministic to the bit: the multigrid solve is a fixed sequence of
/// sequential floating-point operations regardless of the shard count,
/// so the artifact golden-checks with an exact tolerance.
///
/// # Errors
///
/// Propagates grid-model and solver errors.
pub fn fig5_mesh() -> Result<Fig5MeshReport, Error> {
    fig5_mesh_at(FIG5_MESH_RESOLUTION)
}

/// [`fig5_mesh`] at an arbitrary mesh resolution (tests use a coarse
/// one; the artifact is always [`FIG5_MESH_RESOLUTION`]).
fn fig5_mesh_at(resolution: usize) -> Result<Fig5MeshReport, Error> {
    use np_grid::mesh::MeshCache;
    use np_grid::{SolvePlan, SolveStrategy};
    // Explicit MGCG rather than `Auto` so the artifact's solver does not
    // silently change if the auto-upgrade threshold is ever retuned.
    let mut cache = MeshCache::with_plan(SolvePlan::with_strategy(SolveStrategy::MultigridCg));
    let mut rows = Vec::new();
    for node in TechNode::ALL {
        let plan = GridPlan::min_pitch(node)?;
        let Some(rail_width) = plan.rail_width else {
            // Min-pitch plans are routable at every node; an unroutable
            // one would mean the roadmap tables changed under us.
            return Err(np_grid::GridError::BadParameter("min-pitch plan lost routability").into());
        };
        let analytic = np_grid::analytic::worst_case_drop(node, plan.bump_pitch, rail_width)?;
        let mesh =
            cache.worst_drop_with_resolution(node, plan.bump_pitch, rail_width, resolution)?;
        rows.push(Fig5MeshRow {
            plan,
            rail_width,
            analytic,
            mesh,
        });
    }
    Ok(Fig5MeshReport { rows })
}

impl Fig5MeshReport {
    /// CSV series per node: geometry, analytic and mesh drops, ratio.
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "node_nm,pitch_um,rail_width_um,analytic_drop_mv,mesh_drop_mv,mesh_over_analytic\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.plan.node.drawn().0,
                r.plan.bump_pitch.0,
                r.rail_width.0,
                r.analytic.0 * 1e3,
                r.mesh.0 * 1e3,
                r.mesh.0 / r.analytic.0
            ));
        }
        out
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "node",
            "pitch (um)",
            "rail (um)",
            "analytic (mV)",
            "mesh 1025 (mV)",
            "mesh/analytic",
        ]);
        for r in &self.rows {
            t.row(&[
                &format!("{}", r.plan.node),
                &format!("{:.0}", r.plan.bump_pitch.0),
                &fmt_sig(r.rail_width.0),
                &fmt_sig(r.analytic.0 * 1e3),
                &fmt_sig(r.mesh.0 * 1e3),
                &format!("{:.3}", r.mesh.0 / r.analytic.0),
            ]);
        }
        format!(
            "Figure 5 (mesh). Min-pitch IR drop: analytic model vs 1025x1025 multigrid solve.\n{}",
            t.render()
        )
    }
}

/// F3–4 at production scale — the Section 3.3 co-optimization recipe
/// (CVS, dual-Vth, sizing) executed by the deterministic parallel
/// optimizer on a streamed [`np_circuit::NetlistSpec::large`] netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig34MgateReport {
    /// Netlist size in cells.
    pub cells: usize,
    /// Clock period analyzed against, picoseconds.
    pub clock_ps: f64,
    /// Critical-path delay before optimization, picoseconds.
    pub critical_before_ps: f64,
    /// Critical-path delay after optimization, picoseconds.
    pub critical_after_ps: f64,
    /// The optimizer's own accounting (rounds, moves, power, area).
    pub result: np_opt::ParallelResult,
    /// Assignment digest of the optimized netlist — the bitwise
    /// determinism witness (identical at any worker count).
    pub digest: u64,
}

/// Cell count of the [`fig34_mgate`] artifact. Sized so a debug render
/// stays near the `fig5-mesh` cost; the release-mode `opt.*` kernels in
/// [`crate::perf`] exercise the same loop at 10⁶ cells.
pub const FIG34_MGATE_CELLS: usize = 50_000;

/// Netlist seed of the [`fig34_mgate`] artifact.
pub const FIG34_MGATE_SEED: u64 = 341;

/// Optimization rounds of the artifact (the loop converges slowly after
/// the third round; the artifact caps it for render cost).
pub const FIG34_MGATE_ROUNDS: usize = 3;

/// Clock relaxation over the unoptimized critical path — the paper's
/// slack-rich late-stage setting ("a large number of paths with
/// significant slack").
const FIG34_MGATE_CLOCK_FACTOR: f64 = 1.25;

/// Regenerates the production-scale co-optimization artifact.
///
/// Deterministic to the bit: scoring is a pure function of each frozen
/// round and accepts replay in a fixed order, so the rendering — digest
/// included — golden-checks with an exact tolerance at any worker count.
///
/// # Errors
///
/// Propagates optimizer and circuit-model errors.
pub fn fig34_mgate() -> Result<Fig34MgateReport, Error> {
    fig34_mgate_at(FIG34_MGATE_CELLS)
}

/// [`fig34_mgate`] at an arbitrary cell count (tests use a coarse one;
/// the artifact is always [`FIG34_MGATE_CELLS`]).
fn fig34_mgate_at(cells: usize) -> Result<Fig34MgateReport, Error> {
    use np_circuit::generate::{generate_netlist, NetlistSpec};
    use np_circuit::sta::TimingContext;
    use np_opt::{optimize_parallel, ParallelOptions};

    let mut netlist = generate_netlist(&NetlistSpec::large(FIG34_MGATE_SEED, cells));
    let ctx = TimingContext::for_node(TechNode::N100).map_err(OptError::from)?;
    let baseline = ctx.analyze(&netlist).map_err(OptError::from)?;
    let critical_before = baseline.critical_delay();
    let ctx = ctx.with_clock(critical_before * FIG34_MGATE_CLOCK_FACTOR);
    let options = ParallelOptions {
        max_rounds: FIG34_MGATE_ROUNDS,
        ..ParallelOptions::default()
    };
    let result = optimize_parallel(&mut netlist, &ctx, &options)?;
    let after = ctx.analyze(&netlist).map_err(OptError::from)?;
    Ok(Fig34MgateReport {
        cells,
        clock_ps: ctx.clock_period.as_pico(),
        critical_before_ps: critical_before.as_pico(),
        critical_after_ps: after.critical_delay().as_pico(),
        digest: np_opt::assignment_digest(&netlist),
        result,
    })
}

impl Fig34MgateReport {
    /// CSV series per optimization round, with move and cone counts.
    pub fn csv(&self) -> String {
        let mut out = String::from("round,proposed,accepted,reverted,cone_visited\n");
        for (i, r) in self.result.rounds.iter().enumerate() {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                i + 1,
                r.proposed,
                r.accepted,
                r.reverted,
                r.cone_visited
            ));
        }
        out
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let r = &self.result;
        let mut t = TextTable::new(&["round", "proposed", "accepted", "reverted", "cone visited"]);
        for (i, s) in r.rounds.iter().enumerate() {
            t.row(&[
                &format!("{}", i + 1),
                &format!("{}", s.proposed),
                &format!("{}", s.accepted),
                &format!("{}", s.reverted),
                &format!("{}", s.cone_visited),
            ]);
        }
        format!(
            "Figures 3-4 (mgate). Section 3.3 co-optimization (CVS + dual-Vth + sizing) \
             on a {}-cell streamed netlist at 100 nm, clock = {:.2}x critical.\n{}\
             moves: {} to Vdd,l, {} to high Vth, {} downsized\n\
             power: {} mW -> {} mW (-{:.1}%); leakage {} mW -> {} mW (-{:.1}%)\n\
             area: {} -> {} unit widths ({:+.1}%)\n\
             critical path: {} ps -> {} ps (clock {} ps)\n\
             assignment digest: fnv1a:{:016x}\n",
            self.cells,
            FIG34_MGATE_CLOCK_FACTOR,
            t.render(),
            r.low_supply,
            r.high_vth,
            r.downsized,
            fmt_sig(r.before.total().0 * 1e3),
            fmt_sig(r.after.total().0 * 1e3),
            r.total_saving() * 100.0,
            fmt_sig(r.before.leakage.0 * 1e3),
            fmt_sig(r.after.leakage.0 * 1e3),
            r.leakage_saving() * 100.0,
            fmt_sig(r.area_before),
            fmt_sig(r.area_after),
            -r.area_saving() * 100.0,
            fmt_sig(self.critical_before_ps),
            fmt_sig(self.critical_after_ps),
            fmt_sig(self.clock_ps),
            self.digest,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_orders_and_slopes() {
        let f = fig1().unwrap();
        assert_eq!(f.curves.len(), 3);
        // Ordering at activity 0.1: 70nm@0.9 < 50nm@0.7 < 50nm@0.6.
        let r = [f.ratio_at(0, 0.1), f.ratio_at(1, 0.1), f.ratio_at(2, 0.1)];
        assert!(r[0] < r[1] && r[1] < r[2], "{r:?}");
        // "static power can approach and exceed 10% of dynamic" in the
        // 0.01-0.1 activity band.
        assert!(f.ratio_at(2, 0.01) > 0.1);
        // Slope -1 in log-log (nearest-sample lookup tolerated).
        let tenx = f.ratio_at(0, 0.01) / f.ratio_at(0, 0.1);
        assert!((7.0..=14.0).contains(&tenx), "got {tenx}");
    }

    #[test]
    fn fig2_trends() {
        let f = fig2().unwrap();
        assert!(f.rows[0].1 < f.rows[5].1, "Ion gain grows with scaling");
        assert!(f.rows[0].2 > f.rows[5].2, "Ioff penalty shrinks");
        assert!(f.rows[5].2 < 20.0, "35 nm penalty near the paper's 7X");
    }

    #[test]
    fn fig3_constant_vth_matches_3_7x_anchor() {
        let f = fig3().unwrap();
        let pt = f.point_at(VthPolicy::ConstantVth, Volts(0.2)).unwrap();
        assert!((2.5..=5.5).contains(&pt.delay), "got {:.2}", pt.delay);
        let scaled = f
            .point_at(VthPolicy::ConstantStaticPower, Volts(0.2))
            .unwrap();
        assert!(scaled.delay < pt.delay / 1.5);
        assert!(
            (scaled.dynamic - 1.0 / 9.0).abs() < 1e-9,
            "89% dynamic saving"
        );
    }

    #[test]
    fn fig4_crossing_is_near_the_papers_0_44v() {
        let f = fig4().unwrap();
        let (v, saving) = f.crossing.expect("crossing exists");
        assert!(
            (0.30..=0.55).contains(&v.0),
            "crossing {v} vs paper's 0.44 V"
        );
        assert!((0.2..=0.8).contains(&saving), "saving {saving}");
    }

    #[test]
    fn fig5_blowup_is_reproduced() {
        let f = fig5().unwrap();
        let (min35, itrs35) = &f.rows[TechNode::N35.index()];
        assert!(min35.width_over_min() < 40.0);
        assert!(itrs35.width_over_min() > 500.0);
        assert!(!itrs35.is_routable());
    }

    #[test]
    fn fig5_mesh_tracks_the_analytic_model() {
        // Coarse multigrid-compatible resolution: same code path as the
        // 1025-point artifact at unit-test cost.
        let f = fig5_mesh_at(65).unwrap();
        assert_eq!(f.rows.len(), TechNode::ALL.len());
        for r in &f.rows {
            assert!(r.analytic.0 > 0.0 && r.mesh.0 > 0.0, "{:?}", r.plan.node);
            let ratio = r.mesh.0 / r.analytic.0;
            // The mesh drop includes the log-divergent spreading term
            // the closed form folds into a constant; same order, not
            // equal.
            assert!(
                (0.2..5.0).contains(&ratio),
                "{:?}: ratio {ratio}",
                r.plan.node
            );
        }
        let csv = f.csv();
        assert!(csv.starts_with("node_nm,pitch_um,rail_width_um,"));
        assert_eq!(csv.lines().count(), TechNode::ALL.len() + 1);
        assert!(f.render().contains("Figure 5 (mesh)"));
        assert!(f.render().contains("mesh/analytic"));
    }

    #[test]
    fn fig34_mgate_optimizes_and_renders_deterministically() {
        // Coarse cell count: same code path as the 100k-cell artifact at
        // unit-test cost.
        let f = fig34_mgate_at(4000).unwrap();
        assert_eq!(f.cells, 4000);
        assert!(f.result.total_accepted() > 0);
        assert!(f.result.total_saving() > 0.0);
        assert!(f.critical_after_ps <= f.clock_ps * 1.0001, "{f:?}");
        let again = fig34_mgate_at(4000).unwrap();
        assert_eq!(f.digest, again.digest, "artifact must be reproducible");
        assert_eq!(f.render(), again.render());
        let csv = f.csv();
        assert!(csv.starts_with("round,proposed,accepted,reverted,cone_visited"));
        assert_eq!(csv.lines().count(), f.result.rounds.len() + 1);
        assert!(f.render().contains("assignment digest: fnv1a:"));
    }

    #[test]
    fn renders_do_not_panic() {
        assert!(fig1().unwrap().render().contains("Figure 1"));
        assert!(fig2().unwrap().render().contains("Figure 2"));
        assert!(fig3().unwrap().render().contains("Figure 3"));
        assert!(fig4().unwrap().render().contains("Figure 4"));
        assert!(fig5().unwrap().render().contains("Figure 5"));
    }
}
