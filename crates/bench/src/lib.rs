//! # np-bench
//!
//! The reproduction harness: one function per table, figure, and numbered
//! experiment of *Future Performance Challenges in Nanometer Design*
//! (Sylvester & Kaul, DAC 2001). Each function computes the series the
//! paper plots/tabulates and returns a structured result with a
//! [`render`](tables::Table2Report::render)-style plain-text view; the
//! `repro` binary prints them, the Criterion benches time them, and the
//! integration tests assert the paper-shape invariants on them.
//!
//! Experiment index (DESIGN.md §5): [`tables`] covers T1–T2, [`figures`]
//! covers F1–F5, [`experiments`] covers E1–E10. The [`registry`] module
//! is the single source of truth tying them together: one [`registry::
//! Artifact`] per table/figure/experiment, with explicit CSV
//! availability, consumed by `repro`, the parallel engine
//! (`nanopower::engine`), and the integration tests alike.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

#[cfg(unix)]
pub mod chaos;
pub mod experiments;
pub mod figures;
pub mod golden;
pub mod perf;
pub mod registry;
pub mod serve;
pub mod tables;

/// Wire-load model shared by the Fig. 1 and Fig. 4 scenarios: the
/// "average interconnect load" on a local net, scaled with the node
/// (12 fF at 70 nm).
pub fn average_wire_cap(node: np_roadmap::TechNode) -> np_units::Farads {
    np_units::Farads::from_femto(12.0 * node.drawn().0 / 70.0)
}
