//! The `repro --bench` perf harness: times the repo's numeric hot paths
//! and emits the machine-readable `BENCH_grid.json` baseline.
//!
//! Built on the vendored criterion shim ([`criterion::Criterion`]), the
//! harness times three kernel families:
//!
//! * **grid** — sequential and parallel SOR, plain CG, sequential and
//!   parallel Jacobi-PCG, and the warm [`np_grid::mesh::MeshCache`] path,
//!   across three bump-cell mesh sizes (one in `--bench-quick` mode);
//! * **thermal** — the electro-thermal fixed point of
//!   [`np_thermal::package::Package::electro_thermal_temperature`];
//! * **sta** — [`np_circuit::sta::TimingContext::analyze`] over a
//!   generated netlist.
//!
//! The report schema (`nanopower-bench/v1`) is documented in
//! `BENCHMARKS.md`; its *shape* is deterministic (same keys, same kernel
//! entries in the same order for a given configuration) while the timing
//! values vary run to run.

use criterion::{black_box, Criterion};
use np_circuit::generate::{generate_netlist, NetlistSpec};
use np_circuit::sta::TimingContext;
use np_device::Mosfet;
use np_grid::cg::{solve_cg, solve_pcg, solve_pcg_parallel};
use np_grid::mesh::MeshCache;
use np_grid::plan::thread_budget;
use np_grid::solver::MeshProblem;
use np_roadmap::TechNode;
use np_thermal::package::Package;
use np_units::{Celsius, Microns, ThermalResistance, Volts, Watts};

/// Mesh sizes (nodes per side) of the full grid sweep.
pub const MESH_SIZES: [usize; 3] = [33, 65, 129];

/// Configuration for one harness run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchOptions {
    /// Restrict the grid sweep to the smallest mesh and shrink sample
    /// counts — the CI smoke configuration.
    pub quick: bool,
}

/// One timed kernel in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// Kernel identifier, e.g. `grid.pcg.par`.
    pub name: String,
    /// Mesh nodes per side for grid kernels; `0` for mesh-independent
    /// kernels (thermal, STA).
    pub mesh: usize,
    /// Mean wall-clock per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Timed iterations behind the mean.
    pub iterations: u64,
}

/// A completed harness run, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Threads the parallel kernels were sharded across.
    pub shards: usize,
    /// The machine's available parallelism when the run started.
    pub ncpu: usize,
    /// The host operating system (`std::env::consts::OS`) — a single-cpu
    /// or foreign-OS baseline is not comparable to the committed one.
    pub os: &'static str,
    /// The host CPU architecture (`std::env::consts::ARCH`).
    pub arch: &'static str,
    /// Whether this was a `--bench-quick` run.
    pub quick: bool,
    /// Mesh sizes the grid kernels swept.
    pub mesh_sizes: Vec<usize>,
    /// Every timed kernel, in sweep order.
    pub kernels: Vec<KernelResult>,
}

/// The uniformly loaded, centre-pinned bump-cell mesh every grid kernel
/// solves (the numeric shape of the paper's Fig. 5 study).
fn bench_mesh(n: usize) -> MeshProblem {
    let mut m = MeshProblem::new(n, n, 1.0);
    m.injection = vec![1e-4; n * n];
    let centre = m.index(n / 2, n / 2);
    m.pinned[centre] = true;
    m
}

/// Runs the full harness and collects the report.
///
/// Progress lines print to stdout as each kernel completes (the shim's
/// behavior); the structured result carries the same numbers.
pub fn run(opts: BenchOptions) -> BenchReport {
    let ncpu = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let shards = thread_budget();
    let mesh_sizes: Vec<usize> = if opts.quick {
        vec![MESH_SIZES[0]]
    } else {
        MESH_SIZES.to_vec()
    };
    let samples = if opts.quick { 3 } else { 7 };
    let mut criterion = Criterion::default();
    let mut kernels = Vec::new();

    for &n in &mesh_sizes {
        let m = bench_mesh(n);
        let mut group = criterion.benchmark_group(format!("grid/{n}"));
        group.sample_size(samples);
        group.bench_function("grid.sor.seq", |b| b.iter(|| black_box(&m).solve()));
        group.bench_function("grid.sor.par", |b| {
            b.iter(|| black_box(&m).solve_parallel(shards))
        });
        group.bench_function("grid.cg.seq", |b| b.iter(|| solve_cg(black_box(&m))));
        group.bench_function("grid.pcg.seq", |b| b.iter(|| solve_pcg(black_box(&m))));
        group.bench_function("grid.pcg.par", |b| {
            b.iter(|| solve_pcg_parallel(black_box(&m), shards))
        });
        // Warm-path cache: prime once, then time the hit + warm-start.
        let mut cache = MeshCache::new();
        let _prime =
            cache.worst_drop_with_resolution(TechNode::N35, Microns(80.0), Microns(4.0), n);
        group.bench_function("grid.cache.warm", |b| {
            b.iter(|| {
                cache.worst_drop_with_resolution(
                    TechNode::N35,
                    Microns(80.0),
                    black_box(Microns(4.0)),
                    n,
                )
            })
        });
        group.finish();
        for r in criterion.records().iter().skip(kernels.len()) {
            kernels.push(KernelResult {
                name: r.name.clone(),
                mesh: n,
                mean_ns: r.mean_ns,
                iterations: r.iterations,
            });
        }
    }

    {
        let mut group = criterion.benchmark_group("models");
        group.sample_size(samples);
        let pkg = Package::new(ThermalResistance(0.8), Celsius(45.0));
        let dev = Mosfet::for_node(TechNode::N70);
        if let Ok(dev) = dev {
            group.bench_function("thermal.fixed_point", |b| {
                b.iter(|| {
                    pkg.electro_thermal_temperature(
                        black_box(Watts(60.0)),
                        &dev,
                        Microns(2.0e6),
                        Volts(0.9),
                    )
                })
            });
        }
        let netlist = generate_netlist(&NetlistSpec::small(1));
        if let Ok(ctx) = TimingContext::for_node(TechNode::N100) {
            group.bench_function("sta.analyze", |b| {
                b.iter(|| ctx.analyze(black_box(&netlist)))
            });
        }
        group.finish();
    }
    for r in criterion.records().iter().skip(kernels.len()) {
        kernels.push(KernelResult {
            name: r.name.clone(),
            mesh: 0,
            mean_ns: r.mean_ns,
            iterations: r.iterations,
        });
    }

    BenchReport {
        shards,
        ncpu,
        os: std::env::consts::OS,
        arch: std::env::consts::ARCH,
        quick: opts.quick,
        mesh_sizes,
        kernels,
    }
}

impl BenchReport {
    /// Mean time of `name` at mesh size `mesh`, if that kernel ran.
    pub fn mean_ns(&self, name: &str, mesh: usize) -> Option<f64> {
        self.kernels
            .iter()
            .find(|k| k.name == name && k.mesh == mesh)
            .map(|k| k.mean_ns)
    }

    /// Sequential-over-parallel speedup of `seq`/`par` on the largest
    /// mesh swept (values > 1 mean the parallel solver is faster).
    pub fn speedup(&self, seq: &str, par: &str) -> Option<f64> {
        let mesh = *self.mesh_sizes.iter().max()?;
        Some(self.mean_ns(seq, mesh)? / self.mean_ns(par, mesh)?)
    }

    /// Serializes the report as `nanopower-bench/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"nanopower-bench/v1\",\n");
        out.push_str(&format!("  \"ncpu\": {},\n", self.ncpu));
        out.push_str(&format!("  \"os\": \"{}\",\n", self.os));
        out.push_str(&format!("  \"arch\": \"{}\",\n", self.arch));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        let sizes: Vec<String> = self.mesh_sizes.iter().map(ToString::to_string).collect();
        out.push_str(&format!("  \"mesh_sizes\": [{}],\n", sizes.join(", ")));
        if let (Some(sor), Some(pcg)) = (
            self.speedup("grid.sor.seq", "grid.sor.par"),
            self.speedup("grid.pcg.seq", "grid.pcg.par"),
        ) {
            let mesh = self.mesh_sizes.iter().max().copied().unwrap_or(0);
            out.push_str(&format!(
                "  \"speedup\": {{\"mesh\": {mesh}, \"sor\": {sor:.3}, \"pcg\": {pcg:.3}}},\n"
            ));
        }
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mesh\": {}, \"mean_ns\": {:.1}, \"iterations\": {}}}{}\n",
                k.name,
                k.mesh,
                k.mean_ns,
                k.iterations,
                if i + 1 < self.kernels.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_times_every_kernel_and_serializes() {
        let report = run(BenchOptions { quick: true });
        assert_eq!(report.mesh_sizes, vec![33]);
        for name in [
            "grid.sor.seq",
            "grid.sor.par",
            "grid.cg.seq",
            "grid.pcg.seq",
            "grid.pcg.par",
            "grid.cache.warm",
        ] {
            assert!(
                report.mean_ns(name, 33).is_some_and(|ns| ns > 0.0),
                "{name} missing or unmeasured"
            );
        }
        for name in ["thermal.fixed_point", "sta.analyze"] {
            assert!(
                report.mean_ns(name, 0).is_some_and(|ns| ns > 0.0),
                "{name} missing or unmeasured"
            );
        }
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"nanopower-bench/v1\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"grid.pcg.par\""));
        assert!(json.contains("\"quick\": true"));
        // Host metadata pins where the numbers came from.
        assert_eq!(report.os, std::env::consts::OS);
        assert_eq!(report.arch, std::env::consts::ARCH);
        assert!(report.ncpu >= 1);
        assert!(json.contains(&format!("\"os\": \"{}\"", std::env::consts::OS)));
        assert!(json.contains(&format!("\"arch\": \"{}\"", std::env::consts::ARCH)));
    }
}
