//! The `repro --bench` perf harness: times the repo's numeric hot paths
//! and emits the machine-readable `BENCH_grid.json` baseline.
//!
//! Built on the vendored criterion shim ([`criterion::Criterion`]), the
//! harness times three kernel families:
//!
//! * **grid** — sequential and parallel SOR, plain CG, sequential and
//!   parallel Jacobi-PCG, multigrid and MGCG, and the warm
//!   [`np_grid::mesh::MeshCache`] path, across bump-cell mesh sizes from
//!   33 to 1025 nodes per side (each kernel capped at the largest size
//!   where it finishes in reasonable time — SOR is O(n⁴) and stops at
//!   129); plus a first-class shard-count sweep of the parallel kernels
//!   at a fixed mesh;
//! * **thermal** — the electro-thermal fixed point of
//!   [`np_thermal::package::Package::electro_thermal_temperature`];
//! * **sta** — [`np_circuit::sta::TimingContext::analyze`] over a
//!   generated netlist.
//!
//! A separate algorithmic-comparison block solves the largest mesh once
//! per solver under a telemetry collector and records PCG iterations
//! against multigrid fine-grid-sweep equivalents (`mg_vs_pcg` in the
//! JSON) — the ISSUE 8 acceptance currency, independent of wall-clock
//! noise.
//!
//! The report schema (`nanopower-bench/v1`) is documented in
//! `BENCHMARKS.md`; its *shape* is deterministic (same keys, same kernel
//! entries in the same order for a given configuration) while the timing
//! values vary run to run.

use criterion::{black_box, Criterion};
use np_circuit::cell::VthClass;
use np_circuit::generate::{generate_netlist, NetlistSpec};
use np_circuit::incremental::IncrementalSta;
use np_circuit::netlist::{GateId, Netlist};
use np_circuit::sta::TimingContext;
use np_device::Mosfet;
use np_grid::cg::{solve_cg, solve_pcg, solve_pcg_parallel};
use np_grid::mesh::MeshCache;
use np_grid::multigrid::{solve_mgcg_sharded, solve_multigrid_sharded};
use np_grid::plan::thread_budget;
use np_grid::solver::MeshProblem;
use np_roadmap::TechNode;
use np_thermal::package::Package;
use np_units::{Celsius, Microns, ThermalResistance, Volts, Watts};
use std::time::Instant;

/// Mesh sizes (nodes per side) of the full grid sweep. Individual
/// kernels cap out earlier (see the gates in [`run`]); the tail sizes
/// belong to the CG/multigrid families.
pub const MESH_SIZES: [usize; 6] = [33, 65, 129, 257, 513, 1025];

/// Shard counts the parallel kernels sweep at [`SHARD_SWEEP_MESH`] —
/// the first-class scaling axis (on a multi-core host the curve shows
/// real speedup; at ncpu=1 it quantifies the sharding overhead).
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The mesh the shard-count sweep runs on in full mode (quick mode
/// drops to the smallest mesh).
pub const SHARD_SWEEP_MESH: usize = 257;

/// Configuration for one harness run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchOptions {
    /// Restrict the grid sweep to the smallest mesh and shrink sample
    /// counts — the CI smoke configuration.
    pub quick: bool,
}

/// One timed kernel in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// Kernel identifier, e.g. `grid.pcg.par`.
    pub name: String,
    /// Mesh nodes per side for grid kernels; `0` for mesh-independent
    /// kernels (thermal, STA).
    pub mesh: usize,
    /// Shards the kernel ran with (1 for sequential kernels; the
    /// explicit count for shard-sweep entries).
    pub shards: usize,
    /// Mean wall-clock per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Timed iterations behind the mean.
    pub iterations: u64,
}

/// The algorithmic MG-vs-PCG comparison at the largest mesh: solver
/// work measured in iteration/sweep counters, not wall-clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MgComparison {
    /// Mesh nodes per side the comparison solved.
    pub mesh: usize,
    /// Jacobi-PCG iterations to its 1e-12 tolerance.
    pub pcg_iterations: u64,
    /// Standalone V-cycle fine-grid-sweep equivalents.
    pub mg_sweeps_equivalent: u64,
    /// MGCG fine-grid-sweep equivalents.
    pub mgcg_sweeps_equivalent: u64,
    /// `pcg_iterations / min(mg, mgcg)` — the acceptance ratio (each
    /// PCG iteration costs about one fine-grid sweep).
    pub fine_sweep_ratio: f64,
}

/// A completed harness run, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Threads the parallel kernels were sharded across.
    pub shards: usize,
    /// The machine's available parallelism when the run started.
    pub ncpu: usize,
    /// The host operating system (`std::env::consts::OS`) — a single-cpu
    /// or foreign-OS baseline is not comparable to the committed one.
    pub os: &'static str,
    /// The host CPU architecture (`std::env::consts::ARCH`).
    pub arch: &'static str,
    /// Whether this was a `--bench-quick` run.
    pub quick: bool,
    /// Mesh sizes the grid kernels swept.
    pub mesh_sizes: Vec<usize>,
    /// Shard counts the parallel kernels swept.
    pub shard_counts: Vec<usize>,
    /// The MG-vs-PCG work comparison, if the grid sweep ran.
    pub mg_vs_pcg: Option<MgComparison>,
    /// Every timed kernel, in sweep order.
    pub kernels: Vec<KernelResult>,
}

/// The uniformly loaded, centre-pinned bump-cell mesh every grid kernel
/// solves (the numeric shape of the paper's Fig. 5 study).
fn bench_mesh(n: usize) -> MeshProblem {
    let mut m = MeshProblem::new(n, n, 1.0);
    m.injection = vec![1e-4; n * n];
    let centre = m.index(n / 2, n / 2);
    m.pinned[centre] = true;
    m
}

/// Reads one summed counter out of a collector summary.
fn counter_of(summary: &np_telemetry::Summary, name: &str) -> u64 {
    summary
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

/// Times one closure once under its own telemetry collector, returning
/// (elapsed ns, requested counter).
fn timed_counted<F: FnOnce()>(counter: &str, f: F) -> (f64, u64) {
    let collector = np_telemetry::Collector::new();
    let start = Instant::now();
    {
        let _guard = np_telemetry::install(&collector);
        f();
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    (elapsed, counter_of(&collector.summary(), counter))
}

/// Runs the full harness and collects the report.
///
/// Progress lines print to stdout as each kernel completes (the shim's
/// behavior); the structured result carries the same numbers.
pub fn run(opts: BenchOptions) -> BenchReport {
    let ncpu = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let shards = thread_budget();
    let mesh_sizes: Vec<usize> = if opts.quick {
        vec![MESH_SIZES[0]]
    } else {
        MESH_SIZES.to_vec()
    };
    let shard_counts: Vec<usize> = if opts.quick {
        vec![1, 2]
    } else {
        SHARD_COUNTS.to_vec()
    };
    let mut criterion = Criterion::default();
    let mut kernels = Vec::new();
    // Criterion records consumed into `kernels` so far. Kept separate
    // from `kernels.len()` because the mg-vs-pcg comparison pushes
    // kernel rows that have no criterion record behind them — skipping
    // by `kernels.len()` would then silently drop later records.
    let mut consumed = 0usize;

    for &n in &mesh_sizes {
        let samples = match n {
            _ if opts.quick => 3,
            0..=129 => 7,
            257 => 5,
            _ => 3,
        };
        let m = bench_mesh(n);
        let mut group = criterion.benchmark_group(format!("grid/{n}"));
        group.sample_size(samples);
        // Per-kernel size gates: SOR relaxation is O(n⁴) (~3 s at 129
        // already), plain CG is O(n³) without preconditioning, and the
        // parallel-PCG barrier path is pure overhead on big meshes at
        // ncpu=1 — each stops at the largest size it can afford. The
        // CG/multigrid tail (513/1025) is timed once per solver in the
        // comparison block below instead of through criterion.
        if n <= 129 {
            group.bench_function("grid.sor.seq", |b| b.iter(|| black_box(&m).solve()));
            group.bench_function("grid.sor.par", |b| {
                b.iter(|| black_box(&m).solve_parallel(shards))
            });
        }
        if n <= 257 {
            group.bench_function("grid.cg.seq", |b| b.iter(|| solve_cg(black_box(&m))));
        }
        if n <= 513 {
            group.bench_function("grid.pcg.seq", |b| b.iter(|| solve_pcg(black_box(&m))));
        }
        if n <= 129 {
            group.bench_function("grid.pcg.par", |b| {
                b.iter(|| solve_pcg_parallel(black_box(&m), shards))
            });
        }
        if n <= 513 {
            group.bench_function("grid.mg.seq", |b| {
                b.iter(|| solve_multigrid_sharded(black_box(&m), 1))
            });
            group.bench_function("grid.mgcg.seq", |b| {
                b.iter(|| solve_mgcg_sharded(black_box(&m), 1))
            });
        }
        if n <= 129 {
            // Warm-path cache: prime once, then time the hit + warm-start.
            let mut cache = MeshCache::new();
            let _prime =
                cache.worst_drop_with_resolution(TechNode::N35, Microns(80.0), Microns(4.0), n);
            group.bench_function("grid.cache.warm", |b| {
                b.iter(|| {
                    cache.worst_drop_with_resolution(
                        TechNode::N35,
                        Microns(80.0),
                        black_box(Microns(4.0)),
                        n,
                    )
                })
            });
        }
        group.finish();
        for r in criterion.records().iter().skip(consumed) {
            consumed += 1;
            let kernel_shards = if r.name.ends_with(".par") { shards } else { 1 };
            kernels.push(KernelResult {
                name: r.name.clone(),
                mesh: n,
                shards: kernel_shards,
                mean_ns: r.mean_ns,
                iterations: r.iterations,
            });
        }
    }

    // The first-class shard axis: the same parallel kernels across an
    // explicit shard-count sweep at one fixed mesh, so scaling (or, at
    // ncpu=1, sharding overhead) is measured rather than inferred.
    {
        let n = if opts.quick {
            MESH_SIZES[0]
        } else {
            SHARD_SWEEP_MESH
        };
        let m = bench_mesh(n);
        let mut group = criterion.benchmark_group(format!("shards/{n}"));
        group.sample_size(3);
        for &s in &shard_counts {
            group.bench_function(format!("grid.pcg.par/s{s}"), |b| {
                b.iter(|| solve_pcg_parallel(black_box(&m), s))
            });
            group.bench_function(format!("grid.mg.par/s{s}"), |b| {
                b.iter(|| solve_multigrid_sharded(black_box(&m), s))
            });
        }
        group.finish();
        for (i, r) in criterion.records().iter().skip(consumed).enumerate() {
            // Two kernels per shard count, in push order.
            let s = shard_counts[i / 2];
            let name = r
                .name
                .split('/')
                .next()
                .unwrap_or(r.name.as_str())
                .to_string();
            kernels.push(KernelResult {
                name,
                mesh: n,
                shards: s,
                mean_ns: r.mean_ns,
                iterations: r.iterations,
            });
        }
        consumed = criterion.records().len();
    }

    // The algorithmic comparison at the largest mesh: one timed solve
    // per solver under its own collector (MG's coarse-level solves also
    // emit PCG counters, so they must not share one), recording work in
    // counters rather than repeated wall-clock samples.
    let mg_vs_pcg = {
        let n = *mesh_sizes.iter().max().unwrap_or(&MESH_SIZES[0]);
        let m = bench_mesh(n);
        let (pcg_ns, pcg_iters) = timed_counted("grid.pcg.iterations", || {
            let _ = solve_pcg(&m);
        });
        let (mg_ns, mg_sweeps) = timed_counted("grid.mg.sweeps_equivalent", || {
            let _ = solve_multigrid_sharded(&m, 1);
        });
        let (mgcg_ns, mgcg_sweeps) = timed_counted("grid.mgcg.sweeps_equivalent", || {
            let _ = solve_mgcg_sharded(&m, 1);
        });
        if !opts.quick && n > 513 {
            // The 1025 tail is too expensive for repeated criterion
            // samples; record the single timed solves as kernels so the
            // scaling table has wall-clock at every size.
            for (name, ns) in [
                ("grid.pcg.seq", pcg_ns),
                ("grid.mg.seq", mg_ns),
                ("grid.mgcg.seq", mgcg_ns),
            ] {
                kernels.push(KernelResult {
                    name: name.to_string(),
                    mesh: n,
                    shards: 1,
                    mean_ns: ns,
                    iterations: 1,
                });
            }
        }
        let best_mg = mg_sweeps.min(mgcg_sweeps).max(1);
        Some(MgComparison {
            mesh: n,
            pcg_iterations: pcg_iters,
            mg_sweeps_equivalent: mg_sweeps,
            mgcg_sweeps_equivalent: mgcg_sweeps,
            fine_sweep_ratio: pcg_iters as f64 / best_mg as f64,
        })
    };

    {
        let mut group = criterion.benchmark_group("models");
        group.sample_size(if opts.quick { 3 } else { 7 });
        let pkg = Package::new(ThermalResistance(0.8), Celsius(45.0));
        let dev = Mosfet::for_node(TechNode::N70);
        if let Ok(dev) = dev {
            group.bench_function("thermal.fixed_point", |b| {
                b.iter(|| {
                    pkg.electro_thermal_temperature(
                        black_box(Watts(60.0)),
                        &dev,
                        Microns(2.0e6),
                        Volts(0.9),
                    )
                })
            });
        }
        let netlist = generate_netlist(&NetlistSpec::small(1));
        if let Ok(ctx) = TimingContext::for_node(TechNode::N100) {
            group.bench_function("sta.analyze", |b| {
                b.iter(|| ctx.analyze(black_box(&netlist)))
            });
        }
        group.finish();
    }

    // The optimizer kernels: full vs incremental STA and one parallel
    // optimization round on a streamed netlist, so the CI smoke report
    // carries the `opt.*` family alongside the grid kernels. The
    // dedicated cell-count sweep lives in [`run_opt`].
    {
        let cells = if opts.quick { 2_000 } else { 20_000 };
        let mut group = criterion.benchmark_group("opt");
        group.sample_size(3);
        let mut netlist = generate_netlist(&NetlistSpec::large(7, cells));
        if let Ok(ctx) = TimingContext::for_node(TechNode::N100) {
            if let Ok(baseline) = ctx.analyze(&netlist) {
                let ctx = ctx.with_clock(baseline.critical_delay() * 1.25);
                group.bench_function("opt.sta.full", |b| {
                    b.iter(|| ctx.analyze(black_box(&netlist)))
                });
                let probe = GateId::from_index(cells / 2);
                let mut sta = IncrementalSta::new(&ctx, &netlist);
                group.bench_function("opt.sta.incremental", |b| {
                    b.iter(|| {
                        // Alternate the flip so every probe moves real
                        // arrivals through the fan-out cone.
                        let flipped = match netlist.gate(probe).vth {
                            VthClass::Low => VthClass::High,
                            VthClass::High => VthClass::Low,
                        };
                        netlist.gate_mut(probe).set_vth(flipped);
                        sta.reevaluate(black_box(&netlist), probe)
                    })
                });
                let round = np_opt::ParallelOptions {
                    max_rounds: 1,
                    ..np_opt::ParallelOptions::default()
                };
                group.bench_function("opt.parallel.round", |b| {
                    b.iter(|| {
                        // The round mutates assignments; each iteration
                        // optimizes a fresh copy (the clone is a few
                        // percent of the round cost).
                        let mut fresh = netlist.clone();
                        np_opt::optimize_parallel(&mut fresh, &ctx, black_box(&round))
                    })
                });
            }
        }
        group.finish();
    }
    for r in criterion.records().iter().skip(consumed) {
        // Mesh-independent kernels; the parallel optimizer round is the
        // one that fans out over the thread budget.
        let kernel_shards = if r.name == "opt.parallel.round" {
            shards
        } else {
            1
        };
        kernels.push(KernelResult {
            name: r.name.clone(),
            mesh: 0,
            shards: kernel_shards,
            mean_ns: r.mean_ns,
            iterations: r.iterations,
        });
    }

    BenchReport {
        shards,
        ncpu,
        os: std::env::consts::OS,
        arch: std::env::consts::ARCH,
        quick: opts.quick,
        mesh_sizes,
        shard_counts,
        mg_vs_pcg,
        kernels,
    }
}

impl BenchReport {
    /// Mean time of `name` at mesh size `mesh`, if that kernel ran.
    /// Where both a budget-sharded sweep row and shard-sweep rows exist,
    /// the sweep row wins (it is pushed first); otherwise the
    /// lowest-shard-count entry.
    pub fn mean_ns(&self, name: &str, mesh: usize) -> Option<f64> {
        self.kernels
            .iter()
            .find(|k| k.name == name && k.mesh == mesh)
            .map(|k| k.mean_ns)
    }

    /// Sequential-over-parallel speedup of `seq`/`par` on the largest
    /// mesh where both ran (values > 1 mean the parallel solver is
    /// faster).
    pub fn speedup(&self, seq: &str, par: &str) -> Option<f64> {
        let mesh = self
            .mesh_sizes
            .iter()
            .rev()
            .find(|&&m| self.mean_ns(seq, m).is_some() && self.mean_ns(par, m).is_some())?;
        Some(self.mean_ns(seq, *mesh)? / self.mean_ns(par, *mesh)?)
    }

    /// Serializes the report as `nanopower-bench/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"nanopower-bench/v1\",\n");
        out.push_str(&format!("  \"ncpu\": {},\n", self.ncpu));
        out.push_str(&format!("  \"os\": \"{}\",\n", self.os));
        out.push_str(&format!("  \"arch\": \"{}\",\n", self.arch));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        let sizes: Vec<String> = self.mesh_sizes.iter().map(ToString::to_string).collect();
        out.push_str(&format!("  \"mesh_sizes\": [{}],\n", sizes.join(", ")));
        let shard_axis: Vec<String> = self.shard_counts.iter().map(ToString::to_string).collect();
        out.push_str(&format!(
            "  \"shard_counts\": [{}],\n",
            shard_axis.join(", ")
        ));
        if let (Some(sor), Some(pcg)) = (
            self.speedup("grid.sor.seq", "grid.sor.par"),
            self.speedup("grid.pcg.seq", "grid.pcg.par"),
        ) {
            let mesh = self
                .mesh_sizes
                .iter()
                .rev()
                .find(|&&m| self.mean_ns("grid.pcg.par", m).is_some())
                .copied()
                .unwrap_or(0);
            out.push_str(&format!(
                "  \"speedup\": {{\"mesh\": {mesh}, \"sor\": {sor:.3}, \"pcg\": {pcg:.3}}},\n"
            ));
        }
        if let Some(c) = &self.mg_vs_pcg {
            out.push_str(&format!(
                "  \"mg_vs_pcg\": {{\"mesh\": {}, \"pcg_iterations\": {}, \"mg_sweeps_equivalent\": {}, \"mgcg_sweeps_equivalent\": {}, \"fine_sweep_ratio\": {:.2}}},\n",
                c.mesh,
                c.pcg_iterations,
                c.mg_sweeps_equivalent,
                c.mgcg_sweeps_equivalent,
                c.fine_sweep_ratio
            ));
        }
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mesh\": {}, \"shards\": {}, \"mean_ns\": {:.1}, \"iterations\": {}}}{}\n",
                k.name,
                k.mesh,
                k.shards,
                k.mean_ns,
                k.iterations,
                if i + 1 < self.kernels.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Cell counts of the full optimizer scaling sweep ([`run_opt`]).
pub const OPT_SWEEP_CELLS: [usize; 3] = [10_000, 100_000, 1_000_000];

/// Cell counts of the quick (CI smoke) optimizer sweep.
pub const OPT_SWEEP_CELLS_QUICK: [usize; 2] = [1_000, 5_000];

/// Incremental-STA probes per sweep size (each probe flips one gate's
/// Vth and re-propagates its fan-out cone).
const OPT_PROBES: usize = 200;

/// One cell-count row of the optimizer scaling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OptScalingRow {
    /// Netlist size in cells.
    pub cells: usize,
    /// Streamed generation wall-clock, nanoseconds.
    pub generate_ns: f64,
    /// One full STA pass, nanoseconds.
    pub full_sta_ns: f64,
    /// Building the incremental view ([`IncrementalSta::new`]),
    /// nanoseconds.
    pub inc_build_ns: f64,
    /// Mean single-gate incremental re-propagation, nanoseconds.
    pub probe_ns: f64,
    /// Mean fan-out-cone size the probes visited, gates.
    pub probe_cone: f64,
    /// `full_sta_ns / probe_ns` — how many times cheaper one incremental
    /// probe is than a full re-analysis.
    pub inc_speedup: f64,
    /// One parallel optimization round, nanoseconds.
    pub round_ns: f64,
    /// Moves the round accepted.
    pub round_accepted: usize,
    /// Moves the round proposed.
    pub round_proposed: usize,
    /// Assignment digest after the round — deterministic per
    /// (seed, cells), independent of host and worker count.
    pub digest: u64,
}

/// The optimizer scaling sweep, serialized to `BENCH_opt.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct OptBenchReport {
    /// The machine's available parallelism when the run started.
    pub ncpu: usize,
    /// Scoring workers the optimizer rounds used (the thread budget).
    pub workers: usize,
    /// The host operating system.
    pub os: &'static str,
    /// The host CPU architecture.
    pub arch: &'static str,
    /// Whether this was a quick (CI smoke) sweep.
    pub quick: bool,
    /// One row per cell count, ascending.
    pub rows: Vec<OptScalingRow>,
}

/// Times one closure once, returning (elapsed ns, result).
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_nanos() as f64, out)
}

/// Runs the optimizer scaling sweep: for each cell count, streamed
/// generation, full STA, incremental-view build, 200 (`OPT_PROBES`)
/// single-gate re-propagations, and one parallel optimization round.
///
/// # Errors
///
/// Propagates circuit-model and optimizer errors.
pub fn run_opt(opts: BenchOptions) -> Result<OptBenchReport, nanopower::Error> {
    let ncpu = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let workers = thread_budget();
    let cells_axis: Vec<usize> = if opts.quick {
        OPT_SWEEP_CELLS_QUICK.to_vec()
    } else {
        OPT_SWEEP_CELLS.to_vec()
    };
    let mut rows = Vec::new();
    for &cells in &cells_axis {
        println!("opt sweep: {cells} cells...");
        let spec = NetlistSpec::large(7, cells);
        let (generate_ns, mut netlist) = timed(|| generate_netlist(&spec));
        let ctx = TimingContext::for_node(TechNode::N100).map_err(np_opt::OptError::from)?;
        let (full_sta_ns, baseline) = timed(|| ctx.analyze(&netlist));
        let baseline = baseline.map_err(np_opt::OptError::from)?;
        let ctx = ctx.with_clock(baseline.critical_delay() * 1.25);
        let (inc_build_ns, mut sta) = timed(|| IncrementalSta::new(&ctx, &netlist));
        let (probe_ns, probe_cone) = probe_mean(&mut netlist, &mut sta, cells)?;
        let options = np_opt::ParallelOptions {
            max_rounds: 1,
            ..np_opt::ParallelOptions::default()
        };
        let (round_ns, round) = timed(|| np_opt::optimize_parallel(&mut netlist, &ctx, &options));
        let round = round?;
        rows.push(OptScalingRow {
            cells,
            generate_ns,
            full_sta_ns,
            inc_build_ns,
            probe_ns,
            probe_cone,
            inc_speedup: full_sta_ns / probe_ns.max(1.0),
            round_ns,
            round_accepted: round.rounds.first().map_or(0, |r| r.accepted),
            round_proposed: round.rounds.first().map_or(0, |r| r.proposed),
            digest: np_opt::assignment_digest(&netlist),
        });
    }
    Ok(OptBenchReport {
        ncpu,
        workers,
        os: std::env::consts::OS,
        arch: std::env::consts::ARCH,
        quick: opts.quick,
        rows,
    })
}

/// Mean (ns, cone gates) over [`OPT_PROBES`] single-gate Vth flips
/// spread evenly across the netlist.
fn probe_mean(
    netlist: &mut Netlist,
    sta: &mut IncrementalSta<'_>,
    cells: usize,
) -> Result<(f64, f64), nanopower::Error> {
    let stride = (cells / OPT_PROBES).max(1);
    let mut total_ns = 0.0;
    let mut total_cone = 0usize;
    let mut probes = 0usize;
    for i in (0..cells).step_by(stride).take(OPT_PROBES) {
        let id = GateId::from_index(i);
        let flipped = match netlist.gate(id).vth {
            VthClass::Low => VthClass::High,
            VthClass::High => VthClass::Low,
        };
        netlist.gate_mut(id).set_vth(flipped);
        let start = Instant::now();
        let cone = sta
            .reevaluate(netlist, id)
            .map_err(np_opt::OptError::from)?;
        total_ns += start.elapsed().as_nanos() as f64;
        total_cone += cone.visited;
        probes += 1;
        // Flip back so the sweep's optimizer round starts from the
        // generated assignment.
        let back = match netlist.gate(id).vth {
            VthClass::Low => VthClass::High,
            VthClass::High => VthClass::Low,
        };
        netlist.gate_mut(id).set_vth(back);
        sta.reevaluate(netlist, id)
            .map_err(np_opt::OptError::from)?;
    }
    let n = probes.max(1) as f64;
    Ok((total_ns / n, total_cone as f64 / n))
}

impl OptBenchReport {
    /// Serializes the sweep as `nanopower-opt-bench/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"nanopower-opt-bench/v1\",\n");
        out.push_str(&format!("  \"ncpu\": {},\n", self.ncpu));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"os\": \"{}\",\n", self.os));
        out.push_str(&format!("  \"arch\": \"{}\",\n", self.arch));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"cells\": {}, \"generate_ns\": {:.1}, \"full_sta_ns\": {:.1}, \
                 \"inc_build_ns\": {:.1}, \"probe_ns\": {:.1}, \"probe_cone\": {:.1}, \
                 \"inc_speedup\": {:.1}, \"round_ns\": {:.1}, \"round_accepted\": {}, \
                 \"round_proposed\": {}, \"digest\": \"fnv1a:{:016x}\"}}{}\n",
                r.cells,
                r.generate_ns,
                r.full_sta_ns,
                r.inc_build_ns,
                r.probe_ns,
                r.probe_cone,
                r.inc_speedup,
                r.round_ns,
                r.round_accepted,
                r.round_proposed,
                r.digest,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_times_every_kernel_and_serializes() {
        let report = run(BenchOptions { quick: true });
        assert_eq!(report.mesh_sizes, vec![33]);
        assert_eq!(report.shard_counts, vec![1, 2]);
        for name in [
            "grid.sor.seq",
            "grid.sor.par",
            "grid.cg.seq",
            "grid.pcg.seq",
            "grid.pcg.par",
            "grid.mg.seq",
            "grid.mgcg.seq",
            "grid.cache.warm",
        ] {
            assert!(
                report.mean_ns(name, 33).is_some_and(|ns| ns > 0.0),
                "{name} missing or unmeasured"
            );
        }
        for name in [
            "thermal.fixed_point",
            "sta.analyze",
            "opt.sta.full",
            "opt.sta.incremental",
            "opt.parallel.round",
        ] {
            assert!(
                report.mean_ns(name, 0).is_some_and(|ns| ns > 0.0),
                "{name} missing or unmeasured"
            );
        }
        // The optimizer round records its real scoring fan-out.
        assert!(report
            .kernels
            .iter()
            .any(|k| k.name == "opt.parallel.round" && k.shards == report.shards));
        // The shard sweep ran both parallel kernels at every count.
        for &s in &[1usize, 2] {
            for name in ["grid.pcg.par", "grid.mg.par"] {
                assert!(
                    report
                        .kernels
                        .iter()
                        .any(|k| k.name == name && k.shards == s && k.mean_ns > 0.0),
                    "{name} missing at shards={s}"
                );
            }
        }
        // The comparison block proves the acceptance ratio even in
        // quick mode (the margin grows with mesh size; 33 is its floor).
        let cmp = report.mg_vs_pcg.expect("comparison must run");
        assert_eq!(cmp.mesh, 33);
        assert!(cmp.pcg_iterations > 0);
        assert!(cmp.mg_sweeps_equivalent > 0);
        assert!(cmp.mgcg_sweeps_equivalent > 0);
        assert!(cmp.fine_sweep_ratio > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"nanopower-bench/v1\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"shard_counts\": [1, 2]"));
        assert!(json.contains("\"mg_vs_pcg\""));
        assert!(json.contains("\"grid.pcg.par\""));
        assert!(json.contains("\"grid.mg.seq\""));
        assert!(json.contains("\"quick\": true"));
        // Host metadata pins where the numbers came from.
        assert_eq!(report.os, std::env::consts::OS);
        assert_eq!(report.arch, std::env::consts::ARCH);
        assert!(report.ncpu >= 1);
        assert!(json.contains(&format!("\"os\": \"{}\"", std::env::consts::OS)));
        assert!(json.contains(&format!("\"arch\": \"{}\"", std::env::consts::ARCH)));
    }

    #[test]
    fn quick_opt_sweep_reports_incremental_speedup() {
        let report = run_opt(BenchOptions { quick: true }).unwrap();
        assert_eq!(report.rows.len(), OPT_SWEEP_CELLS_QUICK.len());
        for r in &report.rows {
            assert!(r.generate_ns > 0.0 && r.full_sta_ns > 0.0, "{r:?}");
            assert!(r.probe_cone >= 1.0, "{r:?}");
            assert!(
                r.inc_speedup > 1.0,
                "one probe must beat a full re-analysis: {r:?}"
            );
            assert!(r.round_accepted > 0, "{r:?}");
            // The touched cone is a sliver of the netlist.
            assert!(r.probe_cone < r.cells as f64 / 4.0, "{r:?}");
        }
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"nanopower-opt-bench/v1\""));
        assert!(json.contains("\"inc_speedup\""));
        assert!(json.contains("\"digest\": \"fnv1a:"));
        assert!(json.contains("\"quick\": true"));
        // Determinism: the post-round digest is a pure function of
        // (seed, cells) — rerunning one size must reproduce it.
        let again = run_opt(BenchOptions { quick: true }).unwrap();
        assert_eq!(report.rows[0].digest, again.rows[0].digest);
    }
}
