//! The `repro --bench` perf harness: times the repo's numeric hot paths
//! and emits the machine-readable `BENCH_grid.json` baseline.
//!
//! Built on the vendored criterion shim ([`criterion::Criterion`]), the
//! harness times three kernel families:
//!
//! * **grid** — sequential and parallel SOR, plain CG, sequential and
//!   parallel Jacobi-PCG, multigrid and MGCG, and the warm
//!   [`np_grid::mesh::MeshCache`] path, across bump-cell mesh sizes from
//!   33 to 1025 nodes per side (each kernel capped at the largest size
//!   where it finishes in reasonable time — SOR is O(n⁴) and stops at
//!   129); plus a first-class shard-count sweep of the parallel kernels
//!   at a fixed mesh;
//! * **thermal** — the electro-thermal fixed point of
//!   [`np_thermal::package::Package::electro_thermal_temperature`];
//! * **sta** — [`np_circuit::sta::TimingContext::analyze`] over a
//!   generated netlist.
//!
//! A separate algorithmic-comparison block solves the largest mesh once
//! per solver under a telemetry collector and records PCG iterations
//! against multigrid fine-grid-sweep equivalents (`mg_vs_pcg` in the
//! JSON) — the ISSUE 8 acceptance currency, independent of wall-clock
//! noise.
//!
//! The report schema (`nanopower-bench/v1`) is documented in
//! `BENCHMARKS.md`; its *shape* is deterministic (same keys, same kernel
//! entries in the same order for a given configuration) while the timing
//! values vary run to run.

use criterion::{black_box, Criterion};
use np_circuit::generate::{generate_netlist, NetlistSpec};
use np_circuit::sta::TimingContext;
use np_device::Mosfet;
use np_grid::cg::{solve_cg, solve_pcg, solve_pcg_parallel};
use np_grid::mesh::MeshCache;
use np_grid::multigrid::{solve_mgcg_sharded, solve_multigrid_sharded};
use np_grid::plan::thread_budget;
use np_grid::solver::MeshProblem;
use np_roadmap::TechNode;
use np_thermal::package::Package;
use np_units::{Celsius, Microns, ThermalResistance, Volts, Watts};
use std::time::Instant;

/// Mesh sizes (nodes per side) of the full grid sweep. Individual
/// kernels cap out earlier (see the gates in [`run`]); the tail sizes
/// belong to the CG/multigrid families.
pub const MESH_SIZES: [usize; 6] = [33, 65, 129, 257, 513, 1025];

/// Shard counts the parallel kernels sweep at [`SHARD_SWEEP_MESH`] —
/// the first-class scaling axis (on a multi-core host the curve shows
/// real speedup; at ncpu=1 it quantifies the sharding overhead).
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The mesh the shard-count sweep runs on in full mode (quick mode
/// drops to the smallest mesh).
pub const SHARD_SWEEP_MESH: usize = 257;

/// Configuration for one harness run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchOptions {
    /// Restrict the grid sweep to the smallest mesh and shrink sample
    /// counts — the CI smoke configuration.
    pub quick: bool,
}

/// One timed kernel in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// Kernel identifier, e.g. `grid.pcg.par`.
    pub name: String,
    /// Mesh nodes per side for grid kernels; `0` for mesh-independent
    /// kernels (thermal, STA).
    pub mesh: usize,
    /// Shards the kernel ran with (1 for sequential kernels; the
    /// explicit count for shard-sweep entries).
    pub shards: usize,
    /// Mean wall-clock per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Timed iterations behind the mean.
    pub iterations: u64,
}

/// The algorithmic MG-vs-PCG comparison at the largest mesh: solver
/// work measured in iteration/sweep counters, not wall-clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MgComparison {
    /// Mesh nodes per side the comparison solved.
    pub mesh: usize,
    /// Jacobi-PCG iterations to its 1e-12 tolerance.
    pub pcg_iterations: u64,
    /// Standalone V-cycle fine-grid-sweep equivalents.
    pub mg_sweeps_equivalent: u64,
    /// MGCG fine-grid-sweep equivalents.
    pub mgcg_sweeps_equivalent: u64,
    /// `pcg_iterations / min(mg, mgcg)` — the acceptance ratio (each
    /// PCG iteration costs about one fine-grid sweep).
    pub fine_sweep_ratio: f64,
}

/// A completed harness run, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Threads the parallel kernels were sharded across.
    pub shards: usize,
    /// The machine's available parallelism when the run started.
    pub ncpu: usize,
    /// The host operating system (`std::env::consts::OS`) — a single-cpu
    /// or foreign-OS baseline is not comparable to the committed one.
    pub os: &'static str,
    /// The host CPU architecture (`std::env::consts::ARCH`).
    pub arch: &'static str,
    /// Whether this was a `--bench-quick` run.
    pub quick: bool,
    /// Mesh sizes the grid kernels swept.
    pub mesh_sizes: Vec<usize>,
    /// Shard counts the parallel kernels swept.
    pub shard_counts: Vec<usize>,
    /// The MG-vs-PCG work comparison, if the grid sweep ran.
    pub mg_vs_pcg: Option<MgComparison>,
    /// Every timed kernel, in sweep order.
    pub kernels: Vec<KernelResult>,
}

/// The uniformly loaded, centre-pinned bump-cell mesh every grid kernel
/// solves (the numeric shape of the paper's Fig. 5 study).
fn bench_mesh(n: usize) -> MeshProblem {
    let mut m = MeshProblem::new(n, n, 1.0);
    m.injection = vec![1e-4; n * n];
    let centre = m.index(n / 2, n / 2);
    m.pinned[centre] = true;
    m
}

/// Reads one summed counter out of a collector summary.
fn counter_of(summary: &np_telemetry::Summary, name: &str) -> u64 {
    summary
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

/// Times one closure once under its own telemetry collector, returning
/// (elapsed ns, requested counter).
fn timed_counted<F: FnOnce()>(counter: &str, f: F) -> (f64, u64) {
    let collector = np_telemetry::Collector::new();
    let start = Instant::now();
    {
        let _guard = np_telemetry::install(&collector);
        f();
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    (elapsed, counter_of(&collector.summary(), counter))
}

/// Runs the full harness and collects the report.
///
/// Progress lines print to stdout as each kernel completes (the shim's
/// behavior); the structured result carries the same numbers.
pub fn run(opts: BenchOptions) -> BenchReport {
    let ncpu = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let shards = thread_budget();
    let mesh_sizes: Vec<usize> = if opts.quick {
        vec![MESH_SIZES[0]]
    } else {
        MESH_SIZES.to_vec()
    };
    let shard_counts: Vec<usize> = if opts.quick {
        vec![1, 2]
    } else {
        SHARD_COUNTS.to_vec()
    };
    let mut criterion = Criterion::default();
    let mut kernels = Vec::new();

    for &n in &mesh_sizes {
        let samples = match n {
            _ if opts.quick => 3,
            0..=129 => 7,
            257 => 5,
            _ => 3,
        };
        let m = bench_mesh(n);
        let mut group = criterion.benchmark_group(format!("grid/{n}"));
        group.sample_size(samples);
        // Per-kernel size gates: SOR relaxation is O(n⁴) (~3 s at 129
        // already), plain CG is O(n³) without preconditioning, and the
        // parallel-PCG barrier path is pure overhead on big meshes at
        // ncpu=1 — each stops at the largest size it can afford. The
        // CG/multigrid tail (513/1025) is timed once per solver in the
        // comparison block below instead of through criterion.
        if n <= 129 {
            group.bench_function("grid.sor.seq", |b| b.iter(|| black_box(&m).solve()));
            group.bench_function("grid.sor.par", |b| {
                b.iter(|| black_box(&m).solve_parallel(shards))
            });
        }
        if n <= 257 {
            group.bench_function("grid.cg.seq", |b| b.iter(|| solve_cg(black_box(&m))));
        }
        if n <= 513 {
            group.bench_function("grid.pcg.seq", |b| b.iter(|| solve_pcg(black_box(&m))));
        }
        if n <= 129 {
            group.bench_function("grid.pcg.par", |b| {
                b.iter(|| solve_pcg_parallel(black_box(&m), shards))
            });
        }
        if n <= 513 {
            group.bench_function("grid.mg.seq", |b| {
                b.iter(|| solve_multigrid_sharded(black_box(&m), 1))
            });
            group.bench_function("grid.mgcg.seq", |b| {
                b.iter(|| solve_mgcg_sharded(black_box(&m), 1))
            });
        }
        if n <= 129 {
            // Warm-path cache: prime once, then time the hit + warm-start.
            let mut cache = MeshCache::new();
            let _prime =
                cache.worst_drop_with_resolution(TechNode::N35, Microns(80.0), Microns(4.0), n);
            group.bench_function("grid.cache.warm", |b| {
                b.iter(|| {
                    cache.worst_drop_with_resolution(
                        TechNode::N35,
                        Microns(80.0),
                        black_box(Microns(4.0)),
                        n,
                    )
                })
            });
        }
        group.finish();
        for r in criterion.records().iter().skip(kernels.len()) {
            let kernel_shards = if r.name.ends_with(".par") { shards } else { 1 };
            kernels.push(KernelResult {
                name: r.name.clone(),
                mesh: n,
                shards: kernel_shards,
                mean_ns: r.mean_ns,
                iterations: r.iterations,
            });
        }
    }

    // The first-class shard axis: the same parallel kernels across an
    // explicit shard-count sweep at one fixed mesh, so scaling (or, at
    // ncpu=1, sharding overhead) is measured rather than inferred.
    {
        let n = if opts.quick {
            MESH_SIZES[0]
        } else {
            SHARD_SWEEP_MESH
        };
        let m = bench_mesh(n);
        let mut group = criterion.benchmark_group(format!("shards/{n}"));
        group.sample_size(3);
        let before = kernels.len();
        for &s in &shard_counts {
            group.bench_function(format!("grid.pcg.par/s{s}"), |b| {
                b.iter(|| solve_pcg_parallel(black_box(&m), s))
            });
            group.bench_function(format!("grid.mg.par/s{s}"), |b| {
                b.iter(|| solve_multigrid_sharded(black_box(&m), s))
            });
        }
        group.finish();
        for (i, r) in criterion.records().iter().skip(before).enumerate() {
            // Two kernels per shard count, in push order.
            let s = shard_counts[i / 2];
            let name = r
                .name
                .split('/')
                .next()
                .unwrap_or(r.name.as_str())
                .to_string();
            kernels.push(KernelResult {
                name,
                mesh: n,
                shards: s,
                mean_ns: r.mean_ns,
                iterations: r.iterations,
            });
        }
    }

    // The algorithmic comparison at the largest mesh: one timed solve
    // per solver under its own collector (MG's coarse-level solves also
    // emit PCG counters, so they must not share one), recording work in
    // counters rather than repeated wall-clock samples.
    let mg_vs_pcg = {
        let n = *mesh_sizes.iter().max().unwrap_or(&MESH_SIZES[0]);
        let m = bench_mesh(n);
        let (pcg_ns, pcg_iters) = timed_counted("grid.pcg.iterations", || {
            let _ = solve_pcg(&m);
        });
        let (mg_ns, mg_sweeps) = timed_counted("grid.mg.sweeps_equivalent", || {
            let _ = solve_multigrid_sharded(&m, 1);
        });
        let (mgcg_ns, mgcg_sweeps) = timed_counted("grid.mgcg.sweeps_equivalent", || {
            let _ = solve_mgcg_sharded(&m, 1);
        });
        if !opts.quick && n > 513 {
            // The 1025 tail is too expensive for repeated criterion
            // samples; record the single timed solves as kernels so the
            // scaling table has wall-clock at every size.
            for (name, ns) in [
                ("grid.pcg.seq", pcg_ns),
                ("grid.mg.seq", mg_ns),
                ("grid.mgcg.seq", mgcg_ns),
            ] {
                kernels.push(KernelResult {
                    name: name.to_string(),
                    mesh: n,
                    shards: 1,
                    mean_ns: ns,
                    iterations: 1,
                });
            }
        }
        let best_mg = mg_sweeps.min(mgcg_sweeps).max(1);
        Some(MgComparison {
            mesh: n,
            pcg_iterations: pcg_iters,
            mg_sweeps_equivalent: mg_sweeps,
            mgcg_sweeps_equivalent: mgcg_sweeps,
            fine_sweep_ratio: pcg_iters as f64 / best_mg as f64,
        })
    };

    {
        let mut group = criterion.benchmark_group("models");
        group.sample_size(if opts.quick { 3 } else { 7 });
        let pkg = Package::new(ThermalResistance(0.8), Celsius(45.0));
        let dev = Mosfet::for_node(TechNode::N70);
        if let Ok(dev) = dev {
            group.bench_function("thermal.fixed_point", |b| {
                b.iter(|| {
                    pkg.electro_thermal_temperature(
                        black_box(Watts(60.0)),
                        &dev,
                        Microns(2.0e6),
                        Volts(0.9),
                    )
                })
            });
        }
        let netlist = generate_netlist(&NetlistSpec::small(1));
        if let Ok(ctx) = TimingContext::for_node(TechNode::N100) {
            group.bench_function("sta.analyze", |b| {
                b.iter(|| ctx.analyze(black_box(&netlist)))
            });
        }
        group.finish();
    }
    for r in criterion.records().iter().skip(kernels.len()) {
        kernels.push(KernelResult {
            name: r.name.clone(),
            mesh: 0,
            shards: 1,
            mean_ns: r.mean_ns,
            iterations: r.iterations,
        });
    }

    BenchReport {
        shards,
        ncpu,
        os: std::env::consts::OS,
        arch: std::env::consts::ARCH,
        quick: opts.quick,
        mesh_sizes,
        shard_counts,
        mg_vs_pcg,
        kernels,
    }
}

impl BenchReport {
    /// Mean time of `name` at mesh size `mesh`, if that kernel ran.
    /// Where both a budget-sharded sweep row and shard-sweep rows exist,
    /// the sweep row wins (it is pushed first); otherwise the
    /// lowest-shard-count entry.
    pub fn mean_ns(&self, name: &str, mesh: usize) -> Option<f64> {
        self.kernels
            .iter()
            .find(|k| k.name == name && k.mesh == mesh)
            .map(|k| k.mean_ns)
    }

    /// Sequential-over-parallel speedup of `seq`/`par` on the largest
    /// mesh where both ran (values > 1 mean the parallel solver is
    /// faster).
    pub fn speedup(&self, seq: &str, par: &str) -> Option<f64> {
        let mesh = self
            .mesh_sizes
            .iter()
            .rev()
            .find(|&&m| self.mean_ns(seq, m).is_some() && self.mean_ns(par, m).is_some())?;
        Some(self.mean_ns(seq, *mesh)? / self.mean_ns(par, *mesh)?)
    }

    /// Serializes the report as `nanopower-bench/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"nanopower-bench/v1\",\n");
        out.push_str(&format!("  \"ncpu\": {},\n", self.ncpu));
        out.push_str(&format!("  \"os\": \"{}\",\n", self.os));
        out.push_str(&format!("  \"arch\": \"{}\",\n", self.arch));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        let sizes: Vec<String> = self.mesh_sizes.iter().map(ToString::to_string).collect();
        out.push_str(&format!("  \"mesh_sizes\": [{}],\n", sizes.join(", ")));
        let shard_axis: Vec<String> = self.shard_counts.iter().map(ToString::to_string).collect();
        out.push_str(&format!(
            "  \"shard_counts\": [{}],\n",
            shard_axis.join(", ")
        ));
        if let (Some(sor), Some(pcg)) = (
            self.speedup("grid.sor.seq", "grid.sor.par"),
            self.speedup("grid.pcg.seq", "grid.pcg.par"),
        ) {
            let mesh = self
                .mesh_sizes
                .iter()
                .rev()
                .find(|&&m| self.mean_ns("grid.pcg.par", m).is_some())
                .copied()
                .unwrap_or(0);
            out.push_str(&format!(
                "  \"speedup\": {{\"mesh\": {mesh}, \"sor\": {sor:.3}, \"pcg\": {pcg:.3}}},\n"
            ));
        }
        if let Some(c) = &self.mg_vs_pcg {
            out.push_str(&format!(
                "  \"mg_vs_pcg\": {{\"mesh\": {}, \"pcg_iterations\": {}, \"mg_sweeps_equivalent\": {}, \"mgcg_sweeps_equivalent\": {}, \"fine_sweep_ratio\": {:.2}}},\n",
                c.mesh,
                c.pcg_iterations,
                c.mg_sweeps_equivalent,
                c.mgcg_sweeps_equivalent,
                c.fine_sweep_ratio
            ));
        }
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mesh\": {}, \"shards\": {}, \"mean_ns\": {:.1}, \"iterations\": {}}}{}\n",
                k.name,
                k.mesh,
                k.shards,
                k.mean_ns,
                k.iterations,
                if i + 1 < self.kernels.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_times_every_kernel_and_serializes() {
        let report = run(BenchOptions { quick: true });
        assert_eq!(report.mesh_sizes, vec![33]);
        assert_eq!(report.shard_counts, vec![1, 2]);
        for name in [
            "grid.sor.seq",
            "grid.sor.par",
            "grid.cg.seq",
            "grid.pcg.seq",
            "grid.pcg.par",
            "grid.mg.seq",
            "grid.mgcg.seq",
            "grid.cache.warm",
        ] {
            assert!(
                report.mean_ns(name, 33).is_some_and(|ns| ns > 0.0),
                "{name} missing or unmeasured"
            );
        }
        for name in ["thermal.fixed_point", "sta.analyze"] {
            assert!(
                report.mean_ns(name, 0).is_some_and(|ns| ns > 0.0),
                "{name} missing or unmeasured"
            );
        }
        // The shard sweep ran both parallel kernels at every count.
        for &s in &[1usize, 2] {
            for name in ["grid.pcg.par", "grid.mg.par"] {
                assert!(
                    report
                        .kernels
                        .iter()
                        .any(|k| k.name == name && k.shards == s && k.mean_ns > 0.0),
                    "{name} missing at shards={s}"
                );
            }
        }
        // The comparison block proves the acceptance ratio even in
        // quick mode (the margin grows with mesh size; 33 is its floor).
        let cmp = report.mg_vs_pcg.expect("comparison must run");
        assert_eq!(cmp.mesh, 33);
        assert!(cmp.pcg_iterations > 0);
        assert!(cmp.mg_sweeps_equivalent > 0);
        assert!(cmp.mgcg_sweeps_equivalent > 0);
        assert!(cmp.fine_sweep_ratio > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"nanopower-bench/v1\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"shard_counts\": [1, 2]"));
        assert!(json.contains("\"mg_vs_pcg\""));
        assert!(json.contains("\"grid.pcg.par\""));
        assert!(json.contains("\"grid.mg.seq\""));
        assert!(json.contains("\"quick\": true"));
        // Host metadata pins where the numbers came from.
        assert_eq!(report.os, std::env::consts::OS);
        assert_eq!(report.arch, std::env::consts::ARCH);
        assert!(report.ncpu >= 1);
        assert!(json.contains(&format!("\"os\": \"{}\"", std::env::consts::OS)));
        assert!(json.contains(&format!("\"arch\": \"{}\"", std::env::consts::ARCH)));
    }
}
