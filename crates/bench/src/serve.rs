//! Load-test reporting for the `nanopowerd` service: per-request
//! latency aggregation serialized as `BENCH_serve.json`.
//!
//! The report keeps the `nanopower-bench/v1` top-level shape (see
//! [`crate::perf::BenchReport`]) so the same tooling ingests both
//! files: service latencies appear as pseudo-kernels (`serve.request`
//! mean, `serve.p50`, `serve.p99`, in nanoseconds, with `iterations` =
//! completed requests) plus an additive `serve` object carrying the
//! service-level numbers (throughput, percentiles in milliseconds,
//! memo hits).

use std::time::Duration;

/// One load run against a `nanopowerd` daemon: configuration, outcome
/// counts, and every completed request's latency.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Concurrent client connections driven.
    pub connections: usize,
    /// Requests attempted across all connections.
    pub requests: u64,
    /// Requests that returned a terminal report line.
    pub completed: u64,
    /// Requests that ended in a failure (failed records, protocol
    /// errors, or dropped connections).
    pub errors: u64,
    /// `busy` rejections observed (each retried until admitted).
    pub busy_retries: u64,
    /// `overloaded` sheds observed (each retried with backoff).
    pub shed_retries: u64,
    /// Memo-served records accumulated by the daemon over the run
    /// (from its stats response).
    pub memo_hits: u64,
    /// Daemon-side counters captured from the final stats response:
    /// memo occupancy and the overload/degradation tallies.
    pub daemon: DaemonCounters,
    /// Whether this was a `--quick` run.
    pub quick: bool,
    /// Wall-clock of the whole load run.
    pub total_wall: Duration,
    /// Per-request latencies, milliseconds, completion order.
    pub latencies_ms: Vec<f64>,
    /// The registry-artifact slice of the mixed workload.
    pub registry: KindStats,
    /// The scenario-spec slice of the mixed workload.
    pub specs: KindStats,
}

/// One request kind's slice of a mixed load run: the registry-name
/// requests and the scenario-spec requests are tallied separately so
/// memo behaviour and latency can be compared per kind.
#[derive(Debug, Clone, Default)]
pub struct KindStats {
    /// Requests of this kind that returned a terminal report.
    pub completed: u64,
    /// Memo-served records observed in this kind's reports
    /// (client-side count, from each report's `memo_hits`).
    pub memo_hits: u64,
    /// Per-request latencies of this kind, milliseconds.
    pub latencies_ms: Vec<f64>,
}

impl KindStats {
    /// Folds another tally of the same kind into this one.
    pub fn merge(&mut self, other: KindStats) {
        self.completed += other.completed;
        self.memo_hits += other.memo_hits;
        self.latencies_ms.extend(other.latencies_ms);
    }

    /// Median latency of this kind, milliseconds.
    pub fn p50_ms(&self) -> f64 {
        percentile(&self.latencies_ms, 50.0)
    }

    /// 99th-percentile latency of this kind, milliseconds.
    pub fn p99_ms(&self) -> f64 {
        percentile(&self.latencies_ms, 99.0)
    }

    /// This kind's slice of the `serve.kinds` JSON object.
    fn to_json(&self) -> String {
        format!(
            "{{\"completed\": {}, \"memo_hits\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
            self.completed,
            self.memo_hits,
            self.p50_ms(),
            self.p99_ms()
        )
    }
}

/// The daemon-side resilience counters a load run records alongside its
/// client-side latencies (all zero when the stats probe was skipped).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonCounters {
    /// Entries resident in the artifact memo after the run.
    pub memo_entries: u64,
    /// Approximate bytes resident in the artifact memo.
    pub memo_bytes: u64,
    /// Memo entries evicted by the entry/byte caps.
    pub memo_evictions: u64,
    /// Requests shed with a typed `overloaded` response.
    pub overloaded: u64,
    /// Connections turned away at the max-connections gate.
    pub conn_rejected: u64,
    /// Record writes abandoned at the per-connection write deadline.
    pub write_timeouts: u64,
}

/// Linear-interpolated percentile (`p` in 0..=100) of an unsorted
/// sample; 0.0 for an empty sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

impl ServeReport {
    /// Mean request latency in milliseconds (0.0 with no samples).
    pub fn mean_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            0.0
        } else {
            self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
        }
    }

    /// Median request latency in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        percentile(&self.latencies_ms, 50.0)
    }

    /// 99th-percentile request latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        percentile(&self.latencies_ms, 99.0)
    }

    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.total_wall.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// Serializes the report in the `nanopower-bench/v1` shape (see the
    /// module docs for how service numbers map onto it).
    pub fn to_json(&self) -> String {
        let ncpu = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"nanopower-bench/v1\",\n");
        out.push_str(&format!("  \"ncpu\": {ncpu},\n"));
        out.push_str(&format!("  \"os\": \"{}\",\n", std::env::consts::OS));
        out.push_str(&format!("  \"arch\": \"{}\",\n", std::env::consts::ARCH));
        out.push_str(&format!("  \"shards\": {},\n", self.connections));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"mesh_sizes\": [],\n");
        out.push_str(&format!(
            "  \"serve\": {{\"connections\": {}, \"requests\": {}, \"completed\": {}, \
             \"errors\": {}, \"busy_retries\": {}, \"shed_retries\": {}, \"memo_hits\": {}, \
             \"throughput_rps\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"total_ms\": {:.3}, \"daemon\": {{\"memo_entries\": {}, \"memo_bytes\": {}, \
             \"memo_evictions\": {}, \"overloaded\": {}, \"conn_rejected\": {}, \
             \"write_timeouts\": {}}}}},\n",
            self.connections,
            self.requests,
            self.completed,
            self.errors,
            self.busy_retries,
            self.shed_retries,
            self.memo_hits,
            self.throughput_rps(),
            self.p50_ms(),
            self.p99_ms(),
            self.total_wall.as_secs_f64() * 1e3,
            self.daemon.memo_entries,
            self.daemon.memo_bytes,
            self.daemon.memo_evictions,
            self.daemon.overloaded,
            self.daemon.conn_rejected,
            self.daemon.write_timeouts,
        ));
        out.push_str(&format!(
            "  \"kinds\": {{\"registry\": {}, \"spec\": {}}},\n",
            self.registry.to_json(),
            self.specs.to_json()
        ));
        out.push_str("  \"kernels\": [\n");
        let kernels = [
            ("serve.request", self.mean_ms()),
            ("serve.p50", self.p50_ms()),
            ("serve.p99", self.p99_ms()),
        ];
        for (i, (name, ms)) in kernels.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{name}\", \"mesh\": 0, \"mean_ns\": {:.1}, \
                 \"iterations\": {}}}{}\n",
                ms * 1e6,
                self.completed,
                if i + 1 < kernels.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The one-line human summary the load client prints.
    pub fn summary(&self) -> String {
        format!(
            "{} connections x {} requests: {} ok, {} errors, {} busy retries, \
             {:.1} req/s, p50 {:.1} ms, p99 {:.1} ms, {} memo hits",
            self.connections,
            self.requests / (self.connections.max(1) as u64),
            self.completed,
            self.errors,
            self.busy_retries,
            self.throughput_rps(),
            self.p50_ms(),
            self.p99_ms(),
            self.memo_hits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let samples = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 100.0), 4.0);
        assert!((percentile(&samples, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn report_serializes_bench_v1_shape() {
        let report = ServeReport {
            connections: 4,
            requests: 100,
            completed: 98,
            errors: 2,
            busy_retries: 3,
            shed_retries: 1,
            memo_hits: 40,
            daemon: DaemonCounters {
                memo_entries: 6,
                memo_bytes: 4096,
                memo_evictions: 2,
                overloaded: 1,
                conn_rejected: 0,
                write_timeouts: 0,
            },
            quick: false,
            total_wall: Duration::from_secs(2),
            latencies_ms: (1..=98).map(f64::from).collect(),
            registry: KindStats {
                completed: 66,
                memo_hits: 30,
                latencies_ms: (1..=66).map(f64::from).collect(),
            },
            specs: KindStats {
                completed: 32,
                memo_hits: 10,
                latencies_ms: (67..=98).map(f64::from).collect(),
            },
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"nanopower-bench/v1\""));
        assert!(json.contains("\"serve\": {"));
        assert!(json.contains("\"throughput_rps\": 49.000"));
        assert!(json.contains("\"name\": \"serve.p99\""));
        assert!(json.contains("\"memo_hits\": 40"));
        assert!(json.contains("\"daemon\": {\"memo_entries\": 6"));
        assert!(json.contains("\"memo_evictions\": 2"));
        assert!(json.contains("\"shed_retries\": 1"));
        assert!(json.contains("\"kinds\": {\"registry\": {\"completed\": 66"));
        assert!(json.contains("\"spec\": {\"completed\": 32, \"memo_hits\": 10"));
        assert!((report.p50_ms() - 49.5).abs() < 1e-9);
        assert!(report.p99_ms() > 95.0);
        let summary = report.summary();
        assert!(summary.contains("98 ok"), "{summary}");
        assert!(summary.contains("40 memo hits"), "{summary}");
    }

    #[test]
    fn empty_report_degrades_gracefully() {
        let report = ServeReport::default();
        assert_eq!(report.mean_ms(), 0.0);
        assert_eq!(report.throughput_rps(), 0.0);
        assert!(report.to_json().contains("\"p50_ms\": 0.000"));
    }
}
