//! `repro` — regenerates every table and figure of Sylvester & Kaul,
//! DAC 2001, through the parallel artifact engine.
//!
//! Usage:
//!
//! ```text
//! repro                    # everything, in parallel
//! repro table2 fig5        # selected artifacts
//! repro --list             # the artifact registry
//! repro --csv fig1 fig2    # CSV form (figures only)
//! repro --json             # machine-readable run report
//! repro --jobs 4           # worker-thread count (default: all cores)
//! repro --timeout-secs 30  # per-artifact deadline (watchdog)
//! repro --retries 2        # retry transient failures with backoff
//! repro --trace-out t.json # Chrome trace_event profile of the run
//! repro --journal r.jsonl  # crash-safe run journal (one line/artifact)
//! repro --resume r.jsonl   # resume: replay completed, run the rest
//! repro --check            # drift gate: compare against golden/
//! repro --golden DIR       # golden reference directory (default golden)
//! repro --bench            # perf harness: grid/thermal/STA/opt kernels
//! repro --bench --bench-quick          # smallest mesh only (CI smoke)
//! repro --bench --bench-out BENCH.json # report path (default
//!                                      # BENCH_grid.json)
//! repro --bench-opt        # optimizer scaling sweep (default
//!                          # BENCH_opt.json; 10k/100k/1M cells, or the
//!                          # 1k/5k smoke axis with --bench-quick)
//! ```
//!
//! Artifacts run concurrently across `--jobs` worker threads, but output
//! is always printed in request order and is byte-identical to a
//! `--jobs 1` run — only the telemetry (`--json` durations, worker
//! attribution, attempt counts) varies. A failing artifact doesn't stop
//! the run: the rest regenerate, the error summary lists the casualties
//! on stderr, and the exit code reports failure. With `--timeout-secs`,
//! an artifact that hangs is abandoned at the deadline instead of
//! stalling the queue; with `--retries N`, failed artifacts are
//! re-attempted up to `N` times with doubling backoff.
//!
//! # Crash recovery
//!
//! `--journal FILE` appends one flushed JSON line per completed artifact
//! (see `nanopower::journal`), so a `SIGKILL` loses at most the artifact
//! mid-render. `--resume FILE` loads the journal, replays the completed
//! artifacts verbatim (their stored outputs print byte-identically,
//! without re-rendering), runs only what is missing, and appends the new
//! completions to the same journal. The journal header pins the artifact
//! list and output form; a resume under a different request is refused.
//!
//! `SIGINT` (^C) cancels gracefully: workers drain the artifacts already
//! in flight, the journal is flushed, and the run report — marked
//! `"interrupted": true` in `--json` — covers every requested artifact,
//! with the never-started ones recorded as `cancelled`. A second ^C
//! kills immediately.
//!
//! # Drift gate
//!
//! `--check` compares every successfully rendered artifact against its
//! golden reference in `--golden DIR` (default `golden/`) under the
//! artifact's tolerance policy (`np_bench::golden`). A drifting artifact
//! is quarantined: its record becomes a typed `Drift` error with
//! per-cell diagnostics, the remaining artifacts still regenerate and
//! print, and the exit code reports failure. The hidden `--bless` flag
//! rewrites the golden references from the current outputs.
//!
//! The hidden `--chaos` flag appends three synthetic fault-injection
//! jobs (a panicking one, a hanging one, and a fail-twice-then-succeed
//! one) so the integration suite can exercise the failure paths of the
//! engine through the real binary.
//!
//! Every run records telemetry (spans, counters, value statistics — see
//! [`nanopower::telemetry`]): `--json` reports embed it as a `telemetry`
//! section, and `--trace-out FILE` writes the full span timeline as
//! Chrome `trace_event` JSON for `chrome://tracing` / Perfetto.

use nanopower::engine::{self, CancelToken, Job, RunHooks, RunPolicy, RunReport, Session};
use nanopower::journal::{self, Journal, JournalConfig, JournalEntry};
use nanopower::{telemetry, Error};
use np_bench::golden::GoldenStore;
use np_bench::registry;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// SIGINT → cooperative cancellation. The library crates forbid unsafe
/// code; the binary is its own compilation unit, so the two-line
/// `signal(2)` FFI lives here instead of pulling in a libc crate the
/// offline container does not have.
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: Option<extern "C" fn(i32)>) -> usize;
    }

    extern "C" fn on_sigint(_: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
        // Restore the default disposition: the first ^C drains
        // gracefully, a second one kills immediately.
        unsafe {
            signal(SIGINT, None);
        }
    }

    /// Installs the handler. Idempotent.
    pub fn install() {
        unsafe {
            signal(SIGINT, Some(on_sigint));
        }
    }

    /// Whether a SIGINT has been observed.
    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::SeqCst)
    }
}

struct Options {
    list: bool,
    csv: bool,
    json: bool,
    jobs: usize,
    timeout: Option<Duration>,
    retries: u32,
    chaos: bool,
    trace_out: Option<PathBuf>,
    journal: Option<PathBuf>,
    resume: Option<PathBuf>,
    check: bool,
    golden: PathBuf,
    bless: bool,
    bench: bool,
    bench_opt: bool,
    bench_quick: bool,
    bench_out: Option<PathBuf>,
    names: Vec<String>,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options {
        list: false,
        csv: false,
        json: false,
        jobs: default_jobs(),
        timeout: None,
        retries: 0,
        chaos: false,
        trace_out: None,
        journal: None,
        resume: None,
        check: false,
        golden: PathBuf::from("golden"),
        bless: false,
        bench: false,
        bench_opt: false,
        bench_quick: false,
        bench_out: None,
        names: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" | "-l" => opts.list = true,
            "--csv" => opts.csv = true,
            "--json" => opts.json = true,
            "--chaos" => opts.chaos = true,
            "--check" => opts.check = true,
            "--bless" => opts.bless = true,
            "--jobs" | "-j" => {
                let value = it.next().ok_or("--jobs needs a worker count")?;
                opts.jobs = parse_jobs(&value)?;
            }
            "--timeout-secs" => {
                let value = it.next().ok_or("--timeout-secs needs a duration")?;
                opts.timeout = Some(parse_timeout(&value)?);
            }
            "--retries" => {
                let value = it.next().ok_or("--retries needs a count")?;
                opts.retries = parse_retries(&value)?;
            }
            "--trace-out" => {
                let value = it.next().ok_or("--trace-out needs a file path")?;
                opts.trace_out = Some(PathBuf::from(value));
            }
            "--journal" => {
                let value = it.next().ok_or("--journal needs a file path")?;
                opts.journal = Some(PathBuf::from(value));
            }
            "--resume" => {
                let value = it.next().ok_or("--resume needs a journal path")?;
                opts.resume = Some(PathBuf::from(value));
            }
            "--golden" => {
                let value = it.next().ok_or("--golden needs a directory path")?;
                opts.golden = PathBuf::from(value);
            }
            "--bench" => opts.bench = true,
            "--bench-opt" => opts.bench_opt = true,
            "--bench-quick" => opts.bench_quick = true,
            "--bench-out" => {
                let value = it.next().ok_or("--bench-out needs a file path")?;
                opts.bench_out = Some(PathBuf::from(value));
            }
            other => {
                if let Some(value) = other.strip_prefix("--jobs=") {
                    opts.jobs = parse_jobs(value)?;
                } else if let Some(value) = other.strip_prefix("--timeout-secs=") {
                    opts.timeout = Some(parse_timeout(value)?);
                } else if let Some(value) = other.strip_prefix("--retries=") {
                    opts.retries = parse_retries(value)?;
                } else if let Some(value) = other.strip_prefix("--trace-out=") {
                    opts.trace_out = Some(PathBuf::from(value));
                } else if let Some(value) = other.strip_prefix("--journal=") {
                    opts.journal = Some(PathBuf::from(value));
                } else if let Some(value) = other.strip_prefix("--resume=") {
                    opts.resume = Some(PathBuf::from(value));
                } else if let Some(value) = other.strip_prefix("--golden=") {
                    opts.golden = PathBuf::from(value);
                } else if let Some(value) = other.strip_prefix("--bench-out=") {
                    opts.bench_out = Some(PathBuf::from(value));
                } else if other.starts_with('-') {
                    return Err(format!("unknown flag `{other}`"));
                } else {
                    opts.names.push(other.to_string());
                }
            }
        }
    }
    if opts.journal.is_some() && opts.resume.is_some() {
        return Err("--journal and --resume are mutually exclusive (resume appends)".into());
    }
    if opts.bless && opts.check {
        return Err("--bless and --check are mutually exclusive".into());
    }
    if opts.bench && opts.bench_opt {
        return Err("--bench and --bench-opt are mutually exclusive (run them separately)".into());
    }
    Ok(opts)
}

fn parse_jobs(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--jobs needs a positive integer, got `{value}`")),
    }
}

fn parse_timeout(value: &str) -> Result<Duration, String> {
    match value.parse::<f64>() {
        Ok(s) if s.is_finite() && s > 0.0 => Ok(Duration::from_secs_f64(s)),
        _ => Err(format!(
            "--timeout-secs needs a positive number of seconds, got `{value}`"
        )),
    }
}

fn parse_retries(value: &str) -> Result<u32, String> {
    value
        .parse::<u32>()
        .map_err(|_| format!("--retries needs a non-negative integer, got `{value}`"))
}

fn print_list() {
    for a in registry::REGISTRY {
        let csv = if a.has_csv() { "text,csv" } else { "text" };
        println!(
            "{:<16} {:<44} {:<10} [{csv}]",
            a.name, a.description, a.paper_ref
        );
    }
}

/// Builds one job per requested name. Unknown names become jobs that fail
/// with [`Error::UnknownArtifact`], so they surface in the run report and
/// error summary like any other per-artifact failure instead of aborting
/// the run.
fn build_jobs(names: &[String], csv: bool, transient: bool) -> Vec<Job> {
    names
        .iter()
        .map(|name| match registry::find(name) {
            Some(artifact) => artifact.job(csv).transient(transient),
            None => {
                let name = name.clone();
                Job::new(name.clone(), move || {
                    Err(Error::UnknownArtifact { name: name.clone() })
                })
            }
        })
        .collect()
}

/// The `--chaos` fault-injection jobs: one panics, one hangs well past
/// any test deadline, one fails twice then succeeds (exercising retry).
fn chaos_jobs() -> Vec<Job> {
    use std::sync::atomic::{AtomicU32, Ordering};
    static FLAKY_CALLS: AtomicU32 = AtomicU32::new(0);
    vec![
        Job::new("chaos-panic", || panic!("chaos: injected panic")),
        Job::new("chaos-hang", || {
            std::thread::sleep(Duration::from_secs(300));
            Ok("chaos: hang finished (no deadline was set)\n".into())
        }),
        Job::new("chaos-flaky", || {
            if FLAKY_CALLS.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(Error::InvalidParameter("chaos: injected glitch".into()))
            } else {
                Ok("chaos: recovered on attempt 3\n".into())
            }
        })
        .transient(true),
    ]
}

fn print_text_outputs(report: &RunReport, csv: bool) {
    for record in &report.records {
        if let Ok(text) = &record.outcome {
            if csv {
                println!("# {}", record.name);
                print!("{text}");
            } else {
                let pad = "=".repeat(60usize.saturating_sub(record.name.len()));
                println!("=== {} {pad}", record.name);
                println!("{text}");
            }
        }
    }
}

/// `--bless`: renders every requested artifact serially and rewrites its
/// golden reference files (text always, CSV where the artifact has one).
fn bless(names: &[String], store: &GoldenStore) -> Result<(), Error> {
    for name in names {
        let artifact =
            registry::find(name).ok_or_else(|| Error::UnknownArtifact { name: name.clone() })?;
        store.bless(name, false, &artifact.render_text()?)?;
        if artifact.has_csv() {
            store.bless(name, true, &artifact.render_csv()?)?;
        }
    }
    println!(
        "blessed {} artifact(s) into {}",
        names.len(),
        store.dir().display()
    );
    Ok(())
}

/// `--resume`: loads the journal, validates it against the request, and
/// returns `(names, completed)` — the pinned artifact list and the
/// entries to replay instead of re-running.
fn load_resume_state(
    path: &std::path::Path,
    opts: &Options,
) -> Result<(Vec<String>, HashMap<String, JournalEntry>), Error> {
    let loaded = journal::load(path)?;
    if loaded.config.csv != opts.csv {
        return Err(Error::Journal {
            reason: format!(
                "{}: journal was recorded with csv={}, request has csv={}",
                path.display(),
                loaded.config.csv,
                opts.csv
            ),
        });
    }
    if !opts.names.is_empty() && opts.names != loaded.config.names {
        return Err(Error::Journal {
            reason: format!(
                "{}: journal pins a different artifact list; resume without names \
                 or with the original ones",
                path.display()
            ),
        });
    }
    if loaded.truncated_tail {
        eprintln!(
            "note: {} ends in a torn line (mid-write kill); it was dropped",
            path.display()
        );
    }
    let completed: HashMap<String, JournalEntry> = loaded
        .completed()
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    Ok((loaded.config.names, completed))
}

/// Merges replayed journal entries with the live run's records back into
/// submission order, preserving chaos/extra records at the tail.
fn merge_replayed(
    report: RunReport,
    names: &[String],
    completed: &HashMap<String, JournalEntry>,
) -> RunReport {
    let RunReport {
        records: live,
        workers,
        total_wall,
        telemetry,
        interrupted,
        ..
    } = report;
    let mut live = live.into_iter();
    let mut records = Vec::with_capacity(names.len());
    let mut replayed = 0;
    for name in names {
        match completed.get(name) {
            Some(entry) => {
                records.push(entry.to_record());
                replayed += 1;
            }
            None => records.extend(live.next()),
        }
    }
    records.extend(live); // chaos jobs ride behind the named artifacts
    RunReport {
        records,
        workers,
        total_wall,
        telemetry,
        interrupted,
        replayed,
    }
}

/// `--check`: quarantines each successful record that drifts from its
/// golden reference by swapping its outcome for the typed
/// [`Error::Drift`]. Records the engine never ran (failures, cancelled
/// placeholders) and non-registry names (chaos jobs) pass through.
fn apply_drift_gate(report: &mut RunReport, store: &GoldenStore, csv: bool) {
    for record in &mut report.records {
        if registry::find(&record.name).is_none() {
            continue;
        }
        let Ok(text) = &record.outcome else { continue };
        if let Err(drift) = store.check(&record.name, csv, text) {
            record.outcome = Err(drift);
        }
    }
}

fn run_artifacts(opts: &Options) -> Result<ExitCode, Error> {
    let requested: Vec<String> = if opts.names.is_empty() && !opts.chaos {
        registry::names().iter().map(|n| n.to_string()).collect()
    } else {
        opts.names.clone()
    };
    let store = GoldenStore::new(&opts.golden);
    if opts.bless {
        bless(&requested, &store)?;
        return Ok(ExitCode::SUCCESS);
    }
    // Resume replaces the request with the journal's pinned one and
    // skips what is already completed.
    let (names, completed) = match &opts.resume {
        Some(path) => load_resume_state(path, opts)?,
        None => (requested, HashMap::new()),
    };
    let pending: Vec<String> = names
        .iter()
        .filter(|n| !completed.contains_key(n.as_str()))
        .cloned()
        .collect();
    let mut jobs = build_jobs(&pending, opts.csv, opts.retries > 0);
    if opts.chaos {
        jobs.extend(chaos_jobs());
    }
    // The journal writer: created fresh for --journal, re-opened in
    // append mode for --resume (the header is already there).
    let writer: Option<Arc<Mutex<Journal>>> = match (&opts.journal, &opts.resume) {
        (Some(path), _) => Some(Journal::create(
            path,
            &JournalConfig {
                csv: opts.csv,
                names: names.clone(),
            },
        )?),
        (None, Some(path)) => Some(Journal::append_to(path)?),
        (None, None) => None,
    }
    .map(|j| Arc::new(Mutex::new(j)));
    // Graceful ^C: the handler flips a flag, the watcher turns it into a
    // cooperative cancel, the engine drains in-flight artifacts, and the
    // journal keeps every completion observed before the drain.
    sigint::install();
    let token = CancelToken::new();
    {
        let token = token.clone();
        std::thread::spawn(move || loop {
            if sigint::interrupted() {
                token.cancel();
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    }
    let hooks = RunHooks {
        cancel: Some(token),
        on_record: writer.clone().map(|journal| {
            Arc::new(
                move |_idx: usize, record: &engine::JobRecord| match journal.lock() {
                    Ok(mut journal) => {
                        if let Err(e) = journal.record(record) {
                            eprintln!("journal write failed: {e}");
                        }
                    }
                    Err(_) => eprintln!("journal lock poisoned; record dropped"),
                },
            ) as engine::RecordObserver
        }),
    };
    let policy = RunPolicy {
        deadline: opts.timeout,
        retries: opts.retries,
        ..RunPolicy::default()
    };
    // A collector is always installed: `--json` then carries a
    // `telemetry` section and `--trace-out` can dump the span timeline.
    // Text output is unaffected, preserving the byte-identical contract.
    let collector = telemetry::Collector::new();
    let report = {
        let _guard = telemetry::install(&collector);
        let report = Session::new(jobs)
            .workers(opts.jobs)
            .policy(policy)
            .hooks(hooks)
            .run();
        let mut report = merge_replayed(report, &names, &completed);
        np_telemetry::counter("journal.replayed", report.replayed as u64);
        if opts.check {
            apply_drift_gate(&mut report, &store, opts.csv);
        }
        // Re-snapshot so the report's telemetry section includes the
        // resume/drift counters recorded after the engine returned.
        report.telemetry = Some(collector.summary());
        report
    };
    if report.interrupted {
        eprintln!("interrupted: drained in-flight artifacts; report is partial");
    }
    if let Some(path) = &opts.trace_out {
        if let Err(e) = std::fs::write(path, collector.chrome_trace()) {
            eprintln!("cannot write trace to {}: {e}", path.display());
            return Ok(ExitCode::FAILURE);
        }
    }
    if opts.json {
        print!("{}", report.to_json());
    } else {
        print_text_outputs(&report, opts.csv);
    }
    let summary = report.error_summary();
    if summary.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprint!("{summary}");
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1).collect()) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.list {
        print_list();
        return ExitCode::SUCCESS;
    }
    if opts.bench_opt {
        let report = match np_bench::perf::run_opt(np_bench::perf::BenchOptions {
            quick: opts.bench_quick,
        }) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("optimizer sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let out = opts
            .bench_out
            .clone()
            .unwrap_or_else(|| PathBuf::from("BENCH_opt.json"));
        if let Err(e) = std::fs::write(&out, report.to_json()) {
            eprintln!("cannot write opt bench report to {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        for r in &report.rows {
            println!(
                "{} cells: full STA {:.1} ms, probe {:.1} us (cone {:.0}), x{:.0} speedup, \
                 round {:.1} ms ({} accepts)",
                r.cells,
                r.full_sta_ns / 1e6,
                r.probe_ns / 1e3,
                r.probe_cone,
                r.inc_speedup,
                r.round_ns / 1e6,
                r.round_accepted
            );
        }
        println!("opt bench report written to {}", out.display());
        return ExitCode::SUCCESS;
    }
    if opts.bench {
        let report = np_bench::perf::run(np_bench::perf::BenchOptions {
            quick: opts.bench_quick,
        });
        let json = report.to_json();
        let out = opts
            .bench_out
            .clone()
            .unwrap_or_else(|| PathBuf::from("BENCH_grid.json"));
        if let Err(e) = std::fs::write(&out, &json) {
            eprintln!("cannot write bench report to {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        if let Some(speedup) = report.speedup("grid.pcg.seq", "grid.pcg.par") {
            println!(
                "pcg parallel speedup x{speedup:.2} at the largest shared mesh ({} shards, {} cpus)",
                report.shards, report.ncpu
            );
        }
        if let Some(c) = &report.mg_vs_pcg {
            println!(
                "mg vs pcg at {n}x{n}: {pcg} pcg iterations vs {mg} mg / {mgcg} mgcg sweep-equivalents (x{ratio:.1})",
                n = c.mesh,
                pcg = c.pcg_iterations,
                mg = c.mg_sweeps_equivalent,
                mgcg = c.mgcg_sweeps_equivalent,
                ratio = c.fine_sweep_ratio
            );
        }
        println!("bench report written to {}", out.display());
        return ExitCode::SUCCESS;
    }
    match run_artifacts(&opts) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
