//! `repro` — regenerates every table and figure of Sylvester & Kaul,
//! DAC 2001, as plain text.
//!
//! Usage:
//!
//! ```text
//! repro                 # everything
//! repro table2 fig5     # selected artifacts
//! repro --list          # available artifact names
//! ```

use np_bench::{experiments, figures, tables};
use std::process::ExitCode;

const ARTIFACTS: &[&str] = &[
    "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "dtm", "signaling", "cvs",
    "dualvth", "resize", "grid-limits", "library", "leakage-tech", "inductive-noise",
    "subambient",
];

fn run_csv(name: &str) -> Option<Result<String, Box<dyn std::error::Error>>> {
    let out: Result<String, Box<dyn std::error::Error>> = match name {
        "fig1" => figures::fig1().map(|f| f.csv()).map_err(Into::into),
        "fig2" => figures::fig2().map(|f| f.csv()).map_err(Into::into),
        "fig3" => figures::fig3().map(|f| f.csv()).map_err(Into::into),
        "fig4" => figures::fig4().map(|f| f.csv()).map_err(Into::into),
        "fig5" => figures::fig5().map(|f| f.csv()).map_err(Into::into),
        _ => return None,
    };
    Some(out)
}

fn run(name: &str) -> Result<String, Box<dyn std::error::Error>> {
    Ok(match name {
        "table1" => tables::table1().render(),
        "table2" => tables::table2()?.render(),
        "fig1" => figures::fig1()?.render(),
        "fig2" => figures::fig2()?.render(),
        "fig3" => figures::fig3()?.render(),
        "fig4" => figures::fig4()?.render(),
        "fig5" => figures::fig5()?.render(),
        "dtm" => experiments::e1_dtm()?.render(),
        "signaling" => experiments::e2_signaling()?.render(),
        "cvs" => experiments::e3_cvs()?.render(),
        "dualvth" => experiments::e4_dualvth()?.render(),
        "resize" => experiments::e5_resize()?.render(),
        "grid-limits" => experiments::e6_grid_limits()?.render(),
        "library" => experiments::e7_library()?.render(),
        "leakage-tech" => experiments::e8_leakage_techniques()?.render(),
        "inductive-noise" => experiments::e9_inductive_noise()?.render(),
        "subambient" => experiments::e10_subambient()?.render(),
        other => return Err(format!("unknown artifact `{other}` (try --list)").into()),
    })
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for a in ARTIFACTS {
            println!("{a}");
        }
        return ExitCode::SUCCESS;
    }
    let csv = args.iter().any(|a| a == "--csv");
    args.retain(|a| a != "--csv");
    let selected: Vec<&str> = if args.is_empty() {
        ARTIFACTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in &selected {
        if csv {
            match run_csv(name) {
                Some(Ok(text)) => {
                    println!("# {name}");
                    print!("{text}");
                    continue;
                }
                Some(Err(e)) => {
                    eprintln!("error regenerating {name}: {e}");
                    return ExitCode::FAILURE;
                }
                None => {} // fall through to text rendering
            }
        }
        match run(name) {
            Ok(text) => {
                println!("=== {name} {}", "=".repeat(60usize.saturating_sub(name.len())));
                println!("{text}");
            }
            Err(e) => {
                eprintln!("error regenerating {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
