//! `repro` — regenerates every table and figure of Sylvester & Kaul,
//! DAC 2001, through the parallel artifact engine.
//!
//! Usage:
//!
//! ```text
//! repro                    # everything, in parallel
//! repro table2 fig5        # selected artifacts
//! repro --list             # the artifact registry
//! repro --csv fig1 fig2    # CSV form (figures only)
//! repro --json             # machine-readable run report
//! repro --jobs 4           # worker-thread count (default: all cores)
//! repro --timeout-secs 30  # per-artifact deadline (watchdog)
//! repro --retries 2        # retry transient failures with backoff
//! repro --trace-out t.json # Chrome trace_event profile of the run
//! repro --bench            # perf harness: grid/thermal/STA kernels
//! repro --bench --bench-quick          # smallest mesh only (CI smoke)
//! repro --bench --bench-out BENCH.json # report path (default
//!                                      # BENCH_grid.json)
//! ```
//!
//! Artifacts run concurrently across `--jobs` worker threads, but output
//! is always printed in request order and is byte-identical to a
//! `--jobs 1` run — only the telemetry (`--json` durations, worker
//! attribution, attempt counts) varies. A failing artifact doesn't stop
//! the run: the rest regenerate, the error summary lists the casualties
//! on stderr, and the exit code reports failure. With `--timeout-secs`,
//! an artifact that hangs is abandoned at the deadline instead of
//! stalling the queue; with `--retries N`, failed artifacts are
//! re-attempted up to `N` times with doubling backoff.
//!
//! The hidden `--chaos` flag appends three synthetic fault-injection
//! jobs (a panicking one, a hanging one, and a fail-twice-then-succeed
//! one) so the integration suite can exercise the failure paths of the
//! engine through the real binary.
//!
//! Every run records telemetry (spans, counters, value statistics — see
//! [`nanopower::telemetry`]): `--json` reports embed it as a `telemetry`
//! section, and `--trace-out FILE` writes the full span timeline as
//! Chrome `trace_event` JSON for `chrome://tracing` / Perfetto.

use nanopower::engine::{self, Job, RunPolicy, RunReport};
use nanopower::{telemetry, Error};
use np_bench::registry;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    list: bool,
    csv: bool,
    json: bool,
    jobs: usize,
    timeout: Option<Duration>,
    retries: u32,
    chaos: bool,
    trace_out: Option<PathBuf>,
    bench: bool,
    bench_quick: bool,
    bench_out: PathBuf,
    names: Vec<String>,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options {
        list: false,
        csv: false,
        json: false,
        jobs: default_jobs(),
        timeout: None,
        retries: 0,
        chaos: false,
        trace_out: None,
        bench: false,
        bench_quick: false,
        bench_out: PathBuf::from("BENCH_grid.json"),
        names: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" | "-l" => opts.list = true,
            "--csv" => opts.csv = true,
            "--json" => opts.json = true,
            "--chaos" => opts.chaos = true,
            "--jobs" | "-j" => {
                let value = it.next().ok_or("--jobs needs a worker count")?;
                opts.jobs = parse_jobs(&value)?;
            }
            "--timeout-secs" => {
                let value = it.next().ok_or("--timeout-secs needs a duration")?;
                opts.timeout = Some(parse_timeout(&value)?);
            }
            "--retries" => {
                let value = it.next().ok_or("--retries needs a count")?;
                opts.retries = parse_retries(&value)?;
            }
            "--trace-out" => {
                let value = it.next().ok_or("--trace-out needs a file path")?;
                opts.trace_out = Some(PathBuf::from(value));
            }
            "--bench" => opts.bench = true,
            "--bench-quick" => opts.bench_quick = true,
            "--bench-out" => {
                let value = it.next().ok_or("--bench-out needs a file path")?;
                opts.bench_out = PathBuf::from(value);
            }
            other => {
                if let Some(value) = other.strip_prefix("--jobs=") {
                    opts.jobs = parse_jobs(value)?;
                } else if let Some(value) = other.strip_prefix("--timeout-secs=") {
                    opts.timeout = Some(parse_timeout(value)?);
                } else if let Some(value) = other.strip_prefix("--retries=") {
                    opts.retries = parse_retries(value)?;
                } else if let Some(value) = other.strip_prefix("--trace-out=") {
                    opts.trace_out = Some(PathBuf::from(value));
                } else if let Some(value) = other.strip_prefix("--bench-out=") {
                    opts.bench_out = PathBuf::from(value);
                } else if other.starts_with('-') {
                    return Err(format!("unknown flag `{other}`"));
                } else {
                    opts.names.push(other.to_string());
                }
            }
        }
    }
    Ok(opts)
}

fn parse_jobs(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--jobs needs a positive integer, got `{value}`")),
    }
}

fn parse_timeout(value: &str) -> Result<Duration, String> {
    match value.parse::<f64>() {
        Ok(s) if s.is_finite() && s > 0.0 => Ok(Duration::from_secs_f64(s)),
        _ => Err(format!(
            "--timeout-secs needs a positive number of seconds, got `{value}`"
        )),
    }
}

fn parse_retries(value: &str) -> Result<u32, String> {
    value
        .parse::<u32>()
        .map_err(|_| format!("--retries needs a non-negative integer, got `{value}`"))
}

fn print_list() {
    for a in registry::REGISTRY {
        let csv = if a.has_csv() { "text,csv" } else { "text" };
        println!(
            "{:<16} {:<44} {:<10} [{csv}]",
            a.name, a.description, a.paper_ref
        );
    }
}

/// Builds one job per requested name. Unknown names become jobs that fail
/// with [`Error::UnknownArtifact`], so they surface in the run report and
/// error summary like any other per-artifact failure instead of aborting
/// the run.
fn build_jobs(names: &[String], csv: bool, transient: bool) -> Vec<Job> {
    names
        .iter()
        .map(|name| match registry::find(name) {
            Some(artifact) => artifact.job(csv).transient(transient),
            None => {
                let name = name.clone();
                Job::new(name.clone(), move || {
                    Err(Error::UnknownArtifact { name: name.clone() })
                })
            }
        })
        .collect()
}

/// The `--chaos` fault-injection jobs: one panics, one hangs well past
/// any test deadline, one fails twice then succeeds (exercising retry).
fn chaos_jobs() -> Vec<Job> {
    use std::sync::atomic::{AtomicU32, Ordering};
    static FLAKY_CALLS: AtomicU32 = AtomicU32::new(0);
    vec![
        Job::new("chaos-panic", || panic!("chaos: injected panic")),
        Job::new("chaos-hang", || {
            std::thread::sleep(Duration::from_secs(300));
            Ok("chaos: hang finished (no deadline was set)\n".into())
        }),
        Job::new("chaos-flaky", || {
            if FLAKY_CALLS.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(Error::InvalidParameter("chaos: injected glitch".into()))
            } else {
                Ok("chaos: recovered on attempt 3\n".into())
            }
        })
        .transient(true),
    ]
}

fn print_text_outputs(report: &RunReport, csv: bool) {
    for record in &report.records {
        if let Ok(text) = &record.outcome {
            if csv {
                println!("# {}", record.name);
                print!("{text}");
            } else {
                let pad = "=".repeat(60usize.saturating_sub(record.name.len()));
                println!("=== {} {pad}", record.name);
                println!("{text}");
            }
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1).collect()) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.list {
        print_list();
        return ExitCode::SUCCESS;
    }
    if opts.bench {
        let report = np_bench::perf::run(np_bench::perf::BenchOptions {
            quick: opts.bench_quick,
        });
        let json = report.to_json();
        if let Err(e) = std::fs::write(&opts.bench_out, &json) {
            eprintln!(
                "cannot write bench report to {}: {e}",
                opts.bench_out.display()
            );
            return ExitCode::FAILURE;
        }
        if let Some(speedup) = report.speedup("grid.pcg.seq", "grid.pcg.par") {
            println!(
                "pcg parallel speedup x{speedup:.2} on {} mesh ({} shards, {} cpus)",
                report.mesh_sizes.iter().max().copied().unwrap_or(0),
                report.shards,
                report.ncpu
            );
        }
        println!("bench report written to {}", opts.bench_out.display());
        return ExitCode::SUCCESS;
    }
    let names: Vec<String> = if opts.names.is_empty() && !opts.chaos {
        registry::names().iter().map(|n| n.to_string()).collect()
    } else {
        opts.names.clone()
    };
    let mut jobs = build_jobs(&names, opts.csv, opts.retries > 0);
    if opts.chaos {
        jobs.extend(chaos_jobs());
    }
    let policy = RunPolicy {
        deadline: opts.timeout,
        retries: opts.retries,
        ..RunPolicy::default()
    };
    // A collector is always installed: `--json` then carries a
    // `telemetry` section and `--trace-out` can dump the span timeline.
    // Text output is unaffected, preserving the byte-identical contract.
    let collector = telemetry::Collector::new();
    let report = {
        let _guard = telemetry::install(&collector);
        engine::run_with_policy(jobs, opts.jobs, policy)
    };
    if let Some(path) = &opts.trace_out {
        if let Err(e) = std::fs::write(path, collector.chrome_trace()) {
            eprintln!("cannot write trace to {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if opts.json {
        print!("{}", report.to_json());
    } else {
        print_text_outputs(&report, opts.csv);
    }
    let summary = report.error_summary();
    if summary.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprint!("{summary}");
        ExitCode::FAILURE
    }
}
