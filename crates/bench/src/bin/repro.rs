//! `repro` — regenerates every table and figure of Sylvester & Kaul,
//! DAC 2001, through the parallel artifact engine.
//!
//! Usage:
//!
//! ```text
//! repro                    # everything, in parallel
//! repro table2 fig5        # selected artifacts
//! repro --list             # the artifact registry
//! repro --csv fig1 fig2    # CSV form (figures only)
//! repro --json             # machine-readable run report
//! repro --jobs 4           # worker-thread count (default: all cores)
//! ```
//!
//! Artifacts run concurrently across `--jobs` worker threads, but output
//! is always printed in request order and is byte-identical to a
//! `--jobs 1` run — only the telemetry (`--json` durations and worker
//! attribution) varies. A failing artifact doesn't stop the run: the
//! rest regenerate, the error summary lists the casualties on stderr,
//! and the exit code reports failure.

use nanopower::engine::{self, Job, RunReport};
use nanopower::Error;
use np_bench::registry;
use std::process::ExitCode;

struct Options {
    list: bool,
    csv: bool,
    json: bool,
    jobs: usize,
    names: Vec<String>,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options {
        list: false,
        csv: false,
        json: false,
        jobs: default_jobs(),
        names: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" | "-l" => opts.list = true,
            "--csv" => opts.csv = true,
            "--json" => opts.json = true,
            "--jobs" | "-j" => {
                let value = it.next().ok_or("--jobs needs a worker count")?;
                opts.jobs = parse_jobs(&value)?;
            }
            other => {
                if let Some(value) = other.strip_prefix("--jobs=") {
                    opts.jobs = parse_jobs(value)?;
                } else if other.starts_with('-') {
                    return Err(format!("unknown flag `{other}`"));
                } else {
                    opts.names.push(other.to_string());
                }
            }
        }
    }
    Ok(opts)
}

fn parse_jobs(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--jobs needs a positive integer, got `{value}`")),
    }
}

fn print_list() {
    for a in registry::REGISTRY {
        let csv = if a.has_csv() { "text,csv" } else { "text" };
        println!(
            "{:<16} {:<44} {:<10} [{csv}]",
            a.name, a.description, a.paper_ref
        );
    }
}

/// Builds one job per requested name. Unknown names become jobs that fail
/// with [`Error::UnknownArtifact`], so they surface in the run report and
/// error summary like any other per-artifact failure instead of aborting
/// the run.
fn build_jobs(names: &[String], csv: bool) -> Vec<Job> {
    names
        .iter()
        .map(|name| match registry::find(name) {
            Some(artifact) => artifact.job(csv),
            None => {
                let name = name.clone();
                Job::new(name.clone(), move || Err(Error::UnknownArtifact { name }))
            }
        })
        .collect()
}

fn print_text_outputs(report: &RunReport, csv: bool) {
    for record in &report.records {
        if let Ok(text) = &record.outcome {
            if csv {
                println!("# {}", record.name);
                print!("{text}");
            } else {
                let pad = "=".repeat(60usize.saturating_sub(record.name.len()));
                println!("=== {} {pad}", record.name);
                println!("{text}");
            }
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1).collect()) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.list {
        print_list();
        return ExitCode::SUCCESS;
    }
    let names: Vec<String> = if opts.names.is_empty() {
        registry::names().iter().map(|n| n.to_string()).collect()
    } else {
        opts.names.clone()
    };
    let report = engine::run(build_jobs(&names, opts.csv), opts.jobs);
    if opts.json {
        print!("{}", report.to_json());
    } else {
        print_text_outputs(&report, opts.csv);
    }
    let summary = report.error_summary();
    if summary.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprint!("{summary}");
        ExitCode::FAILURE
    }
}
