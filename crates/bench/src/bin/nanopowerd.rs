//! `nanopowerd` — the persistent analysis service.
//!
//! A zero-dependency JSON-lines server (protocol: `nanopowerd/v1`, see
//! `nanopower::proto`) that keeps the artifact registry hot behind a
//! unix socket (or `--tcp addr`): a cross-request artifact memo, a
//! process-wide shared mesh cache, bounded admission control with typed
//! `busy` backpressure, and per-request deadlines wired to the engine's
//! graceful cancellation.
//!
//! ```text
//! nanopowerd serve --socket /tmp/nanopower.sock [--tcp 127.0.0.1:7070]
//!            [--workers N] [--max-inflight N] [--queue-depth N] [--hold-ms N]
//! nanopowerd load  --socket PATH|--tcp ADDR [--connections N] [--requests N]
//!            [--csv] [--quick] [--out BENCH_serve.json]
//! nanopowerd stats --socket PATH|--tcp ADDR
//! nanopowerd shutdown --socket PATH|--tcp ADDR
//! ```

use nanopower::engine::{CancelToken, Job, JobRecord, Session};
use nanopower::proto::{Hello, RecordMsg, ReportMsg, Request, Response, RunRequest, StatsMsg};
use nanopower::service::{AdmissionGate, ArtifactMemo, ServiceCounters};
use nanopower::Error;
use np_bench::registry;
use np_bench::serve::ServeReport;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("load") => cmd_load(&args[1..]),
        Some("stats") => cmd_oneshot(&args[1..], Request::Stats),
        Some("shutdown") => cmd_oneshot(&args[1..], Request::Shutdown),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
nanopowerd - persistent nanopower analysis service (nanopowerd/v1)

USAGE:
    nanopowerd serve    --socket PATH | --tcp ADDR [serve options]
    nanopowerd load     --socket PATH | --tcp ADDR [load options]
    nanopowerd stats    --socket PATH | --tcp ADDR
    nanopowerd shutdown --socket PATH | --tcp ADDR

SERVE OPTIONS:
    --workers N       engine workers per request (default: all cores)
    --max-inflight N  concurrent requests executing (default: 2)
    --queue-depth N   requests allowed to wait for a slot (default: 8)
    --hold-ms N       hold each admission slot N extra ms (test hook)

LOAD OPTIONS:
    --connections N   concurrent client connections (default: 4)
    --requests N      requests per connection (default: 25)
    --csv             request CSV artifact forms
    --quick           small fast run (2 connections x 5 requests)
    --out PATH        report path (default: BENCH_serve.json)
";

/// Where the daemon listens / the client connects.
#[derive(Debug, Clone)]
enum Endpoint {
    #[cfg(unix)]
    Unix(String),
    Tcp(String),
}

/// Pulls `--socket`/`--tcp` out of `args`, returning the endpoint and
/// the remaining arguments.
fn parse_endpoint(args: &[String]) -> Result<(Endpoint, Vec<String>), String> {
    let mut endpoint = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                let path = it.next().ok_or("--socket needs a path")?;
                #[cfg(unix)]
                {
                    endpoint = Some(Endpoint::Unix(path.clone()));
                }
                #[cfg(not(unix))]
                {
                    let _ = path;
                    return Err("--socket requires a unix platform; use --tcp".into());
                }
            }
            "--tcp" => {
                let addr = it.next().ok_or("--tcp needs an address")?;
                endpoint = Some(Endpoint::Tcp(addr.clone()));
            }
            _ => rest.push(arg.clone()),
        }
    }
    let endpoint = endpoint.ok_or("one of --socket PATH or --tcp ADDR is required")?;
    Ok((endpoint, rest))
}

fn parse_flag_value<T: std::str::FromStr>(
    rest: &[String],
    flag: &str,
    default: T,
) -> Result<T, String> {
    match rest.iter().position(|a| a == flag) {
        Some(i) => rest
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("{flag} value is not valid")),
        None => Ok(default),
    }
}

// ---------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------

/// Everything the connection handlers share.
struct ServerState {
    memo: ArtifactMemo,
    gate: AdmissionGate,
    counters: ServiceCounters,
    workers: usize,
    hold_ms: u64,
    shutdown: AtomicBool,
}

fn cmd_serve(args: &[String]) -> i32 {
    let (endpoint, rest) = match parse_endpoint(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("nanopowerd serve: {e}");
            return 2;
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let opts = (
        parse_flag_value(&rest, "--workers", cores),
        parse_flag_value(&rest, "--max-inflight", 2usize),
        parse_flag_value(&rest, "--queue-depth", 8usize),
        parse_flag_value(&rest, "--hold-ms", 0u64),
    );
    let (workers, max_inflight, queue_depth, hold_ms) = match opts {
        (Ok(w), Ok(m), Ok(q), Ok(h)) => (w, m, q, h),
        (Err(e), ..) | (_, Err(e), ..) | (_, _, Err(e), _) | (.., Err(e)) => {
            eprintln!("nanopowerd serve: {e}");
            return 2;
        }
    };
    let state = Arc::new(ServerState {
        memo: ArtifactMemo::new(),
        gate: AdmissionGate::new(max_inflight, queue_depth),
        counters: ServiceCounters::new(),
        workers,
        hold_ms,
        shutdown: AtomicBool::new(false),
    });
    // One shared mesh cache for the whole daemon: every request on every
    // connection reuses assembled meshes and warm starts.
    let _mesh_cache = np_grid::mesh::scoped_process_cache(true);
    match serve_on(&endpoint, &state) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("nanopowerd serve: {e}");
            1
        }
    }
}

fn serve_on(endpoint: &Endpoint, state: &Arc<ServerState>) -> std::io::Result<()> {
    let mut handles = Vec::new();
    match endpoint {
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            use std::os::unix::net::UnixListener;
            // A dead daemon leaves its socket file behind; re-binding
            // requires clearing it first.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            eprintln!(
                "nanopowerd: listening on {path} ({} workers)",
                state.workers
            );
            accept_loop(state, &mut handles, || listener.accept().map(|(s, _)| s));
            let _ = std::fs::remove_file(path);
        }
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            eprintln!(
                "nanopowerd: listening on {addr} ({} workers)",
                state.workers
            );
            accept_loop(state, &mut handles, || listener.accept().map(|(s, _)| s));
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
    Ok(())
}

/// Polls a nonblocking listener until a shutdown request flips the
/// flag, spawning one handler thread per accepted connection.
fn accept_loop<S, A>(
    state: &Arc<ServerState>,
    handles: &mut Vec<std::thread::JoinHandle<()>>,
    mut accept: A,
) where
    S: Read + Write + TryCloneStream + Send + 'static,
    A: FnMut() -> std::io::Result<S>,
{
    while !state.shutdown.load(Ordering::SeqCst) {
        match accept() {
            Ok(stream) => {
                let state = Arc::clone(state);
                handles.push(std::thread::spawn(move || {
                    // A connection that fails mid-stream (client went
                    // away) is normal; the error is its own signal.
                    let _ = serve_conn(stream, &state);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("nanopowerd: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Both socket flavors can clone themselves into a second handle (so
/// one side reads lines while the other writes responses) and take a
/// read timeout (so idle handlers notice the shutdown flag).
trait TryCloneStream: Sized {
    fn try_clone_stream(&self) -> std::io::Result<Self>;
    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;
}

#[cfg(unix)]
impl TryCloneStream for std::os::unix::net::UnixStream {
    fn try_clone_stream(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

impl TryCloneStream for TcpStream {
    fn try_clone_stream(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

fn write_line<W: Write>(writer: &Mutex<W>, response: &Response) -> std::io::Result<()> {
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    w.write_all(response.to_json().as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// One connection: greet, then answer request lines until EOF or a
/// shutdown request.
fn serve_conn<S>(stream: S, state: &Arc<ServerState>) -> std::io::Result<()>
where
    S: Read + Write + TryCloneStream + Send + 'static,
{
    // A bounded read timeout lets idle connections poll the shutdown
    // flag instead of blocking the daemon's exit on their next line.
    stream.set_stream_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = BufReader::new(stream.try_clone_stream()?);
    let writer = Arc::new(Mutex::new(stream));
    write_line(
        &writer,
        &Response::Hello(Hello {
            artifacts: registry::names().len(),
        }),
    )?;
    let mut line = String::new();
    loop {
        // `read_line` keeps any partial line in `line` across a
        // timeout, so a slow writer is reassembled, not corrupted.
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let request = std::mem::take(&mut line);
        if request.trim().is_empty() {
            continue;
        }
        match Request::parse(request.trim_end()) {
            Ok(Request::Run(run)) => handle_run(&run, &writer, state)?,
            Ok(Request::Stats) => {
                let snap = state.counters.snapshot();
                let (mesh_hits, mesh_misses) = np_grid::mesh::process_cache_stats();
                write_line(
                    &writer,
                    &Response::Stats(StatsMsg {
                        accepted: snap.accepted,
                        served: snap.served,
                        memo_hits: snap.memo_hits,
                        cancelled: snap.cancelled,
                        rejected: snap.rejected,
                        protocol_errors: snap.protocol_errors,
                        memo_entries: state.memo.len() as u64,
                        mesh_hits,
                        mesh_misses,
                    }),
                )?;
            }
            Ok(Request::Shutdown) => {
                state.shutdown.store(true, Ordering::SeqCst);
                write_line(&writer, &Response::Shutdown)?;
                break;
            }
            Err(Error::Protocol { reason }) => {
                state.counters.bump(&state.counters.protocol_errors);
                write_line(&writer, &Response::Protocol { reason })?;
            }
            Err(other) => {
                state.counters.bump(&state.counters.protocol_errors);
                write_line(
                    &writer,
                    &Response::Protocol {
                        reason: other.to_string(),
                    },
                )?;
            }
        }
    }
    Ok(())
}

/// Serves one `run` request: admission, memo short-circuit, engine run
/// with streamed records, terminal report.
fn handle_run<W>(
    run: &RunRequest,
    writer: &Arc<Mutex<W>>,
    state: &Arc<ServerState>,
) -> std::io::Result<()>
where
    W: Write + Send + 'static,
{
    let Some(permit) = state.gate.admit() else {
        state.counters.bump(&state.counters.rejected);
        return write_line(
            writer,
            &Response::Busy {
                inflight: state.gate.inflight() as u64,
                capacity: state.gate.capacity() as u64,
            },
        );
    };
    state.counters.bump(&state.counters.accepted);
    let start = Instant::now();
    let token = CancelToken::new();
    // Deadline watcher, armed at admission so the budget covers the
    // whole request: a channel send on completion beats the timeout;
    // the timeout cancels the run instead.
    let watcher = run.deadline_ms.map(|ms| {
        let token = token.clone();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            if done_rx.recv_timeout(Duration::from_millis(ms)) == Err(RecvTimeoutError::Timeout) {
                token.cancel();
            }
        });
        (done_tx, handle)
    });
    if state.hold_ms > 0 {
        // Test hook: keep the admission slot busy so backpressure (and
        // deadline expiry) is observable deterministically.
        std::thread::sleep(Duration::from_millis(state.hold_ms));
    }

    // Memo pass: serve already-rendered artifacts without burning an
    // engine slot; only the misses become jobs.
    let mut jobs = Vec::new();
    let mut ok = 0u64;
    let mut memo_hits = 0u64;
    for name in &run.names {
        let key = ArtifactMemo::request_key(name, run.csv);
        if let Some(entry) = state.memo.get(key) {
            memo_hits += 1;
            ok += 1;
            state.counters.bump(&state.counters.memo_hits);
            write_line(
                writer,
                &Response::Record(RecordMsg {
                    name: name.clone(),
                    status: "ok".into(),
                    duration_ms: 0.0,
                    memo: true,
                    bytes: Some(entry.output.len() as u64),
                    digest: Some(entry.digest),
                    error: None,
                }),
            )?;
        } else {
            jobs.push(match registry::find(name) {
                Some(artifact) => artifact.job(run.csv),
                None => {
                    let name = name.clone();
                    Job::new(name.clone(), move || {
                        Err(Error::UnknownArtifact { name: name.clone() })
                    })
                }
            });
        }
    }

    let report = if jobs.is_empty() {
        None
    } else {
        let writer = Arc::clone(writer);
        let memo = Arc::clone(state);
        let csv = run.csv;
        let report = Session::new(jobs)
            .workers(state.workers)
            .cancel(token.clone())
            .on_record(move |_, record: &JobRecord| {
                if let Ok(output) = &record.outcome {
                    memo.memo
                        .insert(ArtifactMemo::request_key(&record.name, csv), output.clone());
                }
                let _ = write_line(
                    &writer,
                    &Response::Record(RecordMsg::from_record(record, false)),
                );
            })
            .run();
        Some(report)
    };
    if let Some((done_tx, handle)) = watcher {
        let _ = done_tx.send(());
        let _ = handle.join();
    }

    let mut failures = 0u64;
    let mut cancelled = 0u64;
    let mut interrupted = false;
    if let Some(report) = &report {
        interrupted = report.interrupted;
        for record in &report.records {
            match record.status() {
                "ok" => ok += 1,
                "cancelled" => cancelled += 1,
                _ => failures += 1,
            }
        }
    }
    if interrupted {
        state.counters.bump(&state.counters.cancelled);
    }
    state.counters.bump(&state.counters.served);
    // Release the slot before the terminal write: a client that has
    // read its report must be able to get its next request admitted.
    drop(permit);
    write_line(
        writer,
        &Response::Report(ReportMsg {
            ok,
            failures,
            cancelled,
            memo_hits,
            total_ms: start.elapsed().as_secs_f64() * 1e3,
            interrupted,
        }),
    )
}

// ---------------------------------------------------------------------
// client side
// ---------------------------------------------------------------------

/// A line-oriented client connection (hello already consumed).
struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Client {
    fn connect(endpoint: &Endpoint) -> Result<(Self, Hello), String> {
        let (read_half, write_half): (Box<dyn Read + Send>, Box<dyn Write + Send>) = match endpoint
        {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                use std::os::unix::net::UnixStream;
                let stream = UnixStream::connect(path)
                    .map_err(|e| format!("cannot connect to {path}: {e}"))?;
                let clone = stream
                    .try_clone()
                    .map_err(|e| format!("cannot clone socket: {e}"))?;
                (Box::new(clone), Box::new(stream))
            }
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)
                    .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
                let clone = stream
                    .try_clone()
                    .map_err(|e| format!("cannot clone socket: {e}"))?;
                (Box::new(clone), Box::new(stream))
            }
        };
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer: write_half,
        };
        match client.read_response()? {
            Response::Hello(hello) => Ok((client, hello)),
            other => Err(format!("expected hello, got {other:?}")),
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), String> {
        self.writer
            .write_all(request.to_json().as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    fn read_response(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("read failed: {e}"))?;
            if n == 0 {
                return Err("connection closed".into());
            }
            if !line.trim().is_empty() {
                return Response::parse(line.trim_end()).map_err(|e| e.to_string());
            }
        }
    }

    /// Sends a run request and reads until its terminal line, returning
    /// the report — or the `busy` rejection.
    fn run(&mut self, request: &RunRequest) -> Result<RunOutcome, String> {
        self.send(&Request::Run(request.clone()))?;
        loop {
            match self.read_response()? {
                Response::Record(_) => {}
                Response::Report(report) => return Ok(RunOutcome::Report(report)),
                Response::Busy { .. } => return Ok(RunOutcome::Busy),
                Response::Protocol { reason } => return Err(format!("protocol error: {reason}")),
                other => return Err(format!("unexpected response {other:?}")),
            }
        }
    }
}

enum RunOutcome {
    Report(ReportMsg),
    Busy,
}

// ---------------------------------------------------------------------
// load
// ---------------------------------------------------------------------

fn cmd_load(args: &[String]) -> i32 {
    let (endpoint, rest) = match parse_endpoint(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("nanopowerd load: {e}");
            return 2;
        }
    };
    let quick = rest.iter().any(|a| a == "--quick");
    let csv = rest.iter().any(|a| a == "--csv");
    let defaults = if quick {
        (2usize, 5u64)
    } else {
        (4usize, 25u64)
    };
    let opts = (
        parse_flag_value(&rest, "--connections", defaults.0),
        parse_flag_value(&rest, "--requests", defaults.1),
        parse_flag_value(&rest, "--out", "BENCH_serve.json".to_string()),
    );
    let (connections, requests, out) = match opts {
        (Ok(c), Ok(r), Ok(o)) => (c, r, o),
        (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => {
            eprintln!("nanopowerd load: {e}");
            return 2;
        }
    };
    match run_load(&endpoint, connections.max(1), requests.max(1), csv, quick) {
        Ok(report) => {
            println!("{}", report.summary());
            if let Err(e) = std::fs::write(&out, report.to_json()) {
                eprintln!("nanopowerd load: cannot write {out}: {e}");
                return 1;
            }
            println!("wrote {out}");
            if report.errors > 0 {
                1
            } else {
                0
            }
        }
        Err(e) => {
            eprintln!("nanopowerd load: {e}");
            1
        }
    }
}

/// Per-request latency/error tallies shared by the load threads.
#[derive(Default)]
struct LoadTally {
    latencies_ms: Vec<f64>,
    errors: u64,
    busy_retries: u64,
}

fn run_load(
    endpoint: &Endpoint,
    connections: usize,
    requests_per_conn: u64,
    csv: bool,
    quick: bool,
) -> Result<ServeReport, String> {
    // A small rotation of cheap artifacts: repeats within and across
    // connections are what make the daemon's memo observable.
    let names: Vec<String> = registry::names()
        .into_iter()
        .take(6)
        .map(str::to_owned)
        .collect();
    if names.is_empty() {
        return Err("artifact registry is empty".into());
    }
    let tally = Arc::new(Mutex::new(LoadTally::default()));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for conn in 0..connections {
            let names = &names;
            let tally = Arc::clone(&tally);
            let endpoint = endpoint.clone();
            scope.spawn(move || {
                let outcome = drive_connection(&endpoint, conn, requests_per_conn, names, csv);
                let mut tally = tally.lock().unwrap_or_else(PoisonError::into_inner);
                match outcome {
                    Ok(conn_tally) => {
                        tally.latencies_ms.extend(conn_tally.latencies_ms);
                        tally.errors += conn_tally.errors;
                        tally.busy_retries += conn_tally.busy_retries;
                    }
                    Err(e) => {
                        eprintln!("connection {conn}: {e}");
                        tally.errors += requests_per_conn;
                    }
                }
            });
        }
    });
    let total_wall = start.elapsed();
    // One more connection to collect the daemon's own counters.
    let memo_hits = match Client::connect(endpoint) {
        Ok((mut client, _)) => {
            client.send(&Request::Stats)?;
            match client.read_response()? {
                Response::Stats(stats) => stats.memo_hits,
                other => return Err(format!("expected stats, got {other:?}")),
            }
        }
        Err(e) => return Err(e),
    };
    let tally = tally.lock().unwrap_or_else(PoisonError::into_inner);
    Ok(ServeReport {
        connections,
        requests: connections as u64 * requests_per_conn,
        completed: tally.latencies_ms.len() as u64,
        errors: tally.errors,
        busy_retries: tally.busy_retries,
        memo_hits,
        quick,
        total_wall,
        latencies_ms: tally.latencies_ms.clone(),
    })
}

fn drive_connection(
    endpoint: &Endpoint,
    conn: usize,
    requests: u64,
    names: &[String],
    csv: bool,
) -> Result<LoadTally, String> {
    let (mut client, _hello) = Client::connect(endpoint)?;
    let mut tally = LoadTally::default();
    for i in 0..requests {
        // Rotate through the name set so every name repeats early.
        let name = &names[(conn + i as usize) % names.len()];
        let request = RunRequest {
            names: vec![name.clone()],
            csv,
            deadline_ms: Some(60_000),
        };
        let started = Instant::now();
        loop {
            match client.run(&request)? {
                RunOutcome::Report(report) => {
                    tally
                        .latencies_ms
                        .push(started.elapsed().as_secs_f64() * 1e3);
                    if report.failures > 0 || report.cancelled > 0 {
                        tally.errors += 1;
                    }
                    break;
                }
                RunOutcome::Busy => {
                    tally.busy_retries += 1;
                    if tally.busy_retries > 10_000 {
                        return Err("daemon stayed busy past the retry budget".into());
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }
    Ok(tally)
}

// ---------------------------------------------------------------------
// stats / shutdown
// ---------------------------------------------------------------------

fn cmd_oneshot(args: &[String], request: Request) -> i32 {
    let (endpoint, _rest) = match parse_endpoint(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("nanopowerd: {e}");
            return 2;
        }
    };
    let result = Client::connect(&endpoint).and_then(|(mut client, _)| {
        client.send(&request)?;
        client.read_response()
    });
    match result {
        Ok(response) => {
            println!("{}", response.to_json());
            0
        }
        Err(e) => {
            eprintln!("nanopowerd: {e}");
            1
        }
    }
}
