//! `nanopowerd` — the persistent analysis service.
//!
//! A zero-dependency JSON-lines server (protocol: `nanopowerd/v1`, see
//! `nanopower::proto`) that keeps the artifact registry hot behind a
//! unix socket (or `--tcp addr`): a bounded, optionally spill-backed
//! cross-request artifact memo, a process-wide shared mesh cache,
//! bounded admission control with typed `busy` backpressure and typed
//! `overloaded` load shedding, per-connection write deadlines so a
//! stalled client cannot wedge the shared record stream, a
//! max-connections gate, per-request deadlines wired to the engine's
//! graceful cancellation, and a self-watchdog behind the `health`
//! request.
//!
//! Untrusted scenario specs (`nanopower::spec`) enter through a
//! hardened pipeline: field-validated parsing with typed `invalid_spec`
//! rejections, a static cost gate (`--max-spec-cost`) answering typed
//! `too_expensive` before any work, and a bounded panic quarantine
//! (`--quarantine-max`) that turns a spec-induced worker panic into a
//! typed `panicked` record and rejects the same digest O(1) afterwards.
//!
//! ```text
//! nanopowerd serve --socket /tmp/nanopower.sock [--tcp 127.0.0.1:7070]
//!            [--workers N] [--max-inflight N] [--queue-depth N]
//!            [--max-connections N] [--shed-ms N] [--write-timeout-ms N]
//!            [--watchdog-ms N] [--memo-spill PATH] [--memo-max-entries N]
//!            [--memo-max-bytes N] [--max-spec-cost N] [--quarantine-max N]
//!            [--hold-ms N]
//! nanopowerd load  --socket PATH|--tcp ADDR [--connections N] [--requests N]
//!            [--csv] [--quick] [--seed N] [--out BENCH_serve.json]
//! nanopowerd stats --socket PATH|--tcp ADDR
//! nanopowerd health --socket PATH|--tcp ADDR
//! nanopowerd shutdown --socket PATH|--tcp ADDR
//! ```
//!
//! (There is also a hidden `chaos-proxy` subcommand exposing
//! `np_bench::chaos` for the chaos-serve CI job.)

use nanopower::engine::{CancelToken, Job, JobRecord, Session};
use nanopower::proto::{
    HealthMsg, Hello, RecordMsg, ReportMsg, Request, Response, RunRequest, StatsMsg,
};
use nanopower::roadmap::TechNode;
use nanopower::service::{
    Admission, AdmissionGate, ArtifactMemo, MemoConfig, Quarantine, ServiceCounters,
};
use nanopower::spec::{GridSpec, ScenarioSpec, DEFAULT_COST_BUDGET};
use nanopower::Error;
use np_bench::registry;
use np_bench::serve::{DaemonCounters, KindStats, ServeReport};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("load") => cmd_load(&args[1..]),
        Some("stats") => cmd_oneshot(&args[1..], Request::Stats),
        Some("health") => cmd_oneshot(&args[1..], Request::Health),
        Some("shutdown") => cmd_oneshot(&args[1..], Request::Shutdown),
        #[cfg(unix)]
        Some("chaos-proxy") => cmd_chaos_proxy(&args[1..]),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
nanopowerd - persistent nanopower analysis service (nanopowerd/v1)

USAGE:
    nanopowerd serve    --socket PATH | --tcp ADDR [serve options]
    nanopowerd load     --socket PATH | --tcp ADDR [load options]
    nanopowerd stats    --socket PATH | --tcp ADDR
    nanopowerd health   --socket PATH | --tcp ADDR
    nanopowerd shutdown --socket PATH | --tcp ADDR

SERVE OPTIONS:
    --workers N            engine workers per request (default: all cores)
    --max-inflight N       concurrent requests executing (default: 2)
    --queue-depth N        requests allowed to wait for a slot (default: 8)
    --max-connections N    concurrent connections served (default: 64)
    --shed-ms N            queue-wait budget before a typed `overloaded`
                           response is shed (default: 2000)
    --write-timeout-ms N   per-connection write deadline; a client that
                           stalls past it stops receiving (default: 2000)
    --watchdog-ms N        oldest-inflight age at which the self-watchdog
                           fails the health check (default: 30000)
    --memo-spill PATH      persist the artifact memo to an fsync'd spill
                           file and rehydrate it on restart
    --memo-max-entries N   memo entry cap, LRU-evicted (default: 256)
    --memo-max-bytes N     memo byte cap, LRU-evicted (default: 67108864)
    --max-spec-cost N      cost-unit budget per request for scenario
                           specs; pricier requests get a typed
                           `too_expensive` before any work runs
                           (default: 100000)
    --quarantine-max N     panic-quarantine capacity, LRU-evicted
                           (default: 1024)
    --hold-ms N            hold each admission slot N extra ms (test hook)

LOAD OPTIONS:
    --connections N   concurrent client connections (default: 4)
    --requests N      requests per connection (default: 25)
    --csv             request CSV artifact forms
    --quick           small fast run (2 connections x 5 requests)
    --seed N          mixed-workload seed: which requests carry scenario
                      specs instead of registry names (default: 1)
    --out PATH        report path (default: BENCH_serve.json)
";

/// Where the daemon listens / the client connects.
#[derive(Debug, Clone)]
enum Endpoint {
    #[cfg(unix)]
    Unix(String),
    Tcp(String),
}

/// Pulls `--socket`/`--tcp` out of `args`, returning the endpoint and
/// the remaining arguments.
fn parse_endpoint(args: &[String]) -> Result<(Endpoint, Vec<String>), String> {
    let mut endpoint = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                let path = it.next().ok_or("--socket needs a path")?;
                #[cfg(unix)]
                {
                    endpoint = Some(Endpoint::Unix(path.clone()));
                }
                #[cfg(not(unix))]
                {
                    let _ = path;
                    return Err("--socket requires a unix platform; use --tcp".into());
                }
            }
            "--tcp" => {
                let addr = it.next().ok_or("--tcp needs an address")?;
                endpoint = Some(Endpoint::Tcp(addr.clone()));
            }
            _ => rest.push(arg.clone()),
        }
    }
    let endpoint = endpoint.ok_or("one of --socket PATH or --tcp ADDR is required")?;
    Ok((endpoint, rest))
}

fn parse_flag_value<T: std::str::FromStr>(
    rest: &[String],
    flag: &str,
    default: T,
) -> Result<T, String> {
    match rest.iter().position(|a| a == flag) {
        Some(i) => rest
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("{flag} value is not valid")),
        None => Ok(default),
    }
}

fn parse_flag_opt(rest: &[String], flag: &str) -> Result<Option<String>, String> {
    match rest.iter().position(|a| a == flag) {
        Some(i) => rest
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value")),
        None => Ok(None),
    }
}

// ---------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------

/// Everything the connection handlers share.
struct ServerState {
    memo: ArtifactMemo,
    gate: AdmissionGate,
    counters: ServiceCounters,
    /// Digests of specs that panicked a worker: repeats are rejected
    /// O(1) with the original panic message, without re-running.
    quarantine: Quarantine,
    /// Per-request cost-unit budget for scenario specs; estimates above
    /// it are answered with a typed `too_expensive` before any work.
    max_spec_cost: u64,
    workers: usize,
    hold_ms: u64,
    /// Queue-wait budget before a run is shed with `overloaded`.
    shed_budget: Duration,
    /// Per-connection write deadline; a client stalled past it is
    /// marked dead and stops receiving.
    write_timeout: Duration,
    /// Oldest-inflight age at which the watchdog declares the worker
    /// pool stuck.
    watchdog: Duration,
    /// Concurrent-connection cap; excess connections get a typed
    /// rejection line and are closed.
    max_connections: usize,
    /// Connections currently being served.
    connections: AtomicUsize,
    /// Set by the watchdog while the oldest inflight request exceeds
    /// the threshold — `health` reports `ready: false`.
    stuck: AtomicBool,
    started: Instant,
    shutdown: AtomicBool,
}

impl ServerState {
    fn health(&self) -> HealthMsg {
        let oldest = self.gate.oldest_inflight_age().unwrap_or(Duration::ZERO);
        let stuck = self.stuck.load(Ordering::SeqCst) || oldest >= self.watchdog;
        HealthMsg {
            ready: !stuck && !self.shutdown.load(Ordering::SeqCst),
            inflight: self.gate.inflight() as u64,
            capacity: self.gate.capacity() as u64,
            oldest_inflight_ms: oldest.as_millis() as u64,
            uptime_ms: self.started.elapsed().as_millis() as u64,
            memo_entries: self.memo.len() as u64,
            memo_bytes: self.memo.approx_bytes() as u64,
            spill_active: self.memo.spill_active(),
            shed: self.counters.snapshot().overloaded,
            quarantine_entries: self.quarantine.len() as u64,
        }
    }
}

fn cmd_serve(args: &[String]) -> i32 {
    let (endpoint, rest) = match parse_endpoint(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("nanopowerd serve: {e}");
            return 2;
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let parsed = (|| -> Result<_, String> {
        Ok((
            parse_flag_value(&rest, "--workers", cores)?,
            parse_flag_value(&rest, "--max-inflight", 2usize)?,
            parse_flag_value(&rest, "--queue-depth", 8usize)?,
            parse_flag_value(&rest, "--max-connections", 64usize)?,
            parse_flag_value(&rest, "--shed-ms", 2000u64)?,
            parse_flag_value(&rest, "--write-timeout-ms", 2000u64)?,
            parse_flag_value(&rest, "--watchdog-ms", 30_000u64)?,
            parse_flag_opt(&rest, "--memo-spill")?,
            parse_flag_value(&rest, "--memo-max-entries", 256usize)?,
            parse_flag_value(&rest, "--memo-max-bytes", 64usize << 20)?,
            parse_flag_value(&rest, "--max-spec-cost", DEFAULT_COST_BUDGET)?,
            parse_flag_value(&rest, "--quarantine-max", Quarantine::DEFAULT_MAX)?,
            parse_flag_value(&rest, "--hold-ms", 0u64)?,
        ))
    })();
    let (
        workers,
        max_inflight,
        queue_depth,
        max_connections,
        shed_ms,
        write_timeout_ms,
        watchdog_ms,
        memo_spill,
        memo_max_entries,
        memo_max_bytes,
        max_spec_cost,
        quarantine_max,
        hold_ms,
    ) = match parsed {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("nanopowerd serve: {e}");
            return 2;
        }
    };
    let memo_config = MemoConfig {
        max_entries: memo_max_entries,
        max_bytes: memo_max_bytes,
    };
    let memo = match &memo_spill {
        Some(path) => match ArtifactMemo::with_spill(path, memo_config) {
            Ok((memo, report)) => {
                eprintln!(
                    "nanopowerd: memo spill {path}: {} rehydrated, {} dropped",
                    report.rehydrated, report.dropped
                );
                memo
            }
            Err(e) => {
                eprintln!("nanopowerd serve: {e}");
                return 1;
            }
        },
        None => ArtifactMemo::with_config(memo_config),
    };
    let state = Arc::new(ServerState {
        memo,
        gate: AdmissionGate::new(max_inflight, queue_depth),
        counters: ServiceCounters::new(),
        quarantine: Quarantine::new(quarantine_max),
        max_spec_cost,
        workers,
        hold_ms,
        shed_budget: Duration::from_millis(shed_ms),
        write_timeout: Duration::from_millis(write_timeout_ms.max(1)),
        watchdog: Duration::from_millis(watchdog_ms.max(1)),
        max_connections: max_connections.max(1),
        connections: AtomicUsize::new(0),
        stuck: AtomicBool::new(false),
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
    });
    // One shared mesh cache for the whole daemon: every request on every
    // connection reuses assembled meshes and warm starts.
    let _mesh_cache = np_grid::mesh::scoped_process_cache(true);
    let watchdog = spawn_watchdog(&state);
    let code = match serve_on(&endpoint, &state) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("nanopowerd serve: {e}");
            state.shutdown.store(true, Ordering::SeqCst);
            1
        }
    };
    let _ = watchdog.join();
    code
}

/// The self-watchdog: periodically compares the oldest inflight
/// request's age against the threshold and flips the `stuck` flag the
/// health check reports. Purely observational — it never kills work,
/// it makes the wedge visible to a supervisor.
fn spawn_watchdog(state: &Arc<ServerState>) -> std::thread::JoinHandle<()> {
    let state = Arc::clone(state);
    std::thread::spawn(move || {
        let interval =
            (state.watchdog / 4).clamp(Duration::from_millis(25), Duration::from_secs(1));
        while !state.shutdown.load(Ordering::SeqCst) {
            let oldest = state.gate.oldest_inflight_age().unwrap_or(Duration::ZERO);
            let stuck = oldest >= state.watchdog;
            if stuck && !state.stuck.swap(stuck, Ordering::SeqCst) {
                eprintln!(
                    "nanopowerd: watchdog: oldest inflight request stuck for {} ms \
                     (threshold {} ms); health now not ready",
                    oldest.as_millis(),
                    state.watchdog.as_millis()
                );
            } else {
                state.stuck.store(stuck, Ordering::SeqCst);
            }
            std::thread::sleep(interval);
        }
    })
}

/// Binds the unix listener, probing (instead of clobbering) an existing
/// socket file: a live daemon answers the probe and wins; a stale file
/// left by a killed process refuses it and is unlinked.
#[cfg(unix)]
fn bind_unix(path: &str) -> std::io::Result<std::os::unix::net::UnixListener> {
    use std::os::unix::net::{UnixListener, UnixStream};
    match UnixListener::bind(path) {
        Ok(listener) => Ok(listener),
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => match UnixStream::connect(path) {
            Ok(_) => Err(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!("{path}: another daemon is already listening"),
            )),
            Err(_) => {
                eprintln!("nanopowerd: removing stale socket {path}");
                std::fs::remove_file(path)?;
                UnixListener::bind(path)
            }
        },
        Err(e) => Err(e),
    }
}

fn serve_on(endpoint: &Endpoint, state: &Arc<ServerState>) -> std::io::Result<()> {
    let mut handles = Vec::new();
    match endpoint {
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            let listener = bind_unix(path)?;
            listener.set_nonblocking(true)?;
            eprintln!(
                "nanopowerd: listening on {path} ({} workers)",
                state.workers
            );
            accept_loop(state, &mut handles, || listener.accept().map(|(s, _)| s));
            let _ = std::fs::remove_file(path);
        }
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            eprintln!(
                "nanopowerd: listening on {addr} ({} workers)",
                state.workers
            );
            accept_loop(state, &mut handles, || listener.accept().map(|(s, _)| s));
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
    Ok(())
}

/// Decrements the live-connection count when a handler exits.
struct ConnSlot(Arc<ServerState>);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Polls a nonblocking listener until a shutdown request flips the
/// flag, spawning one handler thread per accepted connection — unless
/// the connection cap is reached, in which case the connection gets a
/// typed rejection line and is closed without a handler.
fn accept_loop<S, A>(
    state: &Arc<ServerState>,
    handles: &mut Vec<std::thread::JoinHandle<()>>,
    mut accept: A,
) where
    S: Read + Write + TryCloneStream + Send + 'static,
    A: FnMut() -> std::io::Result<S>,
{
    while !state.shutdown.load(Ordering::SeqCst) {
        match accept() {
            Ok(mut stream) => {
                let live = state.connections.fetch_add(1, Ordering::SeqCst) + 1;
                let slot = ConnSlot(Arc::clone(state));
                if live > state.max_connections {
                    state.counters.bump(&state.counters.conn_rejected);
                    let line = Response::Protocol {
                        reason: format!(
                            "connection limit reached ({} active, cap {})",
                            live - 1,
                            state.max_connections
                        ),
                    }
                    .to_json();
                    let _ = stream.write_all(line.as_bytes());
                    let _ = stream.write_all(b"\n");
                    let _ = stream.flush();
                    drop(slot);
                    continue;
                }
                let state = Arc::clone(state);
                handles.push(std::thread::spawn(move || {
                    let _slot = slot;
                    // A connection that fails mid-stream (client went
                    // away) is normal; the error is its own signal.
                    let _ = serve_conn(stream, &state);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("nanopowerd: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Both socket flavors can clone themselves into a second handle (so
/// one side reads lines while the other writes responses) and take
/// read/write timeouts (so idle handlers notice the shutdown flag, and
/// a stalled client cannot wedge a writer).
trait TryCloneStream: Sized {
    fn try_clone_stream(&self) -> std::io::Result<Self>;
    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;
    fn set_stream_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;
}

#[cfg(unix)]
impl TryCloneStream for std::os::unix::net::UnixStream {
    fn try_clone_stream(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
    fn set_stream_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_write_timeout(timeout)
    }
}

impl TryCloneStream for TcpStream {
    fn try_clone_stream(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
    fn set_stream_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_write_timeout(timeout)
    }
}

/// The shared write half of one connection: a mutex-serialized writer
/// plus a dead flag. The stream carries a write deadline; the first
/// write that trips it marks the connection dead, and every later write
/// is dropped silently — record streaming happens on the engine's
/// shared worker threads, so a wedged client costs the pool at most one
/// deadline, not a worker forever.
struct ConnWriter<W> {
    writer: Mutex<W>,
    dead: AtomicBool,
}

impl<W: Write> ConnWriter<W> {
    fn new(writer: W) -> Self {
        ConnWriter {
            writer: Mutex::new(writer),
            dead: AtomicBool::new(false),
        }
    }

    /// Writes one response line. A deadline trip (or any other write
    /// failure) marks the connection dead and is swallowed; callers that
    /// must know can check [`ConnWriter::is_dead`].
    fn send(&self, state: &ServerState, response: &Response) -> std::io::Result<()> {
        if self.dead.load(Ordering::SeqCst) {
            return Ok(());
        }
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let outcome = w
            .write_all(response.to_json().as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .and_then(|()| w.flush());
        drop(w);
        if let Err(e) = outcome {
            self.dead.store(true, Ordering::SeqCst);
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                state.counters.bump(&state.counters.write_timeouts);
            }
        }
        Ok(())
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }
}

/// One connection: greet, then answer request lines until EOF, a dead
/// write half, or a shutdown request.
fn serve_conn<S>(stream: S, state: &Arc<ServerState>) -> std::io::Result<()>
where
    S: Read + Write + TryCloneStream + Send + 'static,
{
    // A bounded read timeout lets idle connections poll the shutdown
    // flag instead of blocking the daemon's exit on their next line;
    // the write timeout is the slow-client wedge guard.
    stream.set_stream_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_stream_write_timeout(Some(state.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone_stream()?);
    let writer = Arc::new(ConnWriter::new(stream));
    writer.send(
        state,
        &Response::Hello(Hello {
            artifacts: registry::names().len(),
        }),
    )?;
    let mut line = String::new();
    loop {
        if writer.is_dead() {
            // The client stopped reading past the deadline; nothing we
            // produce can reach it anymore.
            break;
        }
        // `read_line` keeps any partial line in `line` across a
        // timeout, so a slow writer is reassembled, not corrupted.
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let request = std::mem::take(&mut line);
        if request.trim().is_empty() {
            continue;
        }
        match Request::parse(request.trim_end()) {
            Ok(Request::Run(run)) => handle_run(&run, &writer, state)?,
            Ok(Request::Stats) => {
                let snap = state.counters.snapshot();
                let (mesh_hits, mesh_misses) = np_grid::mesh::process_cache_stats();
                writer.send(
                    state,
                    &Response::Stats(StatsMsg {
                        accepted: snap.accepted,
                        served: snap.served,
                        memo_hits: snap.memo_hits,
                        cancelled: snap.cancelled,
                        rejected: snap.rejected,
                        overloaded: snap.overloaded,
                        conn_rejected: snap.conn_rejected,
                        write_timeouts: snap.write_timeouts,
                        protocol_errors: snap.protocol_errors,
                        invalid_specs: snap.invalid_specs,
                        too_expensive: snap.too_expensive,
                        panicked: snap.panicked,
                        quarantined: snap.quarantined,
                        quarantine_entries: state.quarantine.len() as u64,
                        memo_entries: state.memo.len() as u64,
                        memo_bytes: state.memo.approx_bytes() as u64,
                        memo_evictions: state.memo.evictions(),
                        mesh_hits,
                        mesh_misses,
                    }),
                )?;
            }
            Ok(Request::Health) => {
                writer.send(state, &Response::Health(state.health()))?;
            }
            Ok(Request::Shutdown) => {
                state.shutdown.store(true, Ordering::SeqCst);
                writer.send(state, &Response::Shutdown)?;
                break;
            }
            Err(Error::Protocol { reason }) => {
                state.counters.bump(&state.counters.protocol_errors);
                writer.send(state, &Response::Protocol { reason })?;
            }
            Err(Error::InvalidSpec { field, reason }) => {
                state.counters.bump(&state.counters.invalid_specs);
                writer.send(state, &Response::InvalidSpec { field, reason })?;
            }
            Err(other) => {
                state.counters.bump(&state.counters.protocol_errors);
                writer.send(
                    state,
                    &Response::Protocol {
                        reason: other.to_string(),
                    },
                )?;
            }
        }
    }
    Ok(())
}

/// Serves one `run` request: admission (with queue-wait shedding),
/// memo short-circuit, engine run with streamed records, terminal
/// report.
fn handle_run<W>(
    run: &RunRequest,
    writer: &Arc<ConnWriter<W>>,
    state: &Arc<ServerState>,
) -> std::io::Result<()>
where
    W: Write + Send + 'static,
{
    // Cost gate: a static estimate of the specs' work, answered before
    // admission so an over-budget request never consumes a slot (or any
    // compute). Registry names are pre-vetted and bypass the gate.
    let estimate: u64 = run.specs.iter().map(ScenarioSpec::cost).sum();
    if estimate > state.max_spec_cost {
        state.counters.bump(&state.counters.too_expensive);
        return writer.send(
            state,
            &Response::TooExpensive {
                estimate,
                budget: state.max_spec_cost,
            },
        );
    }
    let permit = match state.gate.admit_within(Some(state.shed_budget)) {
        Admission::Admitted(permit) => permit,
        Admission::QueueFull => {
            state.counters.bump(&state.counters.rejected);
            return writer.send(
                state,
                &Response::Busy {
                    inflight: state.gate.inflight() as u64,
                    capacity: state.gate.capacity() as u64,
                },
            );
        }
        Admission::Shed { waited } => {
            state.counters.bump(&state.counters.overloaded);
            return writer.send(
                state,
                &Response::Overloaded {
                    waited_ms: waited.as_millis() as u64,
                    budget_ms: state.shed_budget.as_millis() as u64,
                },
            );
        }
    };
    state.counters.bump(&state.counters.accepted);
    let start = Instant::now();
    let token = CancelToken::new();
    // Deadline watcher, armed at admission so the budget covers the
    // whole request: a channel send on completion beats the timeout;
    // the timeout cancels the run instead.
    let watcher = run.deadline_ms.map(|ms| {
        let token = token.clone();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            if done_rx.recv_timeout(Duration::from_millis(ms)) == Err(RecvTimeoutError::Timeout) {
                token.cancel();
            }
        });
        (done_tx, handle)
    });
    if state.hold_ms > 0 {
        // Test hook: keep the admission slot busy so backpressure (and
        // deadline expiry) is observable deterministically.
        std::thread::sleep(Duration::from_millis(state.hold_ms));
    }

    // Memo pass: serve already-rendered artifacts without burning an
    // engine slot; only the misses become jobs.
    let mut jobs = Vec::new();
    let mut ok = 0u64;
    let mut memo_hits = 0u64;
    for name in &run.names {
        let key = ArtifactMemo::request_key(name, run.csv);
        if let Some(entry) = state.memo.get(key) {
            memo_hits += 1;
            ok += 1;
            state.counters.bump(&state.counters.memo_hits);
            writer.send(
                state,
                &Response::Record(RecordMsg {
                    name: name.clone(),
                    status: "ok".into(),
                    duration_ms: 0.0,
                    memo: true,
                    bytes: Some(entry.output.len() as u64),
                    digest: Some(entry.digest),
                    error: None,
                }),
            )?;
        } else {
            jobs.push(match registry::find(name) {
                Some(artifact) => artifact.job(run.csv),
                None => {
                    let name = name.clone();
                    Job::new(name.clone(), move || {
                        Err(Error::UnknownArtifact { name: name.clone() })
                    })
                }
            });
        }
    }

    // Spec pass: quarantined digests are rejected O(1) with the original
    // panic message; memoized digests are served like registry hits; the
    // rest become render jobs keyed by their canonical digest.
    let mut pre_failures = 0u64;
    let mut spec_digests: HashMap<String, u64> = HashMap::new();
    for spec in &run.specs {
        let digest = spec.digest();
        let name = spec.job_name();
        if let Some(message) = state.quarantine.check(digest) {
            state.counters.bump(&state.counters.quarantined);
            pre_failures += 1;
            writer.send(
                state,
                &Response::Record(RecordMsg {
                    name,
                    status: "quarantined".into(),
                    duration_ms: 0.0,
                    memo: false,
                    bytes: None,
                    digest: None,
                    error: Some(message),
                }),
            )?;
            continue;
        }
        let key = ArtifactMemo::request_key(&name, run.csv);
        if let Some(entry) = state.memo.get(key) {
            memo_hits += 1;
            ok += 1;
            state.counters.bump(&state.counters.memo_hits);
            writer.send(
                state,
                &Response::Record(RecordMsg {
                    name,
                    status: "ok".into(),
                    duration_ms: 0.0,
                    memo: true,
                    bytes: Some(entry.output.len() as u64),
                    digest: Some(entry.digest),
                    error: None,
                }),
            )?;
        } else {
            spec_digests.insert(name.clone(), digest);
            let spec = spec.clone();
            let csv = run.csv;
            jobs.push(Job::new(name, move || spec.render(csv)));
        }
    }

    let report = if jobs.is_empty() {
        None
    } else {
        let writer = Arc::clone(writer);
        let shared = Arc::clone(state);
        let csv = run.csv;
        let report = Session::new(jobs)
            .workers(state.workers)
            .cancel(token.clone())
            .on_record(move |_, record: &JobRecord| {
                match &record.outcome {
                    Ok(output) => shared
                        .memo
                        .insert(ArtifactMemo::request_key(&record.name, csv), output.clone()),
                    // A spec that panicked its worker is quarantined by
                    // digest: the engine already caught the panic, and
                    // every later identical spec is rejected O(1).
                    Err(Error::Panic(message)) => {
                        if let Some(&digest) = spec_digests.get(&record.name) {
                            shared.counters.bump(&shared.counters.panicked);
                            shared.quarantine.insert(digest, message.clone());
                        }
                    }
                    Err(_) => {}
                }
                // Record streaming runs on the engine's shared workers;
                // `send` bounds a stalled client to one write deadline
                // and then drops it, so the pool stays live.
                let _ = writer.send(
                    &shared,
                    &Response::Record(RecordMsg::from_record(record, false)),
                );
            })
            .run();
        Some(report)
    };
    if let Some((done_tx, handle)) = watcher {
        let _ = done_tx.send(());
        let _ = handle.join();
    }

    let mut failures = pre_failures;
    let mut cancelled = 0u64;
    let mut interrupted = false;
    if let Some(report) = &report {
        interrupted = report.interrupted;
        for record in &report.records {
            match record.status() {
                "ok" => ok += 1,
                "cancelled" => cancelled += 1,
                _ => failures += 1,
            }
        }
    }
    if interrupted {
        state.counters.bump(&state.counters.cancelled);
    }
    state.counters.bump(&state.counters.served);
    // Release the slot before the terminal write: a client that has
    // read its report must be able to get its next request admitted.
    drop(permit);
    writer.send(
        state,
        &Response::Report(ReportMsg {
            ok,
            failures,
            cancelled,
            memo_hits,
            total_ms: start.elapsed().as_secs_f64() * 1e3,
            interrupted,
        }),
    )
}

// ---------------------------------------------------------------------
// chaos-proxy (hidden; exposes np_bench::chaos for scripts/CI)
// ---------------------------------------------------------------------

#[cfg(unix)]
fn cmd_chaos_proxy(args: &[String]) -> i32 {
    use np_bench::chaos::{ChaosProxy, ChaosSchedule};
    let parsed = (|| -> Result<_, String> {
        let listen = parse_flag_opt(args, "--listen")?.ok_or("chaos-proxy needs --listen PATH")?;
        let upstream =
            parse_flag_opt(args, "--upstream")?.ok_or("chaos-proxy needs --upstream PATH")?;
        let seed = parse_flag_value(args, "--seed", 1u64)?;
        Ok((listen, upstream, seed))
    })();
    let (listen, upstream, seed) = match parsed {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("nanopowerd chaos-proxy: {e}");
            return 2;
        }
    };
    let proxy = match ChaosProxy::start(&listen, &upstream, ChaosSchedule::Seeded { seed }) {
        Ok(proxy) => proxy,
        Err(e) => {
            eprintln!("nanopowerd chaos-proxy: {e}");
            return 1;
        }
    };
    eprintln!("nanopowerd chaos-proxy: {listen} -> {upstream} (seed {seed})");
    // Runs until killed: the proxy is scaffolding for a driving script,
    // which owns its lifetime.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
        let _ = proxy.accepted();
    }
}

// ---------------------------------------------------------------------
// client side
// ---------------------------------------------------------------------

/// A line-oriented client connection (hello already consumed).
struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Client {
    fn connect(endpoint: &Endpoint) -> Result<(Self, Hello), String> {
        let (read_half, write_half): (Box<dyn Read + Send>, Box<dyn Write + Send>) = match endpoint
        {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                use std::os::unix::net::UnixStream;
                let stream = UnixStream::connect(path)
                    .map_err(|e| format!("cannot connect to {path}: {e}"))?;
                let clone = stream
                    .try_clone()
                    .map_err(|e| format!("cannot clone socket: {e}"))?;
                (Box::new(clone), Box::new(stream))
            }
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)
                    .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
                let clone = stream
                    .try_clone()
                    .map_err(|e| format!("cannot clone socket: {e}"))?;
                (Box::new(clone), Box::new(stream))
            }
        };
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer: write_half,
        };
        match client.read_response()? {
            Response::Hello(hello) => Ok((client, hello)),
            other => Err(format!("expected hello, got {other:?}")),
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), String> {
        self.writer
            .write_all(request.to_json().as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    fn read_response(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("read failed: {e}"))?;
            if n == 0 {
                return Err("connection closed".into());
            }
            if !line.trim().is_empty() {
                return Response::parse(line.trim_end()).map_err(|e| e.to_string());
            }
        }
    }

    /// Sends a run request and reads until its terminal line, returning
    /// the report — or the typed `busy` / `overloaded` rejection.
    fn run(&mut self, request: &RunRequest) -> Result<RunOutcome, String> {
        self.send(&Request::Run(request.clone()))?;
        loop {
            match self.read_response()? {
                Response::Record(_) => {}
                Response::Report(report) => return Ok(RunOutcome::Report(report)),
                Response::Busy { .. } => return Ok(RunOutcome::Busy),
                Response::Overloaded { .. } => return Ok(RunOutcome::Overloaded),
                Response::TooExpensive { estimate, budget } => {
                    return Err(format!(
                        "rejected as too expensive: estimate {estimate} over budget {budget}"
                    ))
                }
                Response::InvalidSpec { field, reason } => {
                    return Err(format!("invalid spec: field `{field}`: {reason}"))
                }
                Response::Protocol { reason } => return Err(format!("protocol error: {reason}")),
                other => return Err(format!("unexpected response {other:?}")),
            }
        }
    }
}

enum RunOutcome {
    Report(ReportMsg),
    Busy,
    Overloaded,
}

// ---------------------------------------------------------------------
// load
// ---------------------------------------------------------------------

fn cmd_load(args: &[String]) -> i32 {
    let (endpoint, rest) = match parse_endpoint(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("nanopowerd load: {e}");
            return 2;
        }
    };
    let quick = rest.iter().any(|a| a == "--quick");
    let csv = rest.iter().any(|a| a == "--csv");
    let defaults = if quick {
        (2usize, 5u64)
    } else {
        (4usize, 25u64)
    };
    let opts = (
        parse_flag_value(&rest, "--connections", defaults.0),
        parse_flag_value(&rest, "--requests", defaults.1),
        parse_flag_value(&rest, "--seed", 1u64),
        parse_flag_value(&rest, "--out", "BENCH_serve.json".to_string()),
    );
    let (connections, requests, seed, out) = match opts {
        (Ok(c), Ok(r), Ok(s), Ok(o)) => (c, r, s, o),
        (Err(e), ..) | (_, Err(e), ..) | (.., Err(e), _) | (.., Err(e)) => {
            eprintln!("nanopowerd load: {e}");
            return 2;
        }
    };
    match run_load(
        &endpoint,
        connections.max(1),
        requests.max(1),
        csv,
        quick,
        seed,
    ) {
        Ok(report) => {
            println!("{}", report.summary());
            if let Err(e) = std::fs::write(&out, report.to_json()) {
                eprintln!("nanopowerd load: cannot write {out}: {e}");
                return 1;
            }
            println!("wrote {out}");
            if report.errors > 0 {
                1
            } else {
                0
            }
        }
        Err(e) => {
            eprintln!("nanopowerd load: {e}");
            1
        }
    }
}

/// Per-request latency/error tallies shared by the load threads.
#[derive(Default)]
struct LoadTally {
    latencies_ms: Vec<f64>,
    errors: u64,
    busy_retries: u64,
    shed_retries: u64,
    registry: KindStats,
    specs: KindStats,
}

/// SplitMix64 step — the deterministic mixer behind every seeded
/// workload choice the load client makes.
fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic pool of cheap valid scenario specs: every field
/// derives from the seed alone, so two runs with equal seeds request
/// identical digests — which is what makes the daemon's spec-keyed memo
/// observable across connections.
fn spec_pool(seed: u64) -> Vec<ScenarioSpec> {
    let nodes = [
        TechNode::N180,
        TechNode::N130,
        TechNode::N100,
        TechNode::N70,
        TechNode::N50,
        TechNode::N35,
    ];
    nodes
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            let mix = splitmix(seed.wrapping_add(i as u64));
            let mut spec = ScenarioSpec::at_node(node);
            spec.activity = 0.05 + (mix % 10) as f64 * 0.01;
            spec.workload_ratio = 0.25 + ((mix >> 16) % 4) as f64 * 0.25;
            if i % 3 == 0 {
                // A small mesh leg on every third spec keeps the grid
                // path exercised without dominating the run.
                spec.grid = Some(GridSpec { resolution: 17 });
            }
            spec
        })
        .collect()
}

fn run_load(
    endpoint: &Endpoint,
    connections: usize,
    requests_per_conn: u64,
    csv: bool,
    quick: bool,
    seed: u64,
) -> Result<ServeReport, String> {
    // A small rotation of cheap artifacts: repeats within and across
    // connections are what make the daemon's memo observable.
    let names: Vec<String> = registry::names()
        .into_iter()
        .take(6)
        .map(str::to_owned)
        .collect();
    if names.is_empty() {
        return Err("artifact registry is empty".into());
    }
    let specs = spec_pool(seed);
    let tally = Arc::new(Mutex::new(LoadTally::default()));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for conn in 0..connections {
            let names = &names;
            let specs = &specs;
            let tally = Arc::clone(&tally);
            let endpoint = endpoint.clone();
            scope.spawn(move || {
                let outcome =
                    drive_connection(&endpoint, conn, requests_per_conn, names, specs, csv, seed);
                let mut tally = tally.lock().unwrap_or_else(PoisonError::into_inner);
                match outcome {
                    Ok(conn_tally) => {
                        tally.latencies_ms.extend(conn_tally.latencies_ms);
                        tally.errors += conn_tally.errors;
                        tally.busy_retries += conn_tally.busy_retries;
                        tally.shed_retries += conn_tally.shed_retries;
                        tally.registry.merge(conn_tally.registry);
                        tally.specs.merge(conn_tally.specs);
                    }
                    Err(e) => {
                        eprintln!("connection {conn}: {e}");
                        tally.errors += requests_per_conn;
                    }
                }
            });
        }
    });
    let total_wall = start.elapsed();
    // One more connection to collect the daemon's own counters.
    let (memo_hits, daemon) = match Client::connect(endpoint) {
        Ok((mut client, _)) => {
            client.send(&Request::Stats)?;
            match client.read_response()? {
                Response::Stats(stats) => (
                    stats.memo_hits,
                    DaemonCounters {
                        memo_entries: stats.memo_entries,
                        memo_bytes: stats.memo_bytes,
                        memo_evictions: stats.memo_evictions,
                        overloaded: stats.overloaded,
                        conn_rejected: stats.conn_rejected,
                        write_timeouts: stats.write_timeouts,
                    },
                ),
                other => return Err(format!("expected stats, got {other:?}")),
            }
        }
        Err(e) => return Err(e),
    };
    let tally = tally.lock().unwrap_or_else(PoisonError::into_inner);
    Ok(ServeReport {
        connections,
        requests: connections as u64 * requests_per_conn,
        completed: tally.latencies_ms.len() as u64,
        errors: tally.errors,
        busy_retries: tally.busy_retries,
        shed_retries: tally.shed_retries,
        memo_hits,
        daemon,
        quick,
        total_wall,
        latencies_ms: tally.latencies_ms.clone(),
        registry: tally.registry.clone(),
        specs: tally.specs.clone(),
    })
}

fn drive_connection(
    endpoint: &Endpoint,
    conn: usize,
    requests: u64,
    names: &[String],
    specs: &[ScenarioSpec],
    csv: bool,
    seed: u64,
) -> Result<LoadTally, String> {
    let (mut client, _hello) = Client::connect(endpoint)?;
    let mut tally = LoadTally::default();
    for i in 0..requests {
        // Seeded mix: roughly every third request carries a scenario
        // spec from the pool; the rest rotate through the registry
        // names so every name (and digest) repeats early.
        let roll = splitmix(seed ^ ((conn as u64) << 32) ^ i);
        let is_spec = roll.is_multiple_of(3);
        let request = if is_spec {
            RunRequest {
                names: Vec::new(),
                specs: vec![specs[(roll as usize / 3) % specs.len()].clone()],
                csv,
                deadline_ms: Some(60_000),
            }
        } else {
            let name = &names[(conn + i as usize) % names.len()];
            RunRequest {
                names: vec![name.clone()],
                specs: Vec::new(),
                csv,
                deadline_ms: Some(60_000),
            }
        };
        let started = Instant::now();
        loop {
            match client.run(&request)? {
                RunOutcome::Report(report) => {
                    let ms = started.elapsed().as_secs_f64() * 1e3;
                    tally.latencies_ms.push(ms);
                    let kind = if is_spec {
                        &mut tally.specs
                    } else {
                        &mut tally.registry
                    };
                    kind.completed += 1;
                    kind.memo_hits += report.memo_hits;
                    kind.latencies_ms.push(ms);
                    if report.failures > 0 || report.cancelled > 0 {
                        tally.errors += 1;
                    }
                    break;
                }
                RunOutcome::Busy => {
                    tally.busy_retries += 1;
                    if tally.busy_retries > 10_000 {
                        return Err("daemon stayed busy past the retry budget".into());
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                RunOutcome::Overloaded => {
                    // Shed load backs off harder than plain busy: the
                    // daemon told us its queue wait itself is saturated.
                    tally.shed_retries += 1;
                    if tally.shed_retries > 1_000 {
                        return Err("daemon stayed overloaded past the retry budget".into());
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }
    Ok(tally)
}

// ---------------------------------------------------------------------
// stats / health / shutdown
// ---------------------------------------------------------------------

fn cmd_oneshot(args: &[String], request: Request) -> i32 {
    let (endpoint, _rest) = match parse_endpoint(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("nanopowerd: {e}");
            return 2;
        }
    };
    let result = Client::connect(&endpoint).and_then(|(mut client, _)| {
        client.send(&request)?;
        client.read_response()
    });
    match result {
        Ok(response) => {
            println!("{}", response.to_json());
            0
        }
        Err(e) => {
            eprintln!("nanopowerd: {e}");
            1
        }
    }
}
