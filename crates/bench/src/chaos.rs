//! Socket-level fault injection for `nanopowerd`: a deterministic,
//! seeded chaos proxy.
//!
//! The proxy sits between a real client and a real daemon on unix
//! sockets and injects the failure modes a production service front-end
//! actually meets: torn frames (a request cut mid-line by a dying
//! client), slowloris trickles (a request dribbled byte-wise with long
//! stalls), malformed-JSON floods, and clean passthrough as the
//! control. Which connection gets which fault is decided by a
//! [`ChaosSchedule`] — either an explicit cycle (tests pin exact
//! behavior to exact connections) or a seeded mix that is a pure
//! function of `(seed, connection index)`, so a CI run with a fixed
//! seed replays byte-identically.
//!
//! Everything here is observation-side: the proxy never interprets the
//! protocol beyond byte counts, so it cannot mask a daemon bug by
//! "helpfully" reframing traffic. The daemon-facing assertions (typed
//! protocol errors, no panics, spill integrity) live in the chaos
//! integration suite; this module only produces the weather.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// One per-connection fault, applied to the client→daemon byte stream
/// (the daemon→client direction is always a clean copy, so every typed
/// response the daemon manages to produce reaches the test intact).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Clean bidirectional copy — the control connection.
    Passthrough,
    /// Forward exactly `after_bytes` request bytes, then sever both
    /// directions. Landing inside a JSON line makes this the classic
    /// torn frame / mid-line disconnect.
    TornFrame {
        /// Request bytes forwarded before the cut.
        after_bytes: usize,
    },
    /// Trickle the request through in `chunk_bytes` pieces separated by
    /// `stall_ms` pauses — the slowloris client.
    Slowloris {
        /// Bytes forwarded per trickle.
        chunk_bytes: usize,
        /// Pause between trickles, milliseconds.
        stall_ms: u64,
    },
    /// Inject `lines` malformed JSON lines ahead of the client's real
    /// traffic, then pass through.
    GarbageFlood {
        /// Malformed lines injected.
        lines: usize,
    },
}

/// The malformed payloads a [`Fault::GarbageFlood`] rotates through:
/// every one must draw a typed protocol error, never a panic or a
/// dropped connection. Torn escapes, deep nesting, huge numbers, raw
/// control bytes, truncated objects — the `jsonio` hardening cases,
/// fired over the wire.
pub fn garbage_line(index: usize) -> String {
    const FIXED: &[&str] = &[
        "{\"run\": {\"names\": [\"fig5\"",
        "not json at all",
        "{\"run\": {\"names\": \"fig5\"}}",
        "{\"run\": {\"deadline_ms\": 1e999}}",
        "{\"mystery\": {}}",
        "[1, 2, 3]",
        "{\"run\": {\"names\": [\"\\udead\"]}}",
        "{\"run\": {\"csv\": \"yes\"}}",
        "\u{7f}\u{1}\u{2}",
        "{}",
    ];
    match index % (FIXED.len() + 2) {
        i if i < FIXED.len() => FIXED[i].to_owned(),
        i if i == FIXED.len() => format!("{}1{}", "[".repeat(200), "]".repeat(200)),
        _ => format!("{{\"run\": {{\"names\": [\"{}\"]", "x".repeat(300)),
    }
}

/// Decides which [`Fault`] each accepted connection gets, purely from
/// the connection's accept index — the whole run is deterministic.
#[derive(Debug, Clone)]
pub enum ChaosSchedule {
    /// Connection `i` gets `faults[i % faults.len()]` — tests pin exact
    /// faults to exact connections.
    Cycle(Vec<Fault>),
    /// A seeded pseudo-random mix: the fault for connection `i` is a
    /// pure function of `(seed, i)`, independent of accept timing.
    Seeded {
        /// The schedule seed; equal seeds replay equal schedules.
        seed: u64,
    },
}

impl ChaosSchedule {
    /// The fault assigned to accept index `index`.
    pub fn fault_for(&self, index: usize) -> Fault {
        match self {
            ChaosSchedule::Cycle(faults) if faults.is_empty() => Fault::Passthrough,
            ChaosSchedule::Cycle(faults) => faults[index % faults.len()],
            ChaosSchedule::Seeded { seed } => {
                // Mix the index into the seed (splitmix-style odd
                // constant) so neighbouring connections decorrelate.
                let mixed = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = StdRng::seed_from_u64(mixed);
                match rng.random_range(0..4u32) {
                    0 => Fault::Passthrough,
                    1 => Fault::TornFrame {
                        after_bytes: rng.random_range(1..40),
                    },
                    2 => Fault::Slowloris {
                        chunk_bytes: rng.random_range(1..4),
                        stall_ms: rng.random_range(5..30),
                    },
                    _ => Fault::GarbageFlood {
                        lines: rng.random_range(1..8),
                    },
                }
            }
        }
    }
}

/// A running fault-injection proxy between a listen socket and an
/// upstream daemon socket. Dropping (or [`ChaosProxy::stop`]) shuts the
/// accept loop down; in-flight pumps end when their streams close.
#[derive(Debug)]
pub struct ChaosProxy {
    listen_path: PathBuf,
    shutdown: Arc<AtomicBool>,
    accepted: Arc<AtomicUsize>,
    applied: Arc<Mutex<Vec<Fault>>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts proxying `listen` → `upstream` under `schedule`.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure (a stale file at `listen`
    /// is cleared first — the proxy is test scaffolding, not a daemon).
    pub fn start(
        listen: impl AsRef<Path>,
        upstream: impl AsRef<Path>,
        schedule: ChaosSchedule,
    ) -> std::io::Result<ChaosProxy> {
        let listen_path = listen.as_ref().to_path_buf();
        let upstream = upstream.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&listen_path);
        let listener = UnixListener::bind(&listen_path)?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicUsize::new(0));
        let applied = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let accepted = Arc::clone(&accepted);
            let applied = Arc::clone(&applied);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let index = accepted.fetch_add(1, Ordering::SeqCst);
                            let fault = schedule.fault_for(index);
                            applied
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .push(fault);
                            match UnixStream::connect(&upstream) {
                                Ok(daemon) => proxy_connection(client, daemon, fault),
                                // No upstream: drop the client — exactly
                                // what a crashed daemon looks like.
                                Err(_) => drop(client),
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(ChaosProxy {
            listen_path,
            shutdown,
            accepted,
            applied,
            accept_thread: Some(accept_thread),
        })
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }

    /// The faults applied so far, in accept order.
    pub fn applied(&self) -> Vec<Fault> {
        self.applied
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Stops accepting and removes the listen socket.
    pub fn stop(mut self) {
        self.shutdown_now();
    }

    fn shutdown_now(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.listen_path);
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

/// Wires one accepted client to one upstream connection: the response
/// direction is a clean copy; the request direction applies `fault`.
/// Pump threads are detached — they end when either side closes.
fn proxy_connection(client: UnixStream, daemon: UnixStream, fault: Fault) {
    let (Ok(client_rx), Ok(daemon_rx)) = (client.try_clone(), daemon.try_clone()) else {
        return;
    };
    std::thread::spawn(move || pump_responses(daemon_rx, client));
    std::thread::spawn(move || pump_requests(client_rx, daemon, fault));
}

/// daemon → client: clean copy until EOF or error.
fn pump_responses(mut from: UnixStream, mut to: UnixStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).and_then(|()| to.flush()).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Both);
}

/// client → daemon: the faulted direction.
fn pump_requests(mut from: UnixStream, mut to: UnixStream, fault: Fault) {
    match fault {
        Fault::Passthrough => {
            copy_bytes(&mut from, &mut to, usize::MAX, 1, Duration::ZERO);
        }
        Fault::TornFrame { after_bytes } => {
            copy_bytes(&mut from, &mut to, after_bytes, usize::MAX, Duration::ZERO);
            // Sever both directions mid-frame: the daemon sees a torn
            // line; the client sees its connection die.
            let _ = to.shutdown(std::net::Shutdown::Both);
            let _ = from.shutdown(std::net::Shutdown::Both);
            return;
        }
        Fault::Slowloris {
            chunk_bytes,
            stall_ms,
        } => {
            copy_bytes(
                &mut from,
                &mut to,
                usize::MAX,
                chunk_bytes.max(1),
                Duration::from_millis(stall_ms),
            );
        }
        Fault::GarbageFlood { lines } => {
            for i in 0..lines {
                let line = format!("{}\n", garbage_line(i));
                if to.write_all(line.as_bytes()).is_err() {
                    break;
                }
            }
            let _ = to.flush();
            copy_bytes(&mut from, &mut to, usize::MAX, 1, Duration::ZERO);
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Write);
}

/// Copies up to `budget` bytes in pieces of at most `chunk`, sleeping
/// `stall` between pieces (chunk of 1 with zero stall degenerates to a
/// plain buffered copy).
fn copy_bytes(
    from: &mut UnixStream,
    to: &mut UnixStream,
    mut budget: usize,
    chunk: usize,
    stall: Duration,
) {
    let throttled = chunk < 4096 && !stall.is_zero();
    let mut buf = [0u8; 4096];
    while budget > 0 {
        let want = if throttled {
            chunk.min(budget).min(buf.len())
        } else {
            budget.min(buf.len())
        };
        match from.read(&mut buf[..want]) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).and_then(|()| to.flush()).is_err() {
                    break;
                }
                budget -= n;
                if throttled {
                    std::thread::sleep(stall);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// scenario-spec fuzzing
// ---------------------------------------------------------------------

/// The typed response class one spec fuzz case must draw from the
/// daemon — anything else (a dropped connection, an untyped error, a
/// daemon panic) is a fuzz failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecExpectation {
    /// A well-formed, in-budget spec request: a terminal report with no
    /// failed records.
    Report,
    /// A field-level violation: a typed `invalid_spec` naming the
    /// offending field.
    InvalidSpec,
    /// A well-formed request whose static cost estimate exceeds the
    /// default budget: a typed `too_expensive`.
    TooExpensive,
    /// Malformed JSON or an unknown `run` key: a typed protocol error.
    Protocol,
}

/// One generated fuzz case: the raw request line (sent verbatim, so a
/// malformed body stays malformed on the wire) plus the typed response
/// class the daemon is required to produce.
#[derive(Debug, Clone)]
pub struct SpecCase {
    /// The full request line to send.
    pub line: String,
    /// The typed response class required of the daemon.
    pub expect: SpecExpectation,
}

/// Deterministic scenario-spec fuzzer: case `i` is a pure function of
/// `(seed, i)`, so a CI run with a fixed seed replays byte-identically
/// and parallel drivers agree on every case. The mix covers valid and
/// boundary specs (shuffled key order, optional legs, CSV form),
/// field-level violations, over-budget requests, and protocol-level
/// garbage — each tagged with the typed response it must draw.
#[derive(Debug, Clone)]
pub struct SpecFuzzer {
    seed: u64,
}

impl SpecFuzzer {
    /// A fuzzer for `seed`; equal seeds generate equal case streams.
    pub fn new(seed: u64) -> SpecFuzzer {
        SpecFuzzer { seed }
    }

    /// The `index`-th case.
    pub fn case(&self, index: usize) -> SpecCase {
        let mixed = self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(mixed);
        match rng.random_range(0..10u32) {
            0..=4 => Self::valid_case(&mut rng),
            5..=7 => Self::invalid_case(&mut rng),
            8 => Self::expensive_case(&mut rng),
            _ => Self::protocol_case(&mut rng),
        }
    }

    /// Wraps spec bodies into one `run` request line.
    fn wrap(bodies: &[String], csv: bool) -> String {
        let csv = if csv { ", \"csv\": true" } else { "" };
        format!("{{\"run\": {{\"specs\": [{}]{csv}}}}}", bodies.join(", "))
    }

    /// A well-formed spec with random (including boundary) field values,
    /// optional legs, and shuffled key order — the canonical digest must
    /// not care about any of that.
    fn valid_case(rng: &mut StdRng) -> SpecCase {
        let nodes = [180u32, 130, 100, 70, 50, 35];
        let node = nodes[rng.random_range(0..nodes.len())];
        // Percent-grained draws land exactly on the 0.01 and 1.0
        // boundaries often enough to keep them covered.
        let pct = |rng: &mut StdRng| f64::from(rng.random_range(1..101u32)) / 100.0;
        let mut fields = vec![
            format!("\"node\": {node}"),
            format!("\"activity\": {}", pct(rng)),
            format!("\"effective_fraction\": {}", pct(rng)),
            format!("\"workload_ratio\": {}", pct(rng)),
        ];
        if rng.random_range(0..10u32) < 3 {
            fields.push(format!(
                "\"junction_temp_c\": {}",
                rng.random_range(25..111u32)
            ));
        }
        if rng.random_range(0..10u32) < 3 {
            let resolution = [5usize, 9, 17, 33][rng.random_range(0..4)];
            fields.push(format!("\"grid\": {{\"resolution\": {resolution}}}"));
        }
        if rng.random_range(0..10u32) < 2 {
            fields.push(format!(
                "\"netlist\": {{\"cells\": {}, \"seed\": {}}}",
                rng.random_range(100..2001u32),
                rng.random_range(0..1000u32)
            ));
        }
        // Fisher-Yates: the daemon must digest shuffled keys equally.
        for i in (1..fields.len()).rev() {
            fields.swap(i, rng.random_range(0..i + 1));
        }
        let csv = rng.random_range(0..4u32) == 0;
        SpecCase {
            line: Self::wrap(&[format!("{{{}}}", fields.join(", "))], csv),
            expect: SpecExpectation::Report,
        }
    }

    /// A spec violating exactly one field contract: out-of-range,
    /// non-integral, wrong type, unknown key, or missing requirement.
    fn invalid_case(rng: &mut StdRng) -> SpecCase {
        const BODIES: &[&str] = &[
            "{\"activity\": 0.5}",
            "{\"node\": 71}",
            "{\"node\": \"70nm\"}",
            "{\"node\": 70.5}",
            "{\"node\": 70, \"activity\": 0}",
            "{\"node\": 70, \"activity\": 2.5}",
            "{\"node\": 70, \"activity\": -0.25}",
            "{\"node\": 70, \"effective_fraction\": 0}",
            "{\"node\": 70, \"workload_ratio\": 1.5}",
            "{\"node\": 70, \"junction_temp_c\": 400}",
            "{\"node\": 70, \"junction_temp_c\": -100}",
            "{\"node\": 70, \"grid\": {}}",
            "{\"node\": 70, \"grid\": {\"resolution\": 3}}",
            "{\"node\": 70, \"grid\": {\"resolution\": 2000}}",
            "{\"node\": 70, \"grid\": {\"resolution\": 33.5}}",
            "{\"node\": 70, \"grid\": {\"resolution\": 17, \"pitch\": 2}}",
            "{\"node\": 70, \"grid\": 17}",
            "{\"node\": 70, \"netlist\": {\"cells\": 10, \"seed\": 1}}",
            "{\"node\": 70, \"netlist\": {\"seed\": 1}}",
            "{\"node\": 70, \"netlist\": {\"cells\": 500, \"seed\": -1}}",
            "{\"node\": 70, \"nodee\": 1}",
            "{\"node\": 70, \"chaos\": \"explode\"}",
            "{\"node\": 70, \"chaos\": 7}",
            "70",
            "[1, 2]",
        ];
        let body = BODIES[rng.random_range(0..BODIES.len())];
        SpecCase {
            line: Self::wrap(&[body.to_owned()], false),
            expect: SpecExpectation::InvalidSpec,
        }
    }

    /// A well-formed request whose static cost estimate exceeds the
    /// default budget — one oversized netlist tier, or several maximal
    /// mesh legs summing over it.
    fn expensive_case(rng: &mut StdRng) -> SpecCase {
        if rng.random_range(0..2u32) == 0 {
            let body = format!(
                "{{\"node\": 70, \"netlist\": {{\"cells\": 10000000, \"seed\": {}}}}}",
                rng.random_range(0..1000u32)
            );
            SpecCase {
                line: Self::wrap(&[body], false),
                expect: SpecExpectation::TooExpensive,
            }
        } else {
            let bodies: Vec<String> = (0..4)
                .map(|i| format!("{{\"node\": 70, \"workload_ratio\": 0.{}1, \"grid\": {{\"resolution\": 1025}}}}", i + 1))
                .collect();
            SpecCase {
                line: Self::wrap(&bodies, false),
                expect: SpecExpectation::TooExpensive,
            }
        }
    }

    /// Protocol-level garbage: malformed JSON, torn frames, unknown
    /// `run` keys, and the wrong shapes for `specs`.
    fn protocol_case(rng: &mut StdRng) -> SpecCase {
        const LINES: &[&str] = &[
            "{\"run\": {\"specs\": [{\"node\": 70}], \"spces\": true}}",
            "{\"run\": {\"names\": [\"fig5\"], \"deadlne_ms\": 5}}",
            "{\"run\": {\"specs\": {\"node\": 70}}}",
            "{\"run\": {\"specs\": [{\"node\": 70, \"activity\": 1e999}]}}",
            "{\"run\": {\"specs\": [{\"node\": 70",
            "\"just a string\"",
            "[{\"node\": 70}]",
        ];
        let line = LINES[rng.random_range(0..LINES.len())];
        SpecCase {
            line: line.to_owned(),
            expect: SpecExpectation::Protocol,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanopower::proto::Request;

    #[test]
    fn seeded_schedule_is_deterministic_and_varied() {
        let schedule = ChaosSchedule::Seeded { seed: 42 };
        let replay = ChaosSchedule::Seeded { seed: 42 };
        let faults: Vec<Fault> = (0..32).map(|i| schedule.fault_for(i)).collect();
        let again: Vec<Fault> = (0..32).map(|i| replay.fault_for(i)).collect();
        assert_eq!(faults, again, "same seed, same schedule");
        let other: Vec<Fault> = (0..32)
            .map(|i| ChaosSchedule::Seeded { seed: 43 }.fault_for(i))
            .collect();
        assert_ne!(faults, other, "different seed, different schedule");
        // The mix actually mixes: all four kinds appear in 32 draws.
        let kind = |f: &Fault| match f {
            Fault::Passthrough => 0,
            Fault::TornFrame { .. } => 1,
            Fault::Slowloris { .. } => 2,
            Fault::GarbageFlood { .. } => 3,
        };
        let mut seen = [false; 4];
        for f in &faults {
            seen[kind(f)] = true;
        }
        assert_eq!(seen, [true; 4], "{faults:?}");
    }

    #[test]
    fn cycle_schedule_wraps_and_empty_cycle_passes_through() {
        let cycle =
            ChaosSchedule::Cycle(vec![Fault::Passthrough, Fault::GarbageFlood { lines: 3 }]);
        assert_eq!(cycle.fault_for(0), Fault::Passthrough);
        assert_eq!(cycle.fault_for(1), Fault::GarbageFlood { lines: 3 });
        assert_eq!(cycle.fault_for(2), Fault::Passthrough);
        assert_eq!(
            ChaosSchedule::Cycle(Vec::new()).fault_for(7),
            Fault::Passthrough
        );
    }

    #[test]
    fn spec_fuzzer_is_deterministic_and_mixes_every_class() {
        let fuzzer = SpecFuzzer::new(7);
        let replay = SpecFuzzer::new(7);
        let mut seen = [false; 4];
        for i in 0..128 {
            let case = fuzzer.case(i);
            let again = replay.case(i);
            assert_eq!(case.line, again.line, "case {i} not deterministic");
            assert_eq!(case.expect, again.expect);
            seen[match case.expect {
                SpecExpectation::Report => 0,
                SpecExpectation::InvalidSpec => 1,
                SpecExpectation::TooExpensive => 2,
                SpecExpectation::Protocol => 3,
            }] = true;
        }
        assert_eq!(seen, [true; 4], "128 draws must cover every class");
        let other = SpecFuzzer::new(8).case(0);
        let this = fuzzer.case(0);
        assert!(
            other.line != this.line
                || other.expect != this.expect
                || fuzzer.case(1).line != SpecFuzzer::new(8).case(1).line,
            "different seeds should diverge"
        );
    }

    #[test]
    fn every_fuzz_case_classifies_exactly_at_the_parser() {
        use nanopower::spec::DEFAULT_COST_BUDGET;
        use nanopower::Error;
        let fuzzer = SpecFuzzer::new(1);
        for i in 0..512 {
            let case = fuzzer.case(i);
            let parsed = Request::parse(&case.line);
            match case.expect {
                SpecExpectation::Report => {
                    let Ok(Request::Run(run)) = parsed else {
                        panic!("valid case {i} rejected: {case:?}");
                    };
                    let cost: u64 = run.specs.iter().map(|s| s.cost()).sum();
                    assert!(cost <= DEFAULT_COST_BUDGET, "case {i} over budget: {cost}");
                }
                SpecExpectation::TooExpensive => {
                    let Ok(Request::Run(run)) = parsed else {
                        panic!("expensive case {i} must still parse: {case:?}");
                    };
                    let cost: u64 = run.specs.iter().map(|s| s.cost()).sum();
                    assert!(cost > DEFAULT_COST_BUDGET, "case {i} under budget: {cost}");
                }
                SpecExpectation::InvalidSpec => assert!(
                    matches!(parsed, Err(Error::InvalidSpec { .. })),
                    "case {i} not invalid_spec: {case:?} -> {parsed:?}"
                ),
                SpecExpectation::Protocol => assert!(
                    matches!(parsed, Err(Error::Protocol { .. })),
                    "case {i} not protocol: {case:?} -> {parsed:?}"
                ),
            }
        }
    }

    #[test]
    fn every_garbage_line_is_rejected_typed_by_the_parser() {
        for i in 0..40 {
            let line = garbage_line(i);
            assert!(
                Request::parse(line.trim_end()).is_err(),
                "garbage line {i} parsed as a request: {line:?}"
            );
        }
    }
}
