//! The artifact registry: one entry per table, figure, and experiment of
//! the paper — the single source of truth that `repro --list`, the
//! engine, and the tests all iterate.
//!
//! Each [`Artifact`] knows its name, what it reproduces, where in the
//! paper it comes from, and how to render itself as text — plus,
//! explicitly, whether it has a CSV form. CSV availability being a
//! registry field (rather than a string-match fallthrough in the binary)
//! is what lets `repro --csv` report unsupported artifacts uniformly.

use crate::{experiments, figures, tables};
use nanopower::engine::Job;
use nanopower::Error;

/// One reproducible artifact of the paper.
pub struct Artifact {
    /// Stable CLI name (`repro <name>`).
    pub name: &'static str,
    /// One-line description of what the artifact shows.
    pub description: &'static str,
    /// Where in the paper (or DESIGN.md §5 experiment index) it comes
    /// from.
    pub paper_ref: &'static str,
    /// Renders the plain-text form.
    run_text: fn() -> Result<String, Error>,
    /// Renders the CSV form, for artifacts that have one.
    run_csv: Option<fn() -> Result<String, Error>>,
}

impl Artifact {
    /// Renders the artifact's plain-text form.
    ///
    /// # Errors
    ///
    /// Propagates the underlying model error.
    pub fn render_text(&self) -> Result<String, Error> {
        (self.run_text)()
    }

    /// Whether the artifact has a CSV form.
    pub fn has_csv(&self) -> bool {
        self.run_csv.is_some()
    }

    /// Renders the artifact's CSV form.
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedOutput`] when the artifact has no CSV form;
    /// otherwise propagates the underlying model error.
    pub fn render_csv(&self) -> Result<String, Error> {
        match self.run_csv {
            Some(run) => run(),
            None => Err(Error::UnsupportedOutput {
                artifact: self.name.to_string(),
                format: "csv",
            }),
        }
    }

    /// Renders the artifact in the requested form and returns the
    /// stable content digest of the output (`fnv1a:%016x`, matching
    /// [`nanopower::engine::JobRecord::digest`] and the run journal's
    /// per-entry hash).
    ///
    /// # Errors
    ///
    /// Same as [`render_text`](Self::render_text) /
    /// [`render_csv`](Self::render_csv).
    pub fn digest(&self, csv: bool) -> Result<String, Error> {
        let out = if csv {
            self.render_csv()?
        } else {
            self.render_text()?
        };
        Ok(format!(
            "fnv1a:{:016x}",
            nanopower::engine::fnv1a64(out.as_bytes())
        ))
    }

    /// An engine [`Job`] rendering this artifact in the requested form.
    pub fn job(&'static self, csv: bool) -> Job {
        if csv {
            Job::new(self.name, || self.render_csv())
        } else {
            Job::new(self.name, || self.render_text())
        }
    }
}

impl std::fmt::Debug for Artifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Artifact")
            .field("name", &self.name)
            .field("paper_ref", &self.paper_ref)
            .field("csv", &self.has_csv())
            .finish()
    }
}

/// Every artifact of the paper, in the order `repro` regenerates them.
pub static REGISTRY: &[Artifact] = &[
    Artifact {
        name: "table1",
        description: "published-device survey vs ITRS projections",
        paper_ref: "Table 1",
        run_text: || Ok(tables::table1().render()),
        run_csv: None,
    },
    Artifact {
        name: "table2",
        description: "Ioff scaling under the 750 uA/um Ion target",
        paper_ref: "Table 2",
        run_text: || Ok(tables::table2()?.render()),
        run_csv: None,
    },
    Artifact {
        name: "fig1",
        description: "dynamic/static power crossover vs activity",
        paper_ref: "Fig. 1",
        run_text: || Ok(figures::fig1()?.render()),
        run_csv: Some(|| Ok(figures::fig1()?.csv())),
    },
    Artifact {
        name: "fig2",
        description: "leakage power share across the roadmap",
        paper_ref: "Fig. 2",
        run_text: || Ok(figures::fig2()?.render()),
        run_csv: Some(|| Ok(figures::fig2()?.csv())),
    },
    Artifact {
        name: "fig3",
        description: "Vdd/Vth policy sweep",
        paper_ref: "Fig. 3",
        run_text: || Ok(figures::fig3()?.render()),
        run_csv: Some(|| Ok(figures::fig3()?.csv())),
    },
    Artifact {
        name: "fig4",
        description: "delay vs supply for the policy corners",
        paper_ref: "Fig. 4",
        run_text: || Ok(figures::fig4()?.render()),
        run_csv: Some(|| Ok(figures::fig4()?.csv())),
    },
    Artifact {
        name: "fig5",
        description: "power-grid IR-drop limits",
        paper_ref: "Fig. 5",
        run_text: || Ok(figures::fig5()?.render()),
        run_csv: Some(|| Ok(figures::fig5()?.csv())),
    },
    Artifact {
        name: "fig5-mesh",
        description: "Fig. 5 min-pitch drops re-solved on a 1025x1025 multigrid mesh",
        paper_ref: "Fig. 5 / §2.3",
        run_text: || Ok(figures::fig5_mesh()?.render()),
        run_csv: Some(|| Ok(figures::fig5_mesh()?.csv())),
    },
    Artifact {
        name: "fig34-mgate",
        description: "S3.3 co-optimization at 50k cells via the parallel optimizer",
        paper_ref: "Figs. 3-4 / §3.3",
        run_text: || Ok(figures::fig34_mgate()?.render()),
        run_csv: Some(|| Ok(figures::fig34_mgate()?.csv())),
    },
    Artifact {
        name: "dtm",
        description: "dynamic thermal management closure",
        paper_ref: "§2.1 / E1",
        run_text: || Ok(experiments::e1_dtm()?.render()),
        run_csv: None,
    },
    Artifact {
        name: "signaling",
        description: "global-signaling full-swing vs low-swing",
        paper_ref: "§2.2 / E2",
        run_text: || Ok(experiments::e2_signaling()?.render()),
        run_csv: None,
    },
    Artifact {
        name: "cvs",
        description: "clustered voltage scaling flow",
        paper_ref: "§2.4 / E3",
        run_text: || Ok(experiments::e3_cvs()?.render()),
        run_csv: None,
    },
    Artifact {
        name: "dualvth",
        description: "dual-Vth leakage optimization",
        paper_ref: "§3.2 / E4",
        run_text: || Ok(experiments::e4_dualvth()?.render()),
        run_csv: None,
    },
    Artifact {
        name: "resize",
        description: "slack-driven downsizing",
        paper_ref: "§3.3 / E5",
        run_text: || Ok(experiments::e5_resize()?.render()),
        run_csv: None,
    },
    Artifact {
        name: "grid-limits",
        description: "grid feasibility across the roadmap",
        paper_ref: "§4 / E6",
        run_text: || Ok(experiments::e6_grid_limits()?.render()),
        run_csv: None,
    },
    Artifact {
        name: "library",
        description: "library granularity and generated cells",
        paper_ref: "§2.3 / E7",
        run_text: || Ok(experiments::e7_library()?.render()),
        run_csv: None,
    },
    Artifact {
        name: "leakage-tech",
        description: "leakage-control technique comparison",
        paper_ref: "§3.1 / E8",
        run_text: || Ok(experiments::e8_leakage_techniques()?.render()),
        run_csv: None,
    },
    Artifact {
        name: "inductive-noise",
        description: "inductive return-path noise study",
        paper_ref: "§2.2 / E9",
        run_text: || Ok(experiments::e9_inductive_noise()?.render()),
        run_csv: None,
    },
    Artifact {
        name: "subambient",
        description: "sub-ambient cooling sweep",
        paper_ref: "§2.1 / E10",
        run_text: || Ok(experiments::e10_subambient()?.render()),
        run_csv: None,
    },
];

/// Looks an artifact up by CLI name.
pub fn find(name: &str) -> Option<&'static Artifact> {
    REGISTRY.iter().find(|a| a.name == name)
}

/// Every registered artifact name, registry order.
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|a| a.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_findable() {
        let names = names();
        assert_eq!(names.len(), 19, "all 19 paper artifacts registered");
        for (i, name) in names.iter().enumerate() {
            assert_eq!(
                names.iter().position(|n| n == name),
                Some(i),
                "duplicate {name}"
            );
            assert!(find(name).is_some());
        }
        assert!(find("nonesuch").is_none());
    }

    #[test]
    fn exactly_the_figures_have_csv() {
        for a in REGISTRY {
            assert_eq!(
                a.has_csv(),
                a.name.starts_with("fig"),
                "{}: CSV availability is explicit per artifact",
                a.name
            );
        }
    }

    #[test]
    fn digests_are_stable_and_form_specific() {
        let a = find("table1").unwrap();
        let d = a.digest(false).unwrap();
        assert!(
            d.starts_with("fnv1a:") && d.len() == "fnv1a:".len() + 16,
            "{d}"
        );
        assert_eq!(d, a.digest(false).unwrap(), "digest must be deterministic");
        let f = find("fig1").unwrap();
        assert_ne!(
            f.digest(false).unwrap(),
            f.digest(true).unwrap(),
            "text and CSV forms hash differently"
        );
    }

    #[test]
    fn csv_on_text_only_artifact_reports_uniformly() {
        let err = find("dtm").unwrap().render_csv().unwrap_err();
        assert_eq!(
            err,
            Error::UnsupportedOutput {
                artifact: "dtm".into(),
                format: "csv"
            }
        );
    }
}
