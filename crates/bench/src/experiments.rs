//! The numbered experiments E1–E7 of DESIGN.md §5 — the paper's
//! quantitative claims that are not tables or figures.

use nanopower::chip::{Chip, ThermalClosure};
use nanopower::report::{fmt_sig, TextTable};
use nanopower::Error;
use np_circuit::generate::{generate_netlist, NetlistSpec};
use np_circuit::sta::TimingContext;
use np_device::mtcmos::MtcmosBlock;
use np_device::stack::SubthresholdStack;
use np_device::substrate::{BodyBias, Substrate};
use np_device::Mosfet;
use np_grid::mcml::LogicStyleComparison;
use np_grid::transient::WakeUpEvent;
use np_interconnect::chip::{global_signaling_report, GlobalSignalingReport};
use np_interconnect::elmore::RcLine;
use np_interconnect::inductance::{coupled_noise, twisted_differential_residue};
use np_interconnect::lowswing::LowSwingLink;
use np_interconnect::wire::WireGeometry;
use np_opt::cellgen::{compare_regimes, MappingResult};
use np_opt::cvs::{cluster_voltage_scale, CvsOptions, CvsResult};
use np_opt::dualvth::{assign_dual_vth, DualVthResult};
use np_opt::sizing::{downsize, sizing_vs_vdd, ResizeVsVdd};
use np_roadmap::{PackagingRoadmap, TechNode};
use np_thermal::cost::cooling_cost_dollars;
use np_thermal::subambient::SubAmbientReport;
use np_thermal::ThermalError;
use np_units::{Celsius, Farads, Hertz, Microns, Seconds, Volts, Watts};

/// Default netlist size for the optimization experiments (kept modest so
/// Criterion can run them repeatedly).
pub fn experiment_netlist(seed: u64) -> np_circuit::Netlist {
    generate_netlist(&NetlistSpec::small(seed))
}

/// A timing context for `node` with the clock relaxed by `factor` over
/// the netlist's critical delay.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn relaxed_context(
    node: TechNode,
    netlist: &np_circuit::Netlist,
    factor: f64,
) -> Result<TimingContext, Error> {
    let ctx = TimingContext::for_node(node)?;
    let crit = ctx.analyze(netlist)?.critical_delay();
    Ok(ctx.with_clock(crit * factor))
}

// ---------------------------------------------------------------------
// E1 — thermal management & packaging headroom (Section 2.1)
// ---------------------------------------------------------------------

/// E1 report: per-node thermal closure plus the cooling-cost step anchor.
#[derive(Debug, Clone, PartialEq)]
pub struct DtmReport {
    /// Closure at each nanometer node.
    pub closures: Vec<ThermalClosure>,
    /// The 65 → 75 W cost-step ratio (the paper's "triple").
    pub cost_step_ratio: f64,
}

/// Runs E1.
///
/// # Errors
///
/// Propagates thermal errors.
pub fn e1_dtm() -> Result<DtmReport, Error> {
    let mut closures = Vec::new();
    for node in TechNode::NANOMETER {
        closures.push(Chip::at_node(node).thermal_closure()?);
    }
    let cost_step_ratio = cooling_cost_dollars(Watts(75.0)) / cooling_cost_dollars(Watts(65.0));
    Ok(DtmReport {
        closures,
        cost_step_ratio,
    })
}

impl DtmReport {
    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("E1. Dynamic thermal management headroom.\n");
        for c in &self.closures {
            out.push_str(&format!("{c}\n"));
        }
        out.push_str(&format!(
            "cooling cost 65 W -> 75 W rises {:.1}X (paper: triples)\n",
            self.cost_step_ratio
        ));
        out
    }
}

// ---------------------------------------------------------------------
// E2 — global signaling (Section 2.2)
// ---------------------------------------------------------------------

/// E2 report: signaling comparison per node.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalingReport {
    /// One report per node.
    pub rows: Vec<GlobalSignalingReport>,
}

/// Runs E2.
///
/// # Errors
///
/// Propagates interconnect errors.
pub fn e2_signaling() -> Result<SignalingReport, Error> {
    let rows = TechNode::ALL
        .iter()
        .map(|&n| global_signaling_report(n))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SignalingReport { rows })
}

impl SignalingReport {
    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out =
            String::from("E2. Global signaling: repeated full-swing vs low-swing differential.\n");
        for r in &self.rows {
            out.push_str(&format!("{r}\n"));
        }
        out
    }
}

// ---------------------------------------------------------------------
// E3 — CVS multi-Vdd (Section 2.4)
// ---------------------------------------------------------------------

/// E3 report: CVS savings across the `Vdd,l/Vdd,h` ratio sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CvsReport {
    /// `(ratio, result)` per swept ratio.
    pub sweep: Vec<(f64, CvsResult)>,
}

/// Runs E3 on a relaxed synthetic netlist at 100 nm, sweeping the low
/// supply ratio — "Vdd,l should be around 0.6 to 0.7 times Vdd,h to
/// maximize power savings".
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn e3_cvs() -> Result<CvsReport, Error> {
    let node = TechNode::N100;
    let mut sweep = Vec::new();
    for ratio in [0.5, 0.6, 0.65, 0.7, 0.8] {
        let mut nl = experiment_netlist(101);
        let base = TimingContext::for_node(node)?;
        let crit = base.analyze(&nl).unwrap().critical_delay();
        let p = node.params();
        let ctx = TimingContext::with_supplies(
            node,
            p.vdd,
            p.vdd * ratio,
            np_circuit::sta::DEFAULT_VTH_OFFSET,
        )?
        .with_clock(crit * 1.1);
        let r = cluster_voltage_scale(&mut nl, &ctx, &CvsOptions::default())?;
        sweep.push((ratio, r));
    }
    Ok(CvsReport { sweep })
}

impl CvsReport {
    /// The ratio with the best dynamic saving.
    pub fn best_ratio(&self) -> f64 {
        self.sweep
            .iter()
            .max_by(|a, b| {
                a.1.dynamic_saving()
                    .partial_cmp(&b.1.dynamic_saving())
                    .expect("finite")
            })
            .map(|(r, _)| *r)
            .expect("non-empty sweep")
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "Vdd,l / Vdd,h",
            "gates low (%)",
            "converters",
            "dyn saving (%)",
        ]);
        for (ratio, r) in &self.sweep {
            t.row(&[
                &format!("{ratio:.2}"),
                &format!("{:.0}", r.fraction_low * 100.0),
                &format!("{}", r.converters),
                &format!("{:.0}", r.dynamic_saving() * 100.0),
            ]);
        }
        format!(
            "E3. Clustered voltage scaling (best ratio {:.2}; paper: 0.6-0.7, 45-50%).\n{}",
            self.best_ratio(),
            t.render()
        )
    }
}

// ---------------------------------------------------------------------
// E4 — dual-Vth assignment (Section 3.2.2)
// ---------------------------------------------------------------------

/// E4 report: dual-Vth savings at several timing-pressure levels.
#[derive(Debug, Clone, PartialEq)]
pub struct DualVthReport {
    /// `(clock relaxation factor, result)` rows.
    pub rows: Vec<(f64, DualVthResult)>,
}

/// Runs E4 at 70 nm for tight, nominal, and relaxed clocks on the default
/// (control-logic-like) netlist, plus a depth-balanced datapath-like
/// netlist at the tight clock — the profile closest to the industrial
/// designs behind the paper's 40–80 % band.
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn e4_dualvth() -> Result<DualVthReport, Error> {
    let node = TechNode::N70;
    let mut rows = Vec::new();
    for factor in [1.05, 1.15, 1.4] {
        let mut nl = experiment_netlist(202);
        let ctx = relaxed_context(node, &nl, factor)?;
        rows.push((factor, assign_dual_vth(&mut nl, &ctx, 0.1, None)?));
    }
    // Datapath-like profile at a fully compressed clock (industrial
    // designs run at ~zero margin), keyed as factor 1.0 in the report.
    let mut nl = generate_netlist(&NetlistSpec::balanced(202));
    let ctx = relaxed_context(node, &nl, 1.005)?;
    rows.push((1.0, assign_dual_vth(&mut nl, &ctx, 0.1, None)?));
    Ok(DualVthReport { rows })
}

impl DualVthReport {
    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "clock / critical",
            "gates high-Vth (%)",
            "leakage saving (%)",
            "delay penalty (%)",
        ]);
        for (f, r) in &self.rows {
            let label = if *f == 1.0 {
                "1.005 (datapath)".to_string()
            } else {
                format!("{f:.2}")
            };
            t.row(&[
                &label,
                &format!("{:.0}", r.fraction_high * 100.0),
                &format!("{:.0}", r.leakage_saving() * 100.0),
                &format!("{:.1}", r.delay_penalty() * 100.0),
            ]);
        }
        format!(
            "E4. Dual-Vth assignment (paper: 40-80% leakage saving).\n{}",
            t.render()
        )
    }
}

// ---------------------------------------------------------------------
// E5 — re-sizing vs supply reduction (Section 3.3)
// ---------------------------------------------------------------------

/// E5 report.
#[derive(Debug, Clone, PartialEq)]
pub struct ResizeReport {
    /// The sizing run and its comparison against the Vdd knob.
    pub comparison: ResizeVsVdd,
    /// Gates resized.
    pub resized: usize,
}

/// Runs E5 at 100 nm with a 1.3× relaxed clock.
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn e5_resize() -> Result<ResizeReport, Error> {
    let mut nl = experiment_netlist(303);
    let ctx = relaxed_context(TechNode::N100, &nl, 1.3)?;
    let sizing = downsize(&mut nl, &ctx, 0.1, None)?;
    let comparison = sizing_vs_vdd(&sizing, 0.8);
    Ok(ResizeReport {
        comparison,
        resized: sizing.resized_count,
    })
}

impl ResizeReport {
    /// Plain-text rendering.
    pub fn render(&self) -> String {
        format!(
            "E5. Re-sizing is sublinear, Vdd is quadratic.\n\
             sizing: {} gates resized, saving {:.0}% for {:.0}% gate-cap given up (efficiency {:.2})\n\
             supply: {:.0}% saving per {:.0}% voltage reduction (efficiency {:.2})\n",
            self.resized,
            self.comparison.sizing_saving * 100.0,
            self.comparison.cap_reduction * 100.0,
            self.comparison.sizing_efficiency(),
            self.comparison.vdd_saving * 100.0,
            (1.0 - self.comparison.vdd_ratio) * 100.0,
            self.comparison.vdd_efficiency(),
        )
    }
}

// ---------------------------------------------------------------------
// E6 — bump current limits, wake-up transients, MCML (Section 4)
// ---------------------------------------------------------------------

/// E6 report.
#[derive(Debug, Clone, PartialEq)]
pub struct GridLimitsReport {
    /// Per-Vdd-bump current under ITRS pads at 35 nm, amperes.
    pub itrs_current_per_bump: f64,
    /// The per-bump limit, amperes.
    pub bump_limit: f64,
    /// Wake-up noise `(ITRS bumps, min-pitch bumps)` in volts for a
    /// 100 ns sleep exit at 35 nm.
    pub wake_noise: (f64, f64),
    /// MCML-vs-CMOS crossover activity for a 35 nm datapath gate.
    pub mcml_crossover: f64,
    /// MCML transient suppression factor.
    pub mcml_transient_suppression: f64,
}

/// Runs E6.
///
/// # Errors
///
/// Propagates grid errors.
pub fn e6_grid_limits() -> Result<GridLimitsReport, Error> {
    let node = TechNode::N35;
    let pkg = PackagingRoadmap::for_node(node);
    let wake = WakeUpEvent::for_node(node, Seconds::from_nano(100.0));
    let (itrs, min_pitch) = wake.noise_comparison(node)?;
    let mcml = LogicStyleComparison::matched(
        Farads::from_femto(20.0),
        node.params().vdd,
        Hertz(node.params().local_clock.0),
    )?;
    Ok(GridLimitsReport {
        itrs_current_per_bump: pkg.itrs_current_per_vdd_bump().0,
        bump_limit: pkg.bump_current_limit.0,
        wake_noise: (itrs.0, min_pitch.0),
        mcml_crossover: mcml.crossover_activity(),
        mcml_transient_suppression: mcml.cmos_current_transient().0
            / mcml.mcml_current_transient().0,
    })
}

impl GridLimitsReport {
    /// Plain-text rendering.
    pub fn render(&self) -> String {
        format!(
            "E6. Power-delivery limits at 35 nm.\n\
             ITRS bumps: {:.0} mA per Vdd bump vs {:.0} mA limit ({})\n\
             wake-up (100 ns): {} mV noise with ITRS bumps, {} mV at min pitch\n\
             MCML: beats CMOS above activity {:.2}; current transients {:.0}X smaller\n",
            self.itrs_current_per_bump * 1e3,
            self.bump_limit * 1e3,
            if self.itrs_current_per_bump > self.bump_limit {
                "INCOMPATIBLE"
            } else {
                "ok"
            },
            fmt_sig(self.wake_noise.0 * 1e3),
            fmt_sig(self.wake_noise.1 * 1e3),
            self.mcml_crossover,
            self.mcml_transient_suppression,
        )
    }
}

// ---------------------------------------------------------------------
// E7 — library granularity (Section 2.3)
// ---------------------------------------------------------------------

/// E7 report.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryReport {
    /// Coarse / rich / generated mappings of one netlist.
    pub regimes: [MappingResult; 3],
}

/// Runs E7 at 180 nm (the SA-27E node).
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn e7_library() -> Result<LibraryReport, Error> {
    let nl = experiment_netlist(404);
    let ctx = relaxed_context(TechNode::N180, &nl, 1.2)?;
    Ok(LibraryReport {
        regimes: compare_regimes(&nl, &ctx, 0.1)?,
    })
}

impl LibraryReport {
    /// Power saving of generated cells over the rich library.
    pub fn generated_saving(&self) -> f64 {
        1.0 - self.regimes[2].power.total() / self.regimes[1].power.total()
    }

    /// Power penalty of the coarse library over the rich one.
    pub fn coarse_penalty(&self) -> f64 {
        self.regimes[0].power.total() / self.regimes[1].power.total() - 1.0
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["regime", "mean drive", "total power (uW)"]);
        for r in &self.regimes {
            t.row(&[
                &format!("{}", r.regime),
                &format!("{:.2}", r.mean_drive),
                &fmt_sig(r.power.total().as_micro()),
            ]);
        }
        format!(
            "E7. Library granularity (paper: on-the-fly cells save 15-22%).\n{}\
             coarse penalty +{:.0}%, generated saving {:.0}%\n",
            t.render(),
            self.coarse_penalty() * 100.0,
            self.generated_saving() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_headroom_and_cost_step() {
        let r = e1_dtm().unwrap();
        assert_eq!(r.closures.len(), 3);
        for c in &r.closures {
            assert!((c.headroom - 1.0 / 3.0).abs() < 1e-9);
        }
        assert!(
            (r.cost_step_ratio - 3.0).abs() < 0.1,
            "got {}",
            r.cost_step_ratio
        );
        assert!(r.render().contains("E1"));
    }

    #[test]
    fn e2_repeater_proliferation() {
        let r = e2_signaling().unwrap();
        let c180 = r.rows[0].repeater_count;
        let c50 = r.rows[TechNode::N50.index()].repeater_count;
        assert!(c50 > 20 * c180);
        assert!(r.render().contains("E2"));
    }

    #[test]
    fn e3_best_ratio_is_0_6_to_0_7() {
        let r = e3_cvs().unwrap();
        let best = r.best_ratio();
        assert!((0.5..=0.75).contains(&best), "best ratio {best}");
        let best_saving = r
            .sweep
            .iter()
            .map(|(_, c)| c.dynamic_saving())
            .fold(0.0f64, f64::max);
        assert!((0.25..=0.65).contains(&best_saving), "saving {best_saving}");
        assert!(r.render().contains("E3"));
    }

    #[test]
    fn e4_band_matches_paper() {
        let r = e4_dualvth().unwrap();
        let relaxed = &r.rows[2].1;
        let s = relaxed.leakage_saving();
        assert!((0.40..=0.95).contains(&s), "saving {s}");
        assert!(r.render().contains("E4"));
    }

    #[test]
    fn e5_efficiencies() {
        let r = e5_resize().unwrap();
        assert!(r.comparison.sizing_efficiency() < 1.0);
        assert!(r.comparison.vdd_efficiency() > 1.5);
        assert!(r.render().contains("E5"));
    }

    #[test]
    fn e6_limits() {
        let r = e6_grid_limits().unwrap();
        assert!(r.itrs_current_per_bump > r.bump_limit);
        assert!(r.wake_noise.1 < r.wake_noise.0);
        assert!(r.mcml_crossover < 1.0);
        assert!(r.mcml_transient_suppression > 10.0);
        assert!(r.render().contains("INCOMPATIBLE"));
    }

    #[test]
    fn e7_generated_cells_save() {
        let r = e7_library().unwrap();
        assert!(r.generated_saving() > 0.03);
        assert!(r.coarse_penalty() > 0.1);
        assert!(r.render().contains("E7"));
    }
}

// ---------------------------------------------------------------------
// E8 — §3.2 standby-leakage technique comparison
// ---------------------------------------------------------------------

/// One leakage-control technique's scorecard at a node.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageTechnique {
    /// Technique name.
    pub name: &'static str,
    /// Standby-leakage reduction factor.
    pub standby_reduction: f64,
    /// Active-mode leakage reduction factor (1.0 = none).
    pub active_reduction: f64,
    /// Fractional area overhead.
    pub area_overhead: f64,
    /// Does the technique keep working at the end of the roadmap?
    pub scales: bool,
}

/// E8 report: the Section 3.2 technique menu, quantified at one node.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageTechReport {
    /// The node evaluated.
    pub node: TechNode,
    /// One row per technique.
    pub rows: Vec<LeakageTechnique>,
}

/// Runs E8 at 70 nm: MTCMOS, reverse body bias, two-transistor stacks,
/// dual-Vth (its netlist-level saving comes from E4), and FD-SOI.
///
/// # Errors
///
/// Propagates device errors.
pub fn e8_leakage_techniques() -> Result<LeakageTechReport, Error> {
    let node = TechNode::N70;
    let dev = Mosfet::for_node(node)?;
    let vdd = node.params().vdd;
    let mut rows = Vec::new();

    let mtcmos = MtcmosBlock::new(dev.clone(), Microns(10_000.0), 0.1)?;
    rows.push(LeakageTechnique {
        name: "MTCMOS sleep transistor",
        standby_reduction: mtcmos.standby_reduction(),
        active_reduction: 1.0, // "no leakage reduction in active mode"
        area_overhead: mtcmos.area_overhead(),
        scales: true,
    });

    let bias = BodyBias::for_node(node);
    rows.push(LeakageTechnique {
        name: "reverse body bias",
        standby_reduction: bias.standby_leakage_reduction(dev.subthreshold_swing()),
        active_reduction: 1.0,
        area_overhead: 0.02, // bias generation and wells
        scales: false,       // "less effective at controlling Vth in scaled devices"
    });

    let stack = SubthresholdStack::uniform(&dev, 2);
    rows.push(LeakageTechnique {
        name: "two-transistor stacks",
        standby_reduction: stack.suppression_factor(vdd)?,
        active_reduction: stack.suppression_factor(vdd)?, // state-dependent, both modes
        area_overhead: 0.10,
        scales: true,
    });

    let high = dev.with_vth(dev.vth + Volts(0.1));
    rows.push(LeakageTechnique {
        name: "dual-Vth insertion",
        standby_reduction: dev.ioff() / high.ioff(),
        active_reduction: dev.ioff() / high.ioff(),
        area_overhead: 0.0, // an extra implant mask, no layout cost
        scales: true,       // Fig. 2's argument
    });

    let soi = dev.with_substrate(Substrate::FdSoi);
    rows.push(LeakageTechnique {
        name: "FD-SOI substrate",
        standby_reduction: dev.ioff() / soi.ioff(),
        active_reduction: dev.ioff() / soi.ioff(),
        area_overhead: 0.0,
        scales: true,
    });

    Ok(LeakageTechReport { node, rows })
}

impl LeakageTechReport {
    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["technique", "standby /X", "active /X", "area +%", "scales?"]);
        for r in &self.rows {
            t.row(&[
                r.name,
                &fmt_sig(r.standby_reduction),
                &fmt_sig(r.active_reduction),
                &format!("{:.0}", r.area_overhead * 100.0),
                if r.scales { "yes" } else { "NO" },
            ]);
        }
        format!(
            "E8. Standby-leakage techniques at {} (Section 3.2).\n{}",
            self.node,
            t.render()
        )
    }
}

// ---------------------------------------------------------------------
// E9 — §2.2 inductive signal integrity
// ---------------------------------------------------------------------

/// E9 report: shield-vs-differential inductive noise at one node.
#[derive(Debug, Clone, PartialEq)]
pub struct InductiveNoiseReport {
    /// Node evaluated.
    pub node: TechNode,
    /// Noise on a shielded single-ended victim, volts.
    pub shielded_noise: f64,
    /// Residual on a twisted differential pair, volts.
    pub differential_noise: f64,
    /// The low-swing signal amplitude the noise competes with, volts.
    pub swing: f64,
}

/// Runs E9 at 50 nm: a 5 mm coupled run, a repeater-scale aggressor
/// (~10 mA) slewing in an FO4-scale rise time, one shield track of
/// separation, and a twice-twisted differential victim.
///
/// # Errors
///
/// Propagates interconnect errors.
pub fn e9_inductive_noise() -> Result<InductiveNoiseReport, Error> {
    let node = TechNode::N50;
    let g = WireGeometry::top_level(node);
    let sep = Microns(2.0 * g.pitch().0);
    let len = Microns(5_000.0);
    let t_rise = Seconds::from_pico(30.0);
    let i_peak = 0.011;
    let shielded = coupled_noise(&g, sep, len, i_peak, t_rise)?;
    let differential = twisted_differential_residue(&g, sep, len, i_peak, t_rise, 2)?;
    let probe = RcLine::new(g, Microns(10_000.0))?;
    let link = LowSwingLink::new(probe, node.params().vdd)?;
    Ok(InductiveNoiseReport {
        node,
        shielded_noise: shielded.0,
        differential_noise: differential.0,
        swing: link.swing.0,
    })
}

impl InductiveNoiseReport {
    /// Rejection factor of the differential pair over the shielded wire.
    pub fn rejection(&self) -> f64 {
        self.shielded_noise / self.differential_noise
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        format!(
            "E9. Inductive noise at {} (5 mm coupled run, one shield track).\n\
             shielded single-ended victim: {:.1} mV\n\
             differential-pair residue:    {:.1} mV  ({:.1}x rejection)\n\
             low-swing amplitude:          {:.1} mV\n\
             Reading: the shield leaves mV-scale magnetic noise against a {:.0} mV\n\
             swing; the differential receiver cancels most of it (Section 2.2).\n",
            self.node,
            self.shielded_noise * 1e3,
            self.differential_noise * 1e3,
            self.rejection(),
            self.swing * 1e3,
            self.swing * 1e3,
        )
    }
}

// ---------------------------------------------------------------------
// E10 — §2.1 sub-ambient cooling
// ---------------------------------------------------------------------

/// E10 report: cooled operation at two set points.
#[derive(Debug, Clone, PartialEq)]
pub struct SubAmbientSweep {
    /// Reports at each cold set point.
    pub points: Vec<SubAmbientReport>,
}

/// Runs E10 at 70 nm for 0 °C and −40 °C set points.
///
/// # Errors
///
/// Propagates thermal errors.
pub fn e10_subambient() -> Result<SubAmbientSweep, Error> {
    let dev = Mosfet::for_node(TechNode::N70)
        .map_err(|_| ThermalError::BadParameter("device calibration failed"))?;
    let p = TechNode::N70.params().max_power;
    let points = [0.0, -40.0]
        .into_iter()
        .map(|t| SubAmbientReport::evaluate(&dev, Celsius(85.0), Celsius(t), p))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SubAmbientSweep { points })
}

impl SubAmbientSweep {
    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("E10. Sub-ambient operation at 70 nm (Section 2.1, ref [5]).\n");
        for p in &self.points {
            out.push_str(&format!("{p}\n"));
        }
        out.push_str(
            "Reading: real gains, but at vapor-compression prices — the paper\n\
             expects heatsinks plus DTM to win for desktops.\n",
        );
        out
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn e8_menu_matches_the_papers_qualitative_table() {
        let r = e8_leakage_techniques().unwrap();
        assert_eq!(r.rows.len(), 5);
        let by_name = |n: &str| r.rows.iter().find(|t| t.name.contains(n)).unwrap();
        // MTCMOS: huge standby saving, nothing in active mode.
        let mt = by_name("MTCMOS");
        assert!(mt.standby_reduction > 100.0);
        assert_eq!(mt.active_reduction, 1.0);
        assert!(mt.area_overhead > 0.05);
        // Body bias does not scale.
        assert!(!by_name("body bias").scales);
        // Dual-Vth and SOI work in both modes.
        assert!(by_name("dual-Vth").active_reduction > 10.0);
        assert!(by_name("FD-SOI").standby_reduction > 1.5);
        assert!(r.render().contains("E8"));
    }

    #[test]
    fn e9_differential_rejects_inductive_noise() {
        let r = e9_inductive_noise().unwrap();
        assert!(r.rejection() > 5.0, "rejection {:.1}", r.rejection());
        // Shielding alone leaves noise comparable to the low swing...
        assert!(r.shielded_noise > 0.5 * r.swing);
        // ...while the twisted pair pushes it to a workable margin.
        assert!(r.differential_noise < 0.6 * r.swing);
        assert!(r.render().contains("E9"));
    }

    #[test]
    fn e10_quantifies_cooling_benefits() {
        let r = e10_subambient().unwrap();
        assert_eq!(r.points.len(), 2);
        assert!(r.points[1].drive_gain > r.points[0].drive_gain);
        assert!(r.points[1].leakage_reduction > 50.0);
        assert!(r.render().contains("E10"));
    }
}
