//! Tables 1 and 2 of the paper.

use nanopower::report::{fmt_sig, TextTable};
use nanopower::Error;
use np_device::{GateKind, Mosfet};
use np_roadmap::survey::{DeviceReport, SURVEY};
use np_roadmap::TechNode;
use np_units::Volts;

/// T1 — the published-device survey of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Report {
    /// The survey rows, paper order.
    pub rows: Vec<&'static DeviceReport>,
}

/// Regenerates Table 1.
pub fn table1() -> Table1Report {
    Table1Report {
        rows: SURVEY.iter().collect(),
    }
}

impl Table1Report {
    /// Plain-text rendering in the paper's column order.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Table 1. Recent NMOS device results, compared with ITRS projections.\n");
        out.push_str("  ref   source          node     Tox            Vdd     Ion        Ioff\n");
        for r in &self.rows {
            out.push_str(&format!("{r}\n"));
        }
        out.push_str("\nReading: no published sub-1 V technology meets the ITRS Ion target.\n");
        out
    }
}

/// One node-row of the Table 2 analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// The node.
    pub node: TechNode,
    /// Electrical oxide capacitance, normalized to 180 nm.
    pub coxe_norm: f64,
    /// Physical oxide capacitance, normalized to 180 nm.
    pub cox_norm: f64,
    /// `Vth` solved to meet `Ion = 750 µA/µm` (poly gate, nominal Vdd).
    pub vth: Volts,
    /// Resulting `Ioff` in nA/µm.
    pub ioff_na: f64,
    /// `Ioff` with a metal gate (gate depletion removed), nA/µm.
    pub ioff_metal_na: f64,
    /// The ITRS `Ioff` projection, nA/µm.
    pub ioff_itrs_na: f64,
    /// The 50 nm parenthetical: `(Vth, Ioff)` at the relaxed 0.7 V supply.
    pub alt_supply: Option<(Volts, f64)>,
}

/// T2 — the analytical `Ioff` scaling study of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Report {
    /// One row per node, coarsest first.
    pub rows: Vec<Table2Row>,
}

/// Regenerates Table 2: per node, solve `Vth` for the 750 µA/µm target and
/// evaluate `Ioff` for poly and metal gates; the 50 nm row also carries the
/// 0.7 V alternative.
///
/// # Errors
///
/// Propagates device-calibration errors.
pub fn table2() -> Result<Table2Report, Error> {
    let t180 = TechNode::N180.params().tox_phys.0;
    let coxe = |t: f64| (t180 + 0.7) / (t + 0.7);
    let cox = |t: f64| t180 / t;
    let mut rows = Vec::new();
    for node in TechNode::ALL {
        let p = node.params();
        let dev = Mosfet::for_node(node)?;
        let metal = Mosfet::for_node_with(node, p.vdd, GateKind::Metal)?;
        let alt_supply = match p.vdd_alt {
            Some(v) => {
                let alt = Mosfet::for_node_with(node, v, GateKind::PolySilicon)?;
                Some((alt.vth, alt.ioff().as_nano_per_micron()))
            }
            None => None,
        };
        rows.push(Table2Row {
            node,
            coxe_norm: coxe(p.tox_phys.0),
            cox_norm: cox(p.tox_phys.0),
            vth: dev.vth,
            ioff_na: dev.ioff().as_nano_per_micron(),
            ioff_metal_na: metal.ioff().as_nano_per_micron(),
            ioff_itrs_na: p.ioff_itrs.as_nano_per_micron(),
            alt_supply,
        });
    }
    Ok(Table2Report { rows })
}

impl Table2Report {
    /// The roadmap-wide `Ioff` increase of the model (the paper's "152X …
    /// markedly higher than the ITRS value of 23X").
    pub fn model_ioff_increase(&self) -> f64 {
        self.rows[self.rows.len() - 1].ioff_na / self.rows[0].ioff_na
    }

    /// The roadmap-wide ITRS `Ioff` increase.
    pub fn itrs_ioff_increase(&self) -> f64 {
        self.rows[self.rows.len() - 1].ioff_itrs_na / self.rows[0].ioff_itrs_na
    }

    /// The 35 nm model-vs-ITRS leakage excess (the paper's "2.9X larger").
    pub fn end_of_roadmap_excess(&self) -> f64 {
        let last = &self.rows[self.rows.len() - 1];
        last.ioff_na / last.ioff_itrs_na
    }

    /// Metal-gate `Ioff` reduction at 35 nm (the paper's "decreases by
    /// 78%").
    pub fn metal_gate_reduction(&self) -> f64 {
        let last = &self.rows[self.rows.len() - 1];
        1.0 - last.ioff_metal_na / last.ioff_na
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "node",
            "Coxe (norm)",
            "Cox (phys)",
            "Vth (V)",
            "Ioff (nA/um)",
            "metal gate",
            "ITRS Ioff",
        ]);
        for r in &self.rows {
            let vth = match r.alt_supply {
                Some((v_alt, _)) => format!("{:.3} ({:.2})", r.vth.0, v_alt.0),
                None => format!("{:.3}", r.vth.0),
            };
            let ioff = match r.alt_supply {
                Some((_, i_alt)) => format!("{} ({})", fmt_sig(r.ioff_na), fmt_sig(i_alt)),
                None => fmt_sig(r.ioff_na),
            };
            t.row(&[
                &format!("{}", r.node),
                &format!("{:.2}", r.coxe_norm),
                &format!("{:.2}", r.cox_norm),
                &vth,
                &ioff,
                &fmt_sig(r.ioff_metal_na),
                &fmt_sig(r.ioff_itrs_na),
            ]);
        }
        format!(
            "Table 2. Analytical model results for Ioff scaling.\n{}\nmodel Ioff increase 180->35 nm: {:.0}X (ITRS: {:.0}X); 35 nm model/ITRS: {:.1}X; metal gate: -{:.0}%\n",
            t.render(),
            self.model_ioff_increase(),
            self.itrs_ioff_increase(),
            self.end_of_roadmap_excess(),
            self.metal_gate_reduction() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_nine_rows() {
        let t = table1();
        assert_eq!(t.rows.len(), 9);
        let s = t.render();
        assert!(s.contains("[24]"));
        assert!(s.contains("ITRS"));
    }

    #[test]
    fn table2_vth_sequence_tracks_the_paper() {
        // Paper: 0.30, 0.29, 0.22, 0.14, 0.04, 0.11.
        let expect = [0.30, 0.29, 0.22, 0.14, 0.04, 0.11];
        let t = table2().unwrap();
        for (row, e) in t.rows.iter().zip(expect) {
            assert!(
                (row.vth.0 - e).abs() < 0.035,
                "{}: Vth {:.3} vs paper {e}",
                row.node,
                row.vth.0
            );
        }
    }

    #[test]
    fn table2_headline_ratios() {
        let t = table2().unwrap();
        // Paper: 152X model vs 23X ITRS; ours lands in the same regime.
        assert!(
            t.model_ioff_increase() > 50.0,
            "got {:.0}X",
            t.model_ioff_increase()
        );
        assert!((20.0..=25.0).contains(&t.itrs_ioff_increase()));
        assert!(t.model_ioff_increase() > 3.0 * t.itrs_ioff_increase());
        // Paper: 2.9X at 35 nm.
        assert!(
            (1.5..=4.5).contains(&t.end_of_roadmap_excess()),
            "got {:.1}X",
            t.end_of_roadmap_excess()
        );
        // Paper: metal gate cuts Ioff 78% at 35 nm.
        assert!(
            (0.6..=0.95).contains(&t.metal_gate_reduction()),
            "got {:.0}%",
            t.metal_gate_reduction() * 100.0
        );
    }

    #[test]
    fn table2_50nm_alt_supply_relaxes_leakage() {
        let t = table2().unwrap();
        let n50 = &t.rows[TechNode::N50.index()];
        let (v_alt, ioff_alt) = n50.alt_supply.expect("50 nm has the 0.7 V variant");
        assert!(v_alt > n50.vth);
        // Paper: 3205 -> 432 nA/µm, "reducing off current by nearly 7X".
        let relief = n50.ioff_na / ioff_alt;
        assert!((4.0..=25.0).contains(&relief), "got {relief:.1}X");
    }

    #[test]
    fn render_contains_all_nodes() {
        let s = table2().unwrap().render();
        for node in TechNode::ALL {
            assert!(s.contains(&format!("{node}")));
        }
    }
}
