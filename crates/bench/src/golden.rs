//! The golden-reference drift gate.
//!
//! A `golden/` directory holds one expected-output file per artifact
//! (`<name>.txt` for the plain-text form, `<name>.csv` for the CSV
//! form). [`GoldenStore::check`] compares a freshly rendered artifact
//! against its reference under a per-artifact [`Tolerance`] policy and
//! reports deviations as a typed [`Error::Drift`] carrying per-cell
//! diagnostics — `repro --check` quarantines the drifting artifact into
//! a degraded-but-complete report instead of aborting the run.
//!
//! Policy semantics (DESIGN.md §13):
//!
//! - **Exact** — byte-for-byte line equality. Used for the text
//!   renderings, whose formatting is part of the contract.
//! - **Absolute(atol)** — numeric cells may differ by up to `atol`;
//!   non-numeric cells must match exactly.
//! - **Relative(rtol)** — numeric cells may differ by up to
//!   `rtol * max(|expected|, |actual|)`, with an absolute floor of
//!   `rtol` near zero so a `0.0` reference does not demand bitwise
//!   equality from a `1e-300` actual.

use nanopower::{DriftCell, Error};
use std::path::{Path, PathBuf};

/// How many drifting cells an [`Error::Drift`] carries verbatim; the
/// rest are summarized by the total count.
const MAX_REPORTED_CELLS: usize = 5;

/// A per-artifact comparison policy for the drift gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Byte-for-byte line equality.
    Exact,
    /// Numeric cells may differ by up to this absolute amount.
    Absolute(f64),
    /// Numeric cells may differ by up to this fraction of the larger
    /// magnitude (with the same value as an absolute floor near zero).
    Relative(f64),
}

impl Tolerance {
    /// The policy's display form, as carried inside [`Error::Drift`]
    /// (e.g. `relative(1e-9)`).
    pub fn describe(&self) -> String {
        match self {
            Tolerance::Exact => "exact".to_string(),
            Tolerance::Absolute(atol) => format!("absolute({atol:e})"),
            Tolerance::Relative(rtol) => format!("relative({rtol:e})"),
        }
    }

    /// Whether `expected` and `actual` agree under this policy, plus the
    /// numeric delta when both cells parse as numbers.
    fn cell_agrees(&self, expected: &str, actual: &str) -> (bool, f64) {
        if expected == actual {
            return (true, 0.0);
        }
        let e = expected.trim().parse::<f64>().ok();
        let a = actual.trim().parse::<f64>().ok();
        match (self, e, a) {
            (Tolerance::Exact, _, _) => (false, delta_of(e, a)),
            (Tolerance::Absolute(atol), Some(e), Some(a)) => {
                let delta = (a - e).abs();
                (delta.is_finite() && delta <= *atol, delta)
            }
            (Tolerance::Relative(rtol), Some(e), Some(a)) => {
                let delta = (a - e).abs();
                // Relative bound with an absolute floor of `rtol`: near
                // zero the policy degrades to Absolute(rtol) instead of
                // demanding bitwise equality from denormals.
                let bound = (rtol * e.abs().max(a.abs())).max(*rtol);
                (delta.is_finite() && delta <= bound, delta)
            }
            // A numeric policy on non-numeric cells falls back to the
            // exact comparison that already failed.
            (_, _, _) => (false, delta_of(e, a)),
        }
    }
}

/// `|actual - expected|` when both parsed, `NaN` otherwise.
fn delta_of(e: Option<f64>, a: Option<f64>) -> f64 {
    match (e, a) {
        (Some(e), Some(a)) => (a - e).abs(),
        _ => f64::NAN,
    }
}

/// The tolerance policy for a named artifact in a given output form.
///
/// Text renderings are formatting contracts and compare [`Tolerance::
/// Exact`]. Figure CSVs carry floating-point series and compare
/// [`Tolerance::Relative`] at `1e-9`; `fig5` runs the iterative grid
/// solver whose worst-drop cells sit near zero volts, so it gets an
/// [`Tolerance::Absolute`] floor at `1e-12` instead. `fig5-mesh` is
/// the multigrid solve, which is a fixed sequence of sequential
/// floating-point operations at any shard count — bitwise
/// reproducible, so its CSV is held to [`Tolerance::Exact`].
/// `fig34-mgate` is the parallel optimizer, whose frozen-round scoring
/// and fixed-order accepts are bitwise identical at any worker count —
/// its CSV is likewise held to [`Tolerance::Exact`].
pub fn tolerance_for(name: &str, csv: bool) -> Tolerance {
    if !csv {
        return Tolerance::Exact;
    }
    match name {
        "fig5" => Tolerance::Absolute(1e-12),
        "fig5-mesh" | "fig34-mgate" => Tolerance::Exact,
        _ => Tolerance::Relative(1e-9),
    }
}

/// Compares `actual` against `expected` cell-by-cell under `tol`,
/// returning [`Error::Drift`] (for `artifact`) when any cell deviates.
///
/// Lines are split on `,` when `csv` is true; text artifacts compare
/// whole lines as single cells (`col` is always 1). Missing rows or
/// cells on either side drift with `<missing>` as the absent value.
///
/// # Errors
///
/// [`Error::Drift`] with up to five per-cell diagnostics and the total
/// drifting-cell count.
pub fn compare(
    artifact: &str,
    tol: Tolerance,
    csv: bool,
    expected: &str,
    actual: &str,
) -> Result<(), Error> {
    let mut cells: Vec<DriftCell> = Vec::new();
    let mut total = 0usize;
    let exp_lines: Vec<&str> = expected.lines().collect();
    let act_lines: Vec<&str> = actual.lines().collect();
    for row in 0..exp_lines.len().max(act_lines.len()) {
        let exp_cells = split_cells(exp_lines.get(row).copied(), csv);
        let act_cells = split_cells(act_lines.get(row).copied(), csv);
        for col in 0..exp_cells.len().max(act_cells.len()) {
            let e = exp_cells.get(col).copied();
            let a = act_cells.get(col).copied();
            let (agrees, delta) = match (e, a) {
                (Some(e), Some(a)) => tol.cell_agrees(e, a),
                _ => (false, f64::NAN),
            };
            if !agrees {
                total += 1;
                if cells.len() < MAX_REPORTED_CELLS {
                    cells.push(DriftCell {
                        row: row + 1,
                        col: col + 1,
                        expected: e.unwrap_or("<missing>").to_string(),
                        actual: a.unwrap_or("<missing>").to_string(),
                        delta,
                    });
                }
            }
        }
    }
    if total == 0 {
        return Ok(());
    }
    np_telemetry::counter("golden.drift", 1);
    Err(Error::Drift {
        artifact: artifact.to_string(),
        policy: tol.describe(),
        total,
        cells,
    })
}

/// A line's cells: CSV fields, or the whole line as one cell.
fn split_cells(line: Option<&str>, csv: bool) -> Vec<&str> {
    match (line, csv) {
        (None, _) => Vec::new(),
        (Some(line), true) => line.split(',').collect(),
        (Some(line), false) => vec![line],
    }
}

/// A directory of golden reference outputs.
#[derive(Debug, Clone)]
pub struct GoldenStore {
    dir: PathBuf,
}

impl GoldenStore {
    /// A store rooted at `dir` (conventionally `golden/` at the repo
    /// root). The directory need not exist until [`bless`](Self::bless)
    /// creates it.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where `name`'s reference for the given output form lives.
    pub fn path_for(&self, name: &str, csv: bool) -> PathBuf {
        let ext = if csv { "csv" } else { "txt" };
        self.dir.join(format!("{name}.{ext}"))
    }

    /// Loads `name`'s golden reference.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when the reference file is missing or
    /// unreadable (the message names the path and suggests `--bless`).
    pub fn load(&self, name: &str, csv: bool) -> Result<String, Error> {
        let path = self.path_for(name, csv);
        std::fs::read_to_string(&path).map_err(|e| {
            Error::InvalidParameter(format!(
                "golden reference for `{name}` unreadable at {}: {e} \
                 (regenerate with `repro --bless`)",
                path.display()
            ))
        })
    }

    /// Checks `actual` against `name`'s golden reference under the
    /// artifact's [`tolerance_for`] policy.
    ///
    /// # Errors
    ///
    /// [`Error::Drift`] on deviation; [`Error::InvalidParameter`] when
    /// the reference is missing.
    pub fn check(&self, name: &str, csv: bool, actual: &str) -> Result<(), Error> {
        let _span = np_telemetry::span("golden.check");
        np_telemetry::counter("golden.checked", 1);
        let expected = self.load(name, csv)?;
        compare(name, tolerance_for(name, csv), csv, &expected, actual)
    }

    /// Writes `content` as `name`'s new golden reference, creating the
    /// store directory if needed.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] on I/O failure.
    pub fn bless(&self, name: &str, csv: bool, content: &str) -> Result<PathBuf, Error> {
        std::fs::create_dir_all(&self.dir).map_err(|e| {
            Error::InvalidParameter(format!(
                "cannot create golden dir {}: {e}",
                self.dir.display()
            ))
        })?;
        let path = self.path_for(name, csv);
        std::fs::write(&path, content).map_err(|e| {
            Error::InvalidParameter(format!("cannot write {}: {e}", path.display()))
        })?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_policy_flags_any_textual_change() {
        assert!(compare("t", Tolerance::Exact, false, "a\nb\nc", "a\nb\nc").is_ok());
        let err = compare("t", Tolerance::Exact, false, "a\nb\nc", "a\nB\nc").unwrap_err();
        match err {
            Error::Drift { total, cells, .. } => {
                assert_eq!(total, 1);
                assert_eq!((cells[0].row, cells[0].col), (2, 1));
                assert_eq!(cells[0].expected, "b");
                assert_eq!(cells[0].actual, "B");
            }
            other => panic!("expected Drift, got {other}"),
        }
    }

    #[test]
    fn relative_policy_tolerates_small_numeric_wiggle() {
        let tol = Tolerance::Relative(1e-9);
        assert!(compare("t", tol, true, "x,1.0\nx,2.0", "x,1.0000000005\nx,2.0").is_ok());
        let err = compare("t", tol, true, "x,1.0", "x,1.001").unwrap_err();
        match err {
            Error::Drift { policy, cells, .. } => {
                assert_eq!(policy, "relative(1e-9)");
                assert_eq!((cells[0].row, cells[0].col), (1, 2));
                assert!((cells[0].delta - 1e-3).abs() < 1e-9);
            }
            other => panic!("expected Drift, got {other}"),
        }
    }

    #[test]
    fn relative_policy_floors_near_zero() {
        // A 0.0 reference should accept a denormal actual, not demand
        // bitwise equality.
        let tol = Tolerance::Relative(1e-9);
        assert!(compare("t", tol, true, "0.0", "1e-300").is_ok());
        assert!(compare("t", tol, true, "0.0", "1e-3").is_err());
    }

    #[test]
    fn absolute_policy_and_shape_mismatches() {
        let tol = Tolerance::Absolute(1e-6);
        assert!(compare("t", tol, true, "1.0,2.0", "1.0000001,2.0").is_ok());
        // Extra row, missing cell: both surface as <missing>.
        let err = compare("t", tol, true, "1.0,2.0", "1.0").unwrap_err();
        match err {
            Error::Drift { total, cells, .. } => {
                assert_eq!(total, 1);
                assert_eq!(cells[0].actual, "<missing>");
            }
            other => panic!("expected Drift, got {other}"),
        }
        let err = compare("t", tol, true, "1.0", "1.0\n9.9").unwrap_err();
        match err {
            Error::Drift { cells, .. } => assert_eq!(cells[0].expected, "<missing>"),
            other => panic!("expected Drift, got {other}"),
        }
    }

    #[test]
    fn drift_diagnostics_are_capped_but_counted() {
        let expected = "1\n2\n3\n4\n5\n6\n7\n8";
        let actual = "9\n9\n9\n9\n9\n9\n9\n9";
        let err = compare("t", Tolerance::Exact, false, expected, actual).unwrap_err();
        match err {
            Error::Drift { total, cells, .. } => {
                assert_eq!(total, 8);
                assert_eq!(cells.len(), MAX_REPORTED_CELLS);
            }
            other => panic!("expected Drift, got {other}"),
        }
    }

    #[test]
    fn store_round_trips_bless_load_check() {
        let dir = std::env::temp_dir().join(format!("np-golden-{}", std::process::id()));
        let store = GoldenStore::new(&dir);
        // Missing reference is a typed, actionable error.
        let err = store.check("fig1", true, "a,b").unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)), "{err}");
        store.bless("fig1", true, "h,v\n0,1.0\n").unwrap();
        assert!(store.check("fig1", true, "h,v\n0,1.0\n").is_ok());
        assert!(matches!(
            store.check("fig1", true, "h,v\n0,1.5\n"),
            Err(Error::Drift { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn policies_match_artifact_kinds() {
        assert_eq!(tolerance_for("table1", false), Tolerance::Exact);
        assert_eq!(tolerance_for("fig1", true), Tolerance::Relative(1e-9));
        assert_eq!(tolerance_for("fig5", true), Tolerance::Absolute(1e-12));
        assert_eq!(tolerance_for("fig5-mesh", true), Tolerance::Exact);
        assert_eq!(tolerance_for("fig34-mgate", true), Tolerance::Exact);
    }
}
