//! Criterion benches for the paper's tables (T1, T2).

use criterion::{criterion_group, criterion_main, Criterion};
use np_bench::tables;
use std::hint::black_box;
use std::time::Duration;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("table1_survey", |b| {
        b.iter(|| black_box(tables::table1().rows.len()))
    });
    g.bench_function("table2_ioff_scaling", |b| {
        b.iter(|| {
            let t = tables::table2().expect("table 2");
            black_box(t.model_ioff_increase())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
