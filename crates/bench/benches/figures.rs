//! Criterion benches for the paper's figures (F1–F5).

use criterion::{criterion_group, criterion_main, Criterion};
use np_bench::figures;
use std::hint::black_box;
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("fig1_static_dynamic_ratio", |b| {
        b.iter(|| black_box(figures::fig1().expect("fig1").curves.len()))
    });
    g.bench_function("fig2_dual_vth_scaling", |b| {
        b.iter(|| black_box(figures::fig2().expect("fig2").rows.len()))
    });
    g.bench_function("fig3_vdd_vth_policies", |b| {
        b.iter(|| black_box(figures::fig3().expect("fig3").curves.len()))
    });
    g.bench_function("fig4_power_ratio", |b| {
        b.iter(|| black_box(figures::fig4().expect("fig4").ratio0))
    });
    g.bench_function("fig5_ir_drop", |b| {
        b.iter(|| black_box(figures::fig5().expect("fig5").rows.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
