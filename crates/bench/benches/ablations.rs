//! Ablation benches for the design choices DESIGN.md §9 calls out:
//! gate-stack variants, analytic vs mesh IR drop, CVS styles, DTM
//! cost impact, and stack depth.

use criterion::{criterion_group, criterion_main, Criterion};
use np_circuit::sta::TimingContext;
use np_device::stack::SubthresholdStack;
use np_device::{GateKind, Mosfet};
use np_grid::analytic::worst_case_drop;
use np_grid::mesh::mesh_worst_drop;
use np_opt::cvs::{cluster_voltage_scale, CvsOptions, CvsStyle};
use np_roadmap::TechNode;
use np_thermal::cost::dtm_cooling_saving_dollars;
use np_units::{Microns, Volts, Watts};
use std::hint::black_box;
use std::time::Duration;

fn gate_stack_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_gate_stack");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for (name, gate) in [
        ("poly", GateKind::PolySilicon),
        ("metal", GateKind::Metal),
        ("ideal", GateKind::Ideal),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let dev = Mosfet::for_node_with(TechNode::N35, Volts(0.6), gate).expect("calib");
                black_box(dev.ioff().0)
            })
        });
    }
    g.finish();
}

fn ir_drop_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ir_drop");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    g.bench_function("analytic", |b| {
        b.iter(|| {
            black_box(
                worst_case_drop(TechNode::N35, Microns(80.0), Microns(4.0))
                    .expect("drop")
                    .0,
            )
        })
    });
    g.bench_function("mesh_sor", |b| {
        b.iter(|| {
            black_box(
                mesh_worst_drop(TechNode::N35, Microns(80.0), Microns(4.0))
                    .expect("drop")
                    .0,
            )
        })
    });
    g.finish();
}

fn cvs_style_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_cvs_style");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for (name, style) in [
        ("clustered", CvsStyle::Clustered),
        ("extended", CvsStyle::Extended),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut nl = np_bench::experiments::experiment_netlist(7);
                let ctx = TimingContext::for_node(TechNode::N100).expect("ctx");
                let crit = ctx.analyze(&nl).expect("sta").critical_delay();
                let ctx = ctx.with_clock(crit * 1.3);
                let opts = CvsOptions {
                    style,
                    ..CvsOptions::default()
                };
                black_box(
                    cluster_voltage_scale(&mut nl, &ctx, &opts)
                        .expect("cvs")
                        .fraction_low,
                )
            })
        });
    }
    g.finish();
}

fn dtm_cost_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dtm_cost");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("with_dtm_saving", |b| {
        b.iter(|| black_box(dtm_cooling_saving_dollars(Watts(100.0), 0.75)))
    });
    g.finish();
}

fn stack_depth_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_stack_depth");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let dev = Mosfet::for_node(TechNode::N70).expect("calib");
    for depth in [1usize, 2, 3] {
        g.bench_function(format!("depth_{depth}"), |b| {
            b.iter(|| {
                black_box(
                    SubthresholdStack::uniform(&dev, depth)
                        .leakage(Volts(0.9))
                        .expect("leakage")
                        .0,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    gate_stack_ablation,
    ir_drop_ablation,
    cvs_style_ablation,
    dtm_cost_ablation,
    stack_depth_ablation
);

// Appended ablations for the extension modules.
mod extension_ablations {
    use super::*;
    use np_circuit::generate::{generate_netlist, NetlistSpec};
    use np_circuit::incremental::IncrementalSta;
    use np_device::mtcmos::MtcmosBlock;
    use np_device::substrate::Substrate;

    pub fn mtcmos_sizing_ablation(c: &mut Criterion) {
        let mut g = c.benchmark_group("ablation_mtcmos_sizing");
        g.sample_size(10).measurement_time(Duration::from_secs(2));
        let logic = Mosfet::for_node(TechNode::N70).expect("calib");
        for frac in [0.05f64, 0.1, 0.3] {
            g.bench_function(format!("sleep_{}pct", (frac * 100.0) as u32), |b| {
                b.iter(|| {
                    let blk =
                        MtcmosBlock::new(logic.clone(), Microns(10_000.0), frac).expect("block");
                    black_box(blk.standby_reduction())
                })
            });
        }
        g.finish();
    }

    pub fn substrate_ablation(c: &mut Criterion) {
        let mut g = c.benchmark_group("ablation_substrate");
        g.sample_size(10).measurement_time(Duration::from_secs(2));
        for (name, sub) in [("bulk", Substrate::Bulk), ("fdsoi", Substrate::FdSoi)] {
            g.bench_function(name, |b| {
                b.iter(|| {
                    let d = Mosfet::for_node(TechNode::N35)
                        .expect("calib")
                        .with_substrate(sub);
                    black_box(d.ioff().0)
                })
            });
        }
        g.finish();
    }

    pub fn sta_engine_ablation(c: &mut Criterion) {
        // Full re-analysis vs incremental cone update for one gate change.
        let mut g = c.benchmark_group("ablation_sta_engine");
        g.sample_size(10).measurement_time(Duration::from_secs(3));
        let nl = generate_netlist(&NetlistSpec::medium(5));
        let ctx = TimingContext::for_node(TechNode::N100).expect("ctx");
        let crit = ctx.analyze(&nl).expect("sta").critical_delay();
        let ctx = ctx.with_clock(crit * 1.2);
        let victim = nl.ids().nth(nl.len() / 2).expect("gate");
        g.bench_function("full_sta", |b| {
            b.iter(|| black_box(ctx.analyze(&nl).expect("sta").critical_delay().0))
        });
        g.bench_function("incremental_cone", |b| {
            let mut inc = IncrementalSta::new(&ctx, &nl);
            b.iter(|| black_box(inc.reevaluate(&nl, victim)))
        });
        g.finish();
    }
}

criterion_group!(
    extension_benches,
    extension_ablations::mtcmos_sizing_ablation,
    extension_ablations::substrate_ablation,
    extension_ablations::sta_engine_ablation
);

criterion_main!(benches, extension_benches);
