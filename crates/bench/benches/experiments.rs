//! Criterion benches for the numbered experiments (E1–E7).

use criterion::{criterion_group, criterion_main, Criterion};
use np_bench::experiments;
use std::hint::black_box;
use std::time::Duration;

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    g.bench_function("e1_thermal_dtm", |b| {
        b.iter(|| black_box(experiments::e1_dtm().expect("e1").cost_step_ratio))
    });
    g.bench_function("e2_global_signaling", |b| {
        b.iter(|| black_box(experiments::e2_signaling().expect("e2").rows.len()))
    });
    g.bench_function("e3_cvs", |b| {
        b.iter(|| black_box(experiments::e3_cvs().expect("e3").best_ratio()))
    });
    g.bench_function("e4_dual_vth_assign", |b| {
        b.iter(|| black_box(experiments::e4_dualvth().expect("e4").rows.len()))
    });
    g.bench_function("e5_resizing", |b| {
        b.iter(|| black_box(experiments::e5_resize().expect("e5").resized))
    });
    g.bench_function("e6_grid_limits", |b| {
        b.iter(|| black_box(experiments::e6_grid_limits().expect("e6").mcml_crossover))
    });
    g.bench_function("e7_library", |b| {
        b.iter(|| black_box(experiments::e7_library().expect("e7").generated_saving()))
    });
    g.bench_function("e8_leakage_techniques", |b| {
        b.iter(|| black_box(experiments::e8_leakage_techniques().expect("e8").rows.len()))
    });
    g.bench_function("e9_inductive_noise", |b| {
        b.iter(|| black_box(experiments::e9_inductive_noise().expect("e9").rejection()))
    });
    g.bench_function("e10_subambient", |b| {
        b.iter(|| black_box(experiments::e10_subambient().expect("e10").points.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
