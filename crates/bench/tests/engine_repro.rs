//! Integration tests for the artifact registry, the parallel engine, and
//! the `repro` binary built on them: registry completeness, serial ≡
//! parallel determinism, uniform CSV reporting, and
//! continue-past-failure semantics.

use nanopower::engine::{self, Session};
use np_bench::registry::{self, REGISTRY};
use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

#[test]
fn every_registry_entry_runs_successfully() {
    for artifact in REGISTRY {
        let text = artifact
            .render_text()
            .unwrap_or_else(|e| panic!("{} failed: {e}", artifact.name));
        assert!(!text.is_empty(), "{} rendered empty", artifact.name);
        if artifact.has_csv() {
            let csv = artifact
                .render_csv()
                .unwrap_or_else(|e| panic!("{} csv failed: {e}", artifact.name));
            assert!(
                csv.lines().count() > 1,
                "{} csv has data rows",
                artifact.name
            );
        } else {
            assert!(
                artifact.render_csv().is_err(),
                "{}: no silent csv",
                artifact.name
            );
        }
    }
}

#[test]
fn parallel_engine_output_is_byte_identical_to_serial() {
    let jobs = || REGISTRY.iter().map(|a| a.job(false)).collect::<Vec<_>>();
    let serial = Session::new(jobs()).workers(1).run();
    let parallel = Session::new(jobs()).workers(4).run();
    assert!(serial.all_ok() && parallel.all_ok());
    assert_eq!(parallel.workers, 4);
    let render = |report: &engine::RunReport| -> String {
        report
            .records
            .iter()
            .map(|r| r.outcome.as_ref().expect("ok").clone())
            .collect()
    };
    assert_eq!(
        render(&serial),
        render(&parallel),
        "submission-order determinism"
    );
    // Telemetry is present even though content is identical.
    for r in &parallel.records {
        assert!(r.digest().is_some());
    }
}

#[test]
fn repro_binary_is_deterministic_across_worker_counts() {
    let serial = repro(&["--jobs", "1"]);
    let parallel = repro(&["--jobs", "4"]);
    assert!(serial.status.success() && parallel.status.success());
    assert_eq!(serial.stdout, parallel.stdout, "byte-identical stdout");
    assert!(!serial.stdout.is_empty());
}

#[test]
fn repro_list_matches_registry_exactly() {
    let out = repro(&["--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let listed: Vec<&str> = stdout
        .lines()
        .map(|l| l.split_whitespace().next().expect("name column"))
        .collect();
    assert_eq!(
        listed,
        registry::names(),
        "--list is the registry, in order"
    );
}

#[test]
fn repro_continues_past_injected_failures_with_error_summary() {
    // An unknown artifact name is an injected per-artifact failure: the
    // engine must keep running the others, exit non-zero, and summarize.
    let out = repro(&["table1", "nosuch-artifact", "fig5"]);
    assert!(!out.status.success(), "failure must reach the exit code");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stdout.contains("=== table1"),
        "artifacts before the failure ran"
    );
    assert!(
        stdout.contains("=== fig5"),
        "artifacts after the failure ran"
    );
    assert!(
        stderr.contains("1 of 3 artifacts failed"),
        "summary: {stderr}"
    );
    assert!(stderr.contains("unknown artifact `nosuch-artifact`"));
}

#[test]
fn repro_csv_reports_unsupported_artifacts_uniformly() {
    let out = repro(&["--csv", "fig1", "dtm", "table1"]);
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stdout.contains("# fig1"), "supported CSV still renders");
    assert!(stderr.contains("2 of 3 artifacts failed"));
    assert!(stderr.contains("artifact `dtm` has no csv form"));
    assert!(stderr.contains("artifact `table1` has no csv form"));
}

#[test]
fn repro_json_reports_every_artifact_with_status_and_duration() {
    let out = repro(&["--json", "--jobs", "2"]);
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(json.contains("\"schema\": \"nanopower-run-report/v1\""));
    assert!(json.contains("\"workers\": 2"));
    for artifact in REGISTRY {
        assert!(
            json.contains(&format!("\"artifact\": \"{}\"", artifact.name)),
            "{} missing from report",
            artifact.name
        );
    }
    assert_eq!(json.matches("\"status\": \"ok\"").count(), REGISTRY.len());
    assert_eq!(json.matches("\"duration_ms\"").count(), REGISTRY.len());
    assert_eq!(json.matches("\"digest\": \"fnv1a:").count(), REGISTRY.len());
    assert!(json.contains("\"failures\": 0"));
}

#[test]
fn repro_json_marks_failures() {
    let out = repro(&["--json", "table1", "nosuch"]);
    assert!(!out.status.success());
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(json.contains("\"status\": \"error\""));
    assert!(json.contains("\"failures\": 1"));
    assert!(json.contains("unknown artifact"));
}
