//! Chaos leg for the parallel optimizer: a real asynchronous
//! [`CancelToken`] fired from another thread mid-run must drain the
//! optimizer cleanly — flagged result, timing-feasible netlist, no
//! half-applied scoring round.
//!
//! Unlike the deterministic counter-based cancel tests in `np-opt`,
//! this leg is intentionally racy (wall-clock cancel against live
//! threads); the *assertions* hold at whatever point the token lands.

use std::time::{Duration, Instant};

use nanopower::engine::CancelToken;
use np_circuit::generate::{generate_netlist, NetlistSpec};
use np_circuit::sta::TimingContext;
use np_opt::{optimize_parallel_with_cancel, ParallelOptions};
use np_roadmap::TechNode;

#[test]
fn async_cancel_token_drains_the_optimizer_cleanly() {
    let mut netlist = generate_netlist(&NetlistSpec::large(23, 20_000));
    let ctx = TimingContext::for_node(TechNode::N100).expect("calibration");
    let crit = ctx.analyze(&netlist).expect("analyze").critical_delay();
    let ctx = ctx.with_clock(crit * 1.3);

    let token = CancelToken::new();
    let killer = token.clone();
    let trigger = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        killer.cancel();
    });

    let options = ParallelOptions {
        workers: Some(2),
        // Far more rounds than 150 ms allows at 20k cells in a debug
        // build, so the token always lands mid-run.
        max_rounds: 64,
        ..ParallelOptions::default()
    };
    let started = Instant::now();
    let result =
        optimize_parallel_with_cancel(&mut netlist, &ctx, &options, &|| token.is_cancelled())
            .expect("cancelled run still returns a result");
    let elapsed = started.elapsed();
    trigger.join().expect("trigger thread");

    assert!(result.cancelled, "token fired but the run was not flagged");
    assert!(
        result.rounds.len() < 64,
        "cancel did not shorten the {}-round run",
        result.rounds.len()
    );
    // The drain is prompt: one cancel-poll stride past the token, not
    // minutes of remaining rounds. Generous bound for slow CI machines.
    assert!(
        elapsed < Duration::from_secs(60),
        "drain took {elapsed:?} — cancel checkpoints are not being polled"
    );
    // The contract that matters: whatever was applied is consistent.
    assert!(
        ctx.analyze(&netlist)
            .expect("post-cancel sta")
            .is_feasible(),
        "cancelled run left an infeasible netlist"
    );
}
