//! Chaos integration tests: the engine's failure paths exercised through
//! the real `repro` binary via the hidden `--chaos` flag, which appends
//! three synthetic fault-injection jobs — one that panics, one that
//! hangs far past any test deadline, and one that fails twice before
//! succeeding. The suite pins down the fault-tolerance contract:
//!
//! * a panicking job becomes a recorded failure, not a dead worker;
//! * a hanging job is abandoned at `--timeout-secs` instead of stalling
//!   the queue, and is reported as `timed_out` / deadline-exceeded;
//! * a transiently failing job recovers under `--retries`, with the
//!   attempt count surfaced in the `--json` telemetry;
//! * output stays byte-identical across `--jobs` counts even with the
//!   deadline/retry machinery active.
//!
//! Every chaos invocation passes `--timeout-secs`: `chaos-hang` sleeps
//! five minutes, so a missing deadline would genuinely hang the test.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

/// The standard chaos invocation: 1 s deadline, 3 retries.
const CHAOS: &[&str] = &["--chaos", "--timeout-secs", "1", "--retries", "3"];

#[test]
fn chaos_run_survives_panic_hang_and_flake() {
    let out = repro(&[CHAOS, &["--jobs", "4"]].concat());
    // chaos-panic and chaos-hang must fail; chaos-flaky must recover.
    assert!(!out.status.success(), "two chaos jobs must fail the run");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stdout.contains("chaos: recovered on attempt 3"),
        "flaky job recovered under --retries: {stdout}"
    );
    assert!(
        stderr.contains("2 of 3 artifacts failed"),
        "summary counts the panic and the hang: {stderr}"
    );
    assert!(
        stderr.contains("panicked: chaos: injected panic"),
        "panic payload preserved: {stderr}"
    );
    assert!(
        stderr.contains("deadline exceeded"),
        "hang reported as deadline exceeded: {stderr}"
    );
    assert!(
        !stderr.contains("hang finished"),
        "abandoned attempt's output must be discarded"
    );
}

#[test]
fn chaos_json_reports_attempts_and_deadline_status() {
    let out = repro(&[CHAOS, &["--json", "--jobs", "2"]].concat());
    assert!(!out.status.success());
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(json.contains("\"schema\": \"nanopower-run-report/v1\""));
    assert!(json.contains("\"failures\": 2"), "json: {json}");

    // Per-record telemetry: every record carries attempts and timed_out.
    assert_eq!(json.matches("\"attempts\":").count(), 3);
    assert_eq!(json.matches("\"timed_out\":").count(), 3);

    // The hang is the only timed-out record, and a deadline-exceeded
    // attempt is terminal: exactly one attempt despite --retries 3.
    let hang = record_for(&json, "chaos-hang");
    assert!(hang.contains("\"timed_out\": true"), "hang: {hang}");
    assert!(hang.contains("\"attempts\": 1"), "hang: {hang}");
    assert!(hang.contains("deadline exceeded"), "hang: {hang}");

    // The panicking job is not transient: one attempt, no timeout.
    let panic = record_for(&json, "chaos-panic");
    assert!(panic.contains("\"timed_out\": false"), "panic: {panic}");
    assert!(panic.contains("\"attempts\": 1"), "panic: {panic}");
    assert!(panic.contains("\"status\": \"panicked\""), "panic: {panic}");

    // The flaky job fails twice, succeeds on the third attempt.
    let flaky = record_for(&json, "chaos-flaky");
    assert!(flaky.contains("\"attempts\": 3"), "flaky: {flaky}");
    assert!(flaky.contains("\"status\": \"ok\""), "flaky: {flaky}");
}

/// Slices the JSON report down to the record object for one artifact.
fn record_for<'a>(json: &'a str, name: &str) -> &'a str {
    let start = json
        .find(&format!("\"artifact\": \"{name}\""))
        .unwrap_or_else(|| panic!("{name} missing from report: {json}"));
    let rest = &json[start..];
    let end = rest.find('}').unwrap_or(rest.len());
    &rest[..end]
}

#[test]
fn chaos_output_is_byte_identical_across_worker_counts() {
    let serial = repro(&[CHAOS, &["table1", "fig5", "--jobs", "1"]].concat());
    let parallel = repro(&[CHAOS, &["table1", "fig5", "--jobs", "4"]].concat());
    assert_eq!(
        serial.status.code(),
        parallel.status.code(),
        "exit codes agree"
    );
    assert_eq!(
        serial.stdout, parallel.stdout,
        "stdout byte-identical with deadlines and retries active"
    );
    let stdout = String::from_utf8(serial.stdout).expect("utf8");
    assert!(stdout.contains("=== table1"), "real artifacts still render");
    assert!(stdout.contains("=== fig5"));
}

#[test]
fn real_artifacts_pass_untouched_under_policy() {
    // A deadline and retry budget must be invisible to healthy jobs.
    let plain = repro(&["table1", "fig5"]);
    let hardened = repro(&["table1", "fig5", "--timeout-secs", "30", "--retries", "2"]);
    assert!(plain.status.success() && hardened.status.success());
    assert_eq!(plain.stdout, hardened.stdout);
}

#[test]
fn timeout_flag_rejects_nonsense() {
    for bad in ["0", "-1", "nan", "inf", "soon"] {
        let out = repro(&["--timeout-secs", bad, "table1"]);
        assert!(
            !out.status.success(),
            "--timeout-secs {bad} must be rejected"
        );
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(
            stderr.contains("--timeout-secs needs a positive number"),
            "stderr for {bad}: {stderr}"
        );
    }
}

#[test]
fn retries_flag_rejects_nonsense() {
    for bad in ["-1", "2.5", "many"] {
        let out = repro(&["--retries", bad, "table1"]);
        assert!(!out.status.success(), "--retries {bad} must be rejected");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(
            stderr.contains("--retries needs a non-negative integer"),
            "stderr for {bad}: {stderr}"
        );
    }
}

#[test]
fn equals_form_flags_parse() {
    let out = repro(&["--timeout-secs=30", "--retries=1", "--jobs=2", "table1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("=== table1"));
}
