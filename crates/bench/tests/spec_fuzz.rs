//! Scenario-spec fuzzing: property tests over the canonical spec form
//! plus a seeded live-daemon fuzz.
//!
//! Two layers:
//!
//! 1. **Properties** — `parse ∘ to_json` is the identity for every
//!    generated spec, and the digest ignores client key order and
//!    explicit defaults (the canonical form is the identity, not the
//!    wire bytes).
//! 2. **Live fuzz** — `np_bench::chaos::SpecFuzzer` drives a real
//!    daemon with a seeded mix of valid, boundary, malformed, and
//!    over-budget request lines; every response must be the typed class
//!    the case was generated for, and the daemon must stay ready
//!    throughout. Case count is `NP_SPEC_FUZZ_CASES` (default 1000),
//!    seed is `NP_SPEC_FUZZ_SEED` (default 1) — a failing case replays
//!    from those two numbers alone.

use nanopower::spec::{GridSpec, NetlistTier, ScenarioSpec};
use np_roadmap::TechNode;
use proptest::prelude::*;

/// Builds one spec from plain draws (the shim has no composite
/// strategies, so the test folds the option toggles in by hand).
#[allow(clippy::too_many_arguments)]
fn build_spec(
    node_i: usize,
    activity: f64,
    eff: f64,
    workload: f64,
    tj: f64,
    toggles: u32,
    grid_i: usize,
    cells: usize,
    seed: u64,
) -> ScenarioSpec {
    let mut spec = ScenarioSpec::at_node(TechNode::ALL[node_i % TechNode::ALL.len()]);
    spec.activity = activity;
    spec.effective_fraction = eff;
    spec.workload_ratio = workload;
    if toggles & 1 != 0 {
        spec.junction_temp_c = Some(tj);
    }
    if toggles & 2 != 0 {
        spec.grid = Some(GridSpec {
            resolution: [5, 9, 17, 33, 65][grid_i % 5],
        });
    }
    if toggles & 4 != 0 {
        spec.netlist = Some(NetlistTier { cells, seed });
    }
    spec
}

/// The same spec rendered with keys in the *reverse* of the canonical
/// order (optional legs first, nested keys swapped) — a digest that
/// cared about wire order would change.
fn reversed_json(spec: &ScenarioSpec) -> String {
    let mut parts = Vec::new();
    if let Some(n) = &spec.netlist {
        parts.push(format!(
            "\"netlist\": {{\"seed\": {}, \"cells\": {}}}",
            n.seed, n.cells
        ));
    }
    if let Some(g) = &spec.grid {
        parts.push(format!("\"grid\": {{\"resolution\": {}}}", g.resolution));
    }
    if let Some(t) = spec.junction_temp_c {
        parts.push(format!("\"junction_temp_c\": {t}"));
    }
    parts.push(format!("\"workload_ratio\": {}", spec.workload_ratio));
    parts.push(format!(
        "\"effective_fraction\": {}",
        spec.effective_fraction
    ));
    parts.push(format!("\"activity\": {}", spec.activity));
    parts.push(format!("\"node\": {}", spec.node.drawn().0));
    format!("{{{}}}", parts.join(", "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_of_canonical_form_is_identity(
        node_i in 0usize..6,
        activity in 0.001f64..1.0,
        eff in 0.001f64..1.0,
        workload in 0.001f64..1.0,
        tj in -55.0f64..250.0,
        toggles in 0u32..8,
        grid_i in 0usize..5,
        cells in 100usize..10_000_000,
        // Seeds stay below 2^53: JSON numbers travel as f64, so larger
        // u64s would lose precision on the wire by design.
        seed in 0u64..(1u64 << 53),
    ) {
        let spec = build_spec(node_i, activity, eff, workload, tj, toggles, grid_i, cells, seed);
        let text = spec.to_json();
        let back = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("canonical form must reparse: {text} -> {e}"));
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.digest(), spec.digest());
        prop_assert_eq!(back.to_json(), text, "canonical form is a fixed point");
    }

    #[test]
    fn digest_ignores_key_order_and_explicit_defaults(
        node_i in 0usize..6,
        activity in 0.001f64..1.0,
        eff in 0.001f64..1.0,
        workload in 0.001f64..1.0,
        tj in -55.0f64..250.0,
        toggles in 0u32..8,
        grid_i in 0usize..5,
        cells in 100usize..10_000_000,
        seed in 0u64..(1u64 << 53),
    ) {
        let spec = build_spec(node_i, activity, eff, workload, tj, toggles, grid_i, cells, seed);
        let reordered = ScenarioSpec::parse(&reversed_json(&spec))
            .unwrap_or_else(|e| panic!("reversed form must parse: {e}"));
        prop_assert_eq!(&reordered, &spec);
        prop_assert_eq!(reordered.digest(), spec.digest());
        prop_assert_eq!(reordered.job_name(), spec.job_name());
    }

    #[test]
    fn digest_distinguishes_scenarios(
        node_i in 0usize..6,
        activity in 0.001f64..1.0,
        eff in 0.001f64..1.0,
        workload in 0.001f64..1.0,
    ) {
        let spec = build_spec(node_i, activity, eff, workload, 0.0, 0, 0, 100, 0);
        let mut other = spec.clone();
        other.activity = (activity * 0.5).max(0.0005);
        prop_assert!(spec.digest() != other.digest(), "{}", spec.to_json());
    }
}

// ---------------------------------------------------------------------
// live-daemon fuzz
// ---------------------------------------------------------------------

#[cfg(unix)]
mod live {
    use nanopower::proto::Response;
    use np_bench::chaos::{SpecCase, SpecExpectation, SpecFuzzer};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::path::PathBuf;
    use std::process::{Child, Command, Stdio};
    use std::time::{Duration, Instant};

    fn env_u64(key: &str, default: u64) -> u64 {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    struct Daemon {
        child: Child,
        socket: PathBuf,
    }

    impl Drop for Daemon {
        fn drop(&mut self) {
            let _ = self.child.kill();
            let _ = self.child.wait();
            let _ = std::fs::remove_file(&self.socket);
        }
    }

    fn spawn_daemon() -> Daemon {
        let socket = std::env::temp_dir().join(format!("np-spec-fuzz-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let child = Command::new(env!("CARGO_BIN_EXE_nanopowerd"))
            .arg("serve")
            .arg("--socket")
            .arg(&socket)
            .args(["--workers", "2", "--max-inflight", "2"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn nanopowerd");
        let daemon = Daemon { child, socket };
        let deadline = Instant::now() + Duration::from_secs(10);
        while UnixStream::connect(&daemon.socket).is_err() {
            assert!(Instant::now() < deadline, "daemon never opened its socket");
            std::thread::sleep(Duration::from_millis(20));
        }
        daemon
    }

    struct Conn {
        reader: BufReader<UnixStream>,
        writer: UnixStream,
    }

    impl Conn {
        fn open(socket: &PathBuf) -> Conn {
            let writer = UnixStream::connect(socket).expect("connect");
            let reader = BufReader::new(writer.try_clone().expect("clone socket"));
            let mut conn = Conn { reader, writer };
            match conn.read() {
                Response::Hello(_) => conn,
                other => panic!("expected hello, got {other:?}"),
            }
        }

        fn read(&mut self) -> Response {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("read response");
            assert!(n > 0, "daemon dropped the connection — a fuzz failure");
            Response::parse(line.trim_end())
                .unwrap_or_else(|e| panic!("untyped response line {line:?}: {e}"))
        }

        /// Sends one fuzz case and asserts the typed response class it
        /// was generated for.
        fn drive(&mut self, i: usize, case: &SpecCase) {
            self.writer
                .write_all(case.line.as_bytes())
                .and_then(|()| self.writer.write_all(b"\n"))
                .expect("send case");
            match case.expect {
                SpecExpectation::Report => loop {
                    match self.read() {
                        Response::Record(record) => assert!(
                            record.status == "ok",
                            "case {i}: valid spec produced a {} record: {record:?}\n{}",
                            record.status,
                            case.line
                        ),
                        Response::Report(report) => {
                            assert_eq!(report.failures, 0, "case {i}: {report:?}\n{}", case.line);
                            break;
                        }
                        other => panic!("case {i}: unexpected {other:?}\n{}", case.line),
                    }
                },
                SpecExpectation::InvalidSpec => match self.read() {
                    Response::InvalidSpec { field, .. } => {
                        assert!(!field.is_empty(), "case {i} names no field\n{}", case.line);
                    }
                    other => panic!(
                        "case {i}: expected invalid_spec, got {other:?}\n{}",
                        case.line
                    ),
                },
                SpecExpectation::TooExpensive => match self.read() {
                    Response::TooExpensive { estimate, budget } => {
                        assert!(estimate > budget, "case {i}: {estimate} <= {budget}");
                    }
                    other => panic!(
                        "case {i}: expected too_expensive, got {other:?}\n{}",
                        case.line
                    ),
                },
                SpecExpectation::Protocol => match self.read() {
                    Response::Protocol { .. } => {}
                    other => panic!(
                        "case {i}: expected protocol error, got {other:?}\n{}",
                        case.line
                    ),
                },
            }
        }
    }

    /// The acceptance gate: `NP_SPEC_FUZZ_CASES` seeded cases against a
    /// live daemon — zero daemon panics, zero dropped connections, and
    /// a typed response of the generated class for every single case.
    #[test]
    fn seeded_fuzz_draws_only_typed_responses_from_a_live_daemon() {
        let cases = env_u64("NP_SPEC_FUZZ_CASES", 1000) as usize;
        let seed = env_u64("NP_SPEC_FUZZ_SEED", 1);
        let fuzzer = SpecFuzzer::new(seed);
        let daemon = spawn_daemon();
        let mut conn = Conn::open(&daemon.socket);
        for i in 0..cases {
            let case = fuzzer.case(i);
            conn.drive(i, &case);
            // A fresh connection every so often exercises the greeting
            // path under fuzz load too.
            if i % 250 == 249 {
                conn = Conn::open(&daemon.socket);
            }
        }
        // The daemon must still be ready after the whole barrage.
        conn.writer
            .write_all(b"{\"health\": {}}\n")
            .expect("send health");
        match conn.read() {
            Response::Health(health) => assert!(health.ready, "{health:?}"),
            other => panic!("expected health, got {other:?}"),
        }
        eprintln!("spec fuzz: {cases} cases (seed {seed}), all responses typed");
    }
}
