//! Integration tests for the resilience layer through the real `repro`
//! binary: crash-safe journaling, kill-at-any-byte resume, and the
//! golden-reference drift gate.
//!
//! The headline property (ISSUE 5): a journal truncated at **any** byte
//! offset — simulating a `SIGKILL` landing mid-write — must resume to
//! final output bitwise-identical to an uninterrupted `--jobs 1` run.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "np-resume-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The artifact subset the journal properties run (cheap but mixed:
/// tables, figures, an experiment — and enough entries that truncation
/// offsets land in interesting places).
const NAMES: [&str; 5] = ["table1", "table2", "fig1", "fig2", "dtm"];

/// One-time fixture: the uninterrupted reference stdout and the bytes of
/// a complete journal for the same request.
fn fixture() -> &'static (Vec<u8>, Vec<u8>, usize) {
    static FIXTURE: OnceLock<(Vec<u8>, Vec<u8>, usize)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut clean_args = vec!["--jobs", "1"];
        clean_args.extend(NAMES);
        let clean = repro(&clean_args);
        assert!(clean.status.success(), "clean reference run failed");
        let dir = temp_dir("fixture");
        let journal = dir.join("run.jsonl");
        let journal_str = journal.to_str().expect("utf8 path").to_string();
        let mut args = vec!["--jobs", "1", "--journal", &journal_str];
        args.extend(NAMES);
        let journaled = repro(&args);
        assert!(journaled.status.success(), "journaled run failed");
        assert_eq!(
            journaled.stdout, clean.stdout,
            "journaling must not change output"
        );
        let bytes = std::fs::read(&journal).expect("journal readable");
        let header_end = bytes
            .iter()
            .position(|&b| b == b'\n')
            .expect("journal has a header line")
            + 1;
        (clean.stdout, bytes, header_end)
    })
}

/// Truncates the fixture journal to `len` bytes at `path`.
fn truncate_journal_to(path: &Path, len: usize) {
    let (_, bytes, _) = fixture();
    std::fs::write(path, &bytes[..len]).expect("write truncated journal");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SIGKILL-at-any-byte: resume from a journal cut anywhere past the
    /// header reproduces the uninterrupted run's stdout byte-for-byte
    /// and exits cleanly.
    #[test]
    fn resume_from_any_truncation_offset_is_bitwise_identical(
        frac in 0u32..u32::MAX,
    ) {
        let (clean_stdout, bytes, header_end) = fixture();
        let span = bytes.len() - header_end;
        let cut = header_end + (frac as usize % (span + 1));
        let dir = temp_dir("cut");
        let journal = dir.join(format!("cut-{cut}.jsonl"));
        truncate_journal_to(&journal, cut);
        let out = repro(&[
            "--jobs",
            "3",
            "--resume",
            journal.to_str().expect("utf8 path"),
        ]);
        prop_assert!(
            out.status.success(),
            "resume at cut {cut} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        prop_assert_eq!(
            &out.stdout,
            clean_stdout,
            "cut {} produced different output",
            cut
        );
        std::fs::remove_file(&journal).ok();
    }
}

#[test]
fn second_resume_replays_everything_without_rerunning() {
    let (clean_stdout, bytes, header_end) = fixture();
    // Cut mid-way through entry 3, resume once (completes the journal),
    // then resume again: everything replays from the journal.
    let dir = temp_dir("replay");
    let journal = dir.join("run.jsonl");
    let newlines: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| (b == b'\n').then_some(i))
        .collect();
    truncate_journal_to(
        &journal,
        newlines[3] + 20.min(bytes.len() - newlines[3] - 1),
    );
    let journal_str = journal.to_str().expect("utf8 path");
    let first = repro(&["--resume", journal_str]);
    assert!(first.status.success());
    assert_eq!(first.stdout, *clean_stdout);
    let second = repro(&["--resume", journal_str, "--json"]);
    assert!(second.status.success());
    let json = String::from_utf8(second.stdout).expect("utf8");
    assert!(
        json.contains(&format!("\"replayed\": {}", NAMES.len())),
        "full journal must replay all {} artifacts: {json}",
        NAMES.len()
    );
    assert!(json.contains("\"interrupted\": false"));
    let _ = header_end;
    std::fs::remove_file(&journal).ok();
}

#[test]
fn resume_refuses_a_mismatched_request() {
    let (_, bytes, _) = fixture();
    let dir = temp_dir("mismatch");
    let journal = dir.join("run.jsonl");
    std::fs::write(&journal, bytes).expect("journal copy");
    let journal_str = journal.to_str().expect("utf8 path");
    // The journal was recorded for text output; asking for CSV on
    // resume silently changing the run would defeat the header pin.
    let csv = repro(&["--resume", journal_str, "--csv"]);
    assert!(!csv.status.success(), "csv mismatch must be refused");
    let stderr = String::from_utf8(csv.stderr).expect("utf8");
    assert!(stderr.contains("journal"), "typed journal error: {stderr}");
    // Different artifact list: same refusal.
    let names = repro(&["--resume", journal_str, "fig5"]);
    assert!(!names.status.success(), "name mismatch must be refused");
    std::fs::remove_file(&journal).ok();
}

#[test]
fn check_passes_clean_and_quarantines_a_perturbed_artifact() {
    // Bless a private golden dir, verify --check passes, then perturb
    // one reference and verify exactly that artifact is quarantined as
    // drift while the others still render.
    let dir = temp_dir("golden");
    let golden = dir.to_str().expect("utf8 path");
    let bless = repro(&["--bless", "--golden", golden, "table1", "fig1", "fig2"]);
    assert!(
        bless.status.success(),
        "bless failed: {}",
        String::from_utf8_lossy(&bless.stderr)
    );
    let clean = repro(&["--check", "--golden", golden, "table1", "fig1", "fig2"]);
    assert!(
        clean.status.success(),
        "clean tree must pass --check: {}",
        String::from_utf8_lossy(&clean.stderr)
    );
    // Perturb one numeric cell of fig1's text reference beyond any
    // tolerance.
    let fig1 = dir.join("fig1.txt");
    let text = std::fs::read_to_string(&fig1).expect("blessed fig1");
    let perturbed = text.replacen('7', "9", 1);
    assert_ne!(text, perturbed, "fixture must actually change a digit");
    std::fs::write(&fig1, perturbed).expect("perturb golden");
    let drift = repro(&[
        "--check", "--golden", golden, "--json", "table1", "fig1", "fig2",
    ]);
    assert!(!drift.status.success(), "drift must fail the exit code");
    let json = String::from_utf8(drift.stdout).expect("utf8");
    assert!(
        json.contains("\"artifact\": \"fig1\", \"status\": \"drift\""),
        "fig1 quarantined: {json}"
    );
    assert_eq!(
        json.matches("\"status\": \"ok\"").count(),
        2,
        "the other artifacts still completed: {json}"
    );
    assert!(json.contains("\"failures\": 1"));
    let stderr = String::from_utf8(drift.stderr).expect("utf8");
    assert!(
        stderr.contains("deviates from its golden reference"),
        "per-cell diagnostics reach the summary: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_passes_against_the_committed_golden_tree() {
    // The repo's own golden/ directory must match a fresh render; run
    // from the workspace root where golden/ lives.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let golden = root.join("golden");
    assert!(
        golden.is_dir(),
        "golden/ must be committed at the repo root"
    );
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .current_dir(&root)
        .args(["--check"])
        .output()
        .expect("repro binary runs");
    assert!(
        out.status.success(),
        "clean tree drifted from golden/: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
