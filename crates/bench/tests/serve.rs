//! Integration tests for the `nanopowerd` daemon: spawn the real
//! binary on a temp unix socket and talk `nanopowerd/v1` to it.
//!
//! Unix-only: the tests drive the `--socket` transport. The protocol
//! logic itself is transport-agnostic and unit-tested in
//! `nanopower::proto`.
#![cfg(unix)]

use nanopower::proto::{
    HealthMsg, Hello, RecordMsg, ReportMsg, Request, Response, RunRequest, StatsMsg,
};
use nanopower::roadmap::TechNode;
use nanopower::spec::{GridSpec, ScenarioSpec};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A running daemon on a temp socket, killed (and its socket removed)
/// on drop.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    /// Spawns `nanopowerd serve --socket <tmp>` with extra flags and
    /// waits until the socket accepts connections.
    fn spawn(tag: &str, extra: &[&str]) -> Daemon {
        let socket =
            std::env::temp_dir().join(format!("nanopowerd-{tag}-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let child = Command::new(env!("CARGO_BIN_EXE_nanopowerd"))
            .arg("serve")
            .arg("--socket")
            .arg(&socket)
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn nanopowerd");
        let daemon = Daemon { child, socket };
        let deadline = Instant::now() + Duration::from_secs(10);
        while UnixStream::connect(&daemon.socket).is_err() {
            assert!(
                Instant::now() < deadline,
                "daemon never opened {}",
                daemon.socket.display()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        daemon
    }

    fn connect(&self) -> Conn {
        Conn::open(&self.socket)
    }

    /// Sends `shutdown` and waits for the process to exit cleanly.
    fn shutdown(mut self) {
        let mut conn = self.connect();
        conn.send(&Request::Shutdown);
        assert_eq!(conn.read(), Response::Shutdown);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match self.child.try_wait().expect("wait on daemon") {
                Some(status) => {
                    assert!(status.success(), "daemon exit: {status}");
                    break;
                }
                None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
                None => panic!("daemon ignored shutdown"),
            }
        }
        let _ = std::fs::remove_file(&self.socket);
        // Drop must not re-kill the reaped child.
        self.child = Command::new("true").spawn().expect("spawn true");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// One protocol connection with the hello already consumed.
struct Conn {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    hello: Hello,
}

impl Conn {
    fn open(socket: &PathBuf) -> Conn {
        let writer = UnixStream::connect(socket).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone socket"));
        let mut conn = Conn {
            reader,
            writer,
            hello: Hello { artifacts: 0 },
        };
        match conn.read() {
            Response::Hello(hello) => conn.hello = hello,
            other => panic!("expected hello, got {other:?}"),
        }
        conn
    }

    fn send(&mut self, request: &Request) {
        self.writer
            .write_all(request.to_json().as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .expect("send request");
    }

    fn send_raw(&mut self, line: &str) {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .expect("send raw line");
    }

    fn read(&mut self) -> Response {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "connection closed unexpectedly");
        Response::parse(line.trim_end()).expect("parse response")
    }

    /// Runs a request to its terminal report, collecting the streamed
    /// records. Panics on `busy`.
    fn run(&mut self, request: RunRequest) -> (ReportMsg, Vec<RecordMsg>) {
        self.send(&Request::Run(request));
        self.finish_run()
    }

    /// Reads records until the terminal report (for requests already
    /// sent, typed or raw).
    fn finish_run(&mut self) -> (ReportMsg, Vec<RecordMsg>) {
        let mut records = Vec::new();
        loop {
            match self.read() {
                Response::Record(record) => records.push(record),
                Response::Report(report) => return (report, records),
                other => panic!("unexpected response {other:?}"),
            }
        }
    }

    fn stats(&mut self) -> StatsMsg {
        self.send(&Request::Stats);
        match self.read() {
            Response::Stats(stats) => stats,
            other => panic!("expected stats, got {other:?}"),
        }
    }

    fn health(&mut self) -> HealthMsg {
        self.send(&Request::Health);
        match self.read() {
            Response::Health(health) => health,
            other => panic!("expected health, got {other:?}"),
        }
    }
}

fn run_names(names: &[&str]) -> RunRequest {
    RunRequest {
        names: names.iter().map(|n| n.to_string()).collect(),
        specs: Vec::new(),
        csv: false,
        deadline_ms: Some(60_000),
    }
}

fn run_specs(specs: Vec<ScenarioSpec>) -> RunRequest {
    RunRequest {
        names: Vec::new(),
        specs,
        csv: false,
        deadline_ms: Some(60_000),
    }
}

#[test]
fn serves_artifacts_and_memoizes_repeats() {
    let daemon = Daemon::spawn("memo", &["--workers", "2"]);
    let mut conn = daemon.connect();
    assert!(conn.hello.artifacts > 0, "registry is populated");

    let (report, records) = conn.run(run_names(&["fig5", "table2"]));
    assert_eq!(report.ok, 2, "fresh run succeeds: {report:?}");
    assert_eq!(report.memo_hits, 0);
    assert!(records.iter().all(|r| !r.memo && r.status == "ok"));
    let fresh_digests: Vec<_> = records.iter().map(|r| r.digest.clone()).collect();

    // The repeat is served from the memo — same digests, no execution.
    let (report, records) = conn.run(run_names(&["fig5", "table2"]));
    assert_eq!(report.ok, 2);
    assert_eq!(report.memo_hits, 2, "repeat hits the memo: {report:?}");
    assert!(records.iter().all(|r| r.memo && r.status == "ok"));
    let memo_digests: Vec<_> = records.iter().map(|r| r.digest.clone()).collect();
    assert_eq!(fresh_digests, memo_digests, "memo preserves digests");

    // Unknown artifacts surface as typed error records, not hangups.
    let (report, records) = conn.run(run_names(&["no-such-artifact"]));
    assert_eq!(report.failures, 1);
    assert_eq!(records[0].status, "error");
    assert!(
        records[0]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("no-such-artifact"),
        "{records:?}"
    );

    let stats = conn.stats();
    assert_eq!(stats.memo_hits, 2);
    assert_eq!(stats.served, 3);
    assert_eq!(stats.memo_entries, 2);
    daemon.shutdown();
}

#[test]
fn concurrent_clients_all_complete() {
    let daemon = Daemon::spawn("conc", &["--max-inflight", "2", "--queue-depth", "16"]);
    let names = ["fig1", "fig2", "fig3", "fig4", "fig5", "table1"];
    std::thread::scope(|scope| {
        for t in 0..4 {
            let daemon = &daemon;
            let names = &names;
            scope.spawn(move || {
                let mut conn = daemon.connect();
                for i in 0..6 {
                    let name = names[(t + i) % names.len()];
                    let (report, _) = conn.run(run_names(&[name]));
                    assert_eq!(report.ok, 1, "client {t} req {i}: {report:?}");
                }
            });
        }
    });
    let mut conn = daemon.connect();
    let stats = conn.stats();
    assert_eq!(stats.served, 24, "{stats:?}");
    assert!(
        stats.memo_hits > 0,
        "rotating names must repeat into the memo: {stats:?}"
    );
    daemon.shutdown();
}

#[test]
fn deadline_expiry_cancels_with_typed_records() {
    // The hold keeps the admission slot busy well past the 20 ms
    // deadline, so the engine starts with an already-cancelled token:
    // every job becomes a `cancelled` placeholder, deterministically.
    let daemon = Daemon::spawn("deadline", &["--hold-ms", "300"]);
    let mut conn = daemon.connect();
    let (report, records) = conn.run(RunRequest {
        names: vec!["fig5".into(), "table2".into()],
        specs: Vec::new(),
        csv: false,
        deadline_ms: Some(20),
    });
    assert!(report.interrupted, "{report:?}");
    assert_eq!(report.cancelled, 2, "{report:?}");
    assert_eq!(report.ok, 0);
    assert!(
        records.iter().all(|r| r.status == "cancelled"),
        "{records:?}"
    );

    // The same connection and daemon stay healthy for a fresh run.
    let (report, _) = conn.run(run_names(&["fig5"]));
    assert_eq!(report.ok, 1, "{report:?}");
    assert!(!report.interrupted);
    let stats = conn.stats();
    assert_eq!(stats.cancelled, 1, "{stats:?}");
    daemon.shutdown();
}

#[test]
fn saturated_gate_answers_busy_then_recovers() {
    // One slot, no queue, and each admitted request holds its slot for
    // 800 ms: a second concurrent request must see `busy`.
    let daemon = Daemon::spawn(
        "busy",
        &[
            "--max-inflight",
            "1",
            "--queue-depth",
            "0",
            "--hold-ms",
            "800",
        ],
    );
    let slow = {
        let mut conn = daemon.connect();
        std::thread::spawn(move || {
            let (report, _) = conn.run(run_names(&["fig5"]));
            assert_eq!(report.ok, 1, "{report:?}");
        })
    };
    // Wait until the daemon has actually admitted the slow request
    // (stats bypass the gate), then collide with its held slot.
    let mut conn = daemon.connect();
    let admitted_by = Instant::now() + Duration::from_secs(10);
    while conn.stats().accepted == 0 {
        assert!(Instant::now() < admitted_by, "slow request never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }
    conn.send(&Request::Run(run_names(&["table2"])));
    match conn.read() {
        Response::Busy { inflight, capacity } => {
            assert_eq!((inflight, capacity), (1, 1));
        }
        other => panic!("expected busy, got {other:?}"),
    }
    slow.join().expect("slow request completes");

    // Once the slot drains, the same connection succeeds.
    let (report, _) = conn.run(run_names(&["table2"]));
    assert_eq!(report.ok, 1, "{report:?}");
    let stats = conn.stats();
    assert_eq!(stats.rejected, 1, "{stats:?}");
    assert_eq!(stats.served, 2, "{stats:?}");
    daemon.shutdown();
}

#[test]
fn malformed_lines_get_typed_errors_and_the_connection_survives() {
    let daemon = Daemon::spawn("proto", &[]);
    let mut conn = daemon.connect();
    for (raw, needle) in [
        ("{\"runn\": {}}", "unknown request `runn`"),
        ("not json at all", "unknown literal"),
        ("{\"run\": {\"names\": [1]}}", "array of strings"),
    ] {
        conn.send_raw(raw);
        match conn.read() {
            Response::Protocol { reason } => {
                assert!(reason.contains(needle), "`{raw}` -> {reason}");
            }
            other => panic!("expected protocol error, got {other:?}"),
        }
    }
    // Still serving after three malformed lines.
    let (report, _) = conn.run(run_names(&["fig5"]));
    assert_eq!(report.ok, 1);
    let stats = conn.stats();
    assert_eq!(stats.protocol_errors, 3, "{stats:?}");
    daemon.shutdown();
}

#[test]
fn spec_requests_render_memoize_and_digest_reordered_keys_equal() {
    let daemon = Daemon::spawn("spec", &["--workers", "2"]);
    let mut conn = daemon.connect();

    conn.send_raw(r#"{"run": {"specs": [{"activity": 0.2, "node": 70}]}}"#);
    let (report, records) = conn.finish_run();
    assert_eq!(report.ok, 1, "{report:?}");
    assert_eq!(records.len(), 1, "{records:?}");
    assert!(records[0].name.starts_with("spec:"), "{records:?}");
    assert!(!records[0].memo);
    let fresh = (records[0].name.clone(), records[0].digest.clone());

    // The same scenario with reordered keys and explicit defaults is the
    // same canonical digest: served from the memo without re-rendering.
    conn.send_raw(
        r#"{"run": {"specs": [{"node": 70, "workload_ratio": 1, "effective_fraction": 0.75, "activity": 0.2}]}}"#,
    );
    let (report, records) = conn.finish_run();
    assert_eq!(report.memo_hits, 1, "{report:?}");
    assert!(records[0].memo, "{records:?}");
    assert_eq!((records[0].name.clone(), records[0].digest.clone()), fresh);

    // A field violation draws a typed invalid_spec naming the field —
    // and the connection keeps serving.
    conn.send_raw(r#"{"run": {"specs": [{"node": 70, "activity": 42}]}}"#);
    match conn.read() {
        Response::InvalidSpec { field, reason } => {
            assert_eq!(field, "activity");
            assert!(reason.contains("(0, 1]"), "{reason}");
        }
        other => panic!("expected invalid_spec, got {other:?}"),
    }

    // Unknown `run` keys are rejected, never silently ignored: a typo'd
    // deadline must not demote a bounded request to an unbounded one.
    conn.send_raw(r#"{"run": {"names": ["fig5"], "deadlne_ms": 5}}"#);
    match conn.read() {
        Response::Protocol { reason } => assert!(reason.contains("deadlne_ms"), "{reason}"),
        other => panic!("expected protocol error, got {other:?}"),
    }

    let stats = conn.stats();
    assert_eq!(stats.invalid_specs, 1, "{stats:?}");
    assert_eq!(stats.protocol_errors, 1, "{stats:?}");
    assert_eq!(stats.memo_hits, 1, "{stats:?}");
    daemon.shutdown();
}

#[test]
fn over_budget_specs_draw_too_expensive_before_any_work() {
    let daemon = Daemon::spawn("cost", &["--max-spec-cost", "100"]);
    let mut conn = daemon.connect();
    let mut pricey = ScenarioSpec::at_node(TechNode::N70);
    pricey.grid = Some(GridSpec { resolution: 65 });
    let estimate = pricey.cost();
    assert!(estimate > 100, "test premise: the mesh leg is over budget");
    conn.send(&Request::Run(run_specs(vec![pricey])));
    match conn.read() {
        Response::TooExpensive {
            estimate: quoted,
            budget,
        } => {
            assert_eq!(quoted, estimate, "the rejection quotes the estimate");
            assert_eq!(budget, 100);
        }
        other => panic!("expected too_expensive, got {other:?}"),
    }

    // Rejected before any work: nothing admitted, served, or memoized.
    let stats = conn.stats();
    assert_eq!(stats.too_expensive, 1, "{stats:?}");
    assert_eq!(stats.accepted, 0, "{stats:?}");
    assert_eq!(stats.memo_entries, 0, "{stats:?}");

    // An in-budget spec on the same connection still runs.
    let (report, _) = conn.run(run_specs(vec![ScenarioSpec::at_node(TechNode::N70)]));
    assert_eq!(report.ok, 1, "{report:?}");
    daemon.shutdown();
}

#[test]
fn panicking_spec_is_quarantined_and_the_daemon_stays_ready() {
    let daemon = Daemon::spawn("quar", &["--workers", "2", "--max-inflight", "4"]);
    let mut conn = daemon.connect();
    let mut panicky = ScenarioSpec::at_node(TechNode::N70);
    panicky.chaos = Some("panic".into());

    // Healthy traffic on a second connection completes while the panic
    // lands — the quarantine is per-spec, never per-daemon.
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            let mut side = daemon.connect();
            for _ in 0..3 {
                let (report, _) = side.run(run_names(&["fig5"]));
                assert_eq!(report.ok, 1, "{report:?}");
            }
        });
        let (report, records) = conn.run(run_specs(vec![panicky.clone()]));
        assert_eq!(report.failures, 1, "{report:?}");
        assert_eq!(records[0].status, "panicked", "{records:?}");
        assert!(
            records[0].error.as_deref().unwrap_or("").contains("chaos"),
            "the typed record carries the panic message: {records:?}"
        );
        handle.join().expect("concurrent client");
    });
    assert!(conn.health().ready, "the daemon absorbed the panic");

    // The identical spec is now rejected from quarantine O(1): a typed
    // `quarantined` record carrying the original panic message, with no
    // re-execution.
    let (report, records) = conn.run(run_specs(vec![panicky.clone()]));
    assert_eq!(report.failures, 1, "{report:?}");
    assert_eq!(records[0].status, "quarantined", "{records:?}");
    assert_eq!(records[0].duration_ms, 0.0, "no re-execution: {records:?}");
    assert!(
        records[0].error.as_deref().unwrap_or("").contains("chaos"),
        "{records:?}"
    );

    // The healthy twin (no chaos hook, so a different digest) runs fine
    // — quarantining the poisoned spec cannot shadow it.
    let mut healthy = panicky;
    healthy.chaos = None;
    let (report, records) = conn.run(run_specs(vec![healthy]));
    assert_eq!(report.ok, 1, "{report:?}");
    assert_eq!(records[0].status, "ok", "{records:?}");

    let stats = conn.stats();
    assert_eq!(stats.panicked, 1, "{stats:?}");
    assert_eq!(stats.quarantined, 1, "{stats:?}");
    assert_eq!(stats.quarantine_entries, 1, "{stats:?}");
    assert_eq!(conn.health().quarantine_entries, 1);
    daemon.shutdown();
}

#[test]
fn load_client_writes_bench_report() {
    let daemon = Daemon::spawn("load", &["--workers", "2"]);
    let out = std::env::temp_dir().join(format!("nanopowerd-load-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&out);
    let status = Command::new(env!("CARGO_BIN_EXE_nanopowerd"))
        .arg("load")
        .arg("--socket")
        .arg(&daemon.socket)
        .arg("--quick")
        .arg("--out")
        .arg(&out)
        .status()
        .expect("run load client");
    assert!(status.success(), "load client: {status}");
    let json = std::fs::read_to_string(&out).expect("read BENCH_serve.json");
    assert!(
        json.contains("\"schema\": \"nanopower-bench/v1\""),
        "{json}"
    );
    assert!(json.contains("\"serve\": {"), "{json}");
    assert!(json.contains("\"name\": \"serve.p99\""), "{json}");
    assert!(
        json.contains("\"kinds\": {\"registry\": {"),
        "mixed workload splits per kind: {json}"
    );
    let _ = std::fs::remove_file(&out);
    let mut conn = daemon.connect();
    let stats = conn.stats();
    assert!(stats.memo_hits > 0, "rotation repeats names: {stats:?}");
    daemon.shutdown();
}
