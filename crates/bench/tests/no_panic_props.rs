//! Fault-injection property suite: public model APIs must be total.
//!
//! Every entry point hardened by the `units::guard` layer is fuzzed with
//! a pool of poison values (NaN, ±infinity, subnormals, extreme
//! magnitudes) mixed with ordinary operating values. The properties
//! assert two things:
//!
//! 1. **no panic** — every call returns `Ok` or `Err`, never unwinds;
//! 2. **non-finite in, `Err` out** — a NaN/infinite input is reported as
//!    a typed error (usually the crate's `NonFinite` variant), not
//!    silently propagated into results.
//!
//! The proptest shim has no shrinking; failures print the generated
//! inputs through the assertion message, and case indices are
//! deterministic per test name.

use proptest::prelude::*;

use np_device::solve::solve_vth_for_ion;
use np_device::Mosfet;
use np_grid::cg::solve_cg;
use np_grid::solver::MeshProblem;
use np_interconnect::elmore::RcLine;
use np_interconnect::lowswing::LowSwingLink;
use np_interconnect::repeater::{insert_repeaters, DriverTech};
use np_interconnect::wire::WireGeometry;
use np_roadmap::TechNode;
use np_thermal::package::Package;
use np_thermal::rc::ThermalRc;
use np_units::{Celsius, MicroampsPerMicron, Microns, Seconds, ThermalResistance, Volts, Watts};

/// Non-finite poison values: any API taking one of these must `Err`.
fn poison() -> Vec<f64> {
    vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY]
}

/// Hostile-but-sometimes-valid pool: poison plus zeros, negatives,
/// subnormals, and extreme magnitudes. APIs must not panic on any of
/// these; whether they return `Ok` or `Err` is their contract.
fn hostile() -> Vec<f64> {
    vec![
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        0.0,
        -0.0,
        -1.0,
        1.0,
        1e-12,
        1e12,
    ]
}

fn device() -> Mosfet {
    Mosfet::for_node(TechNode::N100).expect("N100 preset must build")
}

// ---------------------------------------------------------------- device

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn device_ion_total_over_hostile_vdd(v in prop::sample::select(hostile())) {
        let dev = device();
        let r = dev.ion(Volts(v));
        if !v.is_finite() {
            prop_assert!(r.is_err(), "non-finite Vdd {v} must be rejected");
        }
        if let Ok(ion) = r {
            prop_assert!(ion.0.is_finite(), "Ok result must be finite, got {}", ion.0);
        }
    }

    #[test]
    fn device_idsat_and_rlin_total(v in prop::sample::select(hostile())) {
        let dev = device();
        let _ = dev.idsat0(Volts(v));
        let r = dev.linear_resistance_ohm_um(Volts(v));
        if !v.is_finite() {
            prop_assert!(r.is_err(), "non-finite Vgs {v} must be rejected");
        }
    }

    #[test]
    fn device_validate_rejects_poisoned_fields(
        p in prop::sample::select(poison()),
        field in prop::sample::select(vec![0usize, 1, 2, 3, 4, 5]),
    ) {
        let mut dev = device();
        match field {
            0 => dev.leff.0 = p,
            1 => dev.tox_phys.0 = p,
            2 => dev.mu0 = p,
            3 => dev.rs_ohm_um = p,
            4 => dev.vth.0 = p,
            _ => dev.temp.0 = p,
        }
        prop_assert!(dev.validate().is_err(), "poison in field {field} must fail validate");
        // The fallible entry points re-validate, so they must report the
        // poisoned field as an error rather than panic or emit NaN.
        prop_assert!(dev.ion(Volts(1.0)).is_err());
        prop_assert!(dev.linear_resistance_ohm_um(Volts(1.0)).is_err());
    }

    #[test]
    fn device_vth_solver_total(
        vdd in prop::sample::select(hostile()),
        target in prop::sample::select(hostile()),
    ) {
        let dev = device();
        let r = solve_vth_for_ion(&dev, Volts(vdd), MicroampsPerMicron(target));
        if !vdd.is_finite() || !target.is_finite() {
            prop_assert!(r.is_err(), "non-finite solver input must be rejected");
        }
        if let Ok(vth) = r {
            prop_assert!(vth.0.is_finite());
        }
    }
}

// ------------------------------------------------------------------ grid

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn grid_solvers_reject_poison_injection(
        p in prop::sample::select(poison()),
        slot in 0usize..16,
    ) {
        let mut m = MeshProblem::new(4, 4, 1.0);
        m.pinned[0] = true;
        m.injection[slot] = p;
        prop_assert!(m.validate().is_err());
        prop_assert!(m.solve().is_err(), "SOR must reject poison injection");
        prop_assert!(solve_cg(&m).is_err(), "CG must reject poison injection");
    }

    #[test]
    fn grid_solvers_reject_hostile_conductance(g in prop::sample::select(hostile())) {
        let mut m = MeshProblem::new(3, 3, 1.0);
        m.pinned[0] = true;
        m.edge_conductance = g;
        let sor = m.solve();
        let cg = solve_cg(&m);
        if !(g.is_finite() && g > 0.0) {
            prop_assert!(sor.is_err() && cg.is_err(), "conductance {g} must be rejected");
        }
    }

    #[test]
    fn grid_solvers_agree_and_stay_finite(
        i in 0.0f64..5.0,
        slot in 0usize..9,
    ) {
        let mut m = MeshProblem::new(3, 3, 1.0);
        m.pinned[4] = true;
        m.injection[slot] = i;
        let sor = m.solve();
        let cg = solve_cg(&m);
        prop_assert!(sor.is_ok() && cg.is_ok());
        if let (Ok(a), Ok(b)) = (sor, cg) {
            for (x, y) in a.iter().zip(&b) {
                prop_assert!(x.is_finite() && y.is_finite());
                prop_assert!((x - y).abs() < 1e-6, "SOR {x} vs CG {y}");
            }
        }
    }
}

// --------------------------------------------------------------- thermal

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn thermal_rc_constructor_total(c in prop::sample::select(hostile())) {
        let pkg = Package::new(ThermalResistance(0.5), Celsius(45.0));
        let r = ThermalRc::try_new(pkg, c);
        if !(c.is_finite() && c > 0.0) {
            prop_assert!(r.is_err(), "heat capacity {c} must be rejected");
        }
    }

    #[test]
    fn thermal_settle_total(
        p in prop::sample::select(hostile()),
        dt in prop::sample::select(hostile()),
    ) {
        let pkg = Package::new(ThermalResistance(0.5), Celsius(45.0));
        let Ok(mut rc) = ThermalRc::try_new(pkg, 0.1) else {
            prop_assert!(false, "valid constructor must succeed");
            return Ok(());
        };
        let r = rc.settle(Watts(p), Seconds(dt), 1e-3, 10_000);
        if !p.is_finite() || !dt.is_finite() {
            prop_assert!(r.is_err(), "non-finite settle input must be rejected");
        }
        if let Ok(t) = r {
            prop_assert!(t.0.is_finite());
        }
    }

    #[test]
    fn thermal_electro_thermal_total(
        dyn_w in prop::sample::select(hostile()),
        theta in prop::sample::select(hostile()),
    ) {
        let pkg = Package::new(ThermalResistance(theta), Celsius(45.0));
        let r = pkg.electro_thermal_temperature(
            Watts(dyn_w),
            &device(),
            Microns(1.0e6),
            Volts(1.0),
        );
        if !dyn_w.is_finite() || !theta.is_finite() {
            prop_assert!(r.is_err(), "non-finite package input must be rejected");
        }
        if let Ok(t) = r {
            prop_assert!(t.0.is_finite());
        }
    }
}

// ----------------------------------------------------------- interconnect

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wire_widened_total(f in prop::sample::select(hostile())) {
        let g = WireGeometry::top_level(TechNode::N100);
        let r = g.widened(f);
        if !f.is_finite() {
            prop_assert!(r.is_err(), "non-finite widening factor {f} must be rejected");
        }
        if let Ok(w) = r {
            prop_assert!(w.width.0.is_finite());
        }
    }

    #[test]
    fn rcline_constructor_total(len in prop::sample::select(hostile())) {
        let g = WireGeometry::top_level(TechNode::N100);
        let r = RcLine::new(g, Microns(len));
        if !len.is_finite() {
            prop_assert!(r.is_err(), "non-finite length {len} must be rejected");
        }
    }

    #[test]
    fn rcline_rejects_poisoned_geometry(
        p in prop::sample::select(poison()),
        field in prop::sample::select(vec![0usize, 1, 2, 3, 4, 5]),
    ) {
        let mut g = WireGeometry::top_level(TechNode::N100);
        match field {
            0 => g.width.0 = p,
            1 => g.spacing.0 = p,
            2 => g.thickness.0 = p,
            3 => g.height.0 = p,
            4 => g.k_dielectric = p,
            _ => g.resistivity = p,
        }
        prop_assert!(RcLine::new(g, Microns(1000.0)).is_err());
    }

    #[test]
    fn lowswing_total(
        vdd in prop::sample::select(hostile()),
        swing in prop::sample::select(hostile()),
    ) {
        let g = WireGeometry::top_level(TechNode::N100);
        let Ok(line) = RcLine::new(g, Microns(10_000.0)) else {
            prop_assert!(false, "valid line must build");
            return Ok(());
        };
        let r = LowSwingLink::with_swing(line, Volts(vdd), Volts(swing));
        if !vdd.is_finite() || !swing.is_finite() {
            prop_assert!(r.is_err(), "non-finite swing input must be rejected");
        }
    }

    #[test]
    fn repeater_insertion_rejects_poisoned_driver(
        p in prop::sample::select(poison()),
        field in prop::sample::select(vec![0usize, 1, 2]),
    ) {
        let g = WireGeometry::top_level(TechNode::N100);
        let Ok(line) = RcLine::new(g, Microns(10_000.0)) else {
            prop_assert!(false, "valid line must build");
            return Ok(());
        };
        let Ok(mut tech) = DriverTech::from_device(&device(), Volts(1.0)) else {
            prop_assert!(false, "valid driver must build");
            return Ok(());
        };
        match field {
            0 => tech.rd_ohm_um = p,
            1 => tech.c0_per_um = p,
            _ => tech.vdd.0 = p,
        }
        prop_assert!(insert_repeaters(&line, &tech).is_err());
    }

    #[test]
    fn repeater_insertion_total_over_driver_vdd(v in prop::sample::select(hostile())) {
        let g = WireGeometry::top_level(TechNode::N100);
        let Ok(line) = RcLine::new(g, Microns(10_000.0)) else {
            prop_assert!(false, "valid line must build");
            return Ok(());
        };
        let r = DriverTech::from_device(&device(), Volts(v)).and_then(|t| {
            insert_repeaters(&line, &t).map(|d| d.total_delay.0)
        });
        if !v.is_finite() {
            prop_assert!(r.is_err(), "non-finite driver Vdd {v} must be rejected");
        }
    }
}
