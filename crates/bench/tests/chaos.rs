//! Chaos suite for `nanopowerd`: socket-level fault injection through
//! `np_bench::chaos`, crash/restart spill rehydration, overload
//! shedding, watchdog health, and the stale-socket restart path — the
//! failure half of the service contract, driven against the real
//! binary on temp unix sockets.
//!
//! Every schedule here is explicit or seeded, so a failing run replays
//! exactly.
#![cfg(unix)]

use nanopower::proto::{Hello, RecordMsg, ReportMsg, Request, Response, RunRequest, StatsMsg};
use nanopower::roadmap::TechNode;
use nanopower::spec::ScenarioSpec;
use np_bench::chaos::{ChaosProxy, ChaosSchedule, Fault};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A running daemon on a temp socket. Killed (and its socket removed)
/// on drop unless a test explicitly kill-nines it to leave wreckage.
struct Daemon {
    child: Child,
    socket: PathBuf,
    cleanup_socket: bool,
}

fn temp_path(tag: &str, suffix: &str) -> PathBuf {
    std::env::temp_dir().join(format!("np-chaos-{tag}-{}{suffix}", std::process::id()))
}

impl Daemon {
    /// Spawns `nanopowerd serve --socket <tmp>` with extra flags and
    /// waits until the socket accepts connections.
    fn spawn(tag: &str, extra: &[&str]) -> Daemon {
        let socket = temp_path(tag, ".sock");
        let child = Command::new(env!("CARGO_BIN_EXE_nanopowerd"))
            .arg("serve")
            .arg("--socket")
            .arg(&socket)
            .args(["--workers", "2"])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn nanopowerd");
        let daemon = Daemon {
            child,
            socket,
            cleanup_socket: true,
        };
        daemon.await_socket();
        daemon
    }

    fn await_socket(&self) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while UnixStream::connect(&self.socket).is_err() {
            assert!(
                Instant::now() < deadline,
                "daemon never opened {}",
                self.socket.display()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn connect(&self) -> Conn {
        Conn::open(&self.socket)
    }

    /// SIGKILLs the daemon, leaving its socket file (and spill) behind —
    /// the crash a restart must tolerate.
    fn kill9(mut self) -> PathBuf {
        self.child.kill().expect("kill -9 daemon");
        let _ = self.child.wait();
        self.cleanup_socket = false;
        let socket = self.socket.clone();
        // Drop must not re-kill the reaped child or remove the socket.
        self.child = Command::new("true").spawn().expect("spawn true");
        socket
    }

    /// Sends `shutdown` and waits for a clean exit.
    fn shutdown(mut self) {
        let mut conn = self.connect();
        conn.send(&Request::Shutdown);
        assert_eq!(conn.read(), Response::Shutdown);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match self.child.try_wait().expect("wait on daemon") {
                Some(status) => {
                    assert!(status.success(), "daemon exit: {status}");
                    break;
                }
                None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
                None => panic!("daemon ignored shutdown"),
            }
        }
        let _ = std::fs::remove_file(&self.socket);
        self.child = Command::new("true").spawn().expect("spawn true");
        self.cleanup_socket = false;
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if self.cleanup_socket {
            let _ = std::fs::remove_file(&self.socket);
        }
    }
}

/// One protocol connection with the hello already consumed.
struct Conn {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Conn {
    fn open(socket: &PathBuf) -> Conn {
        let mut conn = Conn::open_raw(socket);
        match conn.read() {
            Response::Hello(Hello { .. }) => {}
            other => panic!("expected hello, got {other:?}"),
        }
        conn
    }

    /// Opens without consuming the hello (for rejection-path tests).
    fn open_raw(socket: &PathBuf) -> Conn {
        let writer = UnixStream::connect(socket).expect("connect");
        writer
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(writer.try_clone().expect("clone socket"));
        Conn { reader, writer }
    }

    fn send(&mut self, request: &Request) {
        self.writer
            .write_all(request.to_json().as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .expect("send request");
    }

    fn read(&mut self) -> Response {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "connection closed unexpectedly");
        Response::parse(line.trim_end()).expect("parse response")
    }

    /// Runs a request to its terminal report, collecting the streamed
    /// records and skipping interleaved protocol-error lines (the
    /// garbage-flood tests produce those by design).
    fn run(&mut self, request: RunRequest) -> (ReportMsg, Vec<RecordMsg>) {
        self.send(&Request::Run(request));
        let mut records = Vec::new();
        loop {
            match self.read() {
                Response::Record(record) => records.push(record),
                Response::Report(report) => return (report, records),
                Response::Protocol { .. } => {}
                other => panic!("unexpected response {other:?}"),
            }
        }
    }

    fn stats(&mut self) -> StatsMsg {
        self.send(&Request::Stats);
        match self.read() {
            Response::Stats(stats) => stats,
            other => panic!("expected stats, got {other:?}"),
        }
    }

    fn health(&mut self) -> nanopower::proto::HealthMsg {
        self.send(&Request::Health);
        match self.read() {
            Response::Health(health) => health,
            other => panic!("expected health, got {other:?}"),
        }
    }
}

fn run_names(names: &[&str]) -> RunRequest {
    RunRequest {
        names: names.iter().map(|n| n.to_string()).collect(),
        specs: Vec::new(),
        csv: false,
        deadline_ms: Some(60_000),
    }
}

// ---------------------------------------------------------------------
// crash + rehydrate
// ---------------------------------------------------------------------

#[test]
fn kill_nine_mid_load_then_restart_rehydrates_the_memo() {
    let spill = temp_path("spill", ".memo");
    let _ = std::fs::remove_file(&spill);
    let spill_arg = spill.to_string_lossy().into_owned();

    // First life: render two artifacts (spilled at insert time), then
    // keep load flowing in the background while the kill lands.
    let daemon = Daemon::spawn("crash", &["--memo-spill", &spill_arg]);
    let mut conn = daemon.connect();
    let (report, records) = conn.run(run_names(&["fig5", "table2"]));
    assert_eq!(report.ok, 2, "{report:?}");
    let pre_crash: Vec<(String, Option<String>)> = records
        .iter()
        .map(|r| (r.name.clone(), r.digest.clone()))
        .collect();
    let socket = daemon.socket.clone();
    let flood = std::thread::spawn(move || {
        // Background load at kill time; the dying connection erroring
        // out IS the scenario, so outcomes are deliberately ignored.
        let Ok(stream) = UnixStream::connect(&socket) else {
            return;
        };
        let mut stream = stream;
        for _ in 0..10_000 {
            let line = Request::Run(run_names(&["fig1", "fig5", "table2"])).to_json();
            if stream
                .write_all(line.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .is_err()
            {
                break;
            }
        }
    });
    std::thread::sleep(Duration::from_millis(100));
    let old_socket = daemon.kill9();
    flood.join().expect("flood thread");

    // Second life: same socket path (left stale by the kill), same
    // spill. The very first run must answer from the rehydrated memo
    // with digests identical to the first life's.
    let restarted = Daemon::spawn("crash2", &["--memo-spill", &spill_arg]);
    let mut conn = restarted.connect();
    let (report, records) = conn.run(run_names(&["fig5", "table2"]));
    assert_eq!(report.ok, 2, "{report:?}");
    assert_eq!(
        report.memo_hits, 2,
        "first post-restart pass must hit the rehydrated memo: {report:?}"
    );
    assert!(records.iter().all(|r| r.memo), "{records:?}");
    let post_crash: Vec<(String, Option<String>)> = records
        .iter()
        .map(|r| (r.name.clone(), r.digest.clone()))
        .collect();
    assert_eq!(pre_crash, post_crash, "digests survive the crash");
    let health = conn.health();
    assert!(health.spill_active, "{health:?}");
    assert!(health.memo_entries >= 2, "{health:?}");
    restarted.shutdown();
    let _ = std::fs::remove_file(&spill);
    let _ = std::fs::remove_file(&old_socket);
}

#[test]
fn spec_memo_entries_rehydrate_after_kill_nine_with_pre_crash_digests() {
    let spill = temp_path("spec-spill", ".memo");
    let _ = std::fs::remove_file(&spill);
    let spill_arg = spill.to_string_lossy().into_owned();
    let run_spec = |spec: ScenarioSpec| RunRequest {
        names: Vec::new(),
        specs: vec![spec],
        csv: false,
        deadline_ms: Some(60_000),
    };
    let mut spec = ScenarioSpec::at_node(TechNode::N70);
    spec.activity = 0.2;

    // First life: render the spec (spilled at insert time), then kill -9.
    let daemon = Daemon::spawn("spec-crash", &["--memo-spill", &spill_arg]);
    let mut conn = daemon.connect();
    let (report, records) = conn.run(run_spec(spec.clone()));
    assert_eq!(report.ok, 1, "{report:?}");
    assert!(records[0].name.starts_with("spec:"), "{records:?}");
    let pre_crash = (records[0].name.clone(), records[0].digest.clone());
    let old_socket = daemon.kill9();

    // Second life: the very first identical spec must answer from the
    // rehydrated memo under the same digest-derived key.
    let restarted = Daemon::spawn("spec-crash2", &["--memo-spill", &spill_arg]);
    let mut conn = restarted.connect();
    let (report, records) = conn.run(run_spec(spec));
    assert_eq!(
        report.memo_hits, 1,
        "spec memo entry survives the crash: {report:?}"
    );
    assert!(records[0].memo, "{records:?}");
    assert_eq!(
        (records[0].name.clone(), records[0].digest.clone()),
        pre_crash,
        "digest-keyed identity survives the crash"
    );
    restarted.shutdown();
    let _ = std::fs::remove_file(&spill);
    let _ = std::fs::remove_file(&old_socket);
}

#[test]
fn stale_socket_is_cleaned_up_but_a_live_daemon_is_not_clobbered() {
    // A kill -9 leaves the socket file behind; the next serve on the
    // same path must probe, unlink, and bind.
    let daemon = Daemon::spawn("stale", &[]);
    let socket = daemon.kill9();
    assert!(socket.exists(), "kill -9 leaves the socket file");
    let restarted = Daemon {
        child: Command::new(env!("CARGO_BIN_EXE_nanopowerd"))
            .arg("serve")
            .arg("--socket")
            .arg(&socket)
            .args(["--workers", "2"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("respawn on stale socket"),
        socket: socket.clone(),
        cleanup_socket: true,
    };
    restarted.await_socket();
    let mut conn = restarted.connect();
    assert!(conn.health().ready);

    // A second daemon against the now-LIVE socket must refuse to
    // clobber it and exit with an error.
    let mut usurper = Command::new(env!("CARGO_BIN_EXE_nanopowerd"))
        .arg("serve")
        .arg("--socket")
        .arg(&socket)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn usurper");
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = usurper.try_wait().expect("wait usurper") {
            break status;
        }
        assert!(Instant::now() < deadline, "usurper never exited");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(!status.success(), "usurper must fail against a live daemon");
    // And the original is untouched.
    let (report, _) = conn.run(run_names(&["fig5"]));
    assert_eq!(report.ok, 1, "{report:?}");
    restarted.shutdown();
}

// ---------------------------------------------------------------------
// overload protection
// ---------------------------------------------------------------------

#[test]
fn queue_wait_past_the_shed_budget_is_typed_overloaded_not_busy() {
    let daemon = Daemon::spawn(
        "shed",
        &[
            "--max-inflight",
            "1",
            "--queue-depth",
            "4",
            "--hold-ms",
            "700",
            "--shed-ms",
            "100",
        ],
    );
    let slow = {
        let mut conn = daemon.connect();
        std::thread::spawn(move || {
            let (report, _) = conn.run(run_names(&["fig5"]));
            assert_eq!(report.ok, 1, "{report:?}");
        })
    };
    let mut conn = daemon.connect();
    let admitted_by = Instant::now() + Duration::from_secs(10);
    while conn.stats().accepted == 0 {
        assert!(Instant::now() < admitted_by, "slow request never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The queue has room (depth 4), so this is NOT busy — it queues,
    // waits past the 100 ms budget, and gets shed with `overloaded`.
    conn.send(&Request::Run(run_names(&["table2"])));
    match conn.read() {
        Response::Overloaded {
            waited_ms,
            budget_ms,
        } => {
            assert_eq!(budget_ms, 100);
            assert!(waited_ms >= 100, "waited {waited_ms} ms");
        }
        other => panic!("expected overloaded, got {other:?}"),
    }
    slow.join().expect("slow request completes");
    // The connection survives shedding, and the drained daemon serves.
    let (report, _) = conn.run(run_names(&["table2"]));
    assert_eq!(report.ok, 1, "{report:?}");
    let stats = conn.stats();
    assert_eq!(stats.overloaded, 1, "{stats:?}");
    assert_eq!(stats.rejected, 0, "shed is not busy: {stats:?}");
    daemon.shutdown();
}

#[test]
fn a_client_that_never_reads_is_cut_at_the_write_deadline_not_kept_forever() {
    let daemon = Daemon::spawn("wedge", &["--write-timeout-ms", "200"]);
    // Prewarm the memo so the flood below answers instantly.
    let mut conn = daemon.connect();
    let (report, _) = conn.run(run_names(&["fig5"]));
    assert_eq!(report.ok, 1);

    // The wedge: pipeline thousands of requests and never read a byte.
    // The daemon's responses fill the socket buffer, its next write
    // stalls, trips the 200 ms deadline, and the connection is dropped —
    // costing the daemon one deadline, not a thread forever.
    let socket = daemon.socket.clone();
    let flood = std::thread::spawn(move || {
        let Ok(mut stream) = UnixStream::connect(&socket) else {
            return;
        };
        let line = format!("{}\n", Request::Run(run_names(&["fig5"])).to_json());
        for _ in 0..20_000 {
            if stream.write_all(line.as_bytes()).is_err() {
                break;
            }
        }
        // Hold the unread connection open well past the deadline.
        std::thread::sleep(Duration::from_millis(600));
    });

    // Meanwhile, a well-behaved client keeps getting served promptly.
    let clean_by = Instant::now() + Duration::from_secs(20);
    let mut cut = false;
    while Instant::now() < clean_by {
        let started = Instant::now();
        let (report, _) = conn.run(run_names(&["fig5"]));
        assert_eq!(report.ok, 1, "{report:?}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "clean client stalled behind the wedged one"
        );
        if conn.stats().write_timeouts >= 1 {
            cut = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    flood.join().expect("flood thread");
    assert!(
        cut,
        "the wedged connection never tripped the write deadline"
    );
    daemon.shutdown();
}

#[test]
fn connection_cap_rejects_typed_and_recovers() {
    let daemon = Daemon::spawn("cap", &["--max-connections", "2"]);
    let held_a = daemon.connect();
    let held_b = daemon.connect();
    // Third connection: no hello — a typed rejection line, then close.
    let mut rejected = Conn::open_raw(&daemon.socket);
    match rejected.read() {
        Response::Protocol { reason } => {
            assert!(reason.contains("connection limit"), "{reason}");
        }
        other => panic!("expected typed rejection, got {other:?}"),
    }
    let mut line = String::new();
    assert_eq!(
        rejected.reader.read_line(&mut line).expect("read eof"),
        0,
        "rejected connection is closed"
    );
    drop(rejected);
    drop(held_a);
    // A slot freed: the next connection is served normally again.
    let free_by = Instant::now() + Duration::from_secs(10);
    let mut conn = loop {
        let mut candidate = Conn::open_raw(&daemon.socket);
        match candidate.read() {
            Response::Hello(_) => break candidate,
            Response::Protocol { .. } => {
                // The daemon may not have reaped the dropped handler yet.
                assert!(Instant::now() < free_by, "cap never released");
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("unexpected {other:?}"),
        }
    };
    let (report, _) = conn.run(run_names(&["fig5"]));
    assert_eq!(report.ok, 1, "{report:?}");
    assert!(conn.stats().conn_rejected >= 1);
    drop(held_b);
    daemon.shutdown();
}

// ---------------------------------------------------------------------
// health + watchdog
// ---------------------------------------------------------------------

#[test]
fn watchdog_fails_health_while_the_pool_is_stuck_and_recovers() {
    let daemon = Daemon::spawn("watchdog", &["--hold-ms", "900", "--watchdog-ms", "200"]);
    let mut conn = daemon.connect();
    let health = conn.health();
    assert!(health.ready, "idle daemon is ready: {health:?}");
    assert_eq!(health.inflight, 0);

    // Wedge the pool: the hold keeps the admitted request inflight far
    // past the 200 ms watchdog threshold.
    let stuck = {
        let mut conn = daemon.connect();
        std::thread::spawn(move || {
            let (report, _) = conn.run(run_names(&["fig5"]));
            assert_eq!(report.ok, 1, "{report:?}");
        })
    };
    let failed_by = Instant::now() + Duration::from_secs(10);
    let unhealthy = loop {
        let health = conn.health();
        if !health.ready {
            break health;
        }
        assert!(
            Instant::now() < failed_by,
            "watchdog never failed health: {health:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(unhealthy.oldest_inflight_ms >= 200, "{unhealthy:?}");
    assert_eq!(unhealthy.inflight, 1, "{unhealthy:?}");
    stuck.join().expect("stuck request completes");

    // Drained: health recovers without a restart.
    let ready_by = Instant::now() + Duration::from_secs(10);
    loop {
        let health = conn.health();
        if health.ready {
            assert_eq!(health.inflight, 0, "{health:?}");
            assert!(health.memo_entries >= 1, "{health:?}");
            break;
        }
        assert!(Instant::now() < ready_by, "health never recovered");
        std::thread::sleep(Duration::from_millis(25));
    }
    daemon.shutdown();
}

// ---------------------------------------------------------------------
// fault-injection proxy
// ---------------------------------------------------------------------

#[test]
fn garbage_flood_draws_typed_errors_and_the_real_request_still_lands() {
    let daemon = Daemon::spawn("garbage", &[]);
    let listen = temp_path("garbage-proxy", ".sock");
    let proxy = ChaosProxy::start(
        &listen,
        &daemon.socket,
        ChaosSchedule::Cycle(vec![Fault::GarbageFlood { lines: 12 }]),
    )
    .expect("start proxy");

    let mut conn = Conn::open(&listen);
    // Conn::run skips the 12 interleaved protocol-error lines; the
    // request behind the flood must still complete.
    let (report, records) = conn.run(run_names(&["fig5"]));
    assert_eq!(report.ok, 1, "{report:?}");
    assert_eq!(records.len(), 1);
    let stats = conn.stats();
    assert_eq!(stats.protocol_errors, 12, "{stats:?}");
    assert_eq!(proxy.applied(), vec![Fault::GarbageFlood { lines: 12 }]);
    proxy.stop();
    daemon.shutdown();
}

#[test]
fn torn_frames_and_midline_disconnects_never_take_the_daemon_down() {
    let daemon = Daemon::spawn("torn", &[]);
    let listen = temp_path("torn-proxy", ".sock");
    // Cuts at different depths: inside the first JSON key, inside the
    // names array, and after a healthy prefix of bytes.
    let proxy = ChaosProxy::start(
        &listen,
        &daemon.socket,
        ChaosSchedule::Cycle(vec![
            Fault::TornFrame { after_bytes: 3 },
            Fault::TornFrame { after_bytes: 17 },
            Fault::TornFrame { after_bytes: 33 },
        ]),
    )
    .expect("start proxy");

    for _ in 0..3 {
        let mut conn = Conn::open(&listen);
        // The proxy severs mid-line; depending on timing the client's
        // own write may already see EPIPE — that is the fault working,
        // not a failure. Either way: no hang, no daemon crash.
        let request = format!(
            "{}\n",
            Request::Run(run_names(&["fig5", "table2"])).to_json()
        );
        let _ = conn.writer.write_all(request.as_bytes());
        let mut line = String::new();
        let _ = conn.reader.read_line(&mut line);
    }
    assert_eq!(proxy.accepted(), 3);
    proxy.stop();

    // The daemon survived three torn frames: a direct, clean connection
    // still serves.
    let mut conn = daemon.connect();
    let (report, _) = conn.run(run_names(&["fig5"]));
    assert_eq!(report.ok, 1, "{report:?}");
    assert!(conn.health().ready);
    daemon.shutdown();
}

#[test]
fn slowloris_trickle_cannot_delay_other_clients() {
    let daemon = Daemon::spawn("slowloris", &["--write-timeout-ms", "500"]);
    let listen = temp_path("slowloris-proxy", ".sock");
    let proxy = ChaosProxy::start(
        &listen,
        &daemon.socket,
        ChaosSchedule::Cycle(vec![Fault::Slowloris {
            chunk_bytes: 2,
            stall_ms: 25,
        }]),
    )
    .expect("start proxy");

    // The slowloris victim dribbles its ~50-byte request 2 bytes per
    // 25 ms — its own request takes >500 ms to even arrive.
    let slow = std::thread::spawn(move || {
        let mut conn = Conn::open(&listen);
        let started = Instant::now();
        let (report, _) = conn.run(run_names(&["table2"]));
        (report, started.elapsed())
    });
    // Meanwhile direct clients observe normal service: every terminal
    // response lands well within the write deadline, because the
    // trickle only occupies its own connection's reader.
    let mut conn = daemon.connect();
    for _ in 0..5 {
        let started = Instant::now();
        let (report, _) = conn.run(run_names(&["fig5"]));
        assert_eq!(report.ok, 1, "{report:?}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "clean client delayed behind the slowloris"
        );
    }
    let (slow_report, slow_elapsed) = slow.join().expect("slowloris run");
    assert_eq!(slow_report.ok, 1, "the trickled request still completes");
    assert!(
        slow_elapsed >= Duration::from_millis(300),
        "trickle was actually slow: {slow_elapsed:?}"
    );
    proxy.stop();
    daemon.shutdown();
}

#[test]
fn seeded_chaos_storm_is_deterministic_and_survivable() {
    let daemon = Daemon::spawn("storm", &[]);
    let listen = temp_path("storm-proxy", ".sock");
    let seed = 0xDAC_2001;
    let schedule = ChaosSchedule::Seeded { seed };
    let proxy = ChaosProxy::start(&listen, &daemon.socket, schedule).expect("start proxy");

    // Drive 12 connections through whatever the seed dictates. Client
    // outcomes vary by fault (torn connections error out; that is the
    // weather, not the assertion) — the daemon must survive them all.
    for i in 0..12 {
        let listen = listen.clone();
        let handle = std::thread::spawn(move || {
            let writer = match UnixStream::connect(&listen) {
                Ok(s) => s,
                Err(_) => return,
            };
            let _ = writer.set_read_timeout(Some(Duration::from_secs(10)));
            let mut reader = BufReader::new(match writer.try_clone() {
                Ok(c) => c,
                Err(_) => return,
            });
            let mut writer = writer;
            let request = format!(
                "{}\n",
                Request::Run(run_names(&[["fig5", "table2", "fig1"][i % 3]])).to_json()
            );
            let _ = writer.write_all(request.as_bytes());
            // Read whatever comes back until EOF/timeout/terminal line.
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        if line.contains("\"report\"") {
                            break;
                        }
                    }
                }
            }
        });
        handle.join().expect("storm client");
    }

    // Determinism: the applied faults are exactly the schedule's prefix.
    let expected: Vec<Fault> = (0..12)
        .map(|i| ChaosSchedule::Seeded { seed }.fault_for(i))
        .collect();
    assert_eq!(proxy.applied(), expected, "seeded schedule replayed");
    proxy.stop();

    // The daemon took the storm: still ready, still serving, typed
    // errors only (the process never panicked or exited).
    let mut conn = daemon.connect();
    assert!(conn.health().ready);
    let (report, _) = conn.run(run_names(&["fig5", "table2"]));
    assert_eq!(report.ok, 2, "{report:?}");
    daemon.shutdown();
}
