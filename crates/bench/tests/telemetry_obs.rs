//! Observability integration tests: the `repro` binary's `--trace-out`
//! Chrome trace export, the `telemetry` section of `--json` reports, and
//! the determinism of both modulo timing digits.
//!
//! These drive the real binary (`CARGO_BIN_EXE_repro`) so the whole
//! chain is exercised: CLI flag parsing → collector install → engine
//! span nesting → solver instrumentation → exporter output.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("np-telemetry-test-{}-{name}", std::process::id()));
    p
}

/// Extremely small JSON validity check: balanced braces/brackets outside
/// string literals. The full serde round-trip is out of reach in this
/// offline workspace, but unbalanced output is the realistic failure.
fn assert_balanced_json(s: &str) {
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    for c in s.chars() {
        if in_str {
            match (esc, c) {
                (true, _) => esc = false,
                (false, '\\') => esc = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "closing brace before open:\n{s}");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced JSON:\n{s}");
    assert!(!in_str, "unterminated string:\n{s}");
}

#[test]
fn trace_out_writes_chrome_trace_with_nested_spans() {
    let path = temp_path("trace.json");
    let out = repro(&["--trace-out", path.to_str().unwrap(), "table2"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    assert_balanced_json(&trace);
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\": \"X\""), "complete events: {trace}");
    // The full engine → artifact → solver chain must appear.
    for name in [
        "engine.run",
        "engine.worker",
        "table2",
        "engine.attempt",
        "device.solve_vth",
    ] {
        assert!(
            trace.contains(&format!("\"name\": \"{name}\"")),
            "missing span {name}"
        );
    }
    // The artifact span nests below the worker span; the solver below the
    // attempt. Depths are recorded in the event args.
    let depth_of = |name: &str| -> u32 {
        let at = trace.find(&format!("\"name\": \"{name}\"")).unwrap();
        let rest = &trace[at..];
        let at = rest.find("\"depth\": ").unwrap() + 9;
        rest[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    };
    assert_eq!(depth_of("engine.worker"), 0);
    assert_eq!(depth_of("table2"), 1);
    assert_eq!(depth_of("engine.attempt"), 2);
    assert!(
        depth_of("device.solve_vth") >= 3,
        "solver nests under the attempt"
    );
    // Solver counters ride along.
    assert!(trace.contains("\"device.solve_vth.evals\""), "{trace}");
}

#[test]
fn json_report_gains_additive_telemetry_section() {
    let out = repro(&["--json", "fig1", "fig2"]);
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).unwrap();
    assert_balanced_json(&json);
    // Existing consumers' fields are untouched...
    assert!(json.contains("\"schema\": \"nanopower-run-report/v1\""));
    assert!(json.contains("\"artifacts\""));
    assert!(json.contains("\"failures\": 0"));
    // ...and the new section is present with engine counters.
    assert!(json.contains("\"telemetry\""), "{json}");
    assert!(json.contains("\"engine.jobs\": 2"), "{json}");
    assert!(json.contains("\"engine.run\""), "{json}");
    assert!(json.contains("\"engine.queue_wait_us\""), "{json}");
}

#[test]
fn trace_export_is_deterministic_modulo_timing_digits() {
    // One worker, one artifact: the span/counter structure is fixed, only
    // the timing numbers differ between runs. Each digit *run* collapses
    // to one `#` so differing magnitudes (9 µs vs 12 µs) still compare
    // equal structurally.
    let strip = |s: &str| -> String {
        let mut out = String::with_capacity(s.len());
        let mut in_digits = false;
        for c in s.chars() {
            if c.is_ascii_digit() {
                if !in_digits {
                    out.push('#');
                }
                in_digits = true;
            } else {
                out.push(c);
                in_digits = false;
            }
        }
        out
    };
    let run = || {
        let path = temp_path("det.json");
        let out = repro(&["--jobs", "1", "--trace-out", path.to_str().unwrap(), "fig3"]);
        assert!(out.status.success());
        let trace = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        strip(&trace)
    };
    assert_eq!(run(), run());
}

#[test]
fn trace_out_does_not_change_text_output() {
    let path = temp_path("quiet.json");
    let plain = repro(&["fig4"]);
    let traced = repro(&["--trace-out", path.to_str().unwrap(), "fig4"]);
    let _ = std::fs::remove_file(&path);
    assert!(plain.status.success() && traced.status.success());
    assert_eq!(
        plain.stdout, traced.stdout,
        "tracing must not perturb output"
    );
}

#[test]
fn trace_out_unwritable_path_fails_cleanly() {
    let out = repro(&["--trace-out", "/nonexistent-dir/trace.json", "fig1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot write trace"), "{err}");
}
