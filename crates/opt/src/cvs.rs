//! Clustered voltage scaling (Section 2.4, after Usami & Horowitz \[20\]).
//!
//! Two supplies, `Vdd,h` for critical gates and `Vdd,l` for the rest.
//! Level conversion is needed wherever a low-supply gate drives a
//! high-supply gate; *clustered* voltage scaling only admits a gate to the
//! low cluster when every fan-out is already low (or a timing endpoint,
//! where a converting flip-flop absorbs the conversion), so conversions
//! are pushed to register boundaries. *Extended* CVS (ECVS) allows
//! converters anywhere and trades their delay/energy for a bigger
//! cluster.
//!
//! The paper's expectations: "~75 % of all gates can tolerate Vdd,l" on
//! designs with relaxed timing; "Vdd,l ≈ 0.6–0.7 × Vdd,h"; and a
//! "45–50 % dynamic power reduction, considering 8–10 % additional level
//! conversion power".

use crate::error::OptError;
use np_circuit::cell::SupplyClass;
use np_circuit::incremental::IncrementalSta;
use np_circuit::netlist::{GateId, Netlist};
use np_circuit::power::{level_converter_count, netlist_power, PowerReport};
use np_circuit::sta::TimingContext;
use np_units::Hertz;

/// Which conversion discipline the assignment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CvsStyle {
    /// Level conversion only at timing endpoints (classic CVS).
    #[default]
    Clustered,
    /// Converters allowed on any low→high edge (ECVS).
    Extended,
}

/// Dual-rail power-grid routing overhead once any gate uses `Vdd,l`
/// (the second supply must be distributed).
pub const DUAL_RAIL_AREA: f64 = 0.05;

/// Placement-constraint overhead per unit of low-cluster fraction
/// (clustered cells cannot mix freely in rows).
pub const PLACEMENT_CONSTRAINT_AREA: f64 = 0.08;

/// Area of one level converter in unit-inverter widths.
pub const CONVERTER_AREA_UNITS: f64 = 3.0;

/// CVS configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvsOptions {
    /// Conversion discipline.
    pub style: CvsStyle,
    /// Switching activity used for the power accounting.
    pub activity: f64,
    /// Clock frequency used for the power accounting; `None` uses the
    /// timing context's clock.
    pub frequency: Option<Hertz>,
}

impl Default for CvsOptions {
    fn default() -> Self {
        Self {
            style: CvsStyle::Clustered,
            activity: 0.1,
            frequency: None,
        }
    }
}

/// Result of a CVS run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvsResult {
    /// Gates assigned to the low supply.
    pub low_count: usize,
    /// Fraction of all gates on the low supply.
    pub fraction_low: f64,
    /// Level converters implied by the final assignment.
    pub converters: usize,
    /// Power before the assignment (all gates at `Vdd,h`).
    pub before: PowerReport,
    /// Power after the assignment (including converter energy).
    pub after: PowerReport,
    /// True when the final assignment meets timing (always true on
    /// success; kept for report symmetry).
    pub timing_met: bool,
    /// Fractional cell-area overhead of the dual-supply implementation:
    /// constrained placement + level converters + second power grid
    /// (ref. \[18\] reports 15 % on a real design).
    pub area_overhead: f64,
}

impl CvsResult {
    /// Fractional dynamic-power saving.
    pub fn dynamic_saving(&self) -> f64 {
        1.0 - self.after.dynamic / self.before.dynamic
    }

    /// Fractional total-power saving.
    pub fn total_saving(&self) -> f64 {
        1.0 - self.after.total() / self.before.total()
    }
}

/// Runs clustered voltage scaling on the netlist in place.
///
/// Gates are visited in reverse topological order (so fan-outs are decided
/// before fan-ins, which is what lets clusters grow backwards from the
/// endpoints); each candidate is tentatively moved to `Vdd,l` and kept
/// only if full STA still meets timing.
///
/// # Errors
///
/// [`OptError::TimingInfeasible`] when the design misses timing before
/// optimization; propagates substrate errors.
pub fn cluster_voltage_scale(
    netlist: &mut Netlist,
    ctx: &TimingContext,
    options: &CvsOptions,
) -> Result<CvsResult, OptError> {
    if !(options.activity > 0.0 && options.activity <= 1.0) {
        return Err(OptError::BadParameter("activity must be in (0, 1]"));
    }
    let freq = options.frequency.unwrap_or(Hertz(1.0 / ctx.clock_period.0));
    let baseline = ctx.analyze(netlist)?;
    if !baseline.is_feasible() {
        return Err(OptError::TimingInfeasible {
            worst_slack_ps: baseline.worst_slack().as_pico(),
        });
    }
    let before = netlist_power(netlist, ctx, options.activity, freq)?;
    // Reverse topological order: decide fan-outs before fan-ins. The
    // incremental tracker makes each probe cost only its affected cone.
    let mut sta = IncrementalSta::new(ctx, netlist);
    let order: Vec<GateId> = netlist.topological_order().iter().rev().copied().collect();
    for id in order {
        let admissible = match options.style {
            CvsStyle::Clustered => {
                let fanouts = netlist.fanouts(id);
                let endpoint = fanouts.is_empty() || netlist.gate(id).is_output;
                endpoint
                    || fanouts
                        .iter()
                        .all(|&f| netlist.gate(f).supply == SupplyClass::Low)
            }
            CvsStyle::Extended => true,
        };
        if !admissible {
            continue;
        }
        netlist.gate_mut(id).set_supply(SupplyClass::Low);
        sta.reevaluate(netlist, id)?;
        if !sta.is_feasible() {
            netlist.gate_mut(id).set_supply(SupplyClass::High);
            sta.reevaluate(netlist, id)?;
        }
    }
    let after = netlist_power(netlist, ctx, options.activity, freq)?;
    let low_count = netlist
        .ids()
        .filter(|&id| netlist.gate(id).supply == SupplyClass::Low)
        .count();
    let fraction_low = low_count as f64 / netlist.len() as f64;
    let converters = level_converter_count(netlist);
    let total_units: f64 = netlist
        .ids()
        .map(|id| {
            let g = netlist.gate(id);
            g.kind.relative_width() * g.drive
        })
        .sum();
    let area_overhead = if low_count == 0 {
        0.0
    } else {
        PLACEMENT_CONSTRAINT_AREA * fraction_low
            + DUAL_RAIL_AREA
            + CONVERTER_AREA_UNITS * converters as f64 / total_units
    };
    Ok(CvsResult {
        low_count,
        fraction_low,
        converters,
        before,
        after,
        timing_met: ctx.analyze(netlist)?.is_feasible(),
        area_overhead,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_circuit::generate::{generate_netlist, NetlistSpec};
    use np_roadmap::TechNode;

    fn setup(clock_factor: f64) -> (Netlist, TimingContext) {
        let nl = generate_netlist(&NetlistSpec::small(21));
        let ctx = TimingContext::for_node(TechNode::N100).unwrap();
        let crit = ctx.analyze(&nl).unwrap().critical_delay();
        (nl, ctx.with_clock(crit * clock_factor))
    }

    #[test]
    fn relaxed_design_moves_most_gates_low() {
        // With generous slack, the paper's "~75% of all gates can tolerate
        // Vdd,l" regime appears.
        let (mut nl, ctx) = setup(1.6);
        let r = cluster_voltage_scale(&mut nl, &ctx, &CvsOptions::default()).unwrap();
        assert!(r.fraction_low > 0.6, "got {:.0}%", r.fraction_low * 100.0);
        assert!(r.timing_met);
    }

    #[test]
    fn dynamic_saving_lands_in_the_paper_band() {
        // "45-50% dynamic power reduction" at ~75% low-supply fraction;
        // accept a generous band around it.
        let (mut nl, ctx) = setup(1.6);
        let r = cluster_voltage_scale(&mut nl, &ctx, &CvsOptions::default()).unwrap();
        let s = r.dynamic_saving();
        assert!((0.30..=0.60).contains(&s), "saving {:.0}%", s * 100.0);
    }

    #[test]
    fn tight_clock_limits_the_cluster() {
        let (mut nl_tight, ctx_tight) = setup(1.02);
        let r_tight =
            cluster_voltage_scale(&mut nl_tight, &ctx_tight, &CvsOptions::default()).unwrap();
        let (mut nl_loose, ctx_loose) = setup(1.6);
        let r_loose =
            cluster_voltage_scale(&mut nl_loose, &ctx_loose, &CvsOptions::default()).unwrap();
        assert!(r_tight.fraction_low < r_loose.fraction_low);
        assert!(r_tight.timing_met);
    }

    #[test]
    fn extended_style_admits_at_least_as_many_gates() {
        let (mut nl_c, ctx) = setup(1.3);
        let r_c = cluster_voltage_scale(&mut nl_c, &ctx, &CvsOptions::default()).unwrap();
        let (mut nl_e, ctx_e) = setup(1.3);
        let r_e = cluster_voltage_scale(
            &mut nl_e,
            &ctx_e,
            &CvsOptions {
                style: CvsStyle::Extended,
                ..CvsOptions::default()
            },
        )
        .unwrap();
        assert!(r_e.low_count >= r_c.low_count);
    }

    #[test]
    fn clustered_conversions_only_at_endpoints() {
        let (mut nl, ctx) = setup(1.6);
        let _ = cluster_voltage_scale(&mut nl, &ctx, &CvsOptions::default()).unwrap();
        // Every low gate with gate fan-outs must only drive low gates.
        for id in nl.ids() {
            if nl.gate(id).supply == SupplyClass::Low && !nl.gate(id).is_output {
                for &f in nl.fanouts(id) {
                    assert_eq!(
                        nl.gate(f).supply,
                        SupplyClass::Low,
                        "clustered CVS leaked a mid-cone conversion at {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn infeasible_input_is_rejected() {
        let (mut nl, ctx) = setup(0.5);
        let err = cluster_voltage_scale(&mut nl, &ctx, &CvsOptions::default()).unwrap_err();
        assert!(matches!(err, OptError::TimingInfeasible { .. }));
    }

    #[test]
    fn bad_activity_rejected() {
        let (mut nl, ctx) = setup(1.3);
        let opts = CvsOptions {
            activity: 0.0,
            ..CvsOptions::default()
        };
        assert!(matches!(
            cluster_voltage_scale(&mut nl, &ctx, &opts),
            Err(OptError::BadParameter(_))
        ));
    }

    #[test]
    fn leakage_also_falls() {
        let (mut nl, ctx) = setup(1.6);
        let r = cluster_voltage_scale(&mut nl, &ctx, &CvsOptions::default()).unwrap();
        assert!(r.after.leakage < r.before.leakage);
        assert!(r.total_saving() > 0.0);
    }
}

#[cfg(test)]
mod area_tests {
    use super::*;
    use np_circuit::generate::{generate_netlist, NetlistSpec};
    use np_circuit::sta::TimingContext;
    use np_roadmap::TechNode;

    #[test]
    fn area_overhead_is_in_the_papers_regime() {
        // Ref [18]: "area overhead due to constrained cell placement,
        // level converters, and added power grid routing was found to be
        // 15%".
        let mut nl = generate_netlist(&NetlistSpec::small(61));
        let ctx = TimingContext::for_node(TechNode::N100).unwrap();
        let crit = ctx.analyze(&nl).unwrap().critical_delay();
        let ctx = ctx.with_clock(crit * 1.5);
        let r = cluster_voltage_scale(&mut nl, &ctx, &CvsOptions::default()).unwrap();
        assert!(
            (0.05..=0.25).contains(&r.area_overhead),
            "got {:.0}%",
            r.area_overhead * 100.0
        );
    }

    #[test]
    fn no_low_gates_means_no_overhead() {
        let mut nl = generate_netlist(&NetlistSpec::small(62));
        let ctx = TimingContext::for_node(TechNode::N100).unwrap();
        let crit = ctx.analyze(&nl).unwrap().critical_delay();
        // A clock exactly at critical admits (almost) nothing.
        let ctx = ctx.with_clock(crit * 1.0);
        let r = cluster_voltage_scale(&mut nl, &ctx, &CvsOptions::default()).unwrap();
        if r.low_count == 0 {
            assert_eq!(r.area_overhead, 0.0);
        } else {
            assert!(r.area_overhead > 0.0);
        }
    }
}
