//! Post-synthesis transistor re-sizing, and why it is the wrong first tool
//! (Section 3.3).
//!
//! "If … slack distributions demonstrate a large number of paths with
//! significant slack, the current approach is to down size the
//! corresponding cells … This approach provides a sublinear reduction in
//! power with respect to the size reduction (sublinear since interconnect
//! capacitance will not scale down and represents a constant factor in the
//! total capacitance). Instead of such re-sizing efforts, a lower supply
//! voltage could be used, providing a quadratic drop in power."

use crate::error::OptError;
use np_circuit::incremental::IncrementalSta;
use np_circuit::netlist::{GateId, Netlist};
use np_circuit::power::{netlist_power, PowerReport};
use np_circuit::sta::TimingContext;
use np_units::Hertz;

/// Minimum drive the down-sizer will go to.
pub const MIN_DRIVE: f64 = 0.5;

/// Sizing step applied per accepted move (geometric).
pub const SIZING_STEP: f64 = 0.7;

/// Result of a down-sizing pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingResult {
    /// Gates whose drive was reduced.
    pub resized_count: usize,
    /// Mean drive reduction over resized gates (1.0 − new/old averaged).
    pub mean_size_reduction: f64,
    /// Aggregate gate-capacitance reduction (what sizing actually shrank).
    pub gate_cap_reduction: f64,
    /// Power before.
    pub before: PowerReport,
    /// Power after.
    pub after: PowerReport,
}

impl SizingResult {
    /// Fractional dynamic-power saving.
    pub fn dynamic_saving(&self) -> f64 {
        1.0 - self.after.dynamic / self.before.dynamic
    }

    /// The sublinearity ratio: dynamic saving per unit of gate-cap
    /// reduction. Below 1 because interconnect capacitance stays.
    pub fn saving_per_cap_reduction(&self) -> f64 {
        if self.gate_cap_reduction <= 0.0 {
            return 0.0;
        }
        self.dynamic_saving() / self.gate_cap_reduction
    }
}

/// Greedy down-sizing: gates are visited most-slack-first and stepped down
/// by [`SIZING_STEP`] while timing holds.
///
/// # Errors
///
/// [`OptError::TimingInfeasible`] on designs that miss timing before
/// sizing; propagates substrate errors.
pub fn downsize(
    netlist: &mut Netlist,
    ctx: &TimingContext,
    activity: f64,
    frequency: Option<Hertz>,
) -> Result<SizingResult, OptError> {
    if !(activity > 0.0 && activity <= 1.0) {
        return Err(OptError::BadParameter("activity must be in (0, 1]"));
    }
    let freq = frequency.unwrap_or(Hertz(1.0 / ctx.clock_period.0));
    let baseline = ctx.analyze(netlist)?;
    if !baseline.is_feasible() {
        return Err(OptError::TimingInfeasible {
            worst_slack_ps: baseline.worst_slack().as_pico(),
        });
    }
    let before = netlist_power(netlist, ctx, activity, freq)?;
    let gate_cap_before = total_gate_cap(netlist, ctx);
    let original: Vec<f64> = netlist.ids().map(|id| netlist.gate(id).drive).collect();
    let mut order: Vec<GateId> = netlist.ids().collect();
    order.sort_by(|a, b| {
        baseline.slack[b.index()]
            .0
            .total_cmp(&baseline.slack[a.index()].0)
    });
    // Multiple passes: shrinking one gate frees slack elsewhere.
    let mut sta = IncrementalSta::new(ctx, netlist);
    for _ in 0..3 {
        let mut changed = false;
        for &id in &order {
            let current = netlist.gate(id).drive;
            let next = (current * SIZING_STEP).max(MIN_DRIVE);
            if next >= current {
                continue;
            }
            netlist.gate_mut(id).set_drive(next);
            sta.reevaluate(netlist, id)?;
            if sta.is_feasible() {
                changed = true;
            } else {
                netlist.gate_mut(id).set_drive(current);
                sta.reevaluate(netlist, id)?;
            }
        }
        if !changed {
            break;
        }
    }
    let after = netlist_power(netlist, ctx, activity, freq)?;
    let gate_cap_after = total_gate_cap(netlist, ctx);
    let mut resized = 0usize;
    let mut reduction_sum = 0.0;
    for (i, id) in netlist.ids().enumerate() {
        let now = netlist.gate(id).drive;
        if now < original[i] {
            resized += 1;
            reduction_sum += 1.0 - now / original[i];
        }
    }
    Ok(SizingResult {
        resized_count: resized,
        mean_size_reduction: if resized > 0 {
            reduction_sum / resized as f64
        } else {
            0.0
        },
        gate_cap_reduction: 1.0 - gate_cap_after / gate_cap_before,
        before,
        after,
    })
}

fn total_gate_cap(netlist: &Netlist, ctx: &TimingContext) -> f64 {
    netlist
        .ids()
        .map(|id| {
            let g = netlist.gate(id);
            ctx.input_cap(g.kind, g.drive).0
        })
        .sum()
}

/// The Section 3.3 comparison: dynamic saving from down-sizing versus the
/// quadratic saving a global supply reduction of the *same delay cost*
/// would deliver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResizeVsVdd {
    /// Saving achieved by sizing alone.
    pub sizing_saving: f64,
    /// Gate-capacitance reduction the sizing needed.
    pub cap_reduction: f64,
    /// Saving a supply reduction to `vdd_ratio × Vdd` delivers
    /// (quadratic).
    pub vdd_saving: f64,
    /// The supply ratio used for the comparison.
    pub vdd_ratio: f64,
}

impl ResizeVsVdd {
    /// Dynamic saving per unit of the sizing knob (gate capacitance given
    /// up). Sublinear: always below 1 because wire capacitance stays.
    pub fn sizing_efficiency(&self) -> f64 {
        if self.cap_reduction <= 0.0 {
            return 0.0;
        }
        self.sizing_saving / self.cap_reduction
    }

    /// Dynamic saving per unit of the supply knob (fractional voltage
    /// reduction). Quadratic: `(1 − r²)/(1 − r) = 1 + r`, approaching 2.
    pub fn vdd_efficiency(&self) -> f64 {
        1.0 + self.vdd_ratio
    }
}

/// Compares sizing against an equivalent supply reduction: the supply is
/// lowered until the critical delay grows as much as sizing allowed
/// (i.e., to the clock), giving `vdd_saving = 1 − ratio²`.
pub fn sizing_vs_vdd(sizing: &SizingResult, vdd_ratio: f64) -> ResizeVsVdd {
    ResizeVsVdd {
        sizing_saving: sizing.dynamic_saving(),
        cap_reduction: sizing.gate_cap_reduction,
        vdd_saving: 1.0 - vdd_ratio * vdd_ratio,
        vdd_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_circuit::generate::{generate_netlist, NetlistSpec};
    use np_roadmap::TechNode;

    fn setup(clock_factor: f64) -> (Netlist, TimingContext) {
        let nl = generate_netlist(&NetlistSpec::small(55));
        let ctx = TimingContext::for_node(TechNode::N100).unwrap();
        let crit = ctx.analyze(&nl).unwrap().critical_delay();
        (nl, ctx.with_clock(crit * clock_factor))
    }

    #[test]
    fn downsizing_saves_power_and_keeps_timing() {
        let (mut nl, ctx) = setup(1.3);
        let r = downsize(&mut nl, &ctx, 0.1, None).unwrap();
        assert!(r.resized_count > nl.len() / 4);
        assert!(
            r.dynamic_saving() > 0.02,
            "saving {:.1}%",
            r.dynamic_saving() * 100.0
        );
        assert!(ctx.analyze(&nl).unwrap().is_feasible());
    }

    #[test]
    fn saving_is_sublinear_in_cap_reduction() {
        // The Section 3.3 point: wire capacitance does not shrink, so the
        // dynamic saving is a fraction of the gate-cap reduction.
        let (mut nl, ctx) = setup(1.3);
        let r = downsize(&mut nl, &ctx, 0.1, None).unwrap();
        assert!(r.gate_cap_reduction > 0.1);
        let ratio = r.saving_per_cap_reduction();
        assert!(
            ratio < 0.95,
            "saving per cap reduction {ratio:.2} should be sublinear"
        );
    }

    #[test]
    fn vdd_knob_is_quadratic_while_sizing_is_sublinear() {
        // Section 3.3: per unit of reduction "knob", lowering Vdd returns
        // nearly 2x (quadratic), while sizing returns under 1x (the wire
        // capacitance floor).
        let (mut nl, ctx) = setup(1.3);
        let r = downsize(&mut nl, &ctx, 0.1, None).unwrap();
        let cmp = sizing_vs_vdd(&r, 0.8);
        assert!((cmp.vdd_saving - 0.36).abs() < 1e-12);
        assert!(cmp.sizing_efficiency() < 1.0, "{cmp:?}");
        assert!(cmp.vdd_efficiency() > 1.5, "{cmp:?}");
        assert!(
            cmp.vdd_efficiency() > 2.0 * cmp.sizing_efficiency(),
            "{cmp:?}"
        );
    }

    #[test]
    fn tight_design_resizes_little() {
        let (mut nl_t, ctx_t) = setup(1.01);
        let tight = downsize(&mut nl_t, &ctx_t, 0.1, None).unwrap();
        let (mut nl_l, ctx_l) = setup(1.5);
        let loose = downsize(&mut nl_l, &ctx_l, 0.1, None).unwrap();
        assert!(tight.gate_cap_reduction < loose.gate_cap_reduction);
    }

    #[test]
    fn infeasible_rejected() {
        let (mut nl, ctx) = setup(0.5);
        assert!(matches!(
            downsize(&mut nl, &ctx, 0.1, None),
            Err(OptError::TimingInfeasible { .. })
        ));
    }
}
