//! Simultaneous threshold-voltage and circuit sizing (the paper's
//! ref. \[22\], Sirichotiyakul et al., DAC 1999).
//!
//! Section 3.2.2 cites "standby power minimization through simultaneous
//! threshold voltage and circuit sizing": alternating the two moves lets
//! slack freed by one be spent by the other. The flow here alternates
//! rounds of dual-Vth assignment and down-sizing until a round changes
//! nothing, and reports the trajectory so the coupling is visible.

use crate::dualvth::{assign_dual_vth, DualVthResult};
use crate::error::OptError;
use crate::sizing::{downsize, SizingResult};
use np_circuit::netlist::Netlist;
use np_circuit::power::{netlist_power, PowerReport};
use np_circuit::sta::TimingContext;
use np_units::Hertz;
use std::fmt;

/// Upper bound on alternation rounds (each round is monotone, so this is
/// a backstop, not a tuning knob).
pub const MAX_ROUNDS: usize = 6;

/// One alternation round's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Round {
    /// Dual-Vth stage of the round.
    pub vth: DualVthResult,
    /// Sizing stage of the round.
    pub sizing: SizingResult,
    /// Total power after the round.
    pub power: PowerReport,
}

/// Result of the simultaneous flow.
#[derive(Debug, Clone, PartialEq)]
pub struct SimultaneousResult {
    /// Power before any optimization.
    pub baseline: PowerReport,
    /// Per-round trajectory.
    pub rounds: Vec<Round>,
    /// Power after convergence.
    pub final_power: PowerReport,
}

impl SimultaneousResult {
    /// Total-power saving of the converged flow.
    pub fn total_saving(&self) -> f64 {
        1.0 - self.final_power.total() / self.baseline.total()
    }

    /// Leakage saving of the converged flow.
    pub fn leakage_saving(&self) -> f64 {
        1.0 - self.final_power.leakage / self.baseline.leakage
    }
}

impl fmt::Display for SimultaneousResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simultaneous Vth+sizing: {} rounds, total -{:.0}%, leakage -{:.0}%",
            self.rounds.len(),
            self.total_saving() * 100.0,
            self.leakage_saving() * 100.0,
        )
    }
}

/// Runs the alternating flow to convergence.
///
/// # Errors
///
/// [`OptError::TimingInfeasible`] when the input misses timing;
/// propagates stage errors.
pub fn simultaneous_vth_and_sizing(
    netlist: &mut Netlist,
    ctx: &TimingContext,
    activity: f64,
    frequency: Option<Hertz>,
) -> Result<SimultaneousResult, OptError> {
    let freq = frequency.unwrap_or(Hertz(1.0 / ctx.clock_period.0));
    let baseline = netlist_power(netlist, ctx, activity, freq)?;
    let mut rounds = Vec::new();
    let mut last_total = baseline.total();
    for _ in 0..MAX_ROUNDS {
        let vth = assign_dual_vth(netlist, ctx, activity, Some(freq))?;
        let sizing = downsize(netlist, ctx, activity, Some(freq))?;
        let power = netlist_power(netlist, ctx, activity, freq)?;
        let improved = power.total().0 < last_total.0 * (1.0 - 1e-6);
        last_total = power.total();
        rounds.push(Round { vth, sizing, power });
        if !improved {
            break;
        }
    }
    Ok(SimultaneousResult {
        baseline,
        final_power: netlist_power(netlist, ctx, activity, freq)?,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dualvth::assign_dual_vth as dual_only;
    use np_circuit::generate::{generate_netlist, NetlistSpec};
    use np_roadmap::TechNode;

    fn setup(seed: u64, factor: f64) -> (Netlist, TimingContext) {
        let nl = generate_netlist(&NetlistSpec::small(seed));
        let ctx = TimingContext::for_node(TechNode::N70).unwrap();
        let crit = ctx.analyze(&nl).unwrap().critical_delay();
        (nl, ctx.with_clock(crit * factor))
    }

    #[test]
    fn converges_and_saves() {
        let (mut nl, ctx) = setup(71, 1.3);
        let r = simultaneous_vth_and_sizing(&mut nl, &ctx, 0.1, None).unwrap();
        assert!(!r.rounds.is_empty());
        assert!(r.rounds.len() <= MAX_ROUNDS);
        assert!(
            r.total_saving() > 0.1,
            "saving {:.0}%",
            r.total_saving() * 100.0
        );
        assert!(ctx.analyze(&nl).unwrap().is_feasible());
    }

    #[test]
    fn beats_dual_vth_alone_on_total_power() {
        let (mut joint_nl, ctx) = setup(72, 1.3);
        let joint = simultaneous_vth_and_sizing(&mut joint_nl, &ctx, 0.1, None).unwrap();

        let (mut solo_nl, ctx2) = setup(72, 1.3);
        let solo = dual_only(&mut solo_nl, &ctx2, 0.1, None).unwrap();
        let solo_saving = 1.0 - solo.after.total() / solo.before.total();
        assert!(
            joint.total_saving() > solo_saving,
            "joint {:.0}% vs solo {:.0}%",
            joint.total_saving() * 100.0,
            solo_saving * 100.0
        );
    }

    #[test]
    fn trajectory_is_monotone_nonincreasing() {
        let (mut nl, ctx) = setup(73, 1.4);
        let r = simultaneous_vth_and_sizing(&mut nl, &ctx, 0.1, None).unwrap();
        let mut prev = r.baseline.total().0;
        for round in &r.rounds {
            assert!(round.power.total().0 <= prev * (1.0 + 1e-9));
            prev = round.power.total().0;
        }
    }

    #[test]
    fn infeasible_rejected() {
        let (mut nl, ctx) = setup(74, 0.5);
        assert!(matches!(
            simultaneous_vth_and_sizing(&mut nl, &ctx, 0.1, None),
            Err(OptError::TimingInfeasible { .. })
        ));
    }

    #[test]
    fn display_mentions_rounds() {
        let (mut nl, ctx) = setup(75, 1.3);
        let r = simultaneous_vth_and_sizing(&mut nl, &ctx, 0.1, None).unwrap();
        assert!(format!("{r}").contains("rounds"));
    }
}
