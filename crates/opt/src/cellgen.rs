//! Library granularity and on-the-fly cell generation (Section 2.3,
//! experiment E7).
//!
//! Three library regimes for the same netlist and timing target:
//!
//! * **coarse** — smallest gates ≈10× minimum (the claim of \[15\]): every
//!   light load is overdriven, wasting power;
//! * **rich** — SA-27E-like granularity (16 inverter drives, …);
//! * **generated** — on-the-fly cells that match each load exactly
//!   (ref. \[17\], which reports 15–22 % power reductions at fixed timing).

use crate::error::OptError;
use np_circuit::library::Library;
use np_circuit::netlist::Netlist;
use np_circuit::power::{netlist_power, PowerReport};
use np_circuit::sta::TimingContext;
use np_units::Hertz;
use std::fmt;

/// Library regimes compared by the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibraryRegime {
    /// Few drives, smallest ≈10× minimum.
    Coarse,
    /// Rich discrete drive set.
    Rich,
    /// Continuous, load-matched drives.
    Generated,
}

impl fmt::Display for LibraryRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryRegime::Coarse => write!(f, "coarse library"),
            LibraryRegime::Rich => write!(f, "rich library"),
            LibraryRegime::Generated => write!(f, "on-the-fly generated cells"),
        }
    }
}

/// Result of mapping one netlist under one library regime.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingResult {
    /// The regime mapped under.
    pub regime: LibraryRegime,
    /// Power after mapping.
    pub power: PowerReport,
    /// Mean drive strength over all gates.
    pub mean_drive: f64,
}

/// Maps the netlist's drives under a library regime: each gate gets the
/// drive needed for its load at electrical effort ≈4, rounded *up* to the
/// library's grid (coarse/rich) or taken exactly (generated).
///
/// Mapping iterates to a fixed point because a gate's load depends on its
/// fan-outs' drives.
///
/// # Errors
///
/// Propagates substrate errors; rejects bad accounting parameters.
pub fn map_with_regime(
    netlist: &mut Netlist,
    ctx: &TimingContext,
    regime: LibraryRegime,
    activity: f64,
    frequency: Option<Hertz>,
) -> Result<MappingResult, OptError> {
    if !(activity > 0.0 && activity <= 1.0) {
        return Err(OptError::BadParameter("activity must be in (0, 1]"));
    }
    let freq = frequency.unwrap_or(Hertz(1.0 / ctx.clock_period.0));
    let library = match regime {
        LibraryRegime::Coarse => Some(Library::coarse(ctx.node)?),
        LibraryRegime::Rich => Some(Library::rich(ctx.node)?),
        LibraryRegime::Generated => None,
    };
    const H_TARGET: f64 = 4.0;
    for _ in 0..8 {
        let wanted: Vec<f64> = netlist
            .ids()
            .map(|id| {
                let g = netlist.gate(id);
                let load = ctx.load_of(netlist, id);
                (g.kind.logical_effort() * load.0
                    / (H_TARGET * ctx.unit_cap().0 * g.kind.logical_effort()))
                .max(0.05)
            })
            .collect();
        for (i, id) in netlist.ids().enumerate().collect::<Vec<_>>() {
            let kind = netlist.gate(id).kind;
            let drive = match &library {
                Some(lib) => lib.nearest(kind, wanted[i])?.drive,
                None => wanted[i],
            };
            netlist.gate_mut(id).set_drive(drive);
        }
    }
    let power = netlist_power(netlist, ctx, activity, freq)?;
    let mean_drive =
        netlist.ids().map(|id| netlist.gate(id).drive).sum::<f64>() / netlist.len() as f64;
    Ok(MappingResult {
        regime,
        power,
        mean_drive,
    })
}

/// Runs all three regimes on copies of the netlist and returns them in
/// [`LibraryRegime`] declaration order.
///
/// # Errors
///
/// Propagates mapping errors.
pub fn compare_regimes(
    netlist: &Netlist,
    ctx: &TimingContext,
    activity: f64,
) -> Result<[MappingResult; 3], OptError> {
    let mut coarse_nl = netlist.clone();
    let coarse = map_with_regime(&mut coarse_nl, ctx, LibraryRegime::Coarse, activity, None)?;
    let mut rich_nl = netlist.clone();
    let rich = map_with_regime(&mut rich_nl, ctx, LibraryRegime::Rich, activity, None)?;
    let mut gen_nl = netlist.clone();
    let generated = map_with_regime(&mut gen_nl, ctx, LibraryRegime::Generated, activity, None)?;
    Ok([coarse, rich, generated])
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_circuit::generate::{generate_netlist, NetlistSpec};
    use np_roadmap::TechNode;

    fn setup() -> (Netlist, TimingContext) {
        let nl = generate_netlist(&NetlistSpec::small(88));
        let ctx = TimingContext::for_node(TechNode::N180).unwrap();
        let crit = ctx.analyze(&nl).unwrap().critical_delay();
        (nl, ctx.with_clock(crit * 1.2))
    }

    #[test]
    fn coarse_library_overdrives_and_wastes_power() {
        let (nl, ctx) = setup();
        let [coarse, rich, _] = compare_regimes(&nl, &ctx, 0.1).unwrap();
        assert!(coarse.mean_drive > 2.0 * rich.mean_drive);
        assert!(
            coarse.power.total() > rich.power.total() * 1.1,
            "coarse {} vs rich {}",
            coarse.power.total(),
            rich.power.total()
        );
    }

    #[test]
    fn generated_cells_save_over_the_rich_library() {
        // Ref [17]: 15-22% power reduction at fixed timing; a band of
        // 3-35% over the rich library is accepted for the synthetic
        // netlist.
        let (nl, ctx) = setup();
        let [_, rich, generated] = compare_regimes(&nl, &ctx, 0.1).unwrap();
        let saving = 1.0 - generated.power.total() / rich.power.total();
        assert!(
            (0.03..=0.35).contains(&saving),
            "generated-vs-rich saving {:.1}%",
            saving * 100.0
        );
    }

    #[test]
    fn mapping_converges_to_stable_drives() {
        let (mut nl, ctx) = setup();
        let a = map_with_regime(&mut nl, &ctx, LibraryRegime::Generated, 0.1, None)
            .unwrap()
            .mean_drive;
        let b = map_with_regime(&mut nl, &ctx, LibraryRegime::Generated, 0.1, None)
            .unwrap()
            .mean_drive;
        assert!((a - b).abs() / a < 0.06, "fixed point: {a} vs {b}");
    }

    #[test]
    fn regime_display_names() {
        assert_eq!(format!("{}", LibraryRegime::Coarse), "coarse library");
        assert!(format!("{}", LibraryRegime::Generated).contains("on-the-fly"));
    }

    #[test]
    fn bad_activity_rejected() {
        let (mut nl, ctx) = setup();
        assert!(map_with_regime(&mut nl, &ctx, LibraryRegime::Rich, 0.0, None).is_err());
    }
}
