//! Dual-Vth assignment (Section 3.2.2, after Sirichotiyakul \[22\] and
//! Wei \[39\]).
//!
//! "Gates located on critical paths can be assigned fast low Vth, while
//! gates that are not timing critical can tolerate high Vth … Typical
//! results show leakage power reductions of 40-80 % with minimal penalty
//! in critical path delay compared to all low-Vth implementations."
//!
//! The assignment is greedy by slack: gates are visited from the most
//! slack-rich down, flipped to the high threshold, and kept only when
//! full STA still meets timing.

use crate::error::OptError;
use np_circuit::cell::VthClass;
use np_circuit::incremental::IncrementalSta;
use np_circuit::netlist::{GateId, Netlist};
use np_circuit::power::{netlist_power, PowerReport};
use np_circuit::sta::TimingContext;
use np_units::Hertz;

/// Result of a dual-Vth assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct DualVthResult {
    /// Gates moved to the high threshold.
    pub high_count: usize,
    /// Fraction of gates on the high threshold.
    pub fraction_high: f64,
    /// Power before (all low-Vth).
    pub before: PowerReport,
    /// Power after.
    pub after: PowerReport,
    /// Critical-path delay before, picoseconds.
    pub delay_before_ps: f64,
    /// Critical-path delay after, picoseconds.
    pub delay_after_ps: f64,
}

impl DualVthResult {
    /// Fractional leakage saving — the paper's 40–80 % band.
    pub fn leakage_saving(&self) -> f64 {
        1.0 - self.after.leakage / self.before.leakage
    }

    /// Fractional critical-path delay penalty.
    pub fn delay_penalty(&self) -> f64 {
        self.delay_after_ps / self.delay_before_ps - 1.0
    }
}

/// Greedy dual-Vth assignment in place.
///
/// # Errors
///
/// [`OptError::TimingInfeasible`] when the all-low-Vth design already
/// misses timing; propagates substrate errors; rejects bad accounting
/// parameters.
pub fn assign_dual_vth(
    netlist: &mut Netlist,
    ctx: &TimingContext,
    activity: f64,
    frequency: Option<Hertz>,
) -> Result<DualVthResult, OptError> {
    if !(activity > 0.0 && activity <= 1.0) {
        return Err(OptError::BadParameter("activity must be in (0, 1]"));
    }
    let freq = frequency.unwrap_or(Hertz(1.0 / ctx.clock_period.0));
    let baseline = ctx.analyze(netlist)?;
    if !baseline.is_feasible() {
        return Err(OptError::TimingInfeasible {
            worst_slack_ps: baseline.worst_slack().as_pico(),
        });
    }
    let before = netlist_power(netlist, ctx, activity, freq)?;
    let delay_before = baseline.critical_delay();
    // Most slack first: those flips are free; critical gates stay fast.
    let mut order: Vec<GateId> = netlist.ids().collect();
    order.sort_by(|a, b| {
        baseline.slack[b.index()]
            .0
            .total_cmp(&baseline.slack[a.index()].0)
    });
    let mut sta = IncrementalSta::new(ctx, netlist);
    for id in order {
        netlist.gate_mut(id).set_vth(VthClass::High);
        sta.reevaluate(netlist, id)?;
        if !sta.is_feasible() {
            netlist.gate_mut(id).set_vth(VthClass::Low);
            sta.reevaluate(netlist, id)?;
        }
    }
    let after = netlist_power(netlist, ctx, activity, freq)?;
    let timing = ctx.analyze(netlist)?;
    let high_count = netlist
        .ids()
        .filter(|&id| netlist.gate(id).vth == VthClass::High)
        .count();
    Ok(DualVthResult {
        high_count,
        fraction_high: high_count as f64 / netlist.len() as f64,
        before,
        after,
        delay_before_ps: delay_before.as_pico(),
        delay_after_ps: timing.critical_delay().as_pico(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_circuit::generate::{generate_netlist, NetlistSpec};
    use np_roadmap::TechNode;

    fn setup(clock_factor: f64) -> (Netlist, TimingContext) {
        let nl = generate_netlist(&NetlistSpec::small(19));
        let ctx = TimingContext::for_node(TechNode::N70).unwrap();
        let crit = ctx.analyze(&nl).unwrap().critical_delay();
        (nl, ctx.with_clock(crit * clock_factor))
    }

    #[test]
    fn leakage_saving_is_in_the_40_to_80_percent_band() {
        let (mut nl, ctx) = setup(1.15);
        let r = assign_dual_vth(&mut nl, &ctx, 0.1, None).unwrap();
        let s = r.leakage_saving();
        assert!((0.40..=0.92).contains(&s), "saving {:.0}%", s * 100.0);
    }

    #[test]
    fn delay_penalty_is_minimal() {
        // "minimal penalty in critical path delay": the clock is met by
        // construction; the critical path may stretch into its slack but
        // never beyond the period.
        let (mut nl, ctx) = setup(1.15);
        let r = assign_dual_vth(&mut nl, &ctx, 0.1, None).unwrap();
        assert!(r.delay_after_ps <= ctx.clock_period.as_pico() * 1.0001);
        assert!(
            r.delay_penalty() < 0.16,
            "penalty {:.1}%",
            r.delay_penalty() * 100.0
        );
    }

    #[test]
    fn dynamic_power_is_untouched() {
        let (mut nl, ctx) = setup(1.15);
        let r = assign_dual_vth(&mut nl, &ctx, 0.1, None).unwrap();
        assert!((r.after.dynamic.0 / r.before.dynamic.0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_slack_means_more_high_vth_gates() {
        let (mut tight_nl, tight_ctx) = setup(1.02);
        let tight = assign_dual_vth(&mut tight_nl, &tight_ctx, 0.1, None).unwrap();
        let (mut loose_nl, loose_ctx) = setup(1.5);
        let loose = assign_dual_vth(&mut loose_nl, &loose_ctx, 0.1, None).unwrap();
        assert!(loose.fraction_high > tight.fraction_high);
    }

    #[test]
    fn infeasible_design_rejected() {
        let (mut nl, ctx) = setup(0.6);
        assert!(matches!(
            assign_dual_vth(&mut nl, &ctx, 0.1, None),
            Err(OptError::TimingInfeasible { .. })
        ));
    }

    #[test]
    fn bad_activity_rejected() {
        let (mut nl, ctx) = setup(1.2);
        assert!(matches!(
            assign_dual_vth(&mut nl, &ctx, 2.0, None),
            Err(OptError::BadParameter(_))
        ));
    }
}
