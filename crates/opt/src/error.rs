//! Error type for the optimization algorithms.

use np_circuit::CircuitError;
use np_device::DeviceError;
use std::fmt;

/// Error returned by the optimizers.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The input design violates timing before any optimization — there is
    /// no slack to spend.
    TimingInfeasible {
        /// Worst negative slack in picoseconds.
        worst_slack_ps: f64,
    },
    /// A parameter is out of range (documented in the message).
    BadParameter(&'static str),
    /// The circuit substrate failed.
    Circuit(CircuitError),
    /// The device model failed.
    Device(DeviceError),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::TimingInfeasible { worst_slack_ps } => {
                write!(
                    f,
                    "design misses timing before optimization (WNS {worst_slack_ps:.1} ps)"
                )
            }
            OptError::BadParameter(m) => write!(f, "bad parameter: {m}"),
            OptError::Circuit(e) => write!(f, "circuit error: {e}"),
            OptError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptError::Circuit(e) => Some(e),
            OptError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for OptError {
    fn from(e: CircuitError) -> Self {
        OptError::Circuit(e)
    }
}

impl From<DeviceError> for OptError {
    fn from(e: DeviceError) -> Self {
        OptError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = OptError::TimingInfeasible {
            worst_slack_ps: -3.0,
        };
        assert!(format!("{e}").contains("-3.0"));
        assert!(format!("{}", OptError::BadParameter("x")).contains("bad parameter"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e: OptError = CircuitError::EmptyNetlist.into();
        assert!(e.source().is_some());
        let e: OptError = DeviceError::BadParameter("y").into();
        assert!(e.source().is_some());
    }
}
