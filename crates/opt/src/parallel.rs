//! The §3.3 co-optimization loop as a parallel, deterministic optimizer.
//!
//! The sequential strategies ([`crate::cvs`], [`crate::dualvth`],
//! [`crate::sizing`]) each walk the whole netlist in one fixed order,
//! probing one move at a time — fine at 10³ gates, hopeless at 10⁷. This
//! driver restructures the loop so the expensive part parallelizes while
//! the result stays bitwise identical at any worker count:
//!
//! 1. **Freeze** the round: one full STA gives every gate's slack.
//! 2. **Score in parallel**: workers partition the gate range and compute,
//!    for each gate, the best candidate move (low supply, high Vth, or
//!    one sizing step down) with its estimated power/area gain and delay
//!    cost. Scoring is a *pure function of the frozen round state* — no
//!    worker reads anything another worker writes — so the proposal set
//!    cannot depend on scheduling.
//! 3. **Sort deterministically**: proposals order by gain (descending,
//!    `total_cmp`), ties by gate index.
//! 4. **Accept sequentially** in that fixed order, each move verified
//!    with exact incremental STA ([`IncrementalSta`]) and reverted if any
//!    endpoint would miss the clock. Timing is therefore a hard
//!    constraint — accepted rounds keep TNS at zero — while leakage,
//!    dynamic power, and area trade off through the scalar gain.
//!
//! The cost function per move is `Δleakage + Δdynamic + λ_A·Δarea`
//! (watts; area in unit-inverter widths valued at `λ_A`, the leakage of
//! one unit width at the nominal corner), maximized subject to TNS = 0.
//!
//! Rounds repeat — each round's accepted moves free or consume slack for
//! the next — until a round accepts nothing or `max_rounds` is reached.

use crate::cvs::{CvsStyle, CONVERTER_AREA_UNITS};
use crate::error::OptError;
use crate::sizing::{MIN_DRIVE, SIZING_STEP};
use np_circuit::cell::{SupplyClass, VthClass};
use np_circuit::incremental::IncrementalSta;
use np_circuit::netlist::{GateId, Netlist};
use np_circuit::power::{level_converter_count, netlist_power, PowerReport};
use np_circuit::sta::{TimingContext, TimingReport};
use np_units::{Hertz, Microns};
use std::sync::atomic::{AtomicBool, Ordering};

/// How often the scoring loop polls the cancel closure, in gates.
const SCORE_CANCEL_STRIDE: usize = 1024;

/// How often the accept loop polls the cancel closure, in proposals.
const ACCEPT_CANCEL_STRIDE: usize = 256;

/// The kinds of single-gate moves the optimizer proposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// Reassign the gate to `Vdd,l` (CVS).
    ToLowSupply,
    /// Reassign the gate to the high threshold (dual-Vth).
    ToHighVth,
    /// Step the gate's drive down by one sizing step.
    Downsize,
}

/// One scored candidate move (internal to a round).
#[derive(Debug, Clone, Copy)]
struct Proposal {
    gate: GateId,
    kind: MoveKind,
    /// Estimated power+area gain in watts (positive = improvement).
    gain: f64,
    /// Target drive for [`MoveKind::Downsize`] moves.
    new_drive: f64,
}

/// Configuration of the parallel optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelOptions {
    /// Switching activity used in the power accounting and move scoring.
    pub activity: f64,
    /// Clock frequency for the power accounting; `None` uses the timing
    /// context's clock.
    pub frequency: Option<Hertz>,
    /// Worker threads for the scoring phase; `None` uses the process
    /// [thread budget](np_grid::plan::thread_budget). Results are
    /// bitwise identical at any worker count.
    pub workers: Option<usize>,
    /// Maximum optimization rounds (each round is one full-STA freeze +
    /// parallel scoring + sequential accept pass).
    pub max_rounds: usize,
    /// Fraction of a gate's frozen slack its estimated delay cost may
    /// consume for the move to be proposed (the exact check at accept
    /// time is incremental STA; this only prunes hopeless candidates).
    pub slack_safety: f64,
    /// Level-conversion discipline for supply moves.
    pub style: CvsStyle,
    /// Propose CVS (low-supply) moves.
    pub enable_cvs: bool,
    /// Propose dual-Vth moves.
    pub enable_dual_vth: bool,
    /// Propose down-sizing moves.
    pub enable_sizing: bool,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        Self {
            activity: 0.1,
            frequency: None,
            workers: None,
            max_rounds: 8,
            slack_safety: 0.9,
            style: CvsStyle::Clustered,
            enable_cvs: true,
            enable_dual_vth: true,
            enable_sizing: true,
        }
    }
}

/// Per-round accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Candidate moves that survived scoring.
    pub proposed: usize,
    /// Moves accepted (timing held).
    pub accepted: usize,
    /// Moves applied and reverted (timing broke).
    pub reverted: usize,
    /// Gates visited by incremental re-propagation over the round — the
    /// measured cone size, compared against `gates × probes` for the
    /// incremental-vs-full saving.
    pub cone_visited: usize,
}

/// Result of a parallel optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelResult {
    /// Per-round statistics, in order.
    pub rounds: Vec<RoundStats>,
    /// Gates on the low supply after optimization.
    pub low_supply: usize,
    /// Gates on the high threshold after optimization.
    pub high_vth: usize,
    /// Gates whose drive was reduced from its starting value.
    pub downsized: usize,
    /// Power before optimization.
    pub before: PowerReport,
    /// Power after optimization.
    pub after: PowerReport,
    /// Cell area before, in unit-inverter widths (converters included).
    pub area_before: f64,
    /// Cell area after, in unit-inverter widths (converters included).
    pub area_after: f64,
    /// Scoring workers actually used.
    pub workers: usize,
    /// True when the run stopped early because the cancel closure fired;
    /// the netlist is still in a consistent, timing-feasible state.
    pub cancelled: bool,
}

impl ParallelResult {
    /// Total accepted moves over all rounds.
    pub fn total_accepted(&self) -> usize {
        self.rounds.iter().map(|r| r.accepted).sum()
    }

    /// Fractional leakage-power saving.
    pub fn leakage_saving(&self) -> f64 {
        1.0 - self.after.leakage / self.before.leakage
    }

    /// Fractional total-power saving.
    pub fn total_saving(&self) -> f64 {
        1.0 - self.after.total() / self.before.total()
    }

    /// Fractional cell-area change (positive = smaller).
    pub fn area_saving(&self) -> f64 {
        1.0 - self.area_after / self.area_before
    }
}

impl std::fmt::Display for ParallelResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} moves ({} low-Vdd, {} high-Vth, {} downsized): \
             total power -{:.1}%, leakage -{:.1}%, area {:+.1}%",
            self.rounds.len(),
            self.total_accepted(),
            self.low_supply,
            self.high_vth,
            self.downsized,
            self.total_saving() * 100.0,
            self.leakage_saving() * 100.0,
            -self.area_saving() * 100.0,
        )
    }
}

/// FNV-1a fingerprint of the netlist's full assignment state (supply,
/// Vth, drive bits per gate) — byte-for-byte equality of two optimized
/// netlists, used to assert worker-count determinism.
pub fn assignment_digest(netlist: &Netlist) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for id in netlist.ids() {
        let g = netlist.gate(id);
        eat(&[
            match g.supply {
                SupplyClass::High => 0u8,
                SupplyClass::Low => 1,
            },
            match g.vth {
                VthClass::Low => 0u8,
                VthClass::High => 1,
            },
        ]);
        eat(&g.drive.to_bits().to_le_bytes());
    }
    h
}

/// Total cell area in unit-inverter widths: transistor width of every
/// gate plus [`CONVERTER_AREA_UNITS`] per implied level converter.
pub fn cell_area_units(netlist: &Netlist) -> f64 {
    let gates: f64 = netlist
        .ids()
        .map(|id| {
            let g = netlist.gate(id);
            g.kind.relative_width() * g.drive
        })
        .sum();
    gates + CONVERTER_AREA_UNITS * level_converter_count(netlist) as f64
}

/// Leakage coefficients (watts per µm of leaking width) for the four
/// (supply, vth) corners, plus the area valuation `λ_A`.
struct LeakModel {
    /// Indexed `[supply][vth]` like the context's delay multipliers.
    coeff: [[f64; 2]; 2],
    /// Watts per unit-inverter width of area.
    lambda_area: f64,
    /// µm of leaking width per unit-inverter width.
    unit_width_um: f64,
}

impl LeakModel {
    fn build(ctx: &TimingContext) -> Self {
        let dev = ctx.device();
        let mut coeff = [[0.0f64; 2]; 2];
        for (si, supply) in [SupplyClass::High, SupplyClass::Low].iter().enumerate() {
            for (vi, vth) in [VthClass::Low, VthClass::High].iter().enumerate() {
                let vdd = ctx.supply_voltage(*supply);
                let ioff = dev.with_vth(ctx.threshold_voltage(*vth)).ioff_at_drain(vdd);
                coeff[si][vi] = (ioff.total(Microns(1.0)) * vdd).0;
            }
        }
        let unit_width_um = ctx.unit_width().0;
        LeakModel {
            coeff,
            lambda_area: coeff[0][0] * unit_width_um,
            unit_width_um,
        }
    }

    fn coeff_of(&self, supply: SupplyClass, vth: VthClass) -> f64 {
        let si = match supply {
            SupplyClass::High => 0,
            SupplyClass::Low => 1,
        };
        let vi = match vth {
            VthClass::Low => 0,
            VthClass::High => 1,
        };
        self.coeff[si][vi]
    }
}

/// Shared, read-only state of one scoring round.
struct RoundView<'a> {
    netlist: &'a Netlist,
    ctx: &'a TimingContext,
    report: &'a TimingReport,
    leak: &'a LeakModel,
    options: &'a ParallelOptions,
    /// Switching energy factor `activity × frequency` (1/s).
    af: f64,
}

impl RoundView<'_> {
    /// Leakage power of a gate under a hypothetical assignment.
    fn leakage_of(&self, id: GateId, supply: SupplyClass, vth: VthClass, drive: f64) -> f64 {
        let kind = self.netlist.gate(id).kind;
        self.leak.coeff_of(supply, vth) * self.leak.unit_width_um * kind.relative_width() * drive
    }

    /// Scores the best move for one gate against the frozen round state,
    /// or `None` when no enabled move is admissible and profitable.
    fn score(&self, id: GateId) -> Option<Proposal> {
        let g = self.netlist.gate(id);
        let i = id.index();
        let slack = self.report.slack[i].0;
        let budget = slack * self.options.slack_safety;
        let delay = self.report.delay[i].0;
        let mult = self.ctx.delay_multiplier(g.supply, g.vth);
        let mut best: Option<Proposal> = None;
        let mut consider = |kind: MoveKind, gain: f64, est_delay_cost: f64, new_drive: f64| {
            if gain <= 0.0 || est_delay_cost > budget {
                return;
            }
            if best.is_none_or(|b| gain > b.gain) {
                best = Some(Proposal {
                    gate: id,
                    kind,
                    gain,
                    new_drive,
                });
            }
        };

        if self.options.enable_cvs && g.supply == SupplyClass::High {
            let fanouts = self.netlist.fanouts(id);
            let endpoint = fanouts.is_empty() || g.is_output;
            let admissible = match self.options.style {
                CvsStyle::Clustered => {
                    endpoint
                        || fanouts
                            .iter()
                            .all(|&f| self.netlist.gate(f).supply == SupplyClass::Low)
                }
                CvsStyle::Extended => true,
            };
            if admissible {
                let high_fanouts = fanouts
                    .iter()
                    .filter(|&&f| self.netlist.gate(f).supply == SupplyClass::High)
                    .count();
                let low_fanins = g
                    .fanins
                    .iter()
                    .filter(|&&f| self.netlist.gate(f).supply == SupplyClass::Low)
                    .count();
                let vh = self.ctx.vdd_high.0;
                let vl = self.ctx.vdd_low.0;
                let c_load = self.ctx.load_of(self.netlist, id).0;
                let mut gain = self.af * c_load * (vh * vh - vl * vl);
                // Converters appear on still-high fan-out edges and
                // disappear on formerly-converting low fan-in edges.
                let conv_delta = high_fanouts as f64 - low_fanins as f64;
                gain -= self.af * (self.ctx.unit_cap().0 * 3.0) * vh * vh * conv_delta;
                gain += self.leakage_of(id, SupplyClass::High, g.vth, g.drive)
                    - self.leakage_of(id, SupplyClass::Low, g.vth, g.drive);
                gain -= self.leak.lambda_area * CONVERTER_AREA_UNITS * conv_delta;
                let mult_new = self.ctx.delay_multiplier(SupplyClass::Low, g.vth);
                let mut est = delay * (mult_new / mult - 1.0);
                if high_fanouts > 0 {
                    est += self.ctx.level_converter_delay().0;
                }
                consider(MoveKind::ToLowSupply, gain, est, g.drive);
            }
        }

        if self.options.enable_dual_vth && g.vth == VthClass::Low {
            let gain = self.leakage_of(id, g.supply, VthClass::Low, g.drive)
                - self.leakage_of(id, g.supply, VthClass::High, g.drive);
            let mult_new = self.ctx.delay_multiplier(g.supply, VthClass::High);
            let est = delay * (mult_new / mult - 1.0);
            consider(MoveKind::ToHighVth, gain, est, g.drive);
        }

        if self.options.enable_sizing {
            let new_drive = (g.drive * SIZING_STEP).max(MIN_DRIVE);
            if new_drive < g.drive {
                // Fan-in drivers lose one pin's worth of load each.
                let dc =
                    self.ctx.input_cap(g.kind, g.drive).0 - self.ctx.input_cap(g.kind, new_drive).0;
                let mut gain = 0.0;
                for &f in g.fanins {
                    let v = self.ctx.supply_voltage(self.netlist.gate(f).supply).0;
                    gain += self.af * dc * v * v;
                }
                gain += self.leakage_of(id, g.supply, g.vth, g.drive)
                    - self.leakage_of(id, g.supply, g.vth, new_drive);
                gain += self.leak.lambda_area * g.kind.relative_width() * (g.drive - new_drive);
                // The gate's own stage effort grows as its input cap falls.
                let tau = self.ctx.tau().0;
                let parasitic = g.kind.parasitic_delay();
                let h = (delay / (tau * mult) - parasitic).max(0.0);
                let est = tau * mult * h * (g.drive / new_drive - 1.0);
                consider(MoveKind::Downsize, gain, est, new_drive);
            }
        }

        best
    }
}

/// Runs the parallel optimizer in place. Equivalent to
/// [`optimize_parallel_with_cancel`] with a never-firing cancel closure.
///
/// # Errors
///
/// [`OptError::TimingInfeasible`] when the design misses timing before
/// optimization; [`OptError::BadParameter`] for out-of-range options;
/// propagates substrate errors.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), np_opt::OptError> {
/// use np_circuit::{generate_netlist, NetlistSpec, TimingContext};
/// use np_opt::parallel::{optimize_parallel, ParallelOptions};
/// use np_roadmap::TechNode;
///
/// let mut netlist = generate_netlist(&NetlistSpec::small(42));
/// let ctx = TimingContext::for_node(TechNode::N100)?;
/// let clock = ctx.analyze(&netlist)?.critical_delay() * 1.4;
/// let ctx = ctx.with_clock(clock);
///
/// let result = optimize_parallel(&mut netlist, &ctx, &ParallelOptions::default())?;
/// assert!(result.total_saving() > 0.0);
/// assert!(ctx.analyze(&netlist)?.is_feasible());
/// # Ok(())
/// # }
/// ```
pub fn optimize_parallel(
    netlist: &mut Netlist,
    ctx: &TimingContext,
    options: &ParallelOptions,
) -> Result<ParallelResult, OptError> {
    optimize_parallel_with_cancel(netlist, ctx, options, &|| false)
}

/// [`optimize_parallel`] with cooperative cancellation: `cancel` is
/// polled every 1024 gates (`SCORE_CANCEL_STRIDE`) while scoring and
/// every 256 proposals (`ACCEPT_CANCEL_STRIDE`) while accepting. When it fires,
/// the run drains cleanly — in-flight work stops at the next checkpoint,
/// the netlist stays timing-feasible, and the partial result is returned
/// with [`ParallelResult::cancelled`] set.
///
/// The closure form (rather than a concrete token type) keeps `np-opt`
/// free of an engine dependency; adapt any cancellation source with
/// `&|| token.is_cancelled()`.
///
/// # Errors
///
/// As [`optimize_parallel`].
pub fn optimize_parallel_with_cancel<C>(
    netlist: &mut Netlist,
    ctx: &TimingContext,
    options: &ParallelOptions,
    cancel: &C,
) -> Result<ParallelResult, OptError>
where
    C: Fn() -> bool + Sync,
{
    if !(options.activity > 0.0 && options.activity <= 1.0) {
        return Err(OptError::BadParameter("activity must be in (0, 1]"));
    }
    if !(options.slack_safety > 0.0 && options.slack_safety <= 1.0) {
        return Err(OptError::BadParameter("slack_safety must be in (0, 1]"));
    }
    if options.max_rounds == 0 {
        return Err(OptError::BadParameter("max_rounds must be positive"));
    }
    let freq = options.frequency.unwrap_or(Hertz(1.0 / ctx.clock_period.0));
    let baseline = ctx.analyze(netlist)?;
    if !baseline.is_feasible() {
        return Err(OptError::TimingInfeasible {
            worst_slack_ps: baseline.worst_slack().as_pico(),
        });
    }
    let before = netlist_power(netlist, ctx, options.activity, freq)?;
    let area_before = cell_area_units(netlist);
    let original_drives: Vec<f64> = netlist.ids().map(|id| netlist.gate(id).drive).collect();
    let workers = options
        .workers
        .unwrap_or_else(np_grid::plan::thread_budget)
        .max(1);
    let leak = LeakModel::build(ctx);
    let af = options.activity * freq.0;

    let _span = np_telemetry::span("opt.parallel.run");
    let mut sta = IncrementalSta::new(ctx, netlist);
    let mut rounds = Vec::new();
    let mut cancelled = false;
    for _ in 0..options.max_rounds {
        if cancel() {
            cancelled = true;
            break;
        }
        let _round_span = np_telemetry::span("opt.parallel.round");
        let report = ctx.analyze(netlist)?;
        let view = RoundView {
            netlist,
            ctx,
            report: &report,
            leak: &leak,
            options,
            af,
        };
        let proposals = score_round(&view, workers, cancel, &mut cancelled);
        if cancelled {
            break;
        }
        let mut stats = RoundStats {
            proposed: proposals.len(),
            ..RoundStats::default()
        };
        np_telemetry::counter("opt.parallel.proposed", proposals.len() as u64);
        for (k, p) in proposals.iter().enumerate() {
            if k % ACCEPT_CANCEL_STRIDE == 0 && cancel() {
                cancelled = true;
                break;
            }
            if apply_proposal(netlist, &mut sta, options, p, &mut stats)? {
                stats.accepted += 1;
                np_telemetry::counter("opt.parallel.accepted", 1);
            } else {
                stats.reverted += 1;
                np_telemetry::counter("opt.parallel.reverted", 1);
            }
        }
        let done = stats.accepted == 0;
        rounds.push(stats);
        if done || cancelled {
            break;
        }
    }

    let after = netlist_power(netlist, ctx, options.activity, freq)?;
    let low_supply = netlist
        .ids()
        .filter(|&id| netlist.gate(id).supply == SupplyClass::Low)
        .count();
    let high_vth = netlist
        .ids()
        .filter(|&id| netlist.gate(id).vth == VthClass::High)
        .count();
    let downsized = netlist
        .ids()
        .enumerate()
        .filter(|&(i, id)| netlist.gate(id).drive < original_drives[i])
        .count();
    Ok(ParallelResult {
        rounds,
        low_supply,
        high_vth,
        downsized,
        before,
        after,
        area_before,
        area_after: cell_area_units(netlist),
        workers,
        cancelled,
    })
}

/// Scores every gate against the frozen round view, splitting the gate
/// range across `workers` threads, and returns the surviving proposals
/// sorted by gain (descending) with gate-index tie-breaks.
fn score_round<C>(
    view: &RoundView<'_>,
    workers: usize,
    cancel: &C,
    cancelled: &mut bool,
) -> Vec<Proposal>
where
    C: Fn() -> bool + Sync,
{
    let n = view.netlist.len();
    let mut slots: Vec<Option<Proposal>> = vec![None; n];
    let stop = AtomicBool::new(false);
    let score_range = |start: usize, out: &mut [Option<Proposal>]| {
        for (k, slot) in out.iter_mut().enumerate() {
            if k % SCORE_CANCEL_STRIDE == 0 && (stop.load(Ordering::Relaxed) || cancel()) {
                stop.store(true, Ordering::Relaxed);
                return;
            }
            *slot = view.score(GateId::from_index(start + k));
        }
    };
    if workers <= 1 {
        score_range(0, &mut slots);
    } else {
        let chunk = n.div_ceil(workers);
        std::thread::scope(|s| {
            for (w, out) in slots.chunks_mut(chunk).enumerate() {
                let score_range = &score_range;
                s.spawn(move || score_range(w * chunk, out));
            }
        });
    }
    if stop.load(Ordering::Relaxed) {
        *cancelled = true;
        return Vec::new();
    }
    let mut proposals: Vec<Proposal> = slots.into_iter().flatten().collect();
    proposals.sort_by(|a, b| {
        b.gain
            .total_cmp(&a.gain)
            .then_with(|| a.gate.index().cmp(&b.gate.index()))
    });
    proposals
}

/// Applies one proposal with an exact incremental-STA check, reverting
/// on any endpoint violation. Returns whether the move was kept.
fn apply_proposal(
    netlist: &mut Netlist,
    sta: &mut IncrementalSta<'_>,
    options: &ParallelOptions,
    p: &Proposal,
    stats: &mut RoundStats,
) -> Result<bool, OptError> {
    let id = p.gate;
    match p.kind {
        MoveKind::ToLowSupply => {
            // Re-check clustered admissibility against the *current*
            // state: an earlier accept this round may have changed a
            // fan-out back... fan-outs only ever move High→Low, but a
            // reverted neighbor means the frozen view was optimistic.
            if options.style == CvsStyle::Clustered {
                let fanouts = netlist.fanouts(id);
                let endpoint = fanouts.is_empty() || netlist.gate(id).is_output;
                let ok = endpoint
                    || fanouts
                        .iter()
                        .all(|&f| netlist.gate(f).supply == SupplyClass::Low);
                if !ok {
                    return Ok(false);
                }
            }
            netlist.gate_mut(id).set_supply(SupplyClass::Low);
            stats.cone_visited += sta.reevaluate(netlist, id)?.visited;
            if !sta.is_feasible() {
                netlist.gate_mut(id).set_supply(SupplyClass::High);
                stats.cone_visited += sta.reevaluate(netlist, id)?.visited;
                return Ok(false);
            }
        }
        MoveKind::ToHighVth => {
            netlist.gate_mut(id).set_vth(VthClass::High);
            stats.cone_visited += sta.reevaluate(netlist, id)?.visited;
            if !sta.is_feasible() {
                netlist.gate_mut(id).set_vth(VthClass::Low);
                stats.cone_visited += sta.reevaluate(netlist, id)?.visited;
                return Ok(false);
            }
        }
        MoveKind::Downsize => {
            let old = netlist.gate(id).drive;
            netlist.gate_mut(id).set_drive(p.new_drive);
            stats.cone_visited += sta.reevaluate(netlist, id)?.visited;
            if !sta.is_feasible() {
                netlist.gate_mut(id).set_drive(old);
                stats.cone_visited += sta.reevaluate(netlist, id)?.visited;
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_circuit::generate::{generate_netlist, NetlistSpec};
    use np_roadmap::TechNode;

    fn setup(seed: u64, clock_factor: f64) -> (Netlist, TimingContext) {
        let nl = generate_netlist(&NetlistSpec::small(seed));
        let ctx = TimingContext::for_node(TechNode::N100).unwrap();
        let crit = ctx.analyze(&nl).unwrap().critical_delay();
        (nl, ctx.with_clock(crit * clock_factor))
    }

    #[test]
    fn relaxed_design_saves_power_and_meets_timing() {
        let (mut nl, ctx) = setup(21, 1.5);
        let r = optimize_parallel(&mut nl, &ctx, &ParallelOptions::default()).unwrap();
        assert!(r.total_accepted() > nl.len() / 4, "{r}");
        assert!(r.total_saving() > 0.2, "{r}");
        assert!(r.leakage_saving() > 0.2, "{r}");
        assert!(ctx.analyze(&nl).unwrap().is_feasible());
        assert!(!r.cancelled);
    }

    #[test]
    fn results_are_identical_at_any_worker_count() {
        let mut digests = Vec::new();
        let ncpu = std::thread::available_parallelism().map_or(4, |n| n.get());
        for workers in [1, 2, ncpu] {
            let (mut nl, ctx) = setup(33, 1.4);
            let opts = ParallelOptions {
                workers: Some(workers),
                ..ParallelOptions::default()
            };
            let r = optimize_parallel(&mut nl, &ctx, &opts).unwrap();
            assert_eq!(r.workers, workers.max(1));
            digests.push((assignment_digest(&nl), r.total_accepted()));
        }
        assert_eq!(digests[0], digests[1], "1 vs 2 workers diverged");
        assert_eq!(digests[0], digests[2], "1 vs NCPU workers diverged");
    }

    #[test]
    fn tight_clock_accepts_little() {
        let (mut nl_t, ctx_t) = setup(5, 1.01);
        let tight = optimize_parallel(&mut nl_t, &ctx_t, &ParallelOptions::default()).unwrap();
        let (mut nl_l, ctx_l) = setup(5, 1.6);
        let loose = optimize_parallel(&mut nl_l, &ctx_l, &ParallelOptions::default()).unwrap();
        assert!(tight.total_accepted() < loose.total_accepted());
    }

    #[test]
    fn infeasible_input_rejected() {
        let (mut nl, ctx) = setup(7, 0.5);
        assert!(matches!(
            optimize_parallel(&mut nl, &ctx, &ParallelOptions::default()),
            Err(OptError::TimingInfeasible { .. })
        ));
    }

    #[test]
    fn bad_options_rejected() {
        let (mut nl, ctx) = setup(7, 1.3);
        for opts in [
            ParallelOptions {
                activity: 0.0,
                ..ParallelOptions::default()
            },
            ParallelOptions {
                slack_safety: 1.5,
                ..ParallelOptions::default()
            },
            ParallelOptions {
                max_rounds: 0,
                ..ParallelOptions::default()
            },
        ] {
            assert!(matches!(
                optimize_parallel(&mut nl, &ctx, &opts),
                Err(OptError::BadParameter(_))
            ));
        }
    }

    #[test]
    fn clustered_discipline_is_preserved() {
        let (mut nl, ctx) = setup(11, 1.5);
        let _ = optimize_parallel(&mut nl, &ctx, &ParallelOptions::default()).unwrap();
        for id in nl.ids() {
            if nl.gate(id).supply == SupplyClass::Low && !nl.gate(id).is_output {
                for &f in nl.fanouts(id) {
                    assert_eq!(
                        nl.gate(f).supply,
                        SupplyClass::Low,
                        "clustered CVS leaked a mid-cone conversion at {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn immediate_cancel_drains_cleanly() {
        let (mut nl, ctx) = setup(13, 1.5);
        let before = assignment_digest(&nl);
        let r = optimize_parallel_with_cancel(&mut nl, &ctx, &ParallelOptions::default(), &|| true)
            .unwrap();
        assert!(r.cancelled);
        assert_eq!(r.total_accepted(), 0);
        assert_eq!(assignment_digest(&nl), before, "cancel must not half-apply");
        assert!(ctx.analyze(&nl).unwrap().is_feasible());
    }

    #[test]
    fn single_move_families_work_alone() {
        for (cvs, vth, sizing) in [
            (true, false, false),
            (false, true, false),
            (false, false, true),
        ] {
            let (mut nl, ctx) = setup(17, 1.5);
            let opts = ParallelOptions {
                enable_cvs: cvs,
                enable_dual_vth: vth,
                enable_sizing: sizing,
                ..ParallelOptions::default()
            };
            let r = optimize_parallel(&mut nl, &ctx, &opts).unwrap();
            assert!(r.total_accepted() > 0, "family ({cvs},{vth},{sizing})");
            assert!(ctx.analyze(&nl).unwrap().is_feasible());
        }
    }

    #[test]
    fn cone_visits_stay_far_below_full_sta_work() {
        let (mut nl, ctx) = setup(19, 1.5);
        let r = optimize_parallel(&mut nl, &ctx, &ParallelOptions::default()).unwrap();
        let probes: usize = r.rounds.iter().map(|s| s.accepted + s.reverted).sum();
        let visited: usize = r.rounds.iter().map(|s| s.cone_visited).sum();
        assert!(probes > 0);
        // Full STA per probe would visit n gates each; the cone average
        // must be well under that.
        assert!(
            visited < probes * nl.len() / 4,
            "visited {visited} over {probes} probes on {} gates",
            nl.len()
        );
    }
}
