//! The paper's layered power recipe (Section 3.3 / Conclusion 3):
//! "Non-critical gates are first assigned to a reduced Vdd, followed by
//! sizing and Vth selection to reduce power most efficiently."

use crate::cvs::{cluster_voltage_scale, CvsOptions, CvsResult};
use crate::dualvth::{assign_dual_vth, DualVthResult};
use crate::error::OptError;
use crate::sizing::{downsize, SizingResult};
use np_circuit::netlist::Netlist;
use np_circuit::power::{netlist_power, PowerReport};
use np_circuit::sta::TimingContext;
use np_units::Hertz;
use std::fmt;

/// Configuration of the combined optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CombinedOptions {
    /// CVS configuration for the first stage.
    pub cvs: CvsOptions,
    /// Switching activity for the accounting.
    pub activity: f64,
    /// Clock frequency for the accounting; `None` = timing-context clock.
    pub frequency: Option<Hertz>,
    /// Run the sizing stage.
    pub enable_sizing: bool,
    /// Run the dual-Vth stage.
    pub enable_dual_vth: bool,
}

impl Default for CombinedOptions {
    fn default() -> Self {
        Self {
            cvs: CvsOptions::default(),
            activity: 0.1,
            frequency: None,
            enable_sizing: true,
            enable_dual_vth: true,
        }
    }
}

/// Stage-by-stage outcome of the combined flow.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedResult {
    /// Power of the untouched design.
    pub baseline: PowerReport,
    /// CVS stage outcome.
    pub cvs: CvsResult,
    /// Sizing stage outcome (when enabled).
    pub sizing: Option<SizingResult>,
    /// Dual-Vth stage outcome (when enabled).
    pub dual_vth: Option<DualVthResult>,
    /// Power of the final design.
    pub final_power: PowerReport,
}

impl CombinedResult {
    /// Fractional total-power saving of the full flow.
    pub fn total_saving(&self) -> f64 {
        1.0 - self.final_power.total() / self.baseline.total()
    }

    /// Fractional dynamic saving of the full flow.
    pub fn dynamic_saving(&self) -> f64 {
        1.0 - self.final_power.dynamic / self.baseline.dynamic
    }

    /// Fractional leakage saving of the full flow.
    pub fn leakage_saving(&self) -> f64 {
        1.0 - self.final_power.leakage / self.baseline.leakage
    }
}

impl fmt::Display for CombinedResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "combined flow: dynamic -{:.0}%, leakage -{:.0}%, total -{:.0}% ({} gates low-Vdd, {} converters)",
            self.dynamic_saving() * 100.0,
            self.leakage_saving() * 100.0,
            self.total_saving() * 100.0,
            self.cvs.low_count,
            self.cvs.converters,
        )
    }
}

/// Runs the full multi-Vdd + sizing + multi-Vth flow on the netlist in
/// place, in the paper's order.
///
/// # Errors
///
/// [`OptError::TimingInfeasible`] when the input design misses timing;
/// propagates stage errors.
pub fn optimize(
    netlist: &mut Netlist,
    ctx: &TimingContext,
    options: &CombinedOptions,
) -> Result<CombinedResult, OptError> {
    let freq = options.frequency.unwrap_or(Hertz(1.0 / ctx.clock_period.0));
    let baseline = netlist_power(netlist, ctx, options.activity, freq)?;
    let mut cvs_opts = options.cvs;
    cvs_opts.activity = options.activity;
    cvs_opts.frequency = Some(freq);
    let cvs = cluster_voltage_scale(netlist, ctx, &cvs_opts)?;
    let sizing = if options.enable_sizing {
        Some(downsize(netlist, ctx, options.activity, Some(freq))?)
    } else {
        None
    };
    let dual_vth = if options.enable_dual_vth {
        Some(assign_dual_vth(netlist, ctx, options.activity, Some(freq))?)
    } else {
        None
    };
    let final_power = netlist_power(netlist, ctx, options.activity, freq)?;
    Ok(CombinedResult {
        baseline,
        cvs,
        sizing,
        dual_vth,
        final_power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_circuit::generate::{generate_netlist, NetlistSpec};
    use np_roadmap::TechNode;

    fn setup(clock_factor: f64) -> (Netlist, TimingContext) {
        let nl = generate_netlist(&NetlistSpec::small(77));
        let ctx = TimingContext::for_node(TechNode::N70).unwrap();
        let crit = ctx.analyze(&nl).unwrap().critical_delay();
        (nl, ctx.with_clock(crit * clock_factor))
    }

    #[test]
    fn full_flow_beats_each_single_stage() {
        let (mut nl, ctx) = setup(1.4);
        let full = optimize(&mut nl, &ctx, &CombinedOptions::default()).unwrap();
        let (mut nl2, ctx2) = setup(1.4);
        let cvs_only = optimize(
            &mut nl2,
            &ctx2,
            &CombinedOptions {
                enable_sizing: false,
                enable_dual_vth: false,
                ..CombinedOptions::default()
            },
        )
        .unwrap();
        assert!(full.total_saving() > cvs_only.total_saving());
        assert!(full.leakage_saving() > 0.3);
        assert!(full.dynamic_saving() > 0.3);
    }

    #[test]
    fn final_design_meets_timing() {
        let (mut nl, ctx) = setup(1.4);
        let _ = optimize(&mut nl, &ctx, &CombinedOptions::default()).unwrap();
        assert!(ctx.analyze(&nl).unwrap().is_feasible());
    }

    #[test]
    fn cvs_first_order_is_respected() {
        // Section 3.3: re-sizing before CVS shrinks the low-Vdd cluster
        // ("more paths approach criticality; this makes the application of
        // multi-Vdd approaches less advantageous"). Verify our flow keeps
        // a large cluster, and that a sizing-first flow yields a smaller
        // one.
        let (mut nl, ctx) = setup(1.4);
        let ours = optimize(&mut nl, &ctx, &CombinedOptions::default()).unwrap();

        let (mut nl2, ctx2) = setup(1.4);
        let _ = downsize(&mut nl2, &ctx2, 0.1, None).unwrap();
        let after_sizing = cluster_voltage_scale(&mut nl2, &ctx2, &CvsOptions::default()).unwrap();
        assert!(
            ours.cvs.fraction_low >= after_sizing.fraction_low,
            "CVS-first {:.0}% vs sizing-first {:.0}%",
            ours.cvs.fraction_low * 100.0,
            after_sizing.fraction_low * 100.0
        );
    }

    #[test]
    fn display_summarizes_savings() {
        let (mut nl, ctx) = setup(1.3);
        let r = optimize(&mut nl, &ctx, &CombinedOptions::default()).unwrap();
        let s = format!("{r}");
        assert!(s.contains("dynamic"));
        assert!(s.contains("leakage"));
    }
}
