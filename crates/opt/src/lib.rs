//! # np-opt
//!
//! The power-optimization algorithms of *Future Performance Challenges in
//! Nanometer Design* (Sylvester & Kaul, DAC 2001):
//!
//! * [`cvs`] — clustered voltage scaling (Section 2.4): assign slack gates
//!   to the reduced supply `Vdd,l ≈ 0.65·Vdd,h`, clustering to minimize
//!   level conversions;
//! * [`dualvth`] — dual-threshold assignment (Section 3.2.2): high-Vth
//!   implants on slack gates for 40–80 % leakage reduction at ~zero delay
//!   cost;
//! * [`sizing`] — post-synthesis transistor re-sizing, and the Section 3.3
//!   observation that its power return is *sublinear* (interconnect
//!   capacitance does not scale) while supply reduction is *quadratic*;
//! * [`policy`] — the Vdd/Vth scaling policies of Figs. 3–4 (constant Vth,
//!   constant static power, conservative scaling);
//! * [`combined`] — the paper's layered recipe: "Non-critical gates are
//!   first assigned to a reduced Vdd, followed by sizing and Vth selection";
//! * [`parallel`] — the same CVS + dual-Vth + sizing loop restructured as
//!   a deterministic parallel optimizer for million-gate netlists:
//!   frozen-round scoring fans out across the thread budget, accepts run
//!   in a fixed order through incremental STA, and results are bitwise
//!   identical at any worker count;
//! * [`cellgen`] — the library-granularity study of Section 2.3 (coarse
//!   vs rich vs on-the-fly generated cells).
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), np_opt::OptError> {
//! use np_circuit::generate::{generate_netlist, NetlistSpec};
//! use np_circuit::sta::TimingContext;
//! use np_opt::cvs::{cluster_voltage_scale, CvsOptions};
//! use np_roadmap::TechNode;
//!
//! let mut netlist = generate_netlist(&NetlistSpec::small(1));
//! let ctx = TimingContext::for_node(TechNode::N100)?;
//! let critical = ctx.analyze(&netlist)?.critical_delay();
//! let ctx = ctx.with_clock(critical * 1.25);
//! let result = cluster_voltage_scale(&mut netlist, &ctx, &CvsOptions::default())?;
//! assert!(result.fraction_low > 0.3, "plenty of gates tolerate Vdd,l");
//! assert!(result.timing_met);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cellgen;
pub mod combined;
pub mod cvs;
pub mod dualvth;
mod error;
pub mod parallel;
pub mod policy;
pub mod simultaneous;
pub mod sizing;

pub use error::OptError;
pub use parallel::{
    assignment_digest, cell_area_units, optimize_parallel, optimize_parallel_with_cancel, MoveKind,
    ParallelOptions, ParallelResult, RoundStats,
};
