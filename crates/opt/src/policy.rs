//! Vdd/Vth scaling policies — the engine behind the paper's Figs. 3 and 4.
//!
//! Section 3.3: starting from a nominal `(Vdd₀, Vth₀)` operating point
//! (35 nm: 0.6 V with the Table 2 threshold), the supply is lowered and
//! the threshold follows one of three policies:
//!
//! * **constant Vth** — delay explodes (3.7× at 0.2 V in the paper), but
//!   static power falls roughly quadratically through DIBL;
//! * **scaled Vth, constant Pstatic** — `Vth` drops just fast enough that
//!   `Vdd·Ioff(Vth, Vdd)` is flat: big delay recovery, static power flat;
//! * **conservatively scaled Vth** — `Ioff` held flat, so `Pstatic ∝ Vdd`
//!   ("Pstatic is 1/3 that of a gate using Vdd = 0.6 V" at 0.2 V).

use crate::error::OptError;
use np_device::model::DIBL_ETA;
use np_device::Mosfet;
use np_units::Volts;
use std::fmt;

/// The three threshold-scaling policies of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VthPolicy {
    /// Threshold frozen at the nominal value.
    ConstantVth,
    /// Threshold lowered to hold `Pstatic = Vdd·Ioff(Vth, Vdd)` constant.
    ConstantStaticPower,
    /// Threshold lowered only enough to hold `Ioff` constant
    /// (`Pstatic ∝ Vdd`).
    Conservative,
}

impl VthPolicy {
    /// All three policies in the figure's order.
    pub const ALL: [VthPolicy; 3] = [
        VthPolicy::ConstantVth,
        VthPolicy::ConstantStaticPower,
        VthPolicy::Conservative,
    ];

    /// The threshold this policy prescribes at supply `vdd`, for a device
    /// whose nominal point is `(vdd0 = dev.nominal_vdd(), vth0 = dev.vth)`.
    ///
    /// Closed forms from Eq. 4 with DIBL:
    /// `Ioff ∝ 10^((−Vth + η·Vdd)/S)`, so
    ///
    /// * constant `Ioff`: `Vth = Vth₀ + η(Vdd − Vdd₀)`
    /// * constant `Vdd·Ioff`: additionally `−S·log₁₀(Vdd₀/Vdd)`.
    pub fn vth_at(self, dev: &Mosfet, vdd: Volts) -> Volts {
        let vth0 = dev.vth;
        let vdd0 = dev.nominal_vdd();
        let s = dev.subthreshold_swing().0;
        match self {
            VthPolicy::ConstantVth => vth0,
            VthPolicy::Conservative => vth0 + Volts(DIBL_ETA * (vdd - vdd0).0),
            VthPolicy::ConstantStaticPower => {
                vth0 + Volts(DIBL_ETA * (vdd - vdd0).0 - s * (vdd0.0 / vdd.0).log10())
            }
        }
    }
}

impl fmt::Display for VthPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VthPolicy::ConstantVth => write!(f, "constant Vth"),
            VthPolicy::ConstantStaticPower => write!(f, "scaled Vth, constant Pstatic"),
            VthPolicy::Conservative => write!(f, "conservatively scaled Vth"),
        }
    }
}

/// One evaluated point on a policy curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyPoint {
    /// Supply voltage of the point.
    pub vdd: Volts,
    /// Threshold the policy prescribes there.
    pub vth: Volts,
    /// Delay normalized to the nominal point (Fig. 3's y-axis).
    pub delay: f64,
    /// Dynamic power normalized to nominal (`(Vdd/Vdd₀)²`).
    pub dynamic: f64,
    /// Static power normalized to nominal.
    pub static_power: f64,
}

impl PolicyPoint {
    /// The `Pdynamic/Pstatic` ratio normalized so the nominal point's
    /// ratio is `ratio0` (Fig. 4 plots absolute ratios; the caller anchors
    /// them with the FO4 power model).
    pub fn power_ratio(&self, ratio0: f64) -> f64 {
        ratio0 * self.dynamic / self.static_power
    }
}

/// Evaluates a policy curve over a supply sweep for a calibrated device.
///
/// # Errors
///
/// Returns [`OptError::BadParameter`] for an empty sweep; propagates
/// device errors (a supply at or below the policy's threshold).
pub fn policy_curve(
    dev: &Mosfet,
    policy: VthPolicy,
    vdd_sweep: &[Volts],
) -> Result<Vec<PolicyPoint>, OptError> {
    if vdd_sweep.is_empty() {
        return Err(OptError::BadParameter("supply sweep must be non-empty"));
    }
    let vdd0 = dev.nominal_vdd();
    let ion0 = dev.ion(vdd0)?;
    let p_static0 = vdd0.0 * dev.ioff_at_drain(vdd0).0;
    let mut out = Vec::with_capacity(vdd_sweep.len());
    for &vdd in vdd_sweep {
        let vth = policy.vth_at(dev, vdd);
        let at = dev.with_vth(vth);
        let ion = at.ion(vdd)?;
        let delay = (vdd.0 / ion.0) / (vdd0.0 / ion0.0);
        let dynamic = (vdd / vdd0).powi(2);
        let static_power = vdd.0 * at.ioff_at_drain(vdd).0 / p_static0;
        out.push(PolicyPoint {
            vdd,
            vth,
            delay,
            dynamic,
            static_power,
        });
    }
    Ok(out)
}

/// Finds the lowest supply (within the sweep) at which the
/// `Pdynamic/Pstatic` ratio stays at or above `target_ratio`, given the
/// nominal-point ratio `ratio0` — the paper's "a Vdd of about 0.44 V is
/// attainable" under the ITRS 10:1 constraint.
///
/// Returns the point, or `None` when even the nominal point misses the
/// target.
pub fn lowest_vdd_at_ratio(
    curve: &[PolicyPoint],
    ratio0: f64,
    target_ratio: f64,
) -> Option<PolicyPoint> {
    curve
        .iter()
        .filter(|p| p.power_ratio(ratio0) >= target_ratio)
        .min_by(|a, b| a.vdd.0.total_cmp(&b.vdd.0))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_roadmap::TechNode;
    use np_units::math::linspace;

    fn dev() -> Mosfet {
        Mosfet::for_node(TechNode::N35).unwrap()
    }

    fn sweep() -> Vec<Volts> {
        linspace(0.2, 0.6, 21).into_iter().map(Volts).collect()
    }

    #[test]
    fn nominal_point_is_unity_everywhere() {
        for policy in VthPolicy::ALL {
            let c = policy_curve(&dev(), policy, &[Volts(0.6)]).unwrap();
            assert!((c[0].delay - 1.0).abs() < 1e-9, "{policy}");
            assert!((c[0].dynamic - 1.0).abs() < 1e-9);
            assert!((c[0].static_power - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_vth_delay_explodes_like_fig3() {
        // Paper: normalized delay ≈ 3.7x at 0.2 V.
        let c = policy_curve(&dev(), VthPolicy::ConstantVth, &[Volts(0.2)]).unwrap();
        assert!(
            (2.5..=5.5).contains(&c[0].delay),
            "delay {:.2} should be near the paper's 3.7x",
            c[0].delay
        );
    }

    #[test]
    fn scaled_vth_recovers_most_of_the_delay() {
        let d_const = policy_curve(&dev(), VthPolicy::ConstantVth, &[Volts(0.2)]).unwrap()[0].delay;
        let d_scaled =
            policy_curve(&dev(), VthPolicy::ConstantStaticPower, &[Volts(0.2)]).unwrap()[0].delay;
        let d_cons = policy_curve(&dev(), VthPolicy::Conservative, &[Volts(0.2)]).unwrap()[0].delay;
        assert!(
            d_scaled < d_cons && d_cons < d_const,
            "{d_scaled} {d_cons} {d_const}"
        );
        assert!(d_scaled < d_const / 1.6, "meaningful recovery");
    }

    #[test]
    fn dynamic_power_falls_89_percent_at_0_2v() {
        // (0.2/0.6)² = 0.111: the paper's "dynamic power is 89% lower".
        let c = policy_curve(&dev(), VthPolicy::ConstantStaticPower, &[Volts(0.2)]).unwrap();
        assert!((c[0].dynamic - 1.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn constant_pstatic_policy_really_holds_pstatic() {
        let c = policy_curve(&dev(), VthPolicy::ConstantStaticPower, &sweep()).unwrap();
        for p in &c {
            assert!(
                (p.static_power - 1.0).abs() < 0.02,
                "Pstatic {:.3} at {}",
                p.static_power,
                p.vdd
            );
        }
    }

    #[test]
    fn conservative_policy_pstatic_is_linear_in_vdd() {
        // "the static power is being reduced linearly with Vdd so that
        // Pstatic is 1/3 that of a gate using Vdd=0.6V" at 0.2 V.
        let c = policy_curve(&dev(), VthPolicy::Conservative, &[Volts(0.2)]).unwrap();
        assert!(
            (c[0].static_power - 1.0 / 3.0).abs() < 0.02,
            "got {}",
            c[0].static_power
        );
    }

    #[test]
    fn constant_vth_pstatic_is_roughly_quadratic() {
        let c = policy_curve(&dev(), VthPolicy::ConstantVth, &[Volts(0.3)]).unwrap();
        // (0.3/0.6) linear would give 0.5; quadratic 0.25. DIBL lands in
        // between, nearer quadratic.
        assert!(
            (0.18..=0.40).contains(&c[0].static_power),
            "got {}",
            c[0].static_power
        );
    }

    #[test]
    fn fig4_ratio_crossing_exists() {
        // With a nominal Pdyn/Pstat of ~50 at activity 0.1, the 10:1 ITRS
        // constraint is met down to an intermediate supply.
        let c = policy_curve(&dev(), VthPolicy::ConstantStaticPower, &sweep()).unwrap();
        let pt = lowest_vdd_at_ratio(&c, 50.0, 10.0).expect("crossing exists");
        assert!(
            (0.25..=0.55).contains(&pt.vdd.0),
            "crossing at {} should be mid-sweep",
            pt.vdd
        );
        // Dynamic saving at the crossing: the paper's ~46% figure with
        // its anchors; ours depends on ratio0 but must be substantial.
        assert!(1.0 - pt.dynamic > 0.25);
    }

    #[test]
    fn ratio_target_above_anchor_yields_none() {
        let c = policy_curve(&dev(), VthPolicy::ConstantStaticPower, &sweep()).unwrap();
        assert!(lowest_vdd_at_ratio(&c, 5.0, 10.0).is_none());
    }

    #[test]
    fn empty_sweep_rejected() {
        assert!(matches!(
            policy_curve(&dev(), VthPolicy::ConstantVth, &[]),
            Err(OptError::BadParameter(_))
        ));
    }

    #[test]
    fn policy_display_names_match_fig3_legend() {
        assert_eq!(format!("{}", VthPolicy::ConstantVth), "constant Vth");
        assert!(format!("{}", VthPolicy::ConstantStaticPower).contains("constant Pstatic"));
        assert!(format!("{}", VthPolicy::Conservative).contains("onservatively"));
    }
}
