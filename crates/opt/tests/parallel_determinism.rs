//! Worker-count determinism and clean-drain guarantees of the parallel
//! optimizer, exercised on the streaming `NetlistSpec::large` tier.
//!
//! The freeze/score/sort/accept round structure promises bitwise
//! identical results at any worker count; these tests hold it to that
//! across random seeds at 1k cells (property) and at 10k cells (fixed
//! seed), and check that cancellation mid-run leaves a feasible netlist.

use std::sync::atomic::{AtomicUsize, Ordering};

use np_circuit::generate::{generate_netlist, NetlistSpec};
use np_circuit::sta::TimingContext;
use np_opt::{
    assignment_digest, optimize_parallel, optimize_parallel_with_cancel, ParallelOptions,
};
use np_roadmap::TechNode;
use proptest::prelude::*;

fn ctx_for(netlist: &np_circuit::Netlist, clock_factor: f64) -> TimingContext {
    let ctx = TimingContext::for_node(TechNode::N100).expect("calibration");
    let crit = ctx.analyze(netlist).expect("analyze").critical_delay();
    ctx.with_clock(crit * clock_factor)
}

/// Runs the optimizer on a fresh copy of the seed netlist at the given
/// worker count and returns the final assignment digest.
fn digest_at(seed: u64, cells: usize, workers: usize, rounds: usize) -> u64 {
    let mut netlist = generate_netlist(&NetlistSpec::large(seed, cells));
    let ctx = ctx_for(&netlist, 1.3);
    let options = ParallelOptions {
        workers: Some(workers),
        max_rounds: rounds,
        ..ParallelOptions::default()
    };
    let result = optimize_parallel(&mut netlist, &ctx, &options).expect("optimize");
    assert!(!result.cancelled);
    assert!(ctx.analyze(&netlist).expect("sta").is_feasible());
    assignment_digest(&netlist)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// 1k-cell tier: the digest is identical at 1, 2, and NCPU workers
    /// for any seed — the scheduling of the scoring phase never leaks
    /// into the accepted assignment.
    #[test]
    fn digests_agree_across_worker_counts_at_1k(seed in 0u64..500) {
        let ncpu = np_grid::plan::thread_budget().max(1);
        let one = digest_at(seed, 1000, 1, 2);
        let two = digest_at(seed, 1000, 2, 2);
        prop_assert_eq!(one, two, "workers 1 vs 2 diverged");
        if ncpu > 2 {
            let many = digest_at(seed, 1000, ncpu, 2);
            prop_assert_eq!(one, many, "workers 1 vs NCPU diverged");
        }
    }
}

/// 10k-cell tier, fixed seed: worker counts 1/2/4 and a repeat run at
/// the same count all land on one digest.
#[test]
fn digests_agree_across_worker_counts_at_10k() {
    let baseline = digest_at(77, 10_000, 1, 1);
    assert_eq!(baseline, digest_at(77, 10_000, 2, 1));
    assert_eq!(baseline, digest_at(77, 10_000, 4, 1));
    assert_eq!(baseline, digest_at(77, 10_000, 1, 1), "run-to-run drift");
}

/// Cancellation mid-run drains cleanly: the result is flagged, the
/// netlist is still timing-feasible, and no half-applied round leaks
/// into the assignment (the cancelled round's proposals are discarded
/// wholesale, so the digest matches a shorter uncancelled run).
#[test]
fn cancel_mid_run_drains_to_a_feasible_prefix() {
    let mut netlist = generate_netlist(&NetlistSpec::large(11, 2_000));
    let ctx = ctx_for(&netlist, 1.3);
    let options = ParallelOptions {
        workers: Some(2),
        max_rounds: 8,
        ..ParallelOptions::default()
    };
    // Fire on the first poll of round 2's scoring phase: round 1 lands
    // in full, round 2 is discarded at its first checkpoint.
    let polls = AtomicUsize::new(0);
    let polls_in_round_1 = {
        let count = AtomicUsize::new(0);
        let mut probe = generate_netlist(&NetlistSpec::large(11, 2_000));
        let opts1 = ParallelOptions {
            max_rounds: 1,
            ..options
        };
        optimize_parallel_with_cancel(&mut probe, &ctx, &opts1, &|| {
            count.fetch_add(1, Ordering::SeqCst);
            false
        })
        .expect("probe run");
        count.load(Ordering::SeqCst)
    };
    let result = optimize_parallel_with_cancel(&mut netlist, &ctx, &options, &|| {
        polls.fetch_add(1, Ordering::SeqCst) + 1 > polls_in_round_1
    })
    .expect("cancelled run still returns");
    assert!(result.cancelled, "cancel closure fired but flag not set");
    assert!(result.rounds.len() < 8, "cancel did not shorten the run");
    assert!(ctx.analyze(&netlist).expect("sta").is_feasible());

    // The drained state equals an uncancelled run truncated to the
    // rounds that completed before the cancel.
    let mut reference = generate_netlist(&NetlistSpec::large(11, 2_000));
    let ref_opts = ParallelOptions {
        max_rounds: result.rounds.len().max(1),
        ..options
    };
    let ref_result = optimize_parallel(&mut reference, &ctx, &ref_opts).expect("reference");
    if ref_result.rounds.len() == result.rounds.len() {
        assert_eq!(
            assignment_digest(&netlist),
            assignment_digest(&reference),
            "cancelled run is not a clean prefix of the uncancelled run"
        );
    }
}
