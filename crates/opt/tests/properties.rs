//! Property-based tests on the optimizer invariants: no optimization ever
//! breaks timing, and the savings have the right signs.

use np_circuit::generate::{generate_netlist, NetlistSpec};
use np_circuit::sta::TimingContext;
use np_device::Mosfet;
use np_opt::cvs::{cluster_voltage_scale, CvsOptions};
use np_opt::dualvth::assign_dual_vth;
use np_opt::policy::{policy_curve, VthPolicy};
use np_opt::sizing::downsize;
use np_roadmap::TechNode;
use np_units::Volts;
use proptest::prelude::*;

fn setup(seed: u64, factor: f64) -> (np_circuit::Netlist, TimingContext) {
    let mut spec = NetlistSpec::small(seed);
    spec.gates = 120;
    spec.depth = 10;
    let nl = generate_netlist(&spec);
    let ctx = TimingContext::for_node(TechNode::N100).expect("ctx");
    let crit = ctx.analyze(&nl).expect("sta").critical_delay();
    (nl, ctx.with_clock(crit * factor))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cvs_preserves_timing_for_any_seed(seed in 0u64..10_000, factor in 1.05..1.8f64) {
        let (mut nl, ctx) = setup(seed, factor);
        let r = cluster_voltage_scale(&mut nl, &ctx, &CvsOptions::default()).unwrap();
        prop_assert!(r.timing_met);
        prop_assert!(ctx.analyze(&nl).unwrap().is_feasible());
        prop_assert!(r.dynamic_saving() >= -1e-12);
    }

    #[test]
    fn dual_vth_never_increases_leakage(seed in 0u64..10_000, factor in 1.05..1.8f64) {
        let (mut nl, ctx) = setup(seed, factor);
        let r = assign_dual_vth(&mut nl, &ctx, 0.1, None).unwrap();
        prop_assert!(r.after.leakage <= r.before.leakage);
        prop_assert!((r.after.dynamic.0 - r.before.dynamic.0).abs() < 1e-15);
        prop_assert!(ctx.analyze(&nl).unwrap().is_feasible());
    }

    #[test]
    fn sizing_never_increases_power(seed in 0u64..10_000, factor in 1.05..1.6f64) {
        let (mut nl, ctx) = setup(seed, factor);
        let r = downsize(&mut nl, &ctx, 0.1, None).unwrap();
        prop_assert!(r.after.total() <= r.before.total() * (1.0 + 1e-12));
        prop_assert!(r.saving_per_cap_reduction() <= 1.0 + 1e-9, "sublinearity");
        prop_assert!(ctx.analyze(&nl).unwrap().is_feasible());
    }

    #[test]
    fn policy_ordering_holds_over_the_whole_sweep(vdd in 0.2..0.55f64) {
        // constant-Pstatic <= conservative <= constant-Vth delay, at every
        // supply below nominal.
        let dev = Mosfet::for_node(TechNode::N35).unwrap();
        let sweep = [Volts(vdd)];
        let d = |p: VthPolicy| policy_curve(&dev, p, &sweep).unwrap()[0].delay;
        let scaled = d(VthPolicy::ConstantStaticPower);
        let cons = d(VthPolicy::Conservative);
        let fixed = d(VthPolicy::ConstantVth);
        prop_assert!(scaled <= cons + 1e-12);
        prop_assert!(cons <= fixed + 1e-12);
    }
}
