//! Year-continuous roadmap queries.
//!
//! The node database is discrete; roadmap *analyses* often want "what
//! does 2006 look like?" — e.g. the paper's "ITRS projections call for a
//! θja of 0.25 °C/W in 3 years". This module interpolates the scalar
//! trends between nodes (piecewise-linear in the production year, with
//! the supply held to the nearest node's discrete value, since supplies
//! step rather than glide).

use crate::itrs::TechNode;
use np_units::interp::{Table1d, TableError};
use np_units::{SquareMillimeters, Volts, Watts};

/// A scalar roadmap quantity interpolable over years.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trend {
    /// Maximum MPU power (W).
    MaxPower,
    /// Die area (mm²).
    DieArea,
    /// Physical oxide thickness (nm).
    ToxPhysical,
    /// Effective channel length (nm).
    Leff,
    /// ITRS off-current projection (nA/µm).
    IoffItrs,
    /// Local clock (GHz).
    LocalClockGhz,
}

fn series(trend: Trend) -> (Vec<f64>, Vec<f64>) {
    let years: Vec<f64> = TechNode::ALL.iter().map(|n| n.year() as f64).collect();
    let values = TechNode::ALL
        .iter()
        .map(|n| {
            let p = n.params();
            match trend {
                Trend::MaxPower => p.max_power.0,
                Trend::DieArea => p.die_area.0,
                Trend::ToxPhysical => p.tox_phys.0,
                Trend::Leff => p.leff.0,
                Trend::IoffItrs => p.ioff_itrs.as_nano_per_micron(),
                Trend::LocalClockGhz => p.local_clock.as_giga(),
            }
        })
        .collect();
    (years, values)
}

/// Interpolates a trend at a production year (clamped to 1999–2014).
///
/// # Errors
///
/// Propagates table-construction errors (cannot occur for the built-in
/// node database, kept for API honesty).
pub fn trend_at(trend: Trend, year: f64) -> Result<f64, TableError> {
    let (xs, ys) = series(trend);
    Table1d::new(xs, ys)?.eval(year)
}

/// The node in production at (or nearest below) a given year — supplies
/// and other stepped quantities come from here.
pub fn node_for_year(year: f64) -> TechNode {
    let mut best = TechNode::N180;
    for n in TechNode::ALL {
        if (n.year() as f64) <= year {
            best = n;
        }
    }
    best
}

/// The discrete supply in production at a year.
pub fn vdd_at(year: f64) -> Volts {
    node_for_year(year).params().vdd
}

/// Interpolated maximum power at a year.
///
/// # Errors
///
/// Same as [`trend_at`].
pub fn max_power_at(year: f64) -> Result<Watts, TableError> {
    Ok(Watts(trend_at(Trend::MaxPower, year)?))
}

/// Interpolated die area at a year.
///
/// # Errors
///
/// Same as [`trend_at`].
pub fn die_area_at(year: f64) -> Result<SquareMillimeters, TableError> {
    Ok(SquareMillimeters(trend_at(Trend::DieArea, year)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_years_are_exact() {
        for n in TechNode::ALL {
            let y = n.year() as f64;
            assert_eq!(
                trend_at(Trend::MaxPower, y).unwrap(),
                n.params().max_power.0
            );
            assert_eq!(node_for_year(y), n);
        }
    }

    #[test]
    fn interpolation_is_between_neighbours() {
        // 2004 sits between 130 nm (2002) and 100 nm (2005).
        let p = trend_at(Trend::MaxPower, 2004.0).unwrap();
        assert!(p > 130.0 && p < 160.0, "got {p}");
    }

    #[test]
    fn years_clamp_at_the_ends() {
        assert_eq!(
            trend_at(Trend::DieArea, 1990.0).unwrap(),
            TechNode::N180.params().die_area.0
        );
        assert_eq!(
            trend_at(Trend::DieArea, 2030.0).unwrap(),
            TechNode::N35.params().die_area.0
        );
    }

    #[test]
    fn supplies_step_not_glide() {
        // Mid-2003 is still on the 130 nm 1.5 V supply.
        assert_eq!(vdd_at(2003.5), Volts(1.5));
        assert_eq!(vdd_at(2005.0), Volts(1.2));
    }

    #[test]
    fn tox_and_leff_shrink_monotonically_over_years() {
        let mut prev_t = f64::INFINITY;
        let mut prev_l = f64::INFINITY;
        for y in 1999..=2014 {
            let t = trend_at(Trend::ToxPhysical, y as f64).unwrap();
            let l = trend_at(Trend::Leff, y as f64).unwrap();
            assert!(t <= prev_t && l <= prev_l, "year {y}");
            prev_t = t;
            prev_l = l;
        }
    }

    #[test]
    fn wrappers_agree_with_trend() {
        assert_eq!(
            max_power_at(2008.0).unwrap().0,
            trend_at(Trend::MaxPower, 2008.0).unwrap()
        );
        assert_eq!(
            die_area_at(2011.0).unwrap().0,
            trend_at(Trend::DieArea, 2011.0).unwrap()
        );
    }
}
