//! Packaging and flip-chip projections (paper Sections 2.1 and 4).
//!
//! Covers both sides of the paper's packaging story: the *thermal* side
//! (junction-temperature limits and the θja trend that the ITRS calls "a
//! barrier to scaling") and the *electrical* side (bump pitch and pad-count
//! projections that drive the Fig. 5 IR-drop analysis).

use crate::itrs::TechNode;
use np_units::{Amps, Celsius, Microns, ThermalResistance};
use std::fmt;

/// Packaging-roadmap queries for a technology node.
///
/// # Examples
///
/// ```
/// use np_roadmap::{PackagingRoadmap, TechNode};
///
/// let pkg = PackagingRoadmap::for_node(TechNode::N35);
/// // Section 4: ITRS pad counts give an effective bump pitch near 356 µm
/// // even though 80 µm is attainable.
/// assert!((pkg.effective_itrs_bump_pitch().0 - 356.0).abs() < 5.0);
/// assert_eq!(pkg.min_bump_pitch.0, 80.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PackagingRoadmap {
    /// The node described.
    pub node: TechNode,
    /// Maximum allowed junction temperature. The ITRS reduces this from
    /// 100 °C (1999) to 85 °C (2002 onward) for reliability (Section 2.1).
    pub t_junction_max: Celsius,
    /// Ambient temperature outside the package, "approximately 45 °C".
    pub t_ambient: Celsius,
    /// Minimum attainable flip-chip bump pitch at this node (80 µm quoted
    /// at 35 nm; coarser nodes scaled back along the ITRS assembly roadmap).
    pub min_bump_pitch: Microns,
    /// Total pad/bump count the ITRS actually projects for MPUs — far fewer
    /// than the minimum pitch permits (4416 at 35 nm).
    pub itrs_pad_count: u32,
    /// Share of pads assigned to power (Vdd + GND); the remainder are
    /// signals. Chosen so that 35 nm has the paper's "just 1500 Vdd bumps".
    pub power_pad_fraction: f64,
    /// Per-bump sustained current capability projected by the ITRS.
    pub bump_current_limit: Amps,
    /// Fraction of top-level routing consumed by bump "landing pads"
    /// (Section 4 uses a constant 16 %).
    pub landing_pad_overhead: f64,
}

impl PackagingRoadmap {
    /// The packaging projections for `node`.
    pub fn for_node(node: TechNode) -> Self {
        let (pitch, pads) = match node {
            TechNode::N180 => (170.0, 1700),
            TechNode::N130 => (150.0, 2000),
            TechNode::N100 => (130.0, 2400),
            TechNode::N70 => (110.0, 3000),
            TechNode::N50 => (90.0, 3600),
            TechNode::N35 => (80.0, 4416),
        };
        Self {
            node,
            t_junction_max: if node.year() >= 2002 {
                Celsius(85.0)
            } else {
                Celsius(100.0)
            },
            t_ambient: Celsius(45.0),
            min_bump_pitch: Microns(pitch),
            itrs_pad_count: pads,
            power_pad_fraction: 0.68,
            bump_current_limit: Amps(0.125),
            landing_pad_overhead: 0.16,
        }
    }

    /// The θja a package must achieve so that the node's maximum power
    /// keeps the junction at or below `t_junction_max` (paper Eq. 1,
    /// solved for θja).
    ///
    /// About 0.61 °C/W at 180 nm, falling to ≈0.25 °C/W at 100 nm — the
    /// trend the paper calls a cost barrier.
    pub fn required_theta_ja(&self) -> ThermalResistance {
        let p = self.node.params().max_power;
        ThermalResistance((self.t_junction_max - self.t_ambient).0 / p.0)
    }

    /// Number of Vdd bumps under the ITRS pad-count projection (half of the
    /// power pads; the other half are ground).
    pub fn itrs_vdd_bumps(&self) -> u32 {
        (self.itrs_pad_count as f64 * self.power_pad_fraction * 0.5).round() as u32
    }

    /// The effective bump pitch implied by spreading the ITRS pad count
    /// uniformly over the die: `sqrt(area / pads)`.
    ///
    /// Roughly constant at ~350 µm across the roadmap — the mismatch with
    /// [`min_bump_pitch`](Self::min_bump_pitch) that drives the Fig. 5
    /// blow-up.
    pub fn effective_itrs_bump_pitch(&self) -> Microns {
        let area_um2 = self.node.params().die_area.0 * 1e6;
        Microns((area_um2 / self.itrs_pad_count as f64).sqrt())
    }

    /// Number of Vdd bumps if bumps are placed at the minimum attainable
    /// pitch over the whole die (same power-pad share).
    pub fn min_pitch_vdd_bumps(&self) -> u32 {
        let area_um2 = self.node.params().die_area.0 * 1e6;
        let total = area_um2 / (self.min_bump_pitch.0 * self.min_bump_pitch.0);
        (total * self.power_pad_fraction * 0.5).round() as u32
    }

    /// Per-Vdd-bump current under the ITRS pad counts at worst-case draw.
    ///
    /// At 35 nm this exceeds [`bump_current_limit`](Self::bump_current_limit)
    /// — "ITRS bump current capability projections are incompatible with
    /// the worst-case current draw of 300 A" (Section 4).
    pub fn itrs_current_per_vdd_bump(&self) -> Amps {
        self.node.params().worst_case_current() / self.itrs_vdd_bumps() as f64
    }

    /// True when the ITRS bump provisioning cannot carry the node's
    /// worst-case supply current.
    pub fn itrs_bumps_are_inadequate(&self) -> bool {
        self.itrs_current_per_vdd_bump() > self.bump_current_limit
    }
}

impl fmt::Display for PackagingRoadmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} packaging: Tj<= {:.0}, min bump pitch {:.0}, ITRS pads {} (eff. pitch {:.0}), θja<= {:.2}",
            self.node,
            self.t_junction_max,
            self.min_bump_pitch,
            self.itrs_pad_count,
            self.effective_itrs_bump_pitch(),
            self.required_theta_ja()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn junction_limit_drops_to_85c() {
        assert_eq!(
            PackagingRoadmap::for_node(TechNode::N180).t_junction_max,
            Celsius(100.0)
        );
        for n in [TechNode::N130, TechNode::N100, TechNode::N35] {
            assert_eq!(PackagingRoadmap::for_node(n).t_junction_max, Celsius(85.0));
        }
    }

    #[test]
    fn theta_ja_trend_matches_paper() {
        // "Presently, θja values range from 0.6 to 1 °C/W" — our 180 nm
        // requirement sits in that band.
        let now = PackagingRoadmap::for_node(TechNode::N180).required_theta_ja();
        assert!((0.55..=1.0).contains(&now.0), "got {now}");
        // "ITRS projections call for a θja of 0.25 °C/W in 3 years" — the
        // ~2002-2005 requirements approach 0.25.
        let soon = PackagingRoadmap::for_node(TechNode::N100).required_theta_ja();
        assert!((soon.0 - 0.25).abs() < 0.03, "got {soon}");
    }

    #[test]
    fn theta_ja_is_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for n in TechNode::ALL {
            let t = PackagingRoadmap::for_node(n).required_theta_ja().0;
            assert!(t < prev, "θja must tighten every node");
            prev = t;
        }
    }

    #[test]
    fn vdd_bumps_at_35nm_are_about_1500() {
        // Section 4: "with just 1500 Vdd bumps at 35 nm".
        let pkg = PackagingRoadmap::for_node(TechNode::N35);
        let v = pkg.itrs_vdd_bumps();
        assert!((1450..=1550).contains(&v), "got {v}");
    }

    #[test]
    fn effective_pitch_is_roughly_constant_350um() {
        // Section 4: "a roughly constant bump pitch of around 350 µm
        // throughout the roadmap".
        for n in TechNode::ALL {
            let p = PackagingRoadmap::for_node(n).effective_itrs_bump_pitch().0;
            assert!((330.0..=440.0).contains(&p), "{n}: {p}");
        }
        let p35 = PackagingRoadmap::for_node(TechNode::N35)
            .effective_itrs_bump_pitch()
            .0;
        assert!((p35 - 356.0).abs() < 5.0, "got {p35}");
    }

    #[test]
    fn itrs_bumps_cannot_carry_300a_at_35nm() {
        let pkg = PackagingRoadmap::for_node(TechNode::N35);
        assert!(pkg.itrs_bumps_are_inadequate());
        // ~305 A / ~1500 bumps = ~200 mA, above the 125 mA limit.
        assert!((pkg.itrs_current_per_vdd_bump().0 - 0.2).abs() < 0.02);
    }

    #[test]
    fn min_pitch_provisioning_is_adequate_everywhere() {
        for n in TechNode::ALL {
            let pkg = PackagingRoadmap::for_node(n);
            let per_bump = n.params().worst_case_current() / pkg.min_pitch_vdd_bumps() as f64;
            assert!(
                per_bump <= pkg.bump_current_limit,
                "{n}: {per_bump} per bump exceeds limit"
            );
        }
    }

    #[test]
    fn min_pitch_shrinks_along_roadmap() {
        let mut prev = f64::INFINITY;
        for n in TechNode::ALL {
            let p = PackagingRoadmap::for_node(n).min_bump_pitch.0;
            assert!(p < prev);
            prev = p;
        }
        assert_eq!(prev, 80.0);
    }

    #[test]
    fn display_mentions_pitch_and_theta() {
        let s = format!("{}", PackagingRoadmap::for_node(TechNode::N35));
        assert!(s.contains("min bump pitch 80"));
        assert!(s.contains("θja"));
    }
}
