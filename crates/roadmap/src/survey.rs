//! The paper's Table 1: recent (as of 2000) published NMOS device results,
//! compared with ITRS projections.
//!
//! Each [`DeviceReport`] row carries the reference tag the paper cites, the
//! ITRS node the authors assign the device to, and the reported `Tox`,
//! `Vdd`, `Ion`, `Ioff`. The key observation the paper draws from the table
//! — that *no published sub-1 V technology meets the ITRS on/off targets*
//! ([`no_sub_1v_device_meets_itrs`]) — is provided as a query so the claim
//! is testable rather than prose.

use np_units::{MicroampsPerMicron, Volts};
use std::fmt;

/// Whether a reported oxide thickness is the electrical or the physical
/// value (the paper's Table 1 mixes both and flags which).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateStack {
    /// Electrically measured oxide (includes inversion-layer and
    /// poly-depletion thickening).
    Electrical,
    /// Physically measured oxide.
    Physical,
}

impl fmt::Display for GateStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateStack::Electrical => write!(f, "electrical"),
            GateStack::Physical => write!(f, "physical"),
        }
    }
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Citation tag in the paper (e.g. "\[24\]") or "ITRS".
    pub reference: &'static str,
    /// First author / organization, for readable reports.
    pub source: &'static str,
    /// ITRS node(s) the device is assigned to, in nanometers; a range is
    /// `(lo, hi)`, a single node `(n, n)`.
    pub node_nm: (u32, u32),
    /// Reported oxide thickness range in Å; a single value is `(t, t)`.
    pub tox_angstrom: (f64, f64),
    /// Which oxide thickness was reported.
    pub gate_stack: GateStack,
    /// Operating supply voltage.
    pub vdd: Volts,
    /// Reported saturation drive current.
    pub ion: MicroampsPerMicron,
    /// Reported off current.
    pub ioff: MicroampsPerMicron,
}

impl DeviceReport {
    /// True when this row is an ITRS projection rather than silicon.
    pub fn is_itrs_projection(&self) -> bool {
        self.reference == "ITRS"
    }

    /// The `Ion/Ioff` ratio — the figure of merit the paper's discussion
    /// revolves around.
    pub fn on_off_ratio(&self) -> f64 {
        self.ion.0 / self.ioff.0
    }
}

impl fmt::Display for DeviceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let node = if self.node_nm.0 == self.node_nm.1 {
            format!("{}", self.node_nm.0)
        } else {
            format!("{}-{}", self.node_nm.0, self.node_nm.1)
        };
        let tox = if self.tox_angstrom.0 == self.tox_angstrom.1 {
            format!("{:.0}", self.tox_angstrom.0)
        } else {
            format!("{:.0}-{:.0}", self.tox_angstrom.0, self.tox_angstrom.1)
        };
        write!(
            f,
            "{:>5}  {:<12} {:>7}  {:>6} Å ({})  {:.2} V  {:>4.0} µA/µm  {:>6.0} nA/µm",
            self.reference,
            self.source,
            node,
            tox,
            self.gate_stack,
            self.vdd.0,
            self.ion.0,
            self.ioff.as_nano_per_micron()
        )
    }
}

/// The rows of the paper's Table 1, in the paper's order: six published
/// devices followed by three ITRS projection rows.
///
/// The ITRS 100 nm `Ioff` is encoded as 16 nA/µm for consistency with the
/// paper's Table 2 "ITRS Ioff projections" row.
pub static SURVEY: [DeviceReport; 9] = [
    DeviceReport {
        reference: "[24]",
        source: "Chau (Intel)",
        node_nm: (50, 70),
        tox_angstrom: (18.0, 18.0),
        gate_stack: GateStack::Electrical,
        vdd: Volts(0.85),
        ion: MicroampsPerMicron(514.0),
        ioff: MicroampsPerMicron(0.100),
    },
    DeviceReport {
        reference: "[25]",
        source: "Song",
        node_nm: (100, 100),
        tox_angstrom: (21.0, 21.0),
        gate_stack: GateStack::Electrical,
        vdd: Volts(1.2),
        ion: MicroampsPerMicron(860.0),
        ioff: MicroampsPerMicron(0.010),
    },
    DeviceReport {
        reference: "[26]",
        source: "Wakabayashi",
        node_nm: (70, 70),
        tox_angstrom: (25.0, 25.0),
        gate_stack: GateStack::Electrical,
        vdd: Volts(1.2),
        ion: MicroampsPerMicron(697.0),
        ioff: MicroampsPerMicron(0.010),
    },
    DeviceReport {
        reference: "[27]",
        source: "Mehrotra (TI)",
        node_nm: (100, 100),
        tox_angstrom: (27.0, 27.0),
        gate_stack: GateStack::Electrical,
        vdd: Volts(1.2),
        ion: MicroampsPerMicron(800.0),
        ioff: MicroampsPerMicron(0.010),
    },
    DeviceReport {
        reference: "[28]",
        source: "Yang (MIT)",
        node_nm: (70, 70),
        tox_angstrom: (32.0, 32.0),
        gate_stack: GateStack::Electrical,
        vdd: Volts(1.2),
        ion: MicroampsPerMicron(650.0),
        ioff: MicroampsPerMicron(0.003),
    },
    DeviceReport {
        reference: "[29]",
        source: "Ono (NEC)",
        node_nm: (100, 100),
        tox_angstrom: (13.0, 13.0),
        gate_stack: GateStack::Physical,
        vdd: Volts(1.0),
        ion: MicroampsPerMicron(723.0),
        ioff: MicroampsPerMicron(0.016),
    },
    DeviceReport {
        reference: "ITRS",
        source: "ITRS 2000",
        node_nm: (100, 100),
        tox_angstrom: (12.0, 15.0),
        gate_stack: GateStack::Physical,
        vdd: Volts(1.2),
        ion: MicroampsPerMicron(750.0),
        ioff: MicroampsPerMicron(0.016),
    },
    DeviceReport {
        reference: "ITRS",
        source: "ITRS 2000",
        node_nm: (70, 70),
        tox_angstrom: (8.0, 12.0),
        gate_stack: GateStack::Physical,
        vdd: Volts(0.9),
        ion: MicroampsPerMicron(750.0),
        ioff: MicroampsPerMicron(0.040),
    },
    DeviceReport {
        reference: "ITRS",
        source: "ITRS 2000",
        node_nm: (50, 50),
        tox_angstrom: (6.0, 8.0),
        gate_stack: GateStack::Physical,
        vdd: Volts(0.6),
        ion: MicroampsPerMicron(750.0),
        ioff: MicroampsPerMicron(0.080),
    },
];

/// The paper's central reading of Table 1: there is **no published sub-1 V
/// technology** that meets the ITRS `Ion`/`Ioff` expectations for its node.
///
/// Returns the silicon rows operating below 1 V (there is exactly one, at
/// 0.85 V, and its `Ion` falls ~30 % short of the 750 µA/µm target).
pub fn sub_1v_devices() -> Vec<&'static DeviceReport> {
    SURVEY
        .iter()
        .filter(|r| !r.is_itrs_projection() && r.vdd < Volts(1.0))
        .collect()
}

/// True when the survey supports the paper's claim: every published sub-1 V
/// device misses the ITRS `Ion` target at its node.
pub fn no_sub_1v_device_meets_itrs() -> bool {
    sub_1v_devices()
        .iter()
        .all(|r| r.ion < MicroampsPerMicron(750.0))
}

/// The dynamic-power penalty of running a device at `actual` supply instead
/// of the `expected` ITRS supply: `(actual/expected)² − 1`.
///
/// The paper's example: 1.2 V instead of 0.9 V at 70 nm "gives a 78 % rise
/// in dynamic power".
///
/// # Examples
///
/// ```
/// use np_units::Volts;
/// let rise = np_roadmap::survey::dynamic_power_penalty(Volts(1.2), Volts(0.9));
/// assert!((rise - 0.78).abs() < 0.01);
/// ```
pub fn dynamic_power_penalty(actual: Volts, expected: Volts) -> f64 {
    let r = actual / expected;
    r * r - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_six_devices_and_three_projections() {
        let devices = SURVEY.iter().filter(|r| !r.is_itrs_projection()).count();
        let projections = SURVEY.iter().filter(|r| r.is_itrs_projection()).count();
        assert_eq!(devices, 6);
        assert_eq!(projections, 3);
    }

    #[test]
    fn the_single_sub_1v_device_misses_ion() {
        let subs = sub_1v_devices();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].reference, "[24]");
        assert!(no_sub_1v_device_meets_itrs());
    }

    #[test]
    fn seventy_nm_devices_need_1_2v() {
        // Section 3.1: the 70 nm devices of [26,28] beat the ITRS Ioff but
        // need 1.2 V rather than 0.9 V.
        for r in SURVEY
            .iter()
            .filter(|r| !r.is_itrs_projection() && r.node_nm == (70, 70))
        {
            assert_eq!(r.vdd, Volts(1.2));
            assert!(r.ioff <= MicroampsPerMicron(0.040));
        }
    }

    #[test]
    fn vdd_penalty_is_78_percent() {
        let p = dynamic_power_penalty(Volts(1.2), Volts(0.9));
        assert!((p - 0.7778).abs() < 1e-3);
    }

    #[test]
    fn on_off_ratios_are_positive_and_large() {
        for r in &SURVEY {
            assert!(
                r.on_off_ratio() > 1_000.0,
                "{}: ratio too small",
                r.reference
            );
        }
    }

    #[test]
    fn display_row_is_aligned() {
        let s = format!("{}", SURVEY[0]);
        assert!(s.contains("[24]"));
        assert!(s.contains("50-70"));
        assert!(s.contains("µA/µm"));
        let s = format!("{}", SURVEY[6]);
        assert!(s.contains("12-15"));
        assert!(s.contains("physical"));
    }

    #[test]
    fn gate_stack_display() {
        assert_eq!(format!("{}", GateStack::Electrical), "electrical");
        assert_eq!(format!("{}", GateStack::Physical), "physical");
    }
}
